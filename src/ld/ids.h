// Strongly-typed identifiers for the Logical Disk namespace.
//
// Logical block numbers and list numbers are the heart of LD's
// separation of file management from disk management: clients name
// blocks logically and never see physical addresses. ARU identifiers
// name the concurrent streams introduced by this paper.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace aru::ld {

namespace internal {

// CRTP-free strong integer id. Value 0 is reserved as "invalid/none"
// for every id space.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t value) : value_(value) {}

  constexpr std::uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }

  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  std::uint64_t value_ = 0;
};

}  // namespace internal

struct BlockTag {};
struct ListTag {};
struct AruTag {};

// A logical disk block number.
using BlockId = internal::Id<BlockTag>;
// A logical block-list number.
using ListId = internal::Id<ListTag>;
// An atomic-recovery-unit (stream) identifier.
using AruId = internal::Id<AruTag>;

// The "no ARU" stream: operations tagged with it are simple operations,
// which are ARUs by themselves and commit upon completion.
inline constexpr AruId kNoAru{};

// Predecessor sentinel: insert at the beginning of a list.
inline constexpr BlockId kListHead{};

}  // namespace aru::ld

template <>
struct std::hash<aru::ld::BlockId> {
  std::size_t operator()(aru::ld::BlockId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
template <>
struct std::hash<aru::ld::ListId> {
  std::size_t operator()(aru::ld::ListId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
template <>
struct std::hash<aru::ld::AruId> {
  std::size_t operator()(aru::ld::AruId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
