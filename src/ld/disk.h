// The Logical Disk (LD) interface [de Jonge, Kaashoek, Hsieh, SOSP'93],
// extended with atomic recovery units (this paper).
//
// LD presents disk storage as a logical namespace of fixed-size blocks
// arranged in ordered lists. Blocks are always allocated within a list,
// either at the beginning or after a given predecessor; the list order
// guides physical placement. ARUs bracket several operations into one
// failure-atomic unit: after a crash, all or none of an ARU's operations
// are persistent.
//
// Semantics implemented here (paper §3.3, Read option 3):
//  * Every operation optionally names an ARU; AruId{} (kNoAru) marks a
//    simple operation, which is an ARU by itself.
//  * Writes, deletes and list manipulation inside an ARU affect only
//    that ARU's shadow state until EndARU merges it into the committed
//    state (serialization point: EndARU time).
//  * Reads inside an ARU see that ARU's shadow state; simple reads see
//    the committed state. Shadow states of concurrent ARUs are isolated.
//  * NewBlock / NewList allocate in the committed state immediately,
//    even inside an ARU, so concurrent ARUs can never be handed the same
//    identifier; only the insertion into the list is shadowed.
//  * Flush makes all committed state persistent. ARUs do NOT imply
//    durability: a committed-but-unflushed ARU may be lost in a crash —
//    but never partially.
//  * ARUs provide no concurrency control; clients that share blocks or
//    lists across concurrent ARUs must lock at their own level.
#pragma once

#include <optional>
#include <vector>

#include "ld/ids.h"
#include "util/bytes.h"
#include "util/status.h"

namespace aru::ld {

class Disk {
 public:
  virtual ~Disk() = default;

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // ------------------------------------------------------------------
  // Geometry.

  // Size of a logical block in bytes. Write/Read transfer whole blocks.
  virtual std::uint32_t block_size() const = 0;

  // Total and free logical block capacity.
  virtual std::uint64_t capacity_blocks() const = 0;
  virtual std::uint64_t free_blocks() const = 0;

  // ------------------------------------------------------------------
  // Lists.

  // Allocates a new, empty block list.
  virtual Result<ListId> NewList(AruId aru = kNoAru) = 0;

  // Deletes a list and de-allocates every block still on it (walking
  // from the head, so no predecessor searches are needed). Inside an
  // ARU the deletion is shadowed and takes effect at EndARU.
  virtual Status DeleteList(ListId list, AruId aru = kNoAru) = 0;

  // Returns the blocks of `list` in list order, as visible to `aru`.
  virtual Result<std::vector<BlockId>> ListBlocks(ListId list,
                                                  AruId aru = kNoAru) = 0;

  // The list `block` currently belongs to, as visible to `aru`.
  // An invalid ListId for an allocated-but-uninserted block;
  // kNotFound if the block is not allocated in this view.
  virtual Result<ListId> ListOf(BlockId block, AruId aru = kNoAru) = 0;

  // ------------------------------------------------------------------
  // Blocks.

  // Allocates a new block on `list`, after `predecessor`, or at the
  // beginning of the list when predecessor == kListHead. The identifier
  // is committed immediately (paper §3.3); the insertion is shadowed.
  virtual Result<BlockId> NewBlock(ListId list, BlockId predecessor,
                                   AruId aru = kNoAru) = 0;

  // Removes `block` from its list and de-allocates it. Requires a
  // predecessor search (LD keeps successor pointers only).
  virtual Status DeleteBlock(BlockId block, AruId aru = kNoAru) = 0;

  // Repositions `block` within or across lists: unlinks it from its
  // current list (if any) and inserts it into `to_list` after
  // `predecessor` (kListHead = at the beginning). The block keeps its
  // identity and data — this is the list-manipulation surface LD's
  // transparent reorganization builds on. Shadowed inside ARUs.
  virtual Status MoveBlock(BlockId block, ListId to_list,
                           BlockId predecessor, AruId aru = kNoAru) = 0;

  // Writes one whole block. data.size() must equal block_size().
  virtual Status Write(BlockId block, ByteSpan data, AruId aru = kNoAru) = 0;

  // Reads one whole block as visible to `aru`. A block that was
  // allocated but never written reads as zeroes.
  virtual Status Read(BlockId block, MutableByteSpan out,
                      AruId aru = kNoAru) = 0;

  // Multi-block read (the LD interface's larger-granularity disk
  // calls): reads `blocks` in order into `out`, which must hold
  // blocks.size() * block_size() bytes. Implementations coalesce
  // physically adjacent blocks into single device requests — on a
  // log-structured disk a sequentially written file usually reads back
  // as a handful of large I/Os.
  virtual Status ReadMany(std::span<const BlockId> blocks,
                          MutableByteSpan out, AruId aru = kNoAru) = 0;

  // ------------------------------------------------------------------
  // Atomicity and durability.

  // Opens a new atomic recovery unit (a new concurrent stream).
  virtual Result<AruId> BeginARU() = 0;

  // Commits: merges the ARU's shadow state into the committed state and
  // appends its commit record to the operation log. After EndARU the
  // ARU's effects are visible to everyone and will be persistent in
  // their entirety once flushed.
  virtual Status EndARU(AruId aru) = 0;

  // Discards the ARU's shadow state without committing. This is an
  // extension beyond the paper (which notes ARUs, unlike Mime visibility
  // groups, do not support unrolling); a crash before EndARU has the
  // same effect.
  virtual Status AbortARU(AruId aru) = 0;

  // Forces all committed data and meta-data to persistent storage.
  virtual Status Flush() = 0;

 protected:
  Disk() = default;
};

// RAII bracket for an ARU: begins on construction, aborts on destruction
// unless Commit() was called. Prefer this over manual Begin/End pairs.
class AruScope {
 public:
  explicit AruScope(Disk& disk) : disk_(disk) {
    auto result = disk.BeginARU();
    if (result.ok()) {
      id_ = *result;
    } else {
      status_ = result.status();
    }
  }

  ~AruScope() {
    // Discarded: destructors cannot propagate; an abort that fails
    // leaves the ARU uncommitted — the same all-or-nothing outcome.
    if (id_.valid() && !committed_) (void)disk_.AbortARU(id_);
  }

  AruScope(const AruScope&) = delete;
  AruScope& operator=(const AruScope&) = delete;

  // Status of BeginARU; check before use.
  const Status& status() const { return status_; }
  AruId id() const { return id_; }

  Status Commit() {
    ARU_RETURN_IF_ERROR(status_);
    const Status s = disk_.EndARU(id_);
    if (s.ok()) committed_ = true;
    return s;
  }

 private:
  Disk& disk_;
  AruId id_;
  Status status_;
  bool committed_ = false;
};

}  // namespace aru::ld
