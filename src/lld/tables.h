// The two persistent-state tables (paper §4, Figure 3): the
// block-number-map and the list-table. They mirror the information in
// the on-disk segment summaries for fast access; recovery reconstructs
// them from the newest checkpoint plus a summary replay.
//
// Only live entries are stored: an absent block-map entry means the
// block id is unallocated, an absent list-table entry that the list
// does not exist.
//
// Two layers live here:
//
//  * BlockMap / ListTable — flat, single-map, not internally
//    synchronized. These remain the checkpoint interchange format
//    (checkpoint.cc serializes/parses them) and the staging shape for
//    recovery replay; they are only ever touched single-threaded or
//    under an exclusive Lld::mu_.
//
//  * ShardedBlockMap / ShardedListTable — the in-memory tables the
//    running disk actually serves from. Entries hash by id onto N
//    independent shards, each with its own named Mutex (site
//    "lld_table_shard", so PR 6 lock-contention attribution and the
//    arulint named-lock rule keep working), following the shard
//    pattern proven by BlockCache. Point lookups (Get) take exactly
//    one shard lock and never Lld::mu_; mutations additionally happen
//    only while the caller holds Lld::mu_ exclusively, which is what
//    keeps multi-key invariants (list splices, promotion merges)
//    atomic across shards. Batched mutations go through ApplyBatch,
//    which groups updates by shard and visits shards in ascending
//    index order — the canonical acquisition order that the arulint
//    shard-order rule enforces for every per-shard lock array. The
//    shard mutex is a leaf: no call made while holding one acquires
//    any other lock, and no two shard locks are ever held at once.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lld/types.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aru::lld {

class BlockMap {
 public:
  // Meta of an allocated block, or nullptr.
  const BlockMeta* Find(BlockId id) const {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }

  BlockMeta* FindMutable(BlockId id) {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }

  void Set(BlockId id, const BlockMeta& meta) { map_[id] = meta; }
  void Erase(BlockId id) { map_.erase(id); }
  void Clear() { map_.clear(); }
  // Pre-sizes the table for n additional entries; bulk loaders
  // (checkpoint decode, delta replay) call this so a 100k-entry load
  // is one allocation instead of a rehash cascade.
  void Reserve(std::size_t n) { map_.reserve(map_.size() + n); }

  std::size_t size() const { return map_.size(); }

  template <typename F>
  void ForEach(F&& f) const {
    for (const auto& [id, meta] : map_) f(id, meta);
  }

 private:
  std::unordered_map<BlockId, BlockMeta> map_;
};

class ListTable {
 public:
  const ListMeta* Find(ListId id) const {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }

  ListMeta* FindMutable(ListId id) {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }

  void Set(ListId id, const ListMeta& meta) { map_[id] = meta; }
  void Erase(ListId id) { map_.erase(id); }
  void Clear() { map_.clear(); }
  void Reserve(std::size_t n) { map_.reserve(map_.size() + n); }

  std::size_t size() const { return map_.size(); }

  template <typename F>
  void ForEach(F&& f) const {
    for (const auto& [id, meta] : map_) f(id, meta);
  }

 private:
  std::unordered_map<ListId, ListMeta> map_;
};

// Sharded table over strong ids. `Flat` is the matching flat table
// class (BlockMap/ListTable) used as checkpoint/recovery interchange.
template <typename Id, typename Meta, typename Flat>
class ShardedTable {
 public:
  // One pending mutation for ApplyBatch. `erase` wins over `meta`.
  struct Update {
    Id id;
    Meta meta{};
    bool erase = false;
  };

  explicit ShardedTable(std::size_t shard_count)
      : shard_count_(std::clamp<std::size_t>(shard_count, 1, 256)),
        shards_(shard_count_) {}

  std::size_t shard_count() const { return shard_count_; }

  // Contention attribution: hands every shard mutex to `bind` (e.g.
  // LldMetrics::BindLock). All shards share the "lld_table_shard" site
  // name, so their waits aggregate into one metric pair.
  template <typename Binder>
  void BindLockSites(Binder&& bind) {
    for (Shard& shard : shards_) bind(shard.mu);
  }

  // Copies the entry into `out` on a hit. Safe from any thread.
  bool Get(Id id, Meta& out) const {
    const Shard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    const auto it = shard.map.find(id);
    if (it == shard.map.end()) return false;
    out = it->second;
    return true;
  }

  bool Contains(Id id) const {
    const Shard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    return shard.map.find(id) != shard.map.end();
  }

  void Set(Id id, const Meta& meta) {
    Shard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    shard.map[id] = meta;
  }

  void Erase(Id id) {
    Shard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    shard.map.erase(id);
  }

  void Clear() {
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      shard.map.clear();
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      n += shard.map.size();
    }
    return n;
  }

  // Applies a batch of updates: phase one groups them by shard, phase
  // two visits shards in ascending index order, locking each exactly
  // once. Later updates to the same id win, preserving the batch's
  // program order. At most one shard lock is held at any moment; the
  // ascending visit order still matters because it is the published
  // shard-array order (arulint shard-order family) and keeps the
  // publication sequence deterministic for the crash-order argument:
  // by the time ApplyBatch runs, every update's summary record is
  // already durable (the caller gates on the LSN horizon), so *any*
  // apply order is crash-safe — determinism just makes replay
  // byte-comparable in tests.
  void ApplyBatch(const std::vector<Update>& updates) {
    if (updates.empty()) return;
    std::vector<std::vector<const Update*>> by_shard(shard_count_);
    for (const Update& u : updates) {
      by_shard[ShardIndexFor(u.id)].push_back(&u);
    }
    for (std::size_t i = 0; i < shard_count_; ++i) {
      if (by_shard[i].empty()) continue;
      Shard& shard = shards_[i];
      MutexLock lock(shard.mu);
      for (const Update* u : by_shard[i]) {
        if (u->erase) {
          shard.map.erase(u->id);
        } else {
          shard.map[u->id] = u->meta;
        }
      }
    }
  }

  // Copies every entry into the flat table (checkpoint snapshot).
  // Shards are visited in ascending order, one lock at a time; callers
  // needing a point-in-time-consistent snapshot must hold Lld::mu_
  // exclusively-excluded from mutators (i.e. mutators run under
  // exclusive mu_, the snapshotter holds it too).
  void SnapshotInto(Flat& out) const {
    out.Clear();
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      for (const auto& [id, meta] : shard.map) out.Set(id, meta);
    }
  }

  // Replaces the whole table with the flat table's contents (recovery
  // rebuild from a checkpoint + replay staging table). Entries are
  // bucketed by shard first so each shard is locked exactly once and
  // sized up front — at recovery scale (hundreds of thousands of
  // entries) per-entry Set would pay a lock round-trip and rehash
  // growth per insert.
  void Load(const Flat& in) {
    std::vector<std::vector<std::pair<Id, Meta>>> by_shard(shard_count_);
    const std::size_t hint = in.size() / shard_count_ + 1;
    for (auto& bucket : by_shard) bucket.reserve(hint);
    in.ForEach([&by_shard, this](Id id, const Meta& meta) {
      by_shard[ShardIndexFor(id)].emplace_back(id, meta);
    });
    for (std::size_t i = 0; i < shard_count_; ++i) {
      Shard& shard = shards_[i];
      MutexLock lock(shard.mu);
      shard.map.clear();
      shard.map.reserve(by_shard[i].size());
      for (const auto& [id, meta] : by_shard[i]) shard.map.emplace(id, meta);
    }
  }

  template <typename F>
  void ForEach(F&& f) const {
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      for (const auto& [id, meta] : shard.map) f(id, meta);
    }
  }

  std::size_t ShardIndexFor(Id id) const {
    // Fibonacci-multiplicative hash; ids are often sequential, the
    // high bits spread neighbours across shards.
    const std::uint64_t h = id.value() * 0x9E3779B97F4A7C15ull;
    return (h >> 32) % shard_count_;
  }

 private:
  struct Shard {
    mutable Mutex mu{"lld_table_shard"};
    std::unordered_map<Id, Meta> map ARU_GUARDED_BY(mu);
  };

  const Shard& ShardFor(Id id) const { return shards_[ShardIndexFor(id)]; }
  Shard& ShardFor(Id id) { return shards_[ShardIndexFor(id)]; }

  const std::size_t shard_count_;
  std::vector<Shard> shards_;
};

// Named concrete instantiations (rather than bare aliases) so the type
// heads "ShardedBlockMap"/"ShardedListTable" appear in member
// declarations — arulint's table-type recognition keys on those names.
class ShardedBlockMap : public ShardedTable<BlockId, BlockMeta, BlockMap> {
 public:
  using ShardedTable::ShardedTable;
};

class ShardedListTable : public ShardedTable<ListId, ListMeta, ListTable> {
 public:
  using ShardedTable::ShardedTable;
};

}  // namespace aru::lld
