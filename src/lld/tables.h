// The two persistent-state tables (paper §4, Figure 3): the
// block-number-map and the list-table. They mirror the information in
// the on-disk segment summaries for fast access; recovery reconstructs
// them from the newest checkpoint plus a summary replay.
//
// Only live entries are stored: an absent block-map entry means the
// block id is unallocated, an absent list-table entry that the list
// does not exist.
//
// Thread-compatibility: not internally synchronized. Instances are
// owned by an Lld and reached only under Lld::mu_ — the owning members
// carry ARU_GUARDED_BY(mu_), so clang's -Wthread-safety checks every
// access path (see util/thread_annotations.h).
#pragma once

#include <unordered_map>

#include "lld/types.h"

namespace aru::lld {

class BlockMap {
 public:
  // Meta of an allocated block, or nullptr.
  const BlockMeta* Find(BlockId id) const {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }

  BlockMeta* FindMutable(BlockId id) {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }

  void Set(BlockId id, const BlockMeta& meta) { map_[id] = meta; }
  void Erase(BlockId id) { map_.erase(id); }
  void Clear() { map_.clear(); }

  std::size_t size() const { return map_.size(); }

  template <typename F>
  void ForEach(F&& f) const {
    for (const auto& [id, meta] : map_) f(id, meta);
  }

 private:
  std::unordered_map<BlockId, BlockMeta> map_;
};

class ListTable {
 public:
  const ListMeta* Find(ListId id) const {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }

  ListMeta* FindMutable(ListId id) {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }

  void Set(ListId id, const ListMeta& meta) { map_[id] = meta; }
  void Erase(ListId id) { map_.erase(id); }
  void Clear() { map_.clear(); }

  std::size_t size() const { return map_.size(); }

  template <typename F>
  void ForEach(F&& f) const {
    for (const auto& [id, meta] : map_) f(id, meta);
  }

 private:
  std::unordered_map<ListId, ListMeta> map_;
};

}  // namespace aru::lld
