#include "lld/segment_pipeline.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aru::lld {

SegmentPipeline::SegmentPipeline(BlockDevice& device, const Geometry& geometry,
                                 LldMetrics& metrics,
                                 std::uint32_t max_in_flight)
    : device_(device),
      geometry_(geometry),
      metrics_(metrics),
      max_in_flight_(max_in_flight) {
  metrics_.BindLock(flush_mu_);
  if (max_in_flight_ > 0) {
    flusher_ = std::thread([this] { FlusherMain(); });
  }
}

SegmentPipeline::~SegmentPipeline() {
  if (!flusher_.joinable()) return;
  {
    const MutexLock lock(flush_mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyOne();
  flusher_.join();
}

void SegmentPipeline::UpdateGaugesLocked() {
  metrics_.inflight_segments->Set(static_cast<std::int64_t>(queue_.size()));
  metrics_.durable_lag_lsn->Set(
      static_cast<std::int64_t>(enqueued_lsn_ - durable_lsn_));
}

Status SegmentPipeline::Enqueue(std::uint64_t first_sector, Lsn last_lsn,
                                std::uint32_t slot, std::uint32_t data_blocks,
                                Bytes& buffer) {
  if (max_in_flight_ == 0) {
    // Synchronous mode: the caller's thread is the flusher. The span
    // nests under the caller's seal span implicitly.
    obs::Span write_span(&obs::Tracer::Default(), "lld", "device_write",
                         metrics_.device_write_us);
    const Status written = device_.Write(first_sector, buffer);
    write_span.Finish();
    ARU_RETURN_IF_ERROR(written);
    const MutexLock lock(flush_mu_);
    if (last_lsn != kNoLsn) {
      enqueued_lsn_ = std::max(enqueued_lsn_, last_lsn);
      durable_lsn_ = std::max(durable_lsn_, last_lsn);
    }
    UpdateGaugesLocked();
    return Status::Ok();
  }

  // Parent the asynchronous device write on the seal span active here,
  // not on the hand-off span created below: the write is the seal's
  // deferred second half, and the hand-off is over before it starts.
  const std::uint64_t seal_span = obs::Tracer::CurrentSpanId();
  obs::Span handoff_span(&obs::Tracer::Default(), "lld", "seal_handoff",
                         metrics_.seal_handoff_us);
  InFlight job;
  job.first_sector = first_sector;
  job.last_lsn = last_lsn;
  job.slot = slot;
  job.data_blocks = data_blocks;
  job.parent_span = seal_span;
  {
    const MutexLock lock(flush_mu_);
    // Backpressure: the pool is bounded so a stalled device cannot
    // accumulate unbounded dirty segments.
    space_cv_.Wait(flush_mu_, [this] {
      flush_mu_.AssertHeld();
      return queue_.size() < max_in_flight_ || !error_.ok() || shutdown_;
    });
    if (!error_.ok()) return error_;
    if (shutdown_) return UnavailableError("segment pipeline shut down");
    job.buffer = std::move(buffer);
    queue_.push_back(std::move(job));
    if (last_lsn != kNoLsn) enqueued_lsn_ = std::max(enqueued_lsn_, last_lsn);
    UpdateGaugesLocked();
    // Replace the caller's buffer so the next segment can fill while
    // this one is in flight.
    if (!spare_buffers_.empty()) {
      buffer = std::move(spare_buffers_.back());
      spare_buffers_.pop_back();
    } else {
      buffer.resize(geometry_.segment_size);
    }
  }
  work_cv_.NotifyOne();
  handoff_span.Finish();
  return Status::Ok();
}

Lsn SegmentPipeline::durable_lsn() const {
  const MutexLock lock(flush_mu_);
  return durable_lsn_;
}

Status SegmentPipeline::WaitDurable(Lsn target) {
  if (target == kNoLsn) return Status::Ok();
  // Nests under the caller's span (EndARU's commit, or Flush), so the
  // trace shows how much of a commit was group-commit riding.
  const obs::Span wait_span(&obs::Tracer::Default(), "lld",
                            "group_commit_wait", metrics_.flush_wait_us);
  const MutexLock lock(flush_mu_);
  durable_cv_.Wait(flush_mu_, [this, target] {
    flush_mu_.AssertHeld();
    return durable_lsn_ >= target || !error_.ok() || queue_.empty();
  });
  if (durable_lsn_ >= target) return Status::Ok();
  return error_;
}

Status SegmentPipeline::Drain() {
  const MutexLock lock(flush_mu_);
  durable_cv_.Wait(flush_mu_, [this] {
    flush_mu_.AssertHeld();
    return queue_.empty();
  });
  return error_;
}

bool SegmentPipeline::ReadBuffered(PhysAddr phys, MutableByteSpan out) const {
  if (max_in_flight_ == 0 || !phys.valid()) return false;
  const MutexLock lock(flush_mu_);
  for (const InFlight& job : queue_) {
    if (job.slot != phys.slot()) continue;
    if (phys.index() >= job.data_blocks) return false;
    const std::size_t offset =
        static_cast<std::size_t>(phys.index()) * geometry_.block_size;
    assert(offset + out.size() <= job.buffer.size());
    std::memcpy(out.data(), job.buffer.data() + offset, out.size());
    return true;
  }
  return false;
}

bool SegmentPipeline::InFlightSlot(std::uint32_t slot) const {
  if (max_in_flight_ == 0) return false;
  const MutexLock lock(flush_mu_);
  for (const InFlight& job : queue_) {
    if (job.slot == slot) return true;
  }
  return false;
}

void SegmentPipeline::Restore(Lsn durable_lsn) {
  const MutexLock lock(flush_mu_);
  assert(queue_.empty());
  durable_lsn_ = durable_lsn;
  enqueued_lsn_ = durable_lsn;
  UpdateGaugesLocked();
}

void SegmentPipeline::FlusherMain() {
  for (;;) {
    const InFlight* job = nullptr;
    bool skip = false;
    {
      const MutexLock lock(flush_mu_);
      work_cv_.Wait(flush_mu_, [this] {
        flush_mu_.AssertHeld();
        return shutdown_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutdown with nothing pending
      job = &queue_.front();
      skip = !error_.ok();  // after a write failure: discard, don't write
    }

    // The device write runs without the lock. `job` stays valid — only
    // this thread pops, and deque push_back does not invalidate
    // references — and the buffer bytes are immutable after Enqueue
    // (concurrent ReadBuffered calls are read-read).
    Status written = Status::Ok();
    if (!skip) {
      // Cross-thread child: nests under the seal span captured at
      // Enqueue, so a trace shows which operation's segment this is.
      obs::Span write_span(&obs::Tracer::Default(), "lld", "device_write",
                           job->parent_span, metrics_.device_write_us);
      written = device_.Write(job->first_sector, job->buffer);
      write_span.Finish();
    }

    {
      const MutexLock lock(flush_mu_);
      InFlight done = std::move(queue_.front());
      queue_.pop_front();
      if (!skip && !written.ok() && error_.ok()) error_ = written;
      if (!skip && written.ok() && done.last_lsn != kNoLsn) {
        durable_lsn_ = std::max(durable_lsn_, done.last_lsn);
      }
      spare_buffers_.push_back(std::move(done.buffer));
      UpdateGaugesLocked();
    }
    durable_cv_.NotifyAll();
    space_cv_.NotifyAll();
  }
}

}  // namespace aru::lld
