// Internal types shared across the log-structured logical disk (LLD).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "ld/ids.h"

namespace aru::obs {
class Registry;
}  // namespace aru::obs

namespace aru::lld {

using ld::AruId;
using ld::BlockId;
using ld::ListId;

// Logical sequence number: a single monotone counter stamps every
// operation and every summary record. Serves as both the paper's
// "time of an operation" and the promotion horizon coordinate.
using Lsn = std::uint64_t;

inline constexpr Lsn kNoLsn = 0;

// Physical address of a block: segment slot + block index within the
// slot's data area. Encoded as a non-zero u64 so that 0 means "none"
// (allocated but never written).
class PhysAddr {
 public:
  constexpr PhysAddr() = default;
  constexpr PhysAddr(std::uint32_t slot, std::uint32_t index)
      : encoded_((static_cast<std::uint64_t>(slot) + 1) << 32 | index) {}

  static constexpr PhysAddr FromEncoded(std::uint64_t encoded) {
    PhysAddr a;
    a.encoded_ = encoded;
    return a;
  }

  constexpr bool valid() const { return encoded_ != 0; }
  constexpr std::uint32_t slot() const {
    return static_cast<std::uint32_t>((encoded_ >> 32) - 1);
  }
  constexpr std::uint32_t index() const {
    return static_cast<std::uint32_t>(encoded_ & 0xffffffffu);
  }
  constexpr std::uint64_t encoded() const { return encoded_; }

  friend constexpr bool operator==(PhysAddr, PhysAddr) = default;

  std::string ToString() const {
    if (!valid()) return "(none)";
    // Built by append: the `"(" + std::to_string(...)` spelling trips a
    // GCC 12 -Wrestrict false positive once inlined into callers.
    std::string s = "(";
    s += std::to_string(slot());
    s += ",";
    s += std::to_string(index());
    s += ")";
    return s;
  }

 private:
  std::uint64_t encoded_ = 0;
};

// Per-block persistent meta-data: the paper's block-number-map record
// ("physical address and segment number … the state (allocated or not),
// the position within a list (the successor) and the time-stamp for the
// time when the block was last written"). We additionally carry the
// owning list, which the consistency checker and orphan reclamation use.
struct BlockMeta {
  bool allocated = false;
  PhysAddr phys;        // invalid ⇒ never written (reads as zeroes)
  BlockId successor;    // next block on the list; invalid ⇒ tail
  ListId list;          // owning list
  Lsn ts = kNoLsn;      // time of last write (commit-time for ARU writes)
};

// Per-list persistent meta-data: the paper's list-table record
// ("the first (and last) block of each list").
struct ListMeta {
  bool exists = false;
  BlockId first;
  BlockId last;
};

// Which ARU machinery the disk runs with. kSequential models the
// original LLD prototype from [4] ("old" in Table 1): at most one ARU at
// a time, operations applied directly to the committed state (no shadow
// versions, no link-log replay). kConcurrent is this paper's prototype.
enum class AruMode {
  kSequential,
  kConcurrent,
};

enum class CleanerPolicy {
  kGreedy,       // least live data first
  kCostBenefit,  // Sprite LFS benefit/cost: (1-u)*age / (1+u)
};

// Counters exposed for tests and the benchmark harness (e.g. the paper
// reports "24 segments are written" for the 500,000-ARU experiment).
// A consistent snapshot assembled by Lld::stats() from the disk's
// obs::Registry counters (see lld_metrics.h); the registry is the
// source of truth and additionally carries latency histograms.
struct LldStats {
  std::uint64_t segments_written = 0;
  std::uint64_t partial_segments_written = 0;  // sealed by Flush before full
  std::uint64_t bytes_written_to_disk = 0;
  std::uint64_t blocks_written = 0;       // logical block writes
  std::uint64_t blocks_read = 0;
  std::uint64_t reads_from_open_segment = 0;
  std::uint64_t arus_begun = 0;
  std::uint64_t arus_committed = 0;
  std::uint64_t arus_aborted = 0;
  std::uint64_t link_log_entries_replayed = 0;
  std::uint64_t predecessor_search_steps = 0;
  std::uint64_t version_chain_steps = 0;   // same-id chain traversals
  std::uint64_t flushes = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t cleaner_passes = 0;
  std::uint64_t segments_cleaned = 0;
  std::uint64_t blocks_copied_by_cleaner = 0;
  std::uint64_t orphan_blocks_reclaimed = 0;
};

struct Options {
  std::uint32_t block_size = 4096;
  std::uint32_t segment_size = 512 * 1024;  // paper: 0.5 MByte segments
  AruMode aru_mode = AruMode::kConcurrent;
  CleanerPolicy cleaner_policy = CleanerPolicy::kCostBenefit;
  // Cleaning starts when fewer than this many slots are free.
  std::uint32_t cleaner_reserve_slots = 4;
  // Logical block capacity; 0 derives ~90% of the physical data capacity.
  std::uint64_t capacity_blocks = 0;
  // Sizing bound for the checkpoint regions; 0 derives capacity_blocks/2.
  std::uint64_t max_lists = 0;
  // Free blocks that an interrupted ARU left allocated-but-listless
  // (paper §3.3: "a disk consistency check during recovery should free
  // such blocks").
  bool reclaim_orphans_on_recovery = true;
  // Run the full consistency checker after every mutating operation.
  // For tests; extremely slow.
  bool paranoid_checks = false;
  // Read-cache capacity in blocks (0 = disabled). Keyed by physical
  // address; coherent by construction on a log-structured disk.
  std::size_t read_cache_blocks = 0;
  // Independent LRU shards the read cache splits into, each with its
  // own mutex, so parallel readers' cache hits never contend on one
  // lock. 0 derives a topology-aware default (one shard per hardware
  // thread rounded to a power of two, clamped — util/topology.h),
  // further clamped to the cache capacity.
  std::size_t read_cache_shards = 0;
  // Independent shards the block-number-map and list-table split into,
  // each with its own mutex, so table point-lookups and promotion
  // batches spread across locks instead of serializing on Lld::mu_.
  // 0 derives the same topology-aware default as read_cache_shards.
  std::size_t table_shards = 0;
  // Write-behind pipeline depth: how many sealed segments may be in
  // flight behind a background flusher thread while the next segment
  // fills. 0 (the default) seals synchronously on the caller's thread,
  // matching the paper's prototype. Promotion always gates on the
  // durable-LSN horizon, so crash atomicity is identical either way;
  // only the window of buffered-but-unflushed data grows.
  std::uint32_t write_behind_segments = 0;
  // Make EndARU wait until the ARU's commit record is durable (sealing
  // the open segment if needed) before reporting success. Concurrent
  // committers whose commit records share a segment ride one device
  // write — group commit. Off by default: the paper's prototype treats
  // commit as an in-memory event ordered by the log.
  bool durable_commits = false;
  // Workers the recovery summary scan fans segment reads/decodes
  // across. 0 (the default) derives a topology-aware width
  // (util/topology.h PoolThreadsForMachine); 1 scans serially on the
  // opening thread. Recovered state is byte-identical at any width —
  // the merge is deterministic in slot order — so this is purely a
  // wall-clock knob.
  std::size_t recovery_threads = 0;
  // Write incremental checkpoints: after a full base image, subsequent
  // checkpoints persist only table entries dirtied since the previous
  // one as a delta record chained onto the base, so checkpoint cost
  // scales with live churn instead of total table size. A periodic
  // full rebase (checkpoint_rebase_interval) bounds the chain; torn
  // deltas fall back to the previous chain tip plus summary
  // roll-forward. Off by default: every checkpoint is a full image in
  // the original alternating-region format.
  bool incremental_checkpoints = false;
  // Maximum delta images chained onto one full base before the next
  // checkpoint rebases (writes a fresh full image to the other
  // region). Bounds both recovery's delta replay and the chain's
  // region footprint. Only meaningful with incremental_checkpoints.
  std::uint32_t checkpoint_rebase_interval = 8;
  // Metrics registry the disk reports into. nullptr gives the disk a
  // private registry (reachable via Lld::registry()), so counters from
  // independent disks in one process never bleed into each other; pass
  // &obs::Registry::Default() (or any shared instance) to aggregate.
  obs::Registry* registry = nullptr;
  // Background time-series sampler period in milliseconds. 0 (the
  // default) starts no sampler. When > 0 the disk owns an obs::Sampler
  // thread snapshotting durable lag, in-flight segments, read/commit
  // counters and lock-contention totals into a bounded ring (reachable
  // via Lld::sampler(); exported as the "timeseries" section of bench
  // artifacts). Stopped at Close and destruction.
  std::uint64_t sampler_period_ms = 0;
};

}  // namespace aru::lld
