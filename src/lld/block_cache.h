// Read cache for disk blocks, keyed by *physical* address.
//
// The paper's LLD keeps a block cache (an implicit Flush happens "when
// the block cache is full"). In a log-structured disk a physical block
// address is written exactly once per segment lifetime, so a cache
// keyed by PhysAddr is coherent by construction: logical overwrites go
// to fresh addresses and simply strand the old entry (aged out by LRU).
// The only re-use of a physical address is a segment slot being
// recycled after cleaning, so the owner invalidates a slot's entries
// when the slot is released for reuse.
//
// Thread-compatibility: not internally synchronized. The cache is owned
// by an Lld and reached only under Lld::mu_ — the owning member carries
// ARU_GUARDED_BY(mu_), so clang's -Wthread-safety checks every access
// path (see util/thread_annotations.h).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "lld/types.h"
#include "util/bytes.h"

namespace aru::lld {

struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t invalidated = 0;
};

class BlockCache {
 public:
  // capacity = number of cached blocks (0 disables the cache).
  BlockCache(std::size_t capacity, std::uint32_t block_size)
      : capacity_(capacity), block_size_(block_size) {}

  bool enabled() const { return capacity_ > 0; }

  // Copies the cached block into `out` on a hit.
  bool Lookup(PhysAddr phys, MutableByteSpan out) {
    if (!enabled()) return false;
    const auto it = map_.find(phys.encoded());
    if (it == map_.end()) {
      ++stats_.misses;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    std::copy(it->second->data.begin(), it->second->data.end(), out.begin());
    ++stats_.hits;
    return true;
  }

  void Insert(PhysAddr phys, ByteSpan data) {
    if (!enabled()) return;
    if (map_.contains(phys.encoded())) return;
    lru_.push_front(Entry{phys, Bytes(data.begin(), data.end())});
    map_[phys.encoded()] = lru_.begin();
    ++stats_.insertions;
    while (lru_.size() > capacity_) {
      map_.erase(lru_.back().phys.encoded());
      lru_.pop_back();
    }
  }

  // Drops every entry whose data lives in `slot` (the slot is being
  // recycled; its old contents are about to be overwritten).
  void InvalidateSlot(std::uint32_t slot) {
    if (!enabled()) return;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->phys.slot() == slot) {
        map_.erase(it->phys.encoded());
        it = lru_.erase(it);
        ++stats_.invalidated;
      } else {
        ++it;
      }
    }
  }

  std::size_t size() const { return lru_.size(); }
  const BlockCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    PhysAddr phys;
    Bytes data;
  };

  std::size_t capacity_;
  std::uint32_t block_size_;
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
  BlockCacheStats stats_;
};

}  // namespace aru::lld
