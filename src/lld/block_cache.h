// Read cache for disk blocks, keyed by *physical* address.
//
// The paper's LLD keeps a block cache (an implicit Flush happens "when
// the block cache is full"). In a log-structured disk a physical block
// address is written exactly once per segment lifetime, so a cache
// keyed by PhysAddr is coherent by construction: logical overwrites go
// to fresh addresses and simply strand the old entry (aged out by LRU).
// The only re-use of a physical address is a segment slot being
// recycled after cleaning, so the owner invalidates a slot's entries
// when the slot is released for reuse.
//
// Thread-safety: internally synchronized, and sharded so that it can
// absorb the full parallel read path without becoming the next global
// lock. Entries hash by PhysAddr onto N independent LRU shards, each
// with its own Mutex — a cache hit takes exactly one shard lock and
// never touches Lld::mu_. InvalidateSlot fans out across every shard
// (slot recycle is rare; hits are not). The shard mutex is a leaf in
// the lock order: no call made while holding it acquires another lock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "lld/types.h"
#include "util/bytes.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aru::lld {

struct BlockCacheShardStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t invalidated = 0;
  std::size_t entries = 0;
};

// Aggregate across shards, plus the per-shard breakdown (a skewed
// breakdown with a flat aggregate means the shard hash is unbalanced).
struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t invalidated = 0;
  std::size_t shard_count = 0;
  std::vector<BlockCacheShardStats> shards;
};

class BlockCache {
 public:
  // capacity = total number of cached blocks (0 disables the cache),
  // split evenly across shards (rounded up, so the effective total can
  // exceed `capacity` by up to shard_count-1 blocks). shard_count is
  // clamped to [1, capacity] so a tiny cache keeps exact LRU order.
  BlockCache(std::size_t capacity, std::uint32_t block_size,
             std::size_t shard_count = 1)
      : block_size_(block_size),
        shard_count_(capacity == 0
                         ? 1
                         : std::clamp<std::size_t>(shard_count, 1, capacity)),
        shard_capacity_((capacity + shard_count_ - 1) / shard_count_),
        shards_(shard_count_) {}

  bool enabled() const { return shard_capacity_ > 0; }
  std::size_t shard_count() const { return shard_count_; }

  // Contention attribution: hands every shard mutex to `bind` (e.g.
  // LldMetrics::BindLock). All shards share the "lld_cache_shard" site
  // name, so their waits aggregate into one metric pair — per-shard
  // skew shows up in stats(), not in the lock histograms.
  template <typename Binder>
  void BindLockSites(Binder&& bind) {
    for (Shard& shard : shards_) bind(shard.mu);
  }

  // Copies the cached block into `out` on a hit.
  bool Lookup(PhysAddr phys, MutableByteSpan out) {
    if (!enabled()) return false;
    Shard& shard = ShardFor(phys);
    MutexLock lock(shard.mu);
    const auto it = shard.map.find(phys.encoded());
    if (it == shard.map.end()) {
      ++shard.stats.misses;
      return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    std::copy(it->second->data.begin(), it->second->data.end(), out.begin());
    ++shard.stats.hits;
    return true;
  }

  void Insert(PhysAddr phys, ByteSpan data) {
    if (!enabled()) return;
    Shard& shard = ShardFor(phys);
    MutexLock lock(shard.mu);
    const auto it = shard.map.find(phys.encoded());
    if (it != shard.map.end()) {
      // Re-insertion of a present key is a hotness signal: promote the
      // entry to MRU (and refresh the bytes) instead of leaving it to
      // age out as cold.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      it->second->data.assign(data.begin(), data.end());
      return;
    }
    shard.lru.push_front(Entry{phys, Bytes(data.begin(), data.end())});
    shard.map[phys.encoded()] = shard.lru.begin();
    ++shard.stats.insertions;
    while (shard.lru.size() > shard_capacity_) {
      shard.map.erase(shard.lru.back().phys.encoded());
      shard.lru.pop_back();
    }
  }

  // Drops every entry whose data lives in `slot` (the slot is being
  // recycled; its old contents are about to be overwritten). Fans out
  // across all shards — any of them may hold blocks of this slot.
  void InvalidateSlot(std::uint32_t slot) {
    if (!enabled()) return;
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (it->phys.slot() == slot) {
          shard.map.erase(it->phys.encoded());
          it = shard.lru.erase(it);
          ++shard.stats.invalidated;
        } else {
          ++it;
        }
      }
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      n += shard.lru.size();
    }
    return n;
  }

  BlockCacheStats stats() const {
    BlockCacheStats out;
    out.shard_count = shard_count_;
    out.shards.reserve(shards_.size());
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      BlockCacheShardStats s = shard.stats;
      s.entries = shard.lru.size();
      out.hits += s.hits;
      out.misses += s.misses;
      out.insertions += s.insertions;
      out.invalidated += s.invalidated;
      out.shards.push_back(s);
    }
    return out;
  }

 private:
  struct Entry {
    PhysAddr phys;
    Bytes data;
  };

  struct Shard {
    mutable Mutex mu{"lld_cache_shard"};
    std::list<Entry> lru ARU_GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map
        ARU_GUARDED_BY(mu);
    BlockCacheShardStats stats ARU_GUARDED_BY(mu);  // `entries` unused here
  };

  Shard& ShardFor(PhysAddr phys) {
    // Fibonacci-multiplicative hash of the encoded address; the high
    // bits mix slot and index so consecutive blocks spread out.
    const std::uint64_t h = phys.encoded() * 0x9E3779B97F4A7C15ull;
    return shards_[(h >> 32) % shard_count_];
  }

  const std::uint32_t block_size_;
  const std::size_t shard_count_;
  const std::size_t shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace aru::lld
