// VersionIndex: the in-memory administration of the shadow and committed
// states (paper §4, Figure 4).
//
// The persistent tables (block-number-map / list-table) are augmented by
// singly-linked lists of *alternative records* describing blocks and
// lists in the committed and shadow states: one list of records per
// state (the committed state plus one per active ARU), and — to make
// per-identifier lookup efficient — a second, perpendicular chain
// linking all alternative records with the same logical identifier.
// A record is a member of such a list only if it differs from the
// record with the same identifier in the persistent state.
//
// Thread-compatibility: not internally synchronized. Both indexes are
// owned by an Lld and reached only under Lld::mu_ — the owning members
// carry ARU_GUARDED_BY(mu_), so clang's -Wthread-safety checks every
// access path (see util/thread_annotations.h). Since mu_ is a
// SharedMutex, the const lookups also run concurrently under shared
// mode; they touch no index state besides the chain-step statistic,
// which is atomic for exactly that reason.
//
// Faithful to the paper, each state keeps at most the *most recent*
// version of an identifier: writing twice in one ARU replaces the
// ARU's record in place, and merging on commit replaces the committed
// record in place ("during this transition the shadow version either
// replaces the current committed version … or it is discarded").
//
// `source_lsn` tracks the earliest on-disk summary record still needed
// to reconstruct this in-memory record during recovery. Checkpoints may
// only declare segments "covered" beyond the minimum source LSN of all
// live records; the value min-accumulates on replacement, which
// over-approximates (replays a little more than strictly needed) and is
// therefore always safe.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "lld/types.h"
#include "util/protocol_annotations.h"

namespace aru::lld {

inline constexpr Lsn kLsnMax = ~Lsn{0};

template <typename Id, typename Meta>
class VersionIndex {
 public:
  struct Node {
    Id id;
    AruId owner;      // kNoAru ⇒ committed state
    Meta meta;
    Lsn lsn = kNoLsn;         // effective (promotion-gating) LSN
    Lsn source_lsn = kLsnMax; // earliest on-disk record backing this node
    Node* next_same_id = nullptr;

   private:
    friend class VersionIndex;
    typename std::list<Node>::iterator self_;
  };

  // ------------------------------------------------------------------
  // Lookup.

  // The record of `id` owned by exactly the state `owner`, or nullptr.
  Node* FindExact(Id id, AruId owner) {
    auto it = same_id_head_.find(id);
    if (it == same_id_head_.end()) return nullptr;
    for (Node* n = it->second; n != nullptr; n = n->next_same_id) {
      chain_steps_.fetch_add(1, std::memory_order_relaxed);
      if (n->owner == owner) return n;
    }
    return nullptr;
  }
  const Node* FindExact(Id id, AruId owner) const {
    return const_cast<VersionIndex*>(this)->FindExact(id, owner);
  }

  // The newest version of `id` visible to `aru`: the ARU's shadow
  // record if any, else the committed record, else nullptr (meaning the
  // persistent version applies). Simple operations pass kNoAru and see
  // the committed record or fall through to persistent.
  const Node* LookupVisible(Id id, AruId aru) const {
    auto it = same_id_head_.find(id);
    if (it == same_id_head_.end()) return nullptr;
    const Node* committed = nullptr;
    for (const Node* n = it->second; n != nullptr; n = n->next_same_id) {
      chain_steps_.fetch_add(1, std::memory_order_relaxed);
      if (aru.valid() && n->owner == aru) return n;
      if (!n->owner.valid()) committed = n;
    }
    return committed;
  }

  // ------------------------------------------------------------------
  // Mutation.

  // Inserts or replaces the record of `id` in state `owner`.
  // On replacement, `source_lsn` min-accumulates and `on_replace` is
  // invoked with the old meta (for space accounting).
  template <typename OnReplace>
  Node& Put(Id id, AruId owner, const Meta& meta, Lsn lsn, Lsn source_lsn,
            OnReplace&& on_replace) {
    if (Node* existing = FindExact(id, owner)) {
      on_replace(existing->meta);
      existing->meta = meta;
      existing->lsn = lsn;
      existing->source_lsn = std::min(existing->source_lsn, source_lsn);
      return *existing;
    }
    std::list<Node>& state = StateList(owner);
    state.emplace_back();
    Node& node = state.back();
    node.id = id;
    node.owner = owner;
    node.meta = meta;
    node.lsn = lsn;
    node.source_lsn = source_lsn;
    node.self_ = std::prev(state.end());
    Node*& head = same_id_head_[id];
    node.next_same_id = head;
    head = &node;
    return node;
  }

  Node& Put(Id id, AruId owner, const Meta& meta, Lsn lsn, Lsn source_lsn) {
    return Put(id, owner, meta, lsn, source_lsn, [](const Meta&) {});
  }

  // Unlinks and destroys a record.
  void Remove(Node* node) {
    UnlinkFromChain(node);
    StateList(node->owner).erase(node->self_);
  }

  // Merges all records of `aru`'s shadow state into the committed state
  // (the EndARU transition). Every merged record gets `commit_lsn` as
  // its effective LSN — ARUs are serialized by the time of the EndARU
  // operation. `on_replace(old_meta)` fires when a committed record is
  // superseded; `touched` receives the id of every merged record.
  // `drop_if(id, meta)` vetoes a merge: a shadow version whose target no
  // longer exists in the committed state (a conflicting stream's
  // deletion committed first) is discarded, matching what recovery
  // replay would reconstruct from the log.
  template <typename OnReplace, typename DropIf>
  void MergeIntoCommitted(AruId aru, Lsn commit_lsn, OnReplace&& on_replace,
                          DropIf&& drop_if, std::vector<Id>& touched) {
    auto it = shadow_.find(aru);
    if (it == shadow_.end()) return;
    std::list<Node>& shadow = it->second;
    while (!shadow.empty()) {
      Node& node = shadow.front();
      if (drop_if(node.id, node.meta)) {
        UnlinkFromChain(&node);
        shadow.pop_front();
        continue;
      }
      touched.push_back(node.id);
      if (Node* committed = FindExactSkipping(node.id, ld::kNoAru, &node)) {
        on_replace(committed->meta);
        committed->meta = node.meta;
        committed->lsn = commit_lsn;
        committed->source_lsn =
            std::min(committed->source_lsn, node.source_lsn);
        UnlinkFromChain(&node);
        shadow.pop_front();
      } else {
        // Move the node itself into the committed state; its address is
        // stable, so the same-id chain stays valid.
        node.owner = ld::kNoAru;
        node.lsn = commit_lsn;
        committed_.splice(committed_.end(), shadow, node.self_);
        node.self_ = std::prev(committed_.end());
      }
    }
    shadow_.erase(it);
  }

  // Discards all records of a shadow state (AbortARU / crash).
  template <typename OnDrop>
  void DropState(AruId aru, OnDrop&& on_drop) {
    auto it = shadow_.find(aru);
    if (it == shadow_.end()) return;
    for (Node& node : it->second) {
      on_drop(node.meta);
      UnlinkFromChain(&node);
    }
    shadow_.erase(it);
  }

  // ------------------------------------------------------------------
  // Iteration / introspection.

  template <typename F>
  void ForEachCommitted(F&& f) const {
    for (const Node& n : committed_) f(n);
  }

  // Iterates every record in every state (committed and all shadows).
  template <typename F>
  void ForEachAll(F&& f) const {
    for (const Node& n : committed_) f(n);
    for (const auto& [aru, nodes] : shadow_) {
      for (const Node& n : nodes) f(n);
    }
  }

  // Unlinks and destroys all committed records (used by recovery after
  // force-promoting them into the persistent tables).
  void ClearCommitted() {
    for (Node& node : committed_) UnlinkFromChain(&node);
    committed_.clear();
  }

  template <typename F>
  void ForEachInState(AruId aru, F&& f) const {
    if (!aru.valid()) {
      ForEachCommitted(f);
      return;
    }
    auto it = shadow_.find(aru);
    if (it == shadow_.end()) return;
    for (const Node& n : it->second) f(n);
  }

  std::size_t committed_size() const { return committed_.size(); }
  std::size_t shadow_size(AruId aru) const {
    auto it = shadow_.find(aru);
    return it == shadow_.end() ? 0 : it->second.size();
  }
  bool empty() const { return committed_.empty() && shadow_.empty(); }

  // Earliest on-disk record any live in-memory record still depends on.
  Lsn MinSourceLsn() const {
    Lsn min = kLsnMax;
    for (const Node& n : committed_) min = std::min(min, n.source_lsn);
    for (const auto& [aru, nodes] : shadow_) {
      for (const Node& n : nodes) min = std::min(min, n.source_lsn);
    }
    return min;
  }

  // Cumulative same-id chain traversal steps (ablation instrumentation).
  std::uint64_t chain_steps() const {
    return chain_steps_.load(std::memory_order_relaxed);
  }

  // Internal structure validation, used by the consistency checker.
  bool Validate() const {
    std::size_t chained = 0;
    for (const auto& [id, head] : same_id_head_) {
      for (const Node* n = head; n != nullptr; n = n->next_same_id) {
        if (n->id != id) return false;
        ++chained;
      }
    }
    std::size_t total = committed_.size();
    for (const auto& [aru, nodes] : shadow_) total += nodes.size();
    return chained == total;
  }

 private:
  std::list<Node>& StateList(AruId owner) {
    return owner.valid() ? shadow_[owner] : committed_;
  }

  // FindExact that skips a specific node (used during merge, where the
  // shadow node being merged is still chained).
  Node* FindExactSkipping(Id id, AruId owner, const Node* skip) {
    auto it = same_id_head_.find(id);
    if (it == same_id_head_.end()) return nullptr;
    for (Node* n = it->second; n != nullptr; n = n->next_same_id) {
      chain_steps_.fetch_add(1, std::memory_order_relaxed);
      if (n != skip && n->owner == owner) return n;
    }
    return nullptr;
  }

  void UnlinkFromChain(Node* node) {
    auto it = same_id_head_.find(node->id);
    assert(it != same_id_head_.end());
    Node** link = &it->second;
    while (*link != node) {
      link = &(*link)->next_same_id;
      assert(*link != nullptr && "node missing from same-id chain");
    }
    *link = node->next_same_id;
    if (it->second == nullptr) same_id_head_.erase(it);
  }

  std::list<Node> committed_;
  std::unordered_map<AruId, std::list<Node>> shadow_;
  std::unordered_map<Id, Node*> same_id_head_;
  // Atomic (relaxed): const lookups run under Lld::mu_ held in *shared*
  // mode, so concurrent readers bump this counter in parallel. Relaxed
  // is enough — it is a statistic, ordered by nothing.
  mutable std::atomic<std::uint64_t> chain_steps_ ARU_ATOMIC_COUNTER{0};
};

using BlockVersions = VersionIndex<BlockId, BlockMeta>;
using ListVersions = VersionIndex<ListId, ListMeta>;

}  // namespace aru::lld
