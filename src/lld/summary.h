// Segment-summary records: LLD's on-disk operation log.
//
// The mapping between logical and physical block identifiers and all
// list information is contained in the segment summaries and can be
// reconstructed during crash recovery by replaying them (paper §2, §4).
//
// Records carry the ARU they belong to (kNoAru for simple operations).
// Recovery treats an ARU's records as effective only if the ARU's
// commit record made it to disk — that single rule is what makes the
// unit failure-atomic. Allocation records are the exception: block and
// list allocation is always committed immediately (paper §3.3), so
// kAllocBlock / kAllocList apply regardless of their ARU's fate.
//
// Note on link records: the paper emits two link records per insertion
// (predecessor–block and block–successor). We encode the same
// information as one kInsert record — a codec-level difference only;
// the semantics (generated at commit time, gated on the commit record)
// are the paper's.
#pragma once

#include <type_traits>
#include <variant>
#include <vector>

#include "lld/types.h"
#include "util/bytes.h"
#include "util/protocol_annotations.h"
#include "util/status.h"

namespace aru::lld {

enum class RecordType : std::uint8_t {
  kWrite = 1,        // block data written; data lives at `phys`
  kAllocBlock = 2,   // block id allocated (immediately committed)
  kAllocList = 3,    // list id allocated (immediately committed)
  kInsert = 4,       // block inserted into list after pred (commit-time)
  kDeleteBlock = 5,  // block removed from its list and freed
  kDeleteList = 6,   // list and all remaining member blocks freed
  kCommit = 7,       // ARU commit record: everything above is effective
  kAbort = 8,        // ARU abort record (extension; same as no commit)
  kRewrite = 9,      // cleaner moved a block's data (physical only)
  kMove = 10,        // block repositioned within/between lists
};

struct WriteRecord {
  BlockId block;
  AruId aru;
  Lsn lsn = kNoLsn;
  PhysAddr phys;
};

struct AllocBlockRecord {
  BlockId block;
  ListId list;  // list it will be inserted into (informational)
  AruId aru;
  Lsn lsn = kNoLsn;
};

struct AllocListRecord {
  ListId list;
  AruId aru;
  Lsn lsn = kNoLsn;
};

struct InsertRecord {
  ListId list;
  BlockId block;
  BlockId pred;  // kListHead ⇒ insert at the beginning
  AruId aru;
  Lsn lsn = kNoLsn;
};

struct DeleteBlockRecord {
  BlockId block;
  AruId aru;
  Lsn lsn = kNoLsn;
};

struct DeleteListRecord {
  ListId list;
  AruId aru;
  Lsn lsn = kNoLsn;
};

struct CommitRecord {
  AruId aru;
  Lsn lsn = kNoLsn;
};

struct AbortRecord {
  AruId aru;
  Lsn lsn = kNoLsn;
};

struct RewriteRecord {
  BlockId block;
  Lsn orig_ts = kNoLsn;  // ts of the version being moved
  Lsn lsn = kNoLsn;
  PhysAddr phys;
};

struct MoveRecord {
  ListId list;   // destination
  BlockId block;
  BlockId pred;  // kListHead ⇒ beginning of the destination list
  AruId aru;
  Lsn lsn = kNoLsn;
};

// Format pins: every record alternative is serialized field-by-field
// into segment summaries that crash recovery replays, so the in-memory
// structs must stay fixed-size PODs. A failing assert means the on-disk
// log format changed — that breaks replay of existing disks; extend the
// codec compatibly (new record type) instead of mutating these.
static_assert(std::is_trivially_copyable_v<WriteRecord>);
static_assert(sizeof(WriteRecord) == 32);
static_assert(std::is_trivially_copyable_v<AllocBlockRecord>);
static_assert(sizeof(AllocBlockRecord) == 32);
static_assert(std::is_trivially_copyable_v<AllocListRecord>);
static_assert(sizeof(AllocListRecord) == 24);
static_assert(std::is_trivially_copyable_v<InsertRecord>);
static_assert(sizeof(InsertRecord) == 40);
static_assert(std::is_trivially_copyable_v<DeleteBlockRecord>);
static_assert(sizeof(DeleteBlockRecord) == 24);
static_assert(std::is_trivially_copyable_v<DeleteListRecord>);
static_assert(sizeof(DeleteListRecord) == 24);
static_assert(std::is_trivially_copyable_v<CommitRecord>);
static_assert(sizeof(CommitRecord) == 16);
static_assert(std::is_trivially_copyable_v<AbortRecord>);
static_assert(sizeof(AbortRecord) == 16);
static_assert(std::is_trivially_copyable_v<RewriteRecord>);
static_assert(sizeof(RewriteRecord) == 32);
static_assert(std::is_trivially_copyable_v<MoveRecord>);
static_assert(sizeof(MoveRecord) == 40);

using Record =
    std::variant<WriteRecord, AllocBlockRecord, AllocListRecord, InsertRecord,
                 DeleteBlockRecord, DeleteListRecord, CommitRecord,
                 AbortRecord, RewriteRecord, MoveRecord>;

// LSN accessor common to all alternatives.
Lsn RecordLsn(const Record& record);
// ARU accessor; kRewrite records return kNoAru.
AruId RecordAru(const Record& record);

// Appends the encoded record to `out`. Returns encoded size.
std::size_t EncodeRecord(const Record& record, Bytes& out) ARU_ENCODES_RECORD;

// Upper bound on any record's encoded size (for segment space checks).
inline constexpr std::size_t kMaxRecordSize = 1 + 5 * 8;

// Decodes all records from a summary byte range.
Result<std::vector<Record>> DecodeSummary(ByteSpan summary)
    ARU_DECODES_RECORD;

}  // namespace aru::lld
