// On-disk layout of an LLD partition:
//
//   sector 0        superblock (geometry, checkpoint locations)
//   ckpt region A   double-buffered checkpoints of the persistent state
//   ckpt region B
//   slot 0..n-1     fixed-size segments (data blocks + summary + footer)
//
// Segments are filled in main memory and written to their slot in a
// single device write. Within a slot, data blocks grow from the front;
// the segment summary (the operation log) sits immediately before a
// fixed-size footer at the very end of the slot, where recovery can
// find and validate it.
#pragma once

#include <cstdint>
#include <type_traits>

#include "blockdev/block_device.h"
#include "lld/types.h"
#include "util/bytes.h"
#include "util/protocol_annotations.h"
#include "util/status.h"

namespace aru::lld {

inline constexpr std::uint32_t kSuperblockMagic = 0x41524c44;  // "ARLD"
inline constexpr std::uint32_t kFooterMagic = 0x4c445347;      // "LDSG"
inline constexpr std::uint16_t kFormatVersion = 1;

// Fixed geometry of a formatted partition, derived once and embedded in
// the superblock.
struct Geometry {
  std::uint32_t sector_size = 0;
  std::uint32_t block_size = 0;
  std::uint32_t segment_size = 0;
  std::uint32_t slot_count = 0;
  std::uint64_t checkpoint_a_sector = 0;
  std::uint64_t checkpoint_b_sector = 0;
  std::uint64_t checkpoint_capacity = 0;  // bytes per region
  std::uint64_t data_start_sector = 0;
  std::uint64_t capacity_blocks = 0;      // logical capacity
  std::uint64_t max_lists = 0;

  std::uint32_t sectors_per_segment() const {
    return segment_size / sector_size;
  }
  std::uint64_t slot_first_sector(std::uint32_t slot) const {
    return data_start_sector +
           static_cast<std::uint64_t>(slot) * sectors_per_segment();
  }
  std::uint32_t blocks_per_segment_max() const {
    return segment_size / block_size;
  }
};

// Format pins: the superblock codec reads/writes these fields at fixed
// offsets, so the in-memory struct must stay a fixed-size POD. A failing
// assert means the on-disk format changed — bump kFormatVersion and
// write a migration before re-pinning.
static_assert(std::is_trivially_copyable_v<Geometry>);
static_assert(sizeof(Geometry) == 64);

// Derives the geometry for a device under the given options. Fails if
// the device is too small to hold at least a handful of segments.
Result<Geometry> DeriveGeometry(const BlockDevice& device,
                                const Options& options);

// Superblock serialization (one sector, CRC-protected).
Bytes EncodeSuperblock(const Geometry& geometry);
Result<Geometry> DecodeSuperblock(ByteSpan sector);

Status WriteSuperblock(BlockDevice& device, const Geometry& geometry);
Result<Geometry> ReadSuperblock(BlockDevice& device);

// Segment footer: the fixed trailer at the end of every slot. `seq` is
// the global, monotone segment sequence number; recovery orders valid
// segments by it. `summary_len` bytes of summary records sit directly
// before the footer. `last_lsn` is the LSN of the last record in the
// summary (the persistence horizon advanced by writing this segment).
struct SegmentFooter {
  std::uint64_t seq = 0;
  std::uint64_t last_lsn = 0;
  std::uint32_t summary_len = 0;
  std::uint32_t record_count = 0;
  std::uint32_t summary_crc = 0;
  std::uint32_t reserved = 0;  // explicit tail padding (codec writes it)
};

// Format pin (recovery decodes footers from raw slot trailers).
static_assert(std::is_trivially_copyable_v<SegmentFooter>);
static_assert(sizeof(SegmentFooter) == 32);

// Encoded trailer size: the five footer fields plus magic and self-CRC
// (field-by-field codec; distinct from sizeof(SegmentFooter)).
inline constexpr std::size_t kFooterSize = 40;

void EncodeFooter(const SegmentFooter& footer, MutableByteSpan out)
    ARU_ENCODES_RECORD;
// Returns the footer if the trailer bytes look like a valid footer
// (magic + self-CRC); corruption status otherwise.
Result<SegmentFooter> DecodeFooter(ByteSpan trailer) ARU_DECODES_RECORD;

}  // namespace aru::lld
