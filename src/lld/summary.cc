#include "lld/summary.h"

#include <string>

namespace aru::lld {
namespace {

void PutId(Bytes& out, BlockId id) { PutU64(out, id.value()); }
void PutId(Bytes& out, ListId id) { PutU64(out, id.value()); }
void PutId(Bytes& out, AruId id) { PutU64(out, id.value()); }

Result<BlockId> ReadBlockId(Decoder& dec) {
  ARU_ASSIGN_OR_RETURN(const std::uint64_t v, dec.ReadU64());
  return BlockId{v};
}
Result<ListId> ReadListId(Decoder& dec) {
  ARU_ASSIGN_OR_RETURN(const std::uint64_t v, dec.ReadU64());
  return ListId{v};
}
Result<AruId> ReadAruId(Decoder& dec) {
  ARU_ASSIGN_OR_RETURN(const std::uint64_t v, dec.ReadU64());
  return AruId{v};
}
Result<PhysAddr> ReadPhys(Decoder& dec) {
  ARU_ASSIGN_OR_RETURN(const std::uint64_t v, dec.ReadU64());
  return PhysAddr::FromEncoded(v);
}

}  // namespace

Lsn RecordLsn(const Record& record) {
  return std::visit([](const auto& r) { return r.lsn; }, record);
}

AruId RecordAru(const Record& record) {
  return std::visit(
      [](const auto& r) -> AruId {
        if constexpr (requires { r.aru; }) {
          return r.aru;
        } else {
          return ld::kNoAru;
        }
      },
      record);
}

std::size_t EncodeRecord(const Record& record, Bytes& out) {
  const std::size_t start = out.size();
  std::visit(
      [&out](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, WriteRecord>) {
          out.push_back(static_cast<std::byte>(RecordType::kWrite));
          PutId(out, r.block);
          PutId(out, r.aru);
          PutU64(out, r.lsn);
          PutU64(out, r.phys.encoded());
        } else if constexpr (std::is_same_v<T, AllocBlockRecord>) {
          out.push_back(static_cast<std::byte>(RecordType::kAllocBlock));
          PutId(out, r.block);
          PutId(out, r.list);
          PutId(out, r.aru);
          PutU64(out, r.lsn);
        } else if constexpr (std::is_same_v<T, AllocListRecord>) {
          out.push_back(static_cast<std::byte>(RecordType::kAllocList));
          PutId(out, r.list);
          PutId(out, r.aru);
          PutU64(out, r.lsn);
        } else if constexpr (std::is_same_v<T, InsertRecord>) {
          out.push_back(static_cast<std::byte>(RecordType::kInsert));
          PutId(out, r.list);
          PutId(out, r.block);
          PutId(out, r.pred);
          PutId(out, r.aru);
          PutU64(out, r.lsn);
        } else if constexpr (std::is_same_v<T, DeleteBlockRecord>) {
          out.push_back(static_cast<std::byte>(RecordType::kDeleteBlock));
          PutId(out, r.block);
          PutId(out, r.aru);
          PutU64(out, r.lsn);
        } else if constexpr (std::is_same_v<T, DeleteListRecord>) {
          out.push_back(static_cast<std::byte>(RecordType::kDeleteList));
          PutId(out, r.list);
          PutId(out, r.aru);
          PutU64(out, r.lsn);
        } else if constexpr (std::is_same_v<T, CommitRecord>) {
          out.push_back(static_cast<std::byte>(RecordType::kCommit));
          PutId(out, r.aru);
          PutU64(out, r.lsn);
        } else if constexpr (std::is_same_v<T, AbortRecord>) {
          out.push_back(static_cast<std::byte>(RecordType::kAbort));
          PutId(out, r.aru);
          PutU64(out, r.lsn);
        } else if constexpr (std::is_same_v<T, RewriteRecord>) {
          out.push_back(static_cast<std::byte>(RecordType::kRewrite));
          PutId(out, r.block);
          PutU64(out, r.orig_ts);
          PutU64(out, r.lsn);
          PutU64(out, r.phys.encoded());
        } else if constexpr (std::is_same_v<T, MoveRecord>) {
          out.push_back(static_cast<std::byte>(RecordType::kMove));
          PutId(out, r.list);
          PutId(out, r.block);
          PutId(out, r.pred);
          PutId(out, r.aru);
          PutU64(out, r.lsn);
        }
      },
      record);
  return out.size() - start;
}

Result<std::vector<Record>> DecodeSummary(ByteSpan summary) {
  std::vector<Record> records;
  Decoder dec(summary);
  while (!dec.done()) {
    ARU_ASSIGN_OR_RETURN(const std::uint8_t type_byte, dec.ReadU8());
    switch (static_cast<RecordType>(type_byte)) {
      case RecordType::kWrite: {
        WriteRecord r;
        ARU_ASSIGN_OR_RETURN(r.block, ReadBlockId(dec));
        ARU_ASSIGN_OR_RETURN(r.aru, ReadAruId(dec));
        ARU_ASSIGN_OR_RETURN(r.lsn, dec.ReadU64());
        ARU_ASSIGN_OR_RETURN(r.phys, ReadPhys(dec));
        records.emplace_back(r);
        break;
      }
      case RecordType::kAllocBlock: {
        AllocBlockRecord r;
        ARU_ASSIGN_OR_RETURN(r.block, ReadBlockId(dec));
        ARU_ASSIGN_OR_RETURN(r.list, ReadListId(dec));
        ARU_ASSIGN_OR_RETURN(r.aru, ReadAruId(dec));
        ARU_ASSIGN_OR_RETURN(r.lsn, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      case RecordType::kAllocList: {
        AllocListRecord r;
        ARU_ASSIGN_OR_RETURN(r.list, ReadListId(dec));
        ARU_ASSIGN_OR_RETURN(r.aru, ReadAruId(dec));
        ARU_ASSIGN_OR_RETURN(r.lsn, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      case RecordType::kInsert: {
        InsertRecord r;
        ARU_ASSIGN_OR_RETURN(r.list, ReadListId(dec));
        ARU_ASSIGN_OR_RETURN(r.block, ReadBlockId(dec));
        ARU_ASSIGN_OR_RETURN(r.pred, ReadBlockId(dec));
        ARU_ASSIGN_OR_RETURN(r.aru, ReadAruId(dec));
        ARU_ASSIGN_OR_RETURN(r.lsn, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      case RecordType::kDeleteBlock: {
        DeleteBlockRecord r;
        ARU_ASSIGN_OR_RETURN(r.block, ReadBlockId(dec));
        ARU_ASSIGN_OR_RETURN(r.aru, ReadAruId(dec));
        ARU_ASSIGN_OR_RETURN(r.lsn, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      case RecordType::kDeleteList: {
        DeleteListRecord r;
        ARU_ASSIGN_OR_RETURN(r.list, ReadListId(dec));
        ARU_ASSIGN_OR_RETURN(r.aru, ReadAruId(dec));
        ARU_ASSIGN_OR_RETURN(r.lsn, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      case RecordType::kCommit: {
        CommitRecord r;
        ARU_ASSIGN_OR_RETURN(r.aru, ReadAruId(dec));
        ARU_ASSIGN_OR_RETURN(r.lsn, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      case RecordType::kAbort: {
        AbortRecord r;
        ARU_ASSIGN_OR_RETURN(r.aru, ReadAruId(dec));
        ARU_ASSIGN_OR_RETURN(r.lsn, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      case RecordType::kRewrite: {
        RewriteRecord r;
        ARU_ASSIGN_OR_RETURN(r.block, ReadBlockId(dec));
        ARU_ASSIGN_OR_RETURN(r.orig_ts, dec.ReadU64());
        ARU_ASSIGN_OR_RETURN(r.lsn, dec.ReadU64());
        ARU_ASSIGN_OR_RETURN(r.phys, ReadPhys(dec));
        records.emplace_back(r);
        break;
      }
      case RecordType::kMove: {
        MoveRecord r;
        ARU_ASSIGN_OR_RETURN(r.list, ReadListId(dec));
        ARU_ASSIGN_OR_RETURN(r.block, ReadBlockId(dec));
        ARU_ASSIGN_OR_RETURN(r.pred, ReadBlockId(dec));
        ARU_ASSIGN_OR_RETURN(r.aru, ReadAruId(dec));
        ARU_ASSIGN_OR_RETURN(r.lsn, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      default:
        return CorruptionError("unknown summary record type " +
                               std::to_string(type_byte));
    }
  }
  return records;
}

}  // namespace aru::lld
