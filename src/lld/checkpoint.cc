#include "lld/checkpoint.h"

#include <string>

#include "util/crc32.h"
#include "util/log.h"

namespace aru::lld {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4c444350;  // "LDCP"

// The shared 8-counter header tail both image kinds carry after the
// magic + format word. Annotated as codec halves so the symmetry rule
// sees the counter fields on both sides of the wire.
void PutCounters(Bytes& out, const CheckpointData& data) ARU_ENCODES_RECORD {
  PutU64(out, data.stamp);
  PutU64(out, data.covered_seq);
  PutU64(out, data.next_lsn);
  PutU64(out, data.next_seq);
  PutU64(out, data.next_block_id);
  PutU64(out, data.next_list_id);
  PutU64(out, data.next_aru_id);
  PutU64(out, data.allocated_blocks);
}

Status ReadCounters(Decoder& dec, CheckpointData& data) ARU_DECODES_RECORD {
  ARU_ASSIGN_OR_RETURN(data.stamp, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.covered_seq, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.next_lsn, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.next_seq, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.next_block_id, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.next_list_id, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.next_aru_id, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.allocated_blocks, dec.ReadU64());
  return Status::Ok();
}

std::uint64_t RoundUpToSectors(std::uint64_t bytes, std::uint32_t sector) {
  return (bytes + sector - 1) / sector * sector;
}

}  // namespace

Bytes EncodeCheckpoint(const CheckpointData& data, const BlockMap& blocks,
                       const ListTable& lists) {
  Bytes out;
  PutU32(out, kCheckpointMagic);
  // v1 wrote a zero pad word here; v2 packs version + kind, so a zero
  // word is the v1 discriminator on decode.
  PutU32(out, (data.format_version << 8) | data.kind);
  PutCounters(out, data);
  PutU64(out, data.parent_stamp);
  PutU64(out, blocks.size());
  PutU64(out, lists.size());
  blocks.ForEach([&out](BlockId id, const BlockMeta& meta) {
    PutU64(out, id.value());
    PutU64(out, meta.phys.encoded());
    PutU64(out, meta.successor.value());
    PutU64(out, meta.list.value());
    PutU64(out, meta.ts);
  });
  lists.ForEach([&out](ListId id, const ListMeta& meta) {
    PutU64(out, id.value());
    PutU64(out, meta.first.value());
    PutU64(out, meta.last.value());
  });
  PutU32(out, Crc32c(out));
  return out;
}

Status DecodeCheckpoint(ByteSpan encoded, CheckpointData& data,
                        BlockMap& blocks, ListTable& lists,
                        std::size_t* consumed) {
  Decoder dec(encoded);
  ARU_ASSIGN_OR_RETURN(const std::uint32_t magic, dec.ReadU32());
  if (magic != kCheckpointMagic) return CorruptionError("bad checkpoint magic");
  ARU_ASSIGN_OR_RETURN(const std::uint32_t word, dec.ReadU32());
  if (word == 0) {
    // Pre-delta image: fixed full layout, no parent_stamp field.
    data.format_version = kCheckpointFormatV1;
    data.kind = kCheckpointKindFull;
  } else {
    data.format_version = word >> 8;
    data.kind = word & 0xffu;
    if (data.format_version != kCheckpointFormatV2) {
      return CorruptionError("unknown checkpoint format version " +
                             std::to_string(data.format_version));
    }
    if (data.kind != kCheckpointKindFull) {
      return CorruptionError("expected a full checkpoint image, found kind " +
                             std::to_string(data.kind));
    }
  }
  ARU_RETURN_IF_ERROR(ReadCounters(dec, data));
  if (data.format_version == kCheckpointFormatV2) {
    ARU_ASSIGN_OR_RETURN(data.parent_stamp, dec.ReadU64());
  } else {
    data.parent_stamp = 0;
  }
  ARU_ASSIGN_OR_RETURN(const std::uint64_t n_blocks, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(const std::uint64_t n_lists, dec.ReadU64());
  // Bound the counts by the bytes actually present before reserving:
  // a corrupt header must not drive a giant allocation.
  if (n_blocks > dec.remaining() / (5 * 8) ||
      n_lists > dec.remaining() / (3 * 8)) {
    return CorruptionError("checkpoint entry counts exceed image size");
  }

  blocks.Clear();
  lists.Clear();
  blocks.Reserve(n_blocks);
  lists.Reserve(n_lists);
  for (std::uint64_t i = 0; i < n_blocks; ++i) {
    ARU_ASSIGN_OR_RETURN(const std::uint64_t id, dec.ReadU64());
    BlockMeta meta;
    meta.allocated = true;
    ARU_ASSIGN_OR_RETURN(const std::uint64_t phys, dec.ReadU64());
    meta.phys = PhysAddr::FromEncoded(phys);
    ARU_ASSIGN_OR_RETURN(const std::uint64_t succ, dec.ReadU64());
    meta.successor = BlockId{succ};
    ARU_ASSIGN_OR_RETURN(const std::uint64_t list, dec.ReadU64());
    meta.list = ListId{list};
    ARU_ASSIGN_OR_RETURN(meta.ts, dec.ReadU64());
    blocks.Set(BlockId{id}, meta);
  }
  for (std::uint64_t i = 0; i < n_lists; ++i) {
    ARU_ASSIGN_OR_RETURN(const std::uint64_t id, dec.ReadU64());
    ListMeta meta;
    meta.exists = true;
    ARU_ASSIGN_OR_RETURN(const std::uint64_t first, dec.ReadU64());
    meta.first = BlockId{first};
    ARU_ASSIGN_OR_RETURN(const std::uint64_t last, dec.ReadU64());
    meta.last = BlockId{last};
    lists.Set(ListId{id}, meta);
  }
  ARU_ASSIGN_OR_RETURN(const std::uint32_t crc, dec.ReadU32());
  if (crc != Crc32c(encoded.first(dec.position() - 4))) {
    return CorruptionError("checkpoint CRC mismatch");
  }
  if (consumed != nullptr) *consumed = dec.position();
  return Status::Ok();
}

Bytes EncodeCheckpointDelta(const CheckpointData& data,
                            std::span<const ckptfmt::DeltaRecord> records) {
  Bytes out;
  PutU32(out, kCheckpointMagic);
  PutU32(out, (data.format_version << 8) | data.kind);
  PutCounters(out, data);
  PutU64(out, data.parent_stamp);
  PutU64(out, records.size());
  for (const ckptfmt::DeltaRecord& record : records) {
    if (const auto* bs = std::get_if<ckptfmt::DeltaBlockSetRecord>(&record)) {
      out.push_back(
          static_cast<std::byte>(ckptfmt::RecordType::kDeltaBlockSet));
      const ckptfmt::DeltaBlockSetRecord r = *bs;
      PutU64(out, r.block);
      PutU64(out, r.phys);
      PutU64(out, r.successor);
      PutU64(out, r.list);
      PutU64(out, r.ts);
    } else if (const auto* be =
                   std::get_if<ckptfmt::DeltaBlockEraseRecord>(&record)) {
      out.push_back(
          static_cast<std::byte>(ckptfmt::RecordType::kDeltaBlockErase));
      const ckptfmt::DeltaBlockEraseRecord r = *be;
      PutU64(out, r.block);
    } else if (const auto* ls =
                   std::get_if<ckptfmt::DeltaListSetRecord>(&record)) {
      out.push_back(
          static_cast<std::byte>(ckptfmt::RecordType::kDeltaListSet));
      const ckptfmt::DeltaListSetRecord r = *ls;
      PutU64(out, r.list);
      PutU64(out, r.first);
      PutU64(out, r.last);
    } else if (const auto* le =
                   std::get_if<ckptfmt::DeltaListEraseRecord>(&record)) {
      out.push_back(
          static_cast<std::byte>(ckptfmt::RecordType::kDeltaListErase));
      const ckptfmt::DeltaListEraseRecord r = *le;
      PutU64(out, r.list);
    }
  }
  PutU32(out, Crc32c(out));
  return out;
}

Status DecodeCheckpointDelta(ByteSpan encoded, CheckpointData& data,
                             std::vector<ckptfmt::DeltaRecord>& records,
                             std::size_t* consumed) {
  records.clear();
  Decoder dec(encoded);
  ARU_ASSIGN_OR_RETURN(const std::uint32_t magic, dec.ReadU32());
  if (magic != kCheckpointMagic) return CorruptionError("bad checkpoint magic");
  ARU_ASSIGN_OR_RETURN(const std::uint32_t word, dec.ReadU32());
  data.format_version = word >> 8;
  data.kind = word & 0xffu;
  if (data.format_version != kCheckpointFormatV2 ||
      data.kind != kCheckpointKindDelta) {
    return CorruptionError("not a checkpoint delta image");
  }
  ARU_RETURN_IF_ERROR(ReadCounters(dec, data));
  ARU_ASSIGN_OR_RETURN(data.parent_stamp, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(const std::uint64_t n_records, dec.ReadU64());
  // Smallest record is a 1-byte tag + one u64; bound before reserving.
  if (n_records > dec.remaining() / 9) {
    return CorruptionError("checkpoint delta record count exceeds image size");
  }
  records.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    ARU_ASSIGN_OR_RETURN(const std::uint8_t tag, dec.ReadU8());
    switch (static_cast<ckptfmt::RecordType>(tag)) {
      case ckptfmt::RecordType::kDeltaBlockSet: {
        ckptfmt::DeltaBlockSetRecord r;
        ARU_ASSIGN_OR_RETURN(r.block, dec.ReadU64());
        ARU_ASSIGN_OR_RETURN(r.phys, dec.ReadU64());
        ARU_ASSIGN_OR_RETURN(r.successor, dec.ReadU64());
        ARU_ASSIGN_OR_RETURN(r.list, dec.ReadU64());
        ARU_ASSIGN_OR_RETURN(r.ts, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      case ckptfmt::RecordType::kDeltaBlockErase: {
        ckptfmt::DeltaBlockEraseRecord r;
        ARU_ASSIGN_OR_RETURN(r.block, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      case ckptfmt::RecordType::kDeltaListSet: {
        ckptfmt::DeltaListSetRecord r;
        ARU_ASSIGN_OR_RETURN(r.list, dec.ReadU64());
        ARU_ASSIGN_OR_RETURN(r.first, dec.ReadU64());
        ARU_ASSIGN_OR_RETURN(r.last, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      case ckptfmt::RecordType::kDeltaListErase: {
        ckptfmt::DeltaListEraseRecord r;
        ARU_ASSIGN_OR_RETURN(r.list, dec.ReadU64());
        records.emplace_back(r);
        break;
      }
      default:
        return CorruptionError("unknown checkpoint delta record type " +
                               std::to_string(tag));
    }
  }
  ARU_ASSIGN_OR_RETURN(const std::uint32_t crc, dec.ReadU32());
  if (crc != Crc32c(encoded.first(dec.position() - 4))) {
    return CorruptionError("checkpoint delta CRC mismatch");
  }
  if (consumed != nullptr) *consumed = dec.position();
  return Status::Ok();
}

void ApplyCheckpointDeltas(std::span<const ckptfmt::DeltaRecord> records,
                           BlockMap& blocks, ListTable& lists) {
  for (const ckptfmt::DeltaRecord& record : records) {
    if (const auto* bs = std::get_if<ckptfmt::DeltaBlockSetRecord>(&record)) {
      BlockMeta meta;
      meta.allocated = true;
      meta.phys = PhysAddr::FromEncoded(bs->phys);
      meta.successor = BlockId{bs->successor};
      meta.list = ListId{bs->list};
      meta.ts = bs->ts;
      blocks.Set(BlockId{bs->block}, meta);
    } else if (const auto* be =
                   std::get_if<ckptfmt::DeltaBlockEraseRecord>(&record)) {
      blocks.Erase(BlockId{be->block});
    } else if (const auto* ls =
                   std::get_if<ckptfmt::DeltaListSetRecord>(&record)) {
      ListMeta meta;
      meta.exists = true;
      meta.first = BlockId{ls->first};
      meta.last = BlockId{ls->last};
      lists.Set(ListId{ls->list}, meta);
    } else if (const auto* le =
                   std::get_if<ckptfmt::DeltaListEraseRecord>(&record)) {
      lists.Erase(ListId{le->list});
    }
  }
}

Result<std::uint64_t> WriteCheckpointImage(BlockDevice& device,
                                           const Geometry& geometry,
                                           std::uint64_t region,
                                           std::uint64_t offset,
                                           const Bytes& encoded) {
  const std::uint32_t ssz = geometry.sector_size;
  if (offset % ssz != 0) {
    return InvalidArgumentError("checkpoint image offset " +
                                std::to_string(offset) +
                                " is not sector-aligned");
  }
  const std::uint64_t padded = RoundUpToSectors(encoded.size(), ssz);
  if (offset + padded > geometry.checkpoint_capacity) {
    return OutOfSpaceError("checkpoint larger than its region (" +
                           std::to_string(offset + padded) + " > " +
                           std::to_string(geometry.checkpoint_capacity) + ")");
  }
  Bytes image = encoded;
  image.resize(padded);
  const std::uint64_t base = region == 0 ? geometry.checkpoint_a_sector
                                         : geometry.checkpoint_b_sector;
  ARU_RETURN_IF_ERROR(device.Write(base + offset / ssz, image));
  return padded;
}

Status WriteCheckpointRegion(BlockDevice& device, const Geometry& geometry,
                             const CheckpointData& data,
                             const BlockMap& blocks, const ListTable& lists) {
  const Bytes encoded = EncodeCheckpoint(data, blocks, lists);
  // Stamp parity alternates the two regions, so the previous full
  // image always survives a torn write.
  const std::uint64_t region = (data.stamp % 2 == 0) ? 0 : 1;
  return WriteCheckpointImage(device, geometry, region, 0, encoded).status();
}

Result<std::uint64_t> AppendCheckpointDelta(
    BlockDevice& device, const Geometry& geometry,
    const CheckpointChainInfo& chain, const CheckpointData& data,
    std::span<const ckptfmt::DeltaRecord> records) {
  const Bytes encoded = EncodeCheckpointDelta(data, records);
  return WriteCheckpointImage(device, geometry, chain.region,
                              chain.used_bytes, encoded);
}

namespace {

// Everything ParseChain learns about one region's image chain, minus
// the tables (which the caller owns as scratch locals).
struct ParsedChain {
  bool valid = false;
  CheckpointData tip;
  std::vector<ckptfmt::DeltaRecord> deltas;
  std::uint64_t used_bytes = 0;
  std::uint64_t delta_images = 0;
};

// Parses one region as a chain: a full base at byte 0, then zero or
// more sector-aligned deltas, each admitted only if its parent_stamp
// names the stamp of the image physically preceding it and its own
// stamp moves forward. The chain ends at the first image that fails
// CRC, linkage, or monotonicity — stale bytes from a recycled region
// may be a CRC-valid delta of some *older* chain, and exact-stamp
// parent linkage is what keeps them out (stamps are globally unique).
ParsedChain ParseChain(ByteSpan region, const Geometry& geometry,
                       BlockMap& blocks, ListTable& lists)
    ARU_MUTATES_TABLES {
  ParsedChain chain;
  std::size_t consumed = 0;
  if (!DecodeCheckpoint(region, chain.tip, blocks, lists, &consumed).ok()) {
    return chain;
  }
  chain.valid = true;
  const std::uint32_t ssz = geometry.sector_size;
  std::uint64_t offset = RoundUpToSectors(consumed, ssz);
  while (offset < region.size()) {
    CheckpointData delta;
    std::vector<ckptfmt::DeltaRecord> records;
    std::size_t delta_consumed = 0;
    if (!DecodeCheckpointDelta(region.subspan(offset), delta, records,
                               &delta_consumed)
             .ok()) {
      break;
    }
    if (delta.parent_stamp != chain.tip.stamp ||
        delta.stamp <= chain.tip.stamp) {
      break;
    }
    chain.tip = delta;
    chain.deltas.reserve(chain.deltas.size() + records.size());
    for (ckptfmt::DeltaRecord& r : records) {
      chain.deltas.push_back(std::move(r));
    }
    ++chain.delta_images;
    offset += RoundUpToSectors(delta_consumed, ssz);
  }
  chain.used_bytes = offset;
  return chain;
}

}  // namespace

Status ReadNewestCheckpointChain(BlockDevice& device, const Geometry& geometry,
                                 CheckpointData& data, BlockMap& blocks,
                                 ListTable& lists,
                                 std::vector<ckptfmt::DeltaRecord>& deltas,
                                 CheckpointChainInfo& chain) {
  Bytes region_bytes(geometry.checkpoint_capacity);
  bool found = false;
  ParsedChain best;
  std::uint64_t best_region = 0;
  BlockMap best_blocks;
  ListTable best_lists;

  for (const std::uint64_t region : {std::uint64_t{0}, std::uint64_t{1}}) {
    const std::uint64_t sector = region == 0 ? geometry.checkpoint_a_sector
                                             : geometry.checkpoint_b_sector;
    const Status read = device.Read(sector, region_bytes);
    if (!read.ok()) {
      ARU_LOG(kWarning) << "checkpoint region unreadable: " << read;
      continue;
    }
    BlockMap candidate_blocks;
    ListTable candidate_lists;
    ParsedChain candidate =
        ParseChain(region_bytes, geometry, candidate_blocks, candidate_lists);
    if (!candidate.valid) continue;  // torn or never written
    if (!found || candidate.tip.stamp > best.tip.stamp) {
      found = true;
      best = std::move(candidate);
      best_region = region;
      best_blocks = std::move(candidate_blocks);
      best_lists = std::move(candidate_lists);
    }
  }
  if (!found) {
    return CorruptionError("no valid checkpoint found in either region");
  }
  data = best.tip;
  blocks = std::move(best_blocks);
  lists = std::move(best_lists);
  deltas = std::move(best.deltas);
  chain.region = best_region;
  chain.tip_stamp = best.tip.stamp;
  chain.used_bytes = best.used_bytes;
  chain.delta_images = best.delta_images;
  return Status::Ok();
}

Status ReadNewestCheckpoint(BlockDevice& device, const Geometry& geometry,
                            CheckpointData& data, BlockMap& blocks,
                            ListTable& lists) {
  std::vector<ckptfmt::DeltaRecord> deltas;
  CheckpointChainInfo chain;
  ARU_RETURN_IF_ERROR(ReadNewestCheckpointChain(device, geometry, data, blocks,
                                                lists, deltas, chain));
  ApplyCheckpointDeltas(deltas, blocks, lists);
  return Status::Ok();
}

}  // namespace aru::lld
