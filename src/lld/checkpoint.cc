#include "lld/checkpoint.h"

#include <string>

#include "util/crc32.h"
#include "util/log.h"

namespace aru::lld {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4c444350;  // "LDCP"

}  // namespace

Bytes EncodeCheckpoint(const CheckpointData& data, const BlockMap& blocks,
                       const ListTable& lists) {
  Bytes out;
  PutU32(out, kCheckpointMagic);
  PutU32(out, 0);  // pad
  PutU64(out, data.stamp);
  PutU64(out, data.covered_seq);
  PutU64(out, data.next_lsn);
  PutU64(out, data.next_seq);
  PutU64(out, data.next_block_id);
  PutU64(out, data.next_list_id);
  PutU64(out, data.next_aru_id);
  PutU64(out, data.allocated_blocks);
  PutU64(out, blocks.size());
  PutU64(out, lists.size());
  blocks.ForEach([&out](BlockId id, const BlockMeta& meta) {
    PutU64(out, id.value());
    PutU64(out, meta.phys.encoded());
    PutU64(out, meta.successor.value());
    PutU64(out, meta.list.value());
    PutU64(out, meta.ts);
  });
  lists.ForEach([&out](ListId id, const ListMeta& meta) {
    PutU64(out, id.value());
    PutU64(out, meta.first.value());
    PutU64(out, meta.last.value());
  });
  PutU32(out, Crc32c(out));
  return out;
}

Status DecodeCheckpoint(ByteSpan encoded, CheckpointData& data,
                        BlockMap& blocks, ListTable& lists) {
  Decoder dec(encoded);
  ARU_ASSIGN_OR_RETURN(const std::uint32_t magic, dec.ReadU32());
  if (magic != kCheckpointMagic) return CorruptionError("bad checkpoint magic");
  ARU_ASSIGN_OR_RETURN(std::uint32_t pad, dec.ReadU32());
  (void)pad;
  ARU_ASSIGN_OR_RETURN(data.stamp, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.covered_seq, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.next_lsn, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.next_seq, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.next_block_id, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.next_list_id, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.next_aru_id, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(data.allocated_blocks, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(const std::uint64_t n_blocks, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(const std::uint64_t n_lists, dec.ReadU64());

  blocks.Clear();
  lists.Clear();
  for (std::uint64_t i = 0; i < n_blocks; ++i) {
    ARU_ASSIGN_OR_RETURN(const std::uint64_t id, dec.ReadU64());
    BlockMeta meta;
    meta.allocated = true;
    ARU_ASSIGN_OR_RETURN(const std::uint64_t phys, dec.ReadU64());
    meta.phys = PhysAddr::FromEncoded(phys);
    ARU_ASSIGN_OR_RETURN(const std::uint64_t succ, dec.ReadU64());
    meta.successor = BlockId{succ};
    ARU_ASSIGN_OR_RETURN(const std::uint64_t list, dec.ReadU64());
    meta.list = ListId{list};
    ARU_ASSIGN_OR_RETURN(meta.ts, dec.ReadU64());
    blocks.Set(BlockId{id}, meta);
  }
  for (std::uint64_t i = 0; i < n_lists; ++i) {
    ARU_ASSIGN_OR_RETURN(const std::uint64_t id, dec.ReadU64());
    ListMeta meta;
    meta.exists = true;
    ARU_ASSIGN_OR_RETURN(const std::uint64_t first, dec.ReadU64());
    meta.first = BlockId{first};
    ARU_ASSIGN_OR_RETURN(const std::uint64_t last, dec.ReadU64());
    meta.last = BlockId{last};
    lists.Set(ListId{id}, meta);
  }
  ARU_ASSIGN_OR_RETURN(const std::uint32_t crc, dec.ReadU32());
  if (crc != Crc32c(encoded.first(dec.position() - 4))) {
    return CorruptionError("checkpoint CRC mismatch");
  }
  return Status::Ok();
}

Status WriteCheckpointRegion(BlockDevice& device, const Geometry& geometry,
                             const CheckpointData& data,
                             const BlockMap& blocks, const ListTable& lists) {
  Bytes encoded = EncodeCheckpoint(data, blocks, lists);
  if (encoded.size() > geometry.checkpoint_capacity) {
    return OutOfSpaceError("checkpoint larger than its region (" +
                           std::to_string(encoded.size()) + " > " +
                           std::to_string(geometry.checkpoint_capacity) + ")");
  }
  // Pad to whole sectors.
  const std::uint32_t ssz = geometry.sector_size;
  encoded.resize((encoded.size() + ssz - 1) / ssz * ssz);
  const std::uint64_t sector = (data.stamp % 2 == 0)
                                   ? geometry.checkpoint_a_sector
                                   : geometry.checkpoint_b_sector;
  return device.Write(sector, encoded);
}

Status ReadNewestCheckpoint(BlockDevice& device, const Geometry& geometry,
                            CheckpointData& data, BlockMap& blocks,
                            ListTable& lists) {
  Bytes region(geometry.checkpoint_capacity);
  bool found = false;
  CheckpointData best;
  BlockMap best_blocks;
  ListTable best_lists;

  for (const std::uint64_t sector :
       {geometry.checkpoint_a_sector, geometry.checkpoint_b_sector}) {
    const Status read = device.Read(sector, region);
    if (!read.ok()) {
      ARU_LOG(kWarning) << "checkpoint region unreadable: " << read;
      continue;
    }
    CheckpointData candidate;
    BlockMap candidate_blocks;
    ListTable candidate_lists;
    const Status decoded =
        DecodeCheckpoint(region, candidate, candidate_blocks, candidate_lists);
    if (!decoded.ok()) continue;  // torn or never written
    if (!found || candidate.stamp > best.stamp) {
      found = true;
      best = candidate;
      best_blocks = std::move(candidate_blocks);
      best_lists = std::move(candidate_lists);
    }
  }
  if (!found) {
    return CorruptionError("no valid checkpoint found in either region");
  }
  data = best;
  blocks = std::move(best_blocks);
  lists = std::move(best_lists);
  return Status::Ok();
}

}  // namespace aru::lld
