// SegmentWriter: fills segments in main memory and seals each into its
// slot in a single device operation (paper §2).
//
// Data blocks grow from the front of the slot buffer; summary records
// accumulate separately and are placed immediately before the footer at
// seal time. A kWrite/kRewrite record is kept in the same segment as
// the data it describes — the cleaner and recovery rely on a segment's
// summary describing exactly the blocks stored in that segment.
//
// Seal hands the finished buffer to the SegmentPipeline (write-behind:
// the device write may run on a background flusher thread) and
// immediately takes a replacement buffer, so filling the next segment
// overlaps the previous segment's device write. The durable-LSN
// horizon (`persisted_lsn()`) is owned by the pipeline and advances
// only once a segment's write completes.
//
// Thread-compatibility: not internally synchronized. The writer is
// owned by an Lld and reached only under Lld::mu_ — the owning member
// carries ARU_GUARDED_BY(mu_), so clang's -Wthread-safety checks every
// access path (see util/thread_annotations.h).
#pragma once

#include <cstdint>
#include <functional>

#include "blockdev/block_device.h"
#include "lld/layout.h"
#include "lld/lld_metrics.h"
#include "lld/segment_pipeline.h"
#include "lld/slot_table.h"
#include "lld/summary.h"
#include "lld/types.h"
#include "util/bytes.h"
#include "util/protocol_annotations.h"

namespace aru::lld {

class SegmentWriter {
 public:
  SegmentWriter(const Geometry& geometry, SlotTable& slots,
                SegmentPipeline& pipeline, LldMetrics& metrics);

  // Restores counters after recovery (the pipeline is empty then).
  void Restore(std::uint64_t next_seq, Lsn persisted_lsn,
               std::uint32_t slot_hint) {
    next_seq_ = next_seq;
    slot_hint_ = slot_hint;
    last_appended_lsn_ = persisted_lsn;
    enqueued_lsn_ = persisted_lsn;
    pipeline_.Restore(persisted_lsn);
  }

  // Appends one block of data together with its kWrite record.
  // `record.phys` is filled in. May seal the current segment first.
  Result<PhysAddr> AppendWrite(WriteRecord record, ByteSpan data)
      ARU_APPENDS_SUMMARY;

  // Appends a cleaner copy: data plus its kRewrite record.
  Result<PhysAddr> AppendRewrite(RewriteRecord record, ByteSpan data)
      ARU_APPENDS_SUMMARY;

  // Appends a meta-data record (alloc/insert/delete/commit/abort).
  Status AppendRecord(const Record& record) ARU_APPENDS_SUMMARY;

  // Seals and writes the current segment, if it has any content.
  Status SealIfOpen() ARU_APPENDS_SUMMARY;

  // True if `phys` refers to a block in the not-yet-written open
  // segment; Read serves such blocks from memory.
  bool InOpenSegment(PhysAddr phys) const {
    return open_ && phys.valid() && phys.slot() == open_slot_;
  }

  // Copies a block out of the open segment buffer.
  void ReadOpenBlock(PhysAddr phys, MutableByteSpan out) const;

  // LSN horizon: all records with lsn <= persisted_lsn() are on disk.
  // Owned by the pipeline; with write-behind it trails enqueued_lsn()
  // until the flusher completes the corresponding device writes.
  Lsn persisted_lsn() const { return pipeline_.durable_lsn(); }

  // The highest LSN handed to the pipeline by a seal: the wait target
  // for Flush ("everything appended so far" after SealIfOpen).
  Lsn enqueued_lsn() const { return enqueued_lsn_; }

  // The LSN of the most recent append (may still sit in the open
  // segment): the wait target for durable commits.
  Lsn last_appended_lsn() const { return last_appended_lsn_; }

  std::uint64_t next_seq() const { return next_seq_; }
  bool has_open_segment() const { return open_; }

  // Bytes of payload the open segment still accepts (diagnostics).
  std::size_t open_room() const;

 private:
  // Capacity left for (data_bytes, record_bytes) additions.
  bool Fits(std::size_t data_bytes, std::size_t record_bytes) const;

  Status Open();
  Status Seal();

  Result<PhysAddr> AppendDataAndRecord(Record record, ByteSpan data);

  const Geometry& geometry_;
  SlotTable& slots_;
  SegmentPipeline& pipeline_;
  LldMetrics& metrics_;

  bool open_ = false;
  std::uint32_t open_slot_ = 0;
  std::uint32_t slot_hint_ = 0;
  Bytes buffer_;           // full slot image; data blocks from the front
  std::size_t data_bytes_ = 0;
  std::uint32_t data_blocks_ = 0;
  Bytes records_;          // encoded summary records
  std::uint32_t record_count_ = 0;
  Lsn last_lsn_in_segment_ = kNoLsn;

  std::uint64_t next_seq_ = 1;
  Lsn last_appended_lsn_ = kNoLsn;
  Lsn enqueued_lsn_ = kNoLsn;
};

}  // namespace aru::lld
