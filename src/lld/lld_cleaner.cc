// Segment cleaner: reclaims the dead space a log-structured disk
// accumulates (paper §2: "If LLD runs out of disk space it uses a
// segment cleaner to reclaim unused disk space").
//
// A victim segment's summary lists the blocks stored in it; a block is
// live iff the persistent block-number-map still points at that copy.
// Live blocks are copied into the current segment with kRewrite
// records, the victim becomes PendingFree, and a checkpoint (taken at
// the end of the pass) both captures the moves and releases the
// victims for reuse — a slot may never be overwritten while a recovery
// roll-forward could still need its summary.
//
// Segments referenced by any committed or shadow version record are
// pinned: such data is recent (younger than the last flush), and its
// on-disk write records must keep pointing at valid data until the
// referencing ARU state promotes.
#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "lld/lld.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/log.h"

namespace aru::lld {
namespace {

struct Victim {
  std::uint32_t slot = 0;
  std::uint64_t live_blocks = 0;
  std::uint64_t seq = 0;
  double score = 0.0;  // higher = better victim
};

}  // namespace

Status Lld::MaybeCleanLocked() {
  if (slots_.free_count() >= options_.cleaner_reserve_slots) {
    return Status::Ok();
  }
  return RunCleanerLocked();
}

Status Lld::RunCleanerLocked() {
  metrics_.cleaner_passes->Increment();
  obs::SpanTimer pass_span(&obs::Tracer::Default(), "lld", "cleaner_pass",
                           metrics_.cleaner_pass_us);
  // Drain barrier: victim segments are read back from the device below,
  // so every sealed segment must actually be there first (a kWritten
  // slot may still be queued behind the write-behind flusher).
  ARU_RETURN_IF_ERROR(pipeline_.Drain());
  const std::uint64_t copied_before =
      metrics_.blocks_copied_by_cleaner->value();

  // Liveness per slot, from the persistent map; pinned slots carry
  // not-yet-persistent version data.
  std::vector<std::uint64_t> live(geometry_.slot_count, 0);
  block_map_.ForEach([&live](BlockId, const BlockMeta& meta) {
    if (meta.phys.valid()) ++live[meta.phys.slot()];
  });
  std::unordered_set<std::uint32_t> pinned;
  block_versions_.ForEachAll([&pinned](const BlockVersions::Node& node) {
    if (node.meta.phys.valid()) pinned.insert(node.meta.phys.slot());
  });

  const std::uint64_t max_blocks = geometry_.blocks_per_segment_max();
  const std::uint64_t now_seq = writer_.next_seq();

  std::vector<Victim> victims;
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    const SlotInfo& info = slots_[slot];
    if (info.state != SlotState::kWritten) continue;
    if (pinned.contains(slot)) continue;
    // Reader-pinned slots (SlotPins) are skipped too: a reader is
    // mid-device-read in this slot right now. Relocating its live
    // blocks would only strand the copy under the reader as dead —
    // release would be deferred by the pin anyway — so the pass picks
    // a quieter victim. Pins last one device read; transient.
    if (slot_pins_.pins(slot) != 0) continue;
    const double u =
        static_cast<double>(live[slot]) / static_cast<double>(max_blocks);
    if (u > 0.95) continue;  // no meaningful gain
    Victim v;
    v.slot = slot;
    v.live_blocks = live[slot];
    v.seq = info.seq;
    const double age = static_cast<double>(now_seq - info.seq);
    v.score = options_.cleaner_policy == CleanerPolicy::kGreedy
                  ? 1.0 - u
                  : (1.0 - u) * age / (1.0 + u);
    victims.push_back(v);
  }
  if (victims.empty()) {
    return OutOfSpaceError("cleaner found no reclaimable segments");
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) { return a.score > b.score; });

  // Clean until the reserve is comfortably met (PendingFree slots count:
  // the checkpoint at the end of the pass releases them).
  const std::uint32_t target = options_.cleaner_reserve_slots * 2;
  std::uint32_t gained = 0;
  Bytes slot_buf(geometry_.segment_size);
  Bytes block_buf(geometry_.block_size);

  for (const Victim& victim : victims) {
    if (slots_.free_count() + gained >= target) break;

    ARU_RETURN_IF_ERROR(
        device_.Read(geometry_.slot_first_sector(victim.slot), slot_buf));
    const auto footer = DecodeFooter(ByteSpan(slot_buf).last(kFooterSize));
    if (!footer.ok()) {
      return CorruptionError("cleaner: bad footer in slot " +
                             std::to_string(victim.slot));
    }
    const std::size_t summary_at =
        geometry_.segment_size - kFooterSize - footer->summary_len;
    const ByteSpan summary =
        ByteSpan(slot_buf).subspan(summary_at, footer->summary_len);
    if (Crc32c(summary) != footer->summary_crc) {
      return CorruptionError("cleaner: summary CRC mismatch in slot " +
                             std::to_string(victim.slot));
    }
    ARU_ASSIGN_OR_RETURN(const std::vector<Record> records,
                         DecodeSummary(summary));

    for (const Record& record : records) {
      BlockId block;
      PhysAddr phys;
      if (const auto* w = std::get_if<WriteRecord>(&record)) {
        block = w->block;
        phys = w->phys;
      } else if (const auto* r = std::get_if<RewriteRecord>(&record)) {
        block = r->block;
        phys = r->phys;
      } else {
        continue;
      }
      BlockMeta meta;
      if (!block_map_.Get(block, meta) || meta.phys != phys) {
        continue;  // dead copy
      }

      const std::size_t offset =
          static_cast<std::size_t>(phys.index()) * geometry_.block_size;
      std::copy_n(slot_buf.begin() + static_cast<std::ptrdiff_t>(offset),
                  geometry_.block_size, block_buf.begin());
      RewriteRecord rewrite;
      rewrite.block = block;
      rewrite.orig_ts = meta.ts;
      rewrite.lsn = NextLsn();
      ARU_ASSIGN_OR_RETURN(const PhysAddr new_phys,
                           writer_.AppendRewrite(rewrite, block_buf));
      // The move is physical only: update the persistent map in place.
      // No lost update despite the copy-out: every mutator runs under
      // the exclusive mu_ this pass holds.
      meta.phys = new_phys;
      block_map_.Set(block, meta);
      if (options_.incremental_checkpoints) {
        dirty_blocks_.insert(block.value());
      }
      metrics_.blocks_copied_by_cleaner->Increment();
    }

    slots_[victim.slot].state = SlotState::kPendingFree;
    ++gained;
    metrics_.segments_cleaned->Increment();
  }

  const std::uint64_t copied =
      metrics_.blocks_copied_by_cleaner->value() - copied_before;
  metrics_.cleaner_copied_blocks->Record(copied);
  pass_span.SetArg("copied_blocks", copied);

  // Seal the copies and checkpoint: captures the moved addresses and
  // releases the victims.
  ARU_RETURN_IF_ERROR(TakeCheckpointLocked());
  if (slots_.free_count() < 1) {
    return OutOfSpaceError("disk full: cleaning could not free a segment");
  }
  return Status::Ok();
}

}  // namespace aru::lld
