#include "lld/lld_metrics.h"

namespace aru::lld {

LldMetrics::LldMetrics(obs::Registry& registry) : registry_(&registry) {
  auto counter = [&registry](const char* name, const char* help) {
    return registry.GetCounter(name, help);
  };
  segments_written = counter("aru_lld_segments_written_total",
                             "segments sealed and written to disk");
  partial_segments_written =
      counter("aru_lld_partial_segments_written_total",
              "segments sealed by Flush before they were full");
  bytes_written_to_disk = counter("aru_lld_bytes_written_to_disk_total",
                                  "segment bytes written to the device");
  blocks_written =
      counter("aru_lld_blocks_written_total", "logical block writes");
  blocks_read = counter("aru_lld_blocks_read_total", "logical block reads");
  reads_from_open_segment =
      counter("aru_lld_reads_from_open_segment_total",
              "reads served from the in-memory open segment");
  reads_from_inflight_segment =
      counter("aru_lld_reads_from_inflight_segment_total",
              "reads served from sealed segments still in flight");
  arus_begun = counter("aru_lld_arus_begun_total", "BeginARU calls");
  arus_committed = counter("aru_lld_arus_committed_total", "committed ARUs");
  arus_aborted = counter("aru_lld_arus_aborted_total", "aborted ARUs");
  link_log_entries_replayed =
      counter("aru_lld_link_log_entries_replayed_total",
              "list operations re-executed at EndARU");
  predecessor_search_steps =
      counter("aru_lld_predecessor_search_steps_total",
              "list-walk steps during unlink predecessor searches");
  flushes = counter("aru_lld_flushes_total", "Flush calls");
  checkpoints = counter("aru_lld_checkpoints_total", "checkpoints taken");
  cleaner_passes = counter("aru_lld_cleaner_passes_total", "cleaner passes");
  segments_cleaned =
      counter("aru_lld_segments_cleaned_total", "victim segments reclaimed");
  blocks_copied_by_cleaner = counter("aru_lld_blocks_copied_by_cleaner_total",
                                     "live blocks copied by the cleaner");
  orphan_blocks_reclaimed =
      counter("aru_lld_orphan_blocks_reclaimed_total",
              "allocated-but-listless blocks freed (abort/recovery)");
  slot_pin_retries =
      counter("aru_lld_slot_pin_retries_total",
              "out-of-lock reads retried after a slot generation changed");
  read_cache_hits = counter("aru_lld_read_cache_hits_total",
                            "device reads avoided by the read cache");
  read_cache_misses = counter("aru_lld_read_cache_misses_total",
                              "read-cache probes that went to the device");
  checkpoints_full = counter(
      "aru_lld_checkpoints_full_total",
      "full checkpoint images written (initial bases and chain rebases)");
  checkpoints_delta =
      counter("aru_lld_checkpoints_delta_total",
              "incremental checkpoint delta images appended to a chain");

  version_chain_steps =
      registry.GetGauge("aru_lld_version_chain_steps",
                        "same-id version chain traversals (cumulative)");
  promotion_fifo_depth =
      registry.GetGauge("aru_lld_promotion_fifo_depth",
                        "committed records awaiting promotion");
  promotion_lag_lsn = registry.GetGauge(
      "aru_lld_promotion_lag_lsn",
      "LSNs between the operation stream and the persisted horizon");
  active_arus = registry.GetGauge("aru_lld_active_arus", "open ARUs");
  inflight_segments =
      registry.GetGauge("aru_lld_inflight_segments",
                        "sealed segments queued behind the device write");
  durable_lag_lsn = registry.GetGauge(
      "aru_lld_durable_lag_lsn",
      "LSNs between the last enqueued segment and the durable horizon");
  read_cache_shard_count = registry.GetGauge(
      "aru_lld_read_cache_shard_count",
      "independent LRU shards (each with its own mutex) in the read cache");
  table_shard_count = registry.GetGauge(
      "aru_lld_table_shard_count",
      "independent shards (each with its own mutex) in the block-number-map "
      "and list-table");
  recovery_scan_threads = registry.GetGauge(
      "aru_lld_recovery_scan_threads",
      "workers the last recovery summary scan fanned out across");
  checkpoint_delta_chain = registry.GetGauge(
      "aru_lld_checkpoint_delta_chain",
      "delta images chained onto the current full checkpoint base");

  op_write_us = registry.GetHistogram("aru_lld_op_write_us",
                                      "Write() latency, wall microseconds");
  op_read_us = registry.GetHistogram("aru_lld_op_read_us",
                                     "Read() latency, wall microseconds");
  read_lock_shared_us = registry.GetHistogram(
      "aru_lld_read_lock_shared_us",
      "shared-mode mu_ hold during read resolution, wall microseconds");
  commit_us = registry.GetHistogram(
      "aru_lld_commit_us",
      "EndARU latency (link-log replay + commit record), wall microseconds");
  aru_lifetime_us =
      registry.GetHistogram("aru_lld_aru_lifetime_us",
                            "BeginARU to EndARU/AbortARU, wall microseconds");
  seal_us = registry.GetHistogram(
      "aru_lld_seal_us", "segment seal incl. device write, wall microseconds");
  seal_handoff_us = registry.GetHistogram(
      "aru_lld_seal_handoff_us",
      "async seal hand-off to the flusher (incl. backpressure waits)");
  device_write_us =
      registry.GetHistogram("aru_lld_device_write_us",
                            "segment device write alone, wall microseconds");
  flush_wait_us = registry.GetHistogram(
      "aru_lld_flush_wait_us",
      "waits for the durable-LSN horizon (Flush / durable EndARU)");
  segment_fill_percent = registry.GetHistogram(
      "aru_lld_segment_fill_percent", "payload fill ratio of sealed segments");
  cleaner_pass_us = registry.GetHistogram("aru_lld_cleaner_pass_us",
                                          "cleaner pass, wall microseconds");
  cleaner_copied_blocks = registry.GetHistogram(
      "aru_lld_cleaner_copied_blocks", "blocks copied per cleaner pass");
  recovery_checkpoint_load_us =
      registry.GetHistogram("aru_lld_recovery_checkpoint_load_us",
                            "recovery: newest checkpoint load");
  recovery_summary_scan_us =
      registry.GetHistogram("aru_lld_recovery_summary_scan_us",
                            "recovery: footer scan + summary read/validate");
  recovery_replay_us = registry.GetHistogram(
      "aru_lld_recovery_replay_us", "recovery: event build + replay + promote");
  recovery_orphan_reclaim_us =
      registry.GetHistogram("aru_lld_recovery_orphan_reclaim_us",
                            "recovery: orphan block/list reclamation");
  recovery_checkpoint_us =
      registry.GetHistogram("aru_lld_recovery_checkpoint_us",
                            "recovery: bounding checkpoint + consistency");
}

LldStats LldMetrics::Snapshot() const {
  LldStats stats;
  stats.segments_written = segments_written->value();
  stats.partial_segments_written = partial_segments_written->value();
  stats.bytes_written_to_disk = bytes_written_to_disk->value();
  stats.blocks_written = blocks_written->value();
  stats.blocks_read = blocks_read->value();
  stats.reads_from_open_segment = reads_from_open_segment->value();
  stats.arus_begun = arus_begun->value();
  stats.arus_committed = arus_committed->value();
  stats.arus_aborted = arus_aborted->value();
  stats.link_log_entries_replayed = link_log_entries_replayed->value();
  stats.predecessor_search_steps = predecessor_search_steps->value();
  stats.version_chain_steps =
      static_cast<std::uint64_t>(version_chain_steps->value());
  stats.flushes = flushes->value();
  stats.checkpoints = checkpoints->value();
  stats.cleaner_passes = cleaner_passes->value();
  stats.segments_cleaned = segments_cleaned->value();
  stats.blocks_copied_by_cleaner = blocks_copied_by_cleaner->value();
  stats.orphan_blocks_reclaimed = orphan_blocks_reclaimed->value();
  return stats;
}

void LldMetrics::BindLock(Mutex& mu) {
  auto sink = obs::BindLockSite(registry_, mu);
  if (sink != nullptr) lock_sites_.push_back(std::move(sink));
}

void LldMetrics::BindLock(SharedMutex& mu) {
  auto sink = obs::BindLockSite(registry_, mu);
  if (sink != nullptr) lock_sites_.push_back(std::move(sink));
}

}  // namespace aru::lld
