// LldMetrics: the LLD's named handles into an obs::Registry.
//
// Every counter that used to live as a plain field in LldStats is now a
// registry counter (so it shows up in DumpText/DumpJson and benchmark
// artifacts); LldStats survives as a snapshot struct assembled by
// Lld::stats(), keeping the existing tests and paper-comparison numbers
// untouched. Histograms carry the latency distributions the paper's
// evaluation reasons about, and gauges expose current levels (promotion
// FIFO depth, promotion-horizon lag in LSNs, active ARUs).
#pragma once

#include <memory>
#include <vector>

#include "lld/types.h"
#include "obs/lock_metrics.h"
#include "obs/metrics.h"
#include "util/mutex.h"

namespace aru::lld {

struct LldMetrics {
  explicit LldMetrics(obs::Registry& registry);

  // Counters backing the LldStats façade (names: aru_lld_<field>_total).
  obs::Counter* segments_written;
  obs::Counter* partial_segments_written;
  obs::Counter* bytes_written_to_disk;
  obs::Counter* blocks_written;
  obs::Counter* blocks_read;
  obs::Counter* reads_from_open_segment;
  obs::Counter* reads_from_inflight_segment;
  obs::Counter* arus_begun;
  obs::Counter* arus_committed;
  obs::Counter* arus_aborted;
  obs::Counter* link_log_entries_replayed;
  obs::Counter* predecessor_search_steps;
  obs::Counter* flushes;
  obs::Counter* checkpoints;
  obs::Counter* cleaner_passes;
  obs::Counter* segments_cleaned;
  obs::Counter* blocks_copied_by_cleaner;
  obs::Counter* orphan_blocks_reclaimed;
  obs::Counter* slot_pin_retries;  // stale-generation read retries
  obs::Counter* read_cache_hits;    // device reads avoided by the cache
  obs::Counter* read_cache_misses;  // cache probes that went to the device
  obs::Counter* checkpoints_full;   // full (base/rebase) checkpoint images
  obs::Counter* checkpoints_delta;  // incremental delta images appended

  // Gauges.
  obs::Gauge* version_chain_steps;   // refreshed by Lld::stats()
  obs::Gauge* promotion_fifo_depth;
  obs::Gauge* promotion_lag_lsn;     // next LSN - persisted LSN horizon
  obs::Gauge* active_arus;
  obs::Gauge* inflight_segments;     // sealed segments queued behind device
  obs::Gauge* durable_lag_lsn;       // enqueued LSN - durable LSN horizon
  obs::Gauge* read_cache_shard_count;  // set once at construction
  obs::Gauge* table_shard_count;       // set once at construction
  obs::Gauge* recovery_scan_threads;   // workers the last recovery scan used
  obs::Gauge* checkpoint_delta_chain;  // delta images on the current chain

  // Latency/size distributions (wall-clock microseconds unless noted).
  obs::Histogram* op_write_us;
  obs::Histogram* op_read_us;
  obs::Histogram* read_lock_shared_us;  // shared-mode mu_ hold in reads
  obs::Histogram* commit_us;         // EndARU: replay + commit record
  obs::Histogram* aru_lifetime_us;   // BeginARU → EndARU/AbortARU
  obs::Histogram* seal_us;           // segment seal incl. device write
  obs::Histogram* seal_handoff_us;   // async seal: hand-off to the flusher
  obs::Histogram* device_write_us;   // segment device write alone
  obs::Histogram* flush_wait_us;     // durability waits on the horizon
  obs::Histogram* segment_fill_percent;
  obs::Histogram* cleaner_pass_us;
  obs::Histogram* cleaner_copied_blocks;  // per pass
  obs::Histogram* recovery_checkpoint_load_us;
  obs::Histogram* recovery_summary_scan_us;
  obs::Histogram* recovery_replay_us;
  obs::Histogram* recovery_orphan_reclaim_us;
  obs::Histogram* recovery_checkpoint_us;

  // The façade: LldStats rebuilt from the registry counters
  // (version_chain_steps is filled in by Lld::stats(), which owns the
  // version indexes the number comes from).
  LldStats Snapshot() const;

  // Contention attribution: binds a named mutex to this registry so
  // its contended acquires land in aru_lock_wait_us_<site>_* (see
  // obs/lock_metrics.h). The sink lives here, so LldMetrics must
  // outlive the mutex's last contended acquire — it does: Lld owns the
  // metrics and every lock it binds (mu_, the pipeline's flush_mu_,
  // the read-cache shard locks). Unnamed mutexes are a no-op.
  void BindLock(Mutex& mu);
  void BindLock(SharedMutex& mu);

 private:
  obs::Registry* registry_;
  std::vector<std::unique_ptr<obs::LockSiteMetrics>> lock_sites_;
};

}  // namespace aru::lld
