// Crash recovery: checkpoint load + segment-summary roll-forward.
//
// Recovery is always to the most recent persistent state (paper §3.1):
//  1. load the newest valid checkpoint chain (full base image plus any
//     parent-linked incremental deltas, replayed in chain order);
//  2. scan all slot footers; segments with seq > checkpoint.covered_seq
//     form the roll-forward log, replayed in sequence order;
//  3. pass 1 collects the set of ARUs whose commit record reached disk;
//  4. pass 2 builds the effective event order: simple and commit-time
//     records act at their own LSN, an ARU's data writes act at its
//     commit record's LSN (ARUs serialize by EndARU time), and records
//     of uncommitted or aborted ARUs are dropped — except allocations,
//     which are always committed (paper §3.3);
//  5. events are applied through the same committed-state machinery the
//     runtime uses, then force-promoted into the persistent tables;
//  6. the consistency check frees blocks that an interrupted ARU left
//     allocated but listless, and a fresh checkpoint is written.
//
// The summary scan (step 2, the read/CRC/decode of every candidate
// segment) dominates recovery time on large disks and is trivially
// partitionable by slot, so it fans out across a ThreadPool. The
// workers fill a pre-sized per-slot result table and never touch
// shared disk state; the merge back into slots_/replay happens on the
// recovering thread in ascending slot order, so the recovered state is
// byte-identical to the serial scan at any thread count (including the
// choice of which error wins when several slots fail).
#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lld/lld.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/log.h"
#include "util/thread_pool.h"
#include "util/topology.h"

namespace aru::lld {
namespace {

struct ReplaySegment {
  std::uint32_t slot = 0;
  SegmentFooter footer;
  std::vector<Record> records;
};

struct Event {
  Lsn eff = kNoLsn;  // effective position (commit order)
  Lsn lsn = kNoLsn;  // tie-break: original stream position
  const Record* record = nullptr;
};

// Per-slot result cell for the fanned-out summary scan. Exactly one
// worker writes each cell (slot ranges partition the table), and the
// pool's Wait() barrier orders every write before the merge reads.
struct SlotScan {
  Status status = Status::Ok();  // this slot's scan/validate failure
  bool written = false;          // footer decoded: slot holds a segment
  bool replay = false;           // seq > covered: records populated
  SegmentFooter footer;
  std::vector<Record> records;
};

}  // namespace

Status Lld::RecoverLocked() ARU_DECODES_RECORD {
  const std::uint64_t recover_start = obs::NowUs();
  obs::SpanTimer total_span(&obs::Tracer::Default(), "lld", "recovery");

  CheckpointData ckpt;
  CheckpointChainInfo chain;
  {
    obs::SpanTimer span(&obs::Tracer::Default(), "lld",
                        "recovery_checkpoint_load",
                        metrics_.recovery_checkpoint_load_us);
    // The codec speaks the flat table format; stage into locals, then
    // Load into the sharded tables (single-threaded here — Open has not
    // returned the disk yet).
    BlockMap block_staging;
    ListTable list_staging;
    std::vector<ckptfmt::DeltaRecord> deltas;
    ARU_RETURN_IF_ERROR(ReadNewestCheckpointChain(device_, geometry_, ckpt,
                                                  block_staging, list_staging,
                                                  deltas, chain));
    // Replay the chain's deltas, in chain order, onto the base image:
    // each record moves the staged tables to the state the tip image
    // checkpointed. (Mirrors ApplyCheckpointDeltas; spelled out here so
    // the recovery path applies the vocabulary record by record.)
    // Pre-size the staging tables: the first delta after a rebase can
    // carry as many records as the table has entries, and growing a
    // hash table record-by-record at that scale is a rehash cascade.
    std::size_t delta_block_sets = 0;
    std::size_t delta_list_sets = 0;
    for (const ckptfmt::DeltaRecord& record : deltas) {
      if (std::holds_alternative<ckptfmt::DeltaBlockSetRecord>(record)) {
        ++delta_block_sets;
      } else if (std::holds_alternative<ckptfmt::DeltaListSetRecord>(record)) {
        ++delta_list_sets;
      }
    }
    block_staging.Reserve(delta_block_sets);
    list_staging.Reserve(delta_list_sets);
    for (const ckptfmt::DeltaRecord& record : deltas) {
      if (const auto* bs =
              std::get_if<ckptfmt::DeltaBlockSetRecord>(&record)) {
        BlockMeta meta;
        meta.allocated = true;
        meta.phys = PhysAddr::FromEncoded(bs->phys);
        meta.successor = BlockId{bs->successor};
        meta.list = ListId{bs->list};
        meta.ts = bs->ts;
        block_staging.Set(BlockId{bs->block}, meta);
      } else if (const auto* be =
                     std::get_if<ckptfmt::DeltaBlockEraseRecord>(&record)) {
        block_staging.Erase(BlockId{be->block});
      } else if (const auto* ls =
                     std::get_if<ckptfmt::DeltaListSetRecord>(&record)) {
        ListMeta meta;
        meta.exists = true;
        meta.first = BlockId{ls->first};
        meta.last = BlockId{ls->last};
        list_staging.Set(ListId{ls->list}, meta);
      } else if (const auto* le =
                     std::get_if<ckptfmt::DeltaListEraseRecord>(&record)) {
        list_staging.Erase(ListId{le->list});
      }
    }
    block_map_.Load(block_staging);
    list_table_.Load(list_staging);
    recovery_report_.checkpoint_load_us = span.ElapsedUs();
    recovery_report_.checkpoint_delta_images = chain.delta_images;
    recovery_report_.checkpoint_delta_records = deltas.size();
    span.SetArg("delta_images", chain.delta_images);
  }
  next_lsn_ = ckpt.next_lsn;
  next_block_id_ = ckpt.next_block_id;
  next_list_id_ = ckpt.next_list_id;
  next_aru_id_ = ckpt.next_aru_id;
  checkpoint_stamp_ = ckpt.stamp;
  last_covered_seq_ = ckpt.covered_seq;
  // Adopt the chain cursor so the next checkpoint extends (or rebases
  // away from) the chain we just recovered from. The dirty sets start
  // empty: the in-memory tables are exactly the on-disk tip here, and
  // everything the roll-forward changes is marked as it promotes.
  ckpt_region_ = chain.region;
  ckpt_used_bytes_ = chain.used_bytes;
  ckpt_delta_images_ = chain.delta_images;

  // ------------------------------------------------------------------
  // Scan slot footers and read/validate/decode the roll-forward
  // summaries, fanned out across slot ranges. Workers write only their
  // own SlotScan cells and their thread-local buffers; the device is
  // internally synchronized.
  obs::SpanTimer scan_span(&obs::Tracer::Default(), "lld",
                           "recovery_summary_scan",
                           metrics_.recovery_summary_scan_us);
  std::size_t scan_threads = options_.recovery_threads == 0
                                 ? util::DefaultPoolThreads()
                                 : options_.recovery_threads;
  scan_threads = std::max<std::size_t>(
      1, std::min<std::size_t>(scan_threads, geometry_.slot_count));

  std::vector<SlotScan> scans(geometry_.slot_count);
  auto scan_range = [this, &ckpt, &scans](std::uint32_t begin,
                                          std::uint32_t end) {
    Bytes last_sector(geometry_.sector_size);
    Bytes slot_buf(geometry_.segment_size);
    for (std::uint32_t slot = begin; slot < end; ++slot) {
      SlotScan& out = scans[slot];
      const std::uint64_t sector = geometry_.slot_first_sector(slot) +
                                   geometry_.sectors_per_segment() - 1;
      if (Status read = device_.Read(sector, last_sector); !read.ok()) {
        out.status = read;
        continue;
      }
      auto footer = DecodeFooter(ByteSpan(last_sector).last(kFooterSize));
      if (!footer.ok()) {
        continue;  // never written, or torn: free
      }
      out.written = true;
      out.footer = *footer;
      if (footer->seq <= ckpt.covered_seq) continue;
      out.replay = true;
      if (Status read = device_.Read(geometry_.slot_first_sector(slot),
                                     slot_buf);
          !read.ok()) {
        out.status = read;
        continue;
      }
      const std::size_t summary_at =
          geometry_.segment_size - kFooterSize - footer->summary_len;
      const ByteSpan summary =
          ByteSpan(slot_buf).subspan(summary_at, footer->summary_len);
      if (Crc32c(summary) != footer->summary_crc) {
        out.status = CorruptionError("summary CRC mismatch in slot " +
                                     std::to_string(slot));
        continue;
      }
      auto records = DecodeSummary(summary);
      if (!records.ok()) {
        out.status = records.status();
        continue;
      }
      if (records->size() != footer->record_count) {
        out.status = CorruptionError("record count mismatch in slot " +
                                     std::to_string(slot));
        continue;
      }
      out.records = std::move(*records);
    }
  };
  if (scan_threads <= 1) {
    scan_range(0, geometry_.slot_count);
  } else {
    // Several chunks per worker so a run of replay-heavy slots cannot
    // serialize the scan behind one thread.
    const std::uint32_t n = geometry_.slot_count;
    const std::uint32_t chunk = std::max<std::uint32_t>(
        1, n / static_cast<std::uint32_t>(scan_threads * 4));
    util::ThreadPool pool(scan_threads);
    for (std::uint32_t begin = 0; begin < n; begin += chunk) {
      const std::uint32_t end = std::min(n, begin + chunk);
      pool.Submit([&scan_range, begin, end] { scan_range(begin, end); });
    }
    pool.Wait();
  }

  // Deterministic merge, ascending slot order: the same slot states,
  // the same replay set, and — when slots failed — the same (lowest
  // slot's) error the serial scan would have surfaced first.
  std::uint64_t max_seq = ckpt.covered_seq;
  std::vector<ReplaySegment> replay;
  for (std::uint32_t slot = 0; slot < geometry_.slot_count; ++slot) {
    SlotScan& scan = scans[slot];
    ARU_RETURN_IF_ERROR(scan.status);
    if (!scan.written) {
      slots_[slot] = SlotInfo{};  // never written, or torn: free
      continue;
    }
    slots_[slot] =
        SlotInfo{SlotState::kWritten, scan.footer.seq, scan.footer.last_lsn};
    max_seq = std::max(max_seq, scan.footer.seq);
    if (scan.replay) {
      ReplaySegment seg;
      seg.slot = slot;
      seg.footer = scan.footer;
      seg.records = std::move(scan.records);
      replay.push_back(std::move(seg));
    }
  }
  std::sort(replay.begin(), replay.end(),
            [](const ReplaySegment& a, const ReplaySegment& b) {
              return a.footer.seq < b.footer.seq;
            });
  recovery_report_.scan_threads = scan_threads;
  metrics_.recovery_scan_threads->Set(
      static_cast<std::int64_t>(scan_threads));
  recovery_report_.summary_scan_us = scan_span.ElapsedUs();
  scan_span.SetArg("segments", replay.size());
  scan_span.SetArg("threads", scan_threads);
  scan_span.Finish();

  obs::SpanTimer replay_span(&obs::Tracer::Default(), "lld",
                             "recovery_replay", metrics_.recovery_replay_us);

  // ------------------------------------------------------------------
  // Pass 1: which ARUs committed? Also restore the id/LSN counters
  // above anything the log mentions, so a new epoch can never collide
  // with identifiers from the interrupted one.
  std::unordered_map<AruId, Lsn> commit_lsn;
  std::unordered_set<AruId> seen_arus;
  for (const ReplaySegment& seg : replay) {
    for (const Record& record : seg.records) {
      next_lsn_ = std::max(next_lsn_, RecordLsn(record) + 1);
      const AruId aru = RecordAru(record);
      if (aru.valid()) {
        seen_arus.insert(aru);
        next_aru_id_ = std::max(next_aru_id_, aru.value() + 1);
      }
      if (const auto* commit = std::get_if<CommitRecord>(&record)) {
        commit_lsn[commit->aru] = commit->lsn;
      } else if (const auto* alloc = std::get_if<AllocBlockRecord>(&record)) {
        next_block_id_ = std::max(next_block_id_, alloc->block.value() + 1);
      } else if (const auto* alist = std::get_if<AllocListRecord>(&record)) {
        next_list_id_ = std::max(next_list_id_, alist->list.value() + 1);
      }
    }
  }

  // ------------------------------------------------------------------
  // Pass 2: effective event order.
  std::vector<Event> events;
  for (const ReplaySegment& seg : replay) {
    for (const Record& record : seg.records) {
      Event event;
      event.lsn = RecordLsn(record);
      event.record = &record;
      const AruId aru = RecordAru(record);

      if (std::holds_alternative<CommitRecord>(record) ||
          std::holds_alternative<AbortRecord>(record)) {
        continue;  // consumed in pass 1
      }
      if (std::holds_alternative<AllocBlockRecord>(record) ||
          std::holds_alternative<AllocListRecord>(record)) {
        event.eff = event.lsn;  // allocation is always committed
      } else if (aru.valid()) {
        const auto it = commit_lsn.find(aru);
        if (it == commit_lsn.end()) continue;  // uncommitted: undone
        if (std::holds_alternative<WriteRecord>(record)) {
          event.eff = it->second;  // serialized by EndARU time
        } else {
          event.eff = event.lsn;  // emitted at commit time already
        }
      } else {
        event.eff = event.lsn;  // simple operation
      }
      events.push_back(event);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.eff != b.eff ? a.eff < b.eff : a.lsn < b.lsn;
                   });

  // ------------------------------------------------------------------
  // Apply events through the committed-state machinery, then promote.
  allocated_blocks_ = block_map_.size();
  list_count_ = list_table_.size();

  for (const Event& event : events) {
    ++recovery_report_.records_replayed;
    const Record& record = *event.record;
    Status applied;
    Touched touched;  // unused: promotion is forced below
    if (const auto* w = std::get_if<WriteRecord>(&record)) {
      BlockMeta meta = VisibleBlock(w->block, ld::kNoAru);
      if (!meta.allocated) {
        // The block was deleted by a stream that committed earlier:
        // the write is dropped, matching the runtime merge rule.
        ++recovery_report_.ops_skipped;
        continue;
      }
      meta.phys = w->phys;
      meta.ts = w->lsn;
      PutBlock(w->block, ld::kNoAru, meta, event.eff, kLsnMax);
      continue;
    }
    if (const auto* a = std::get_if<AllocBlockRecord>(&record)) {
      BlockMeta meta;
      meta.allocated = true;
      PutBlock(a->block, ld::kNoAru, meta, event.eff, kLsnMax);
      ++allocated_blocks_;
      continue;
    }
    if (const auto* a = std::get_if<AllocListRecord>(&record)) {
      ListMeta meta;
      meta.exists = true;
      PutList(a->list, ld::kNoAru, meta, event.eff, kLsnMax);
      ++list_count_;
      continue;
    }
    if (const auto* i = std::get_if<InsertRecord>(&record)) {
      applied = ExecInsert(ld::kNoAru, i->list, i->block, i->pred, event.eff,
                           kLsnMax, touched);
    } else if (const auto* m = std::get_if<MoveRecord>(&record)) {
      applied = ExecMove(ld::kNoAru, m->block, m->list, m->pred, event.eff,
                         kLsnMax, touched);
    } else if (const auto* d = std::get_if<DeleteBlockRecord>(&record)) {
      applied = ExecDeleteBlock(ld::kNoAru, d->block, event.eff, kLsnMax,
                                touched);
    } else if (const auto* dl = std::get_if<DeleteListRecord>(&record)) {
      applied = ExecDeleteList(ld::kNoAru, dl->list, event.eff, kLsnMax,
                               touched);
    } else if (const auto* r = std::get_if<RewriteRecord>(&record)) {
      BlockMeta meta = VisibleBlock(r->block, ld::kNoAru);
      if (meta.allocated && meta.ts == r->orig_ts) {
        meta.phys = r->phys;
        PutBlock(r->block, ld::kNoAru, meta, event.eff, kLsnMax);
      } else {
        ++recovery_report_.ops_skipped;
      }
      continue;
    }
    if (!applied.ok()) {
      // Mirrors the runtime rule for conflicting unsynchronized
      // streams: the record no longer applies and is skipped.
      ++recovery_report_.ops_skipped;
      ARU_LOG(kWarning) << "recovery: skipping record: " << applied;
    }
  }
  PromoteAllCommittedLocked();

  recovery_report_.segments_replayed = replay.size();
  recovery_report_.committed_arus = commit_lsn.size();
  for (const AruId aru : seen_arus) {
    if (!commit_lsn.contains(aru)) ++recovery_report_.uncommitted_arus_undone;
  }
  recovery_report_.replay_us = replay_span.ElapsedUs();
  replay_span.SetArg("records", recovery_report_.records_replayed);
  replay_span.Finish();

  // ------------------------------------------------------------------
  // Consistency check: free blocks an interrupted ARU left allocated
  // but on no list (paper §3.3), and — analogously — lists allocated by
  // an undone ARU that ended up empty (allocation is committed
  // immediately; the insertion that would have populated the list was
  // part of the shadow state and did not survive).
  if (options_.reclaim_orphans_on_recovery) {
    obs::SpanTimer reclaim_span(&obs::Tracer::Default(), "lld",
                                "recovery_orphan_reclaim",
                                metrics_.recovery_orphan_reclaim_us);
    std::vector<BlockId> orphans;
    block_map_.ForEach([&orphans](BlockId id, const BlockMeta& meta) {
      if (!meta.list.valid()) orphans.push_back(id);
    });
    for (const BlockId id : orphans) {
      block_map_.Erase(id);
      // The erased entry may have come from the checkpoint chain tip;
      // the bounding delta below must record the erase or the orphan
      // resurfaces on the next recovery.
      if (options_.incremental_checkpoints) {
        dirty_blocks_.insert(id.value());
      }
    }
    recovery_report_.orphan_blocks_reclaimed = orphans.size();
    metrics_.orphan_blocks_reclaimed->Add(orphans.size());

    std::vector<ListId> undone_lists;
    for (const ReplaySegment& seg : replay) {
      for (const Record& record : seg.records) {
        if (const auto* alloc = std::get_if<AllocListRecord>(&record)) {
          if (alloc->aru.valid() && !commit_lsn.contains(alloc->aru)) {
            undone_lists.push_back(alloc->list);
          }
        }
      }
    }
    for (const ListId list : undone_lists) {
      ListMeta meta;
      if (list_table_.Get(list, meta) && !meta.first.valid()) {
        list_table_.Erase(list);
        if (options_.incremental_checkpoints) {
          dirty_lists_.insert(list.value());
        }
        ++recovery_report_.orphan_lists_reclaimed;
      }
    }
    recovery_report_.orphan_reclaim_us = reclaim_span.ElapsedUs();
  }
  allocated_blocks_ = block_map_.size();
  list_count_ = list_table_.size();

  // ------------------------------------------------------------------
  // Restore the writer, free dead slots, and bound the next recovery
  // with a fresh checkpoint (its covered horizon includes everything).
  obs::SpanTimer ckpt_span(&obs::Tracer::Default(), "lld",
                           "recovery_checkpoint",
                           metrics_.recovery_checkpoint_us);
  writer_.Restore(max_seq + 1, next_lsn_ - 1, 0);

  std::vector<std::uint64_t> live_per_slot(geometry_.slot_count, 0);
  block_map_.ForEach([&live_per_slot](BlockId, const BlockMeta& meta) {
    if (meta.phys.valid()) ++live_per_slot[meta.phys.slot()];
  });
  for (std::uint32_t slot = 0; slot < geometry_.slot_count; ++slot) {
    if (slots_[slot].state == SlotState::kWritten &&
        live_per_slot[slot] == 0) {
      slots_[slot].state = SlotState::kPendingFree;
    }
  }

  ARU_RETURN_IF_ERROR(TakeCheckpointLocked());
  // The full cross-table consistency walk is O(live data) and would
  // defeat flat-ish recovery at scale; everything recovery loaded was
  // already CRC-validated (checkpoint images, summaries, footers).
  // Paranoid mode — every crash/fault test — keeps the full check.
  if (options_.paranoid_checks) {
    ARU_RETURN_IF_ERROR(CheckConsistencyLocked());
  }
  recovery_report_.checkpoint_us = ckpt_span.ElapsedUs();
  recovery_report_.total_us = obs::NowUs() - recover_start;
  return Status::Ok();
}

}  // namespace aru::lld
