#include "lld/layout.h"

#include <string>

#include "util/crc32.h"

namespace aru::lld {
namespace {

// Worst-case serialized sizes for checkpoint sizing (see checkpoint.cc).
constexpr std::uint64_t kCheckpointHeader = 128;
constexpr std::uint64_t kBlockEntrySize = 8 + 8 + 8 + 8 + 8;  // id,phys,succ,list,ts
constexpr std::uint64_t kListEntrySize = 8 + 8 + 8;           // id,first,last

std::uint64_t RoundUpSectors(std::uint64_t bytes, std::uint32_t sector_size) {
  return (bytes + sector_size - 1) / sector_size;
}

}  // namespace

Result<Geometry> DeriveGeometry(const BlockDevice& device,
                                const Options& options) {
  Geometry g;
  g.sector_size = device.sector_size();
  g.block_size = options.block_size;
  g.segment_size = options.segment_size;

  if (g.block_size == 0 || g.block_size % g.sector_size != 0) {
    return InvalidArgumentError("block size must be a multiple of the sector size");
  }
  if (g.segment_size < 2 * g.block_size ||
      g.segment_size % g.block_size != 0) {
    return InvalidArgumentError(
        "segment size must be a multiple of the block size and hold at "
        "least two blocks");
  }

  const std::uint64_t total_sectors = device.sector_count();

  // First sizing pass: assume all remaining space is segments to bound
  // the logical capacity, then size checkpoint regions for it.
  const std::uint64_t sectors_per_segment = g.segment_size / g.sector_size;
  const std::uint64_t rough_slots = total_sectors / sectors_per_segment;
  const std::uint64_t rough_blocks =
      rough_slots * (g.segment_size / g.block_size);

  std::uint64_t capacity = options.capacity_blocks != 0
                               ? options.capacity_blocks
                               : rough_blocks * 9 / 10;
  std::uint64_t max_lists =
      options.max_lists != 0 ? options.max_lists : capacity / 2 + 1;

  const std::uint64_t ckpt_bytes = kCheckpointHeader +
                                   capacity * kBlockEntrySize +
                                   max_lists * kListEntrySize;
  const std::uint64_t ckpt_sectors = RoundUpSectors(ckpt_bytes, g.sector_size);

  g.checkpoint_a_sector = 1;
  g.checkpoint_b_sector = 1 + ckpt_sectors;
  g.checkpoint_capacity = ckpt_sectors * g.sector_size;

  // Segments start at the next segment-aligned sector.
  const std::uint64_t data_first = 1 + 2 * ckpt_sectors;
  g.data_start_sector =
      RoundUpSectors(data_first * g.sector_size,
                     static_cast<std::uint32_t>(
                         sectors_per_segment * g.sector_size)) *
      sectors_per_segment;

  if (g.data_start_sector >= total_sectors) {
    return InvalidArgumentError("device too small for checkpoint regions");
  }
  const std::uint64_t slots =
      (total_sectors - g.data_start_sector) / sectors_per_segment;
  if (slots < 8) {
    return InvalidArgumentError(
        "device too small: fewer than 8 segment slots (" +
        std::to_string(slots) + ")");
  }
  g.slot_count = static_cast<std::uint32_t>(slots);
  g.capacity_blocks = capacity;
  g.max_lists = max_lists;
  return g;
}

Bytes EncodeSuperblock(const Geometry& g) {
  Bytes body;
  PutU32(body, kSuperblockMagic);
  PutU16(body, kFormatVersion);
  PutU16(body, 0);  // pad
  PutU32(body, g.sector_size);
  PutU32(body, g.block_size);
  PutU32(body, g.segment_size);
  PutU32(body, g.slot_count);
  PutU64(body, g.checkpoint_a_sector);
  PutU64(body, g.checkpoint_b_sector);
  PutU64(body, g.checkpoint_capacity);
  PutU64(body, g.data_start_sector);
  PutU64(body, g.capacity_blocks);
  PutU64(body, g.max_lists);
  PutU32(body, Crc32c(body));
  body.resize(g.sector_size);  // pad to one sector
  return body;
}

Result<Geometry> DecodeSuperblock(ByteSpan sector) {
  Decoder dec(sector);
  ARU_ASSIGN_OR_RETURN(const std::uint32_t magic, dec.ReadU32());
  if (magic != kSuperblockMagic) {
    return CorruptionError("bad superblock magic");
  }
  ARU_ASSIGN_OR_RETURN(const std::uint16_t version, dec.ReadU16());
  if (version != kFormatVersion) {
    return CorruptionError("unsupported format version " +
                           std::to_string(version));
  }
  ARU_ASSIGN_OR_RETURN(std::uint16_t pad, dec.ReadU16());
  (void)pad;
  Geometry g;
  ARU_ASSIGN_OR_RETURN(g.sector_size, dec.ReadU32());
  ARU_ASSIGN_OR_RETURN(g.block_size, dec.ReadU32());
  ARU_ASSIGN_OR_RETURN(g.segment_size, dec.ReadU32());
  ARU_ASSIGN_OR_RETURN(g.slot_count, dec.ReadU32());
  ARU_ASSIGN_OR_RETURN(g.checkpoint_a_sector, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(g.checkpoint_b_sector, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(g.checkpoint_capacity, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(g.data_start_sector, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(g.capacity_blocks, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(g.max_lists, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(const std::uint32_t crc, dec.ReadU32());
  const std::uint32_t expected = Crc32c(sector.first(dec.position() - 4));
  if (crc != expected) return CorruptionError("superblock CRC mismatch");
  return g;
}

Status WriteSuperblock(BlockDevice& device, const Geometry& geometry) {
  return device.Write(0, EncodeSuperblock(geometry));
}

Result<Geometry> ReadSuperblock(BlockDevice& device) {
  Bytes sector(device.sector_size());
  ARU_RETURN_IF_ERROR(device.Read(0, sector));
  return DecodeSuperblock(sector);
}

void EncodeFooter(const SegmentFooter& footer, MutableByteSpan out) {
  Bytes buf;
  buf.reserve(kFooterSize);
  PutU32(buf, kFooterMagic);
  PutU32(buf, 0);  // pad for alignment
  PutU64(buf, footer.seq);
  PutU64(buf, footer.last_lsn);
  PutU32(buf, footer.summary_len);
  PutU32(buf, footer.record_count);
  PutU32(buf, footer.summary_crc);
  PutU32(buf, Crc32c(buf));
  // buf is now exactly kFooterSize bytes.
  for (std::size_t i = 0; i < kFooterSize; ++i) out[i] = buf[i];
}

Result<SegmentFooter> DecodeFooter(ByteSpan trailer) {
  if (trailer.size() < kFooterSize) {
    return CorruptionError("footer trailer too short");
  }
  Decoder dec(trailer);
  ARU_ASSIGN_OR_RETURN(const std::uint32_t magic, dec.ReadU32());
  if (magic != kFooterMagic) return CorruptionError("bad footer magic");
  ARU_ASSIGN_OR_RETURN(std::uint32_t pad, dec.ReadU32());
  (void)pad;
  SegmentFooter f;
  ARU_ASSIGN_OR_RETURN(f.seq, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(f.last_lsn, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(f.summary_len, dec.ReadU32());
  ARU_ASSIGN_OR_RETURN(f.record_count, dec.ReadU32());
  ARU_ASSIGN_OR_RETURN(f.summary_crc, dec.ReadU32());
  ARU_ASSIGN_OR_RETURN(const std::uint32_t crc, dec.ReadU32());
  if (crc != Crc32c(trailer.first(dec.position() - 4))) {
    return CorruptionError("footer CRC mismatch");
  }
  return f;
}

}  // namespace aru::lld
