#include "lld/lld.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/trace.h"
#include "util/log.h"
#include "util/topology.h"

namespace aru::lld {
namespace {

Status BlockNotFound(BlockId id) {
  return NotFoundError("block " + std::to_string(id.value()) +
                       " is not allocated in this view");
}

Status ListNotFound(ListId id) {
  return NotFoundError("list " + std::to_string(id.value()) +
                       " does not exist in this view");
}

// Shard-count knobs resolve 0 to the machine-derived default
// (util/topology.h); the read cache additionally clamps to capacity,
// the tables to their own [1, 256] bound.
std::size_t ResolveShards(std::size_t requested) {
  return requested == 0 ? util::DefaultShardCount() : requested;
}

// Bound on stale-generation retries in Read/ReadMany. With today's
// cleaner every release happens under exclusive mu_ while pins are
// taken under (at least) shared mu_, so a retry is already a
// can't-happen; the bound guards the protocol against a future
// concurrent cleaner misbehaving rather than a load pattern.
constexpr int kMaxPinRetries = 8;

// Unpins every recorded slot on scope exit — after the generation
// checks and cache insertions, so a slot is never released (and its
// bytes never overwritten) while a read that resolved into it is
// still using them.
class PinGuard {
 public:
  explicit PinGuard(SlotPins& pins) : pins_(pins) {}
  ~PinGuard() {
    for (const std::uint32_t slot : slots_) pins_.Unpin(slot);
  }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

  void Add(std::uint32_t slot) { slots_.push_back(slot); }

 private:
  SlotPins& pins_;
  std::vector<std::uint32_t> slots_;
};

}  // namespace

Lld::Lld(BlockDevice& device, const Options& options, const Geometry& geometry)
    : device_(device),
      options_(options),
      geometry_(geometry),
      owned_registry_(options.registry == nullptr
                          ? std::make_unique<obs::Registry>()
                          : nullptr),
      registry_(options.registry != nullptr ? *options.registry
                                            : *owned_registry_),
      metrics_(registry_),
      pipeline_(device, geometry_, metrics_, options.write_behind_segments),
      read_cache_(options.read_cache_blocks, geometry.block_size,
                  ResolveShards(options.read_cache_shards)),
      slot_pins_(geometry.slot_count),
      block_map_(ResolveShards(options.table_shards)),
      list_table_(ResolveShards(options.table_shards)),
      slots_(geometry.slot_count),
      writer_(geometry_, slots_, pipeline_, metrics_) {
  metrics_.read_cache_shard_count->Set(
      static_cast<std::int64_t>(read_cache_.shard_count()));
  metrics_.table_shard_count->Set(
      static_cast<std::int64_t>(block_map_.shard_count()));
  // Contention attribution: every lock this disk owns reports blocked
  // acquires into the registry, keyed by site name. (flush_mu_ was
  // bound by the pipeline's constructor.)
  metrics_.BindLock(mu_);
  read_cache_.BindLockSites([this](Mutex& mu) { metrics_.BindLock(mu); });
  block_map_.BindLockSites([this](Mutex& mu) { metrics_.BindLock(mu); });
  list_table_.BindLockSites([this](Mutex& mu) { metrics_.BindLock(mu); });
  if (options_.sampler_period_ms > 0) {
    obs::SamplerOptions sampler_options;
    sampler_options.period_ms = options_.sampler_period_ms;
    sampler_ = std::make_unique<obs::Sampler>(&registry_, sampler_options);
    for (const char* series :
         {"aru_lld_durable_lag_lsn", "aru_lld_inflight_segments",
          "aru_lld_active_arus", "aru_lld_blocks_read_total",
          "aru_lld_blocks_written_total", "aru_lld_arus_committed_total",
          "aru_lld_read_cache_hits_total", "aru_lld_read_cache_misses_total",
          "aru_lock_contended_total_lld_mu_exclusive",
          "aru_lock_contended_total_lld_mu_shared",
          "aru_lock_contended_total_lld_flush_mu_exclusive",
          "aru_lock_contended_total_lld_cache_shard_exclusive",
          "aru_lock_contended_total_lld_table_shard_exclusive"}) {
      sampler_->Track(series);
    }
    sampler_->Start();
  }
}

Lld::~Lld() = default;

Status Lld::Format(BlockDevice& device, const Options& options) {
  ARU_ASSIGN_OR_RETURN(const Geometry g, DeriveGeometry(device, options));
  ARU_RETURN_IF_ERROR(WriteSuperblock(device, g));

  // Invalidate both checkpoint regions and every slot footer so that
  // stale state from a previous format cannot masquerade as valid.
  Bytes zero_sector(g.sector_size);
  ARU_RETURN_IF_ERROR(device.Write(g.checkpoint_a_sector, zero_sector));
  ARU_RETURN_IF_ERROR(device.Write(g.checkpoint_b_sector, zero_sector));
  for (std::uint32_t slot = 0; slot < g.slot_count; ++slot) {
    const std::uint64_t last_sector =
        g.slot_first_sector(slot) + g.sectors_per_segment() - 1;
    ARU_RETURN_IF_ERROR(device.Write(last_sector, zero_sector));
  }

  CheckpointData initial;
  initial.stamp = 1;
  BlockMap empty_blocks;
  ListTable empty_lists;
  ARU_RETURN_IF_ERROR(
      WriteCheckpointRegion(device, g, initial, empty_blocks, empty_lists));
  return device.Sync();
}

Result<std::unique_ptr<Lld>> Lld::Open(BlockDevice& device,
                                       const Options& options) {
  ARU_ASSIGN_OR_RETURN(const Geometry g, ReadSuperblock(device));
  if (g.sector_size != device.sector_size()) {
    return CorruptionError("superblock sector size mismatch");
  }
  // arulint: allow(raw-new) private constructor, immediately owned
  std::unique_ptr<Lld> lld(new Lld(device, options, g));
  {
    const WriterMutexLock lock(lld->mu_);
    ARU_RETURN_IF_ERROR(lld->RecoverLocked());
  }
  return lld;
}

std::uint64_t Lld::free_blocks() const {
  const ReaderMutexLock lock(mu_);
  return geometry_.capacity_blocks - allocated_blocks_;
}

std::uint64_t Lld::free_slots() const {
  const ReaderMutexLock lock(mu_);
  return slots_.free_count();
}

// ---------------------------------------------------------------------
// Visibility: shadow → committed → persistent (paper §3.3).

BlockMeta Lld::VisibleBlock(BlockId id, AruId aru) const {
  if (const auto* node = block_versions_.LookupVisible(id, aru)) {
    return node->meta;
  }
  BlockMeta meta;  // default: allocated == false
  block_map_.Get(id, meta);
  return meta;
}

ListMeta Lld::VisibleList(ListId id, AruId aru) const {
  if (const auto* node = list_versions_.LookupVisible(id, aru)) {
    return node->meta;
  }
  ListMeta meta;  // default: exists == false
  list_table_.Get(id, meta);
  return meta;
}

void Lld::PutBlock(BlockId id, AruId state, const BlockMeta& meta,
                   Lsn gating_lsn, Lsn source_lsn) {
  block_versions_.Put(id, state, meta, gating_lsn, source_lsn);
}

void Lld::PutList(ListId id, AruId state, const ListMeta& meta,
                  Lsn gating_lsn, Lsn source_lsn) {
  list_versions_.Put(id, state, meta, gating_lsn, source_lsn);
}

// ---------------------------------------------------------------------
// List-operation executors (shared by shadow execution, simple
// operations, commit-time re-execution and recovery replay).

Status Lld::ExecInsert(AruId state, ListId list, BlockId block, BlockId pred,
                       Lsn gating_lsn, Lsn source_lsn, Touched& touched) {
  ListMeta lmeta = VisibleList(list, state);
  if (!lmeta.exists) return ListNotFound(list);
  BlockMeta bmeta = VisibleBlock(block, state);
  if (!bmeta.allocated) return BlockNotFound(block);
  if (bmeta.list.valid()) {
    return FailedPreconditionError("block " + std::to_string(block.value()) +
                                   " is already on list " +
                                   std::to_string(bmeta.list.value()));
  }

  if (pred.valid()) {
    BlockMeta pmeta = VisibleBlock(pred, state);
    if (!pmeta.allocated || pmeta.list != list) {
      return InvalidArgumentError("predecessor " +
                                  std::to_string(pred.value()) +
                                  " is not a member of list " +
                                  std::to_string(list.value()));
    }
    bmeta.successor = pmeta.successor;
    pmeta.successor = block;
    PutBlock(pred, state, pmeta, gating_lsn, source_lsn);
    touched.blocks.push_back(pred);
    if (lmeta.last == pred) {
      lmeta.last = block;
      PutList(list, state, lmeta, gating_lsn, source_lsn);
      touched.lists.push_back(list);
    }
  } else {
    bmeta.successor = lmeta.first;
    lmeta.first = block;
    if (!lmeta.last.valid()) lmeta.last = block;
    PutList(list, state, lmeta, gating_lsn, source_lsn);
    touched.lists.push_back(list);
  }
  bmeta.list = list;
  PutBlock(block, state, bmeta, gating_lsn, source_lsn);
  touched.blocks.push_back(block);
  return Status::Ok();
}

Status Lld::ExecUnlink(AruId state, BlockId block, BlockMeta& bmeta,
                       Lsn gating_lsn, Lsn source_lsn, Touched& touched) {
  const ListId list = bmeta.list;
  ListMeta lmeta = VisibleList(list, state);
  if (!lmeta.exists) {
    return CorruptionError("block " + std::to_string(block.value()) +
                           " references nonexistent list " +
                           std::to_string(list.value()));
  }
  if (lmeta.first == block) {
    lmeta.first = bmeta.successor;
    if (lmeta.last == block) lmeta.last = BlockId{};
    PutList(list, state, lmeta, gating_lsn, source_lsn);
    touched.lists.push_back(list);
  } else {
    // Predecessor search: LD keeps successor pointers only, so removal
    // walks the list from its head (paper §5.3 — the cost that
    // dominates the file-deletion overhead).
    BlockId cur = lmeta.first;
    BlockMeta cmeta;
    bool found = false;
    while (cur.valid()) {
      metrics_.predecessor_search_steps->Increment();
      cmeta = VisibleBlock(cur, state);
      if (!cmeta.allocated) {
        return CorruptionError("list " + std::to_string(list.value()) +
                               " chains through unallocated block " +
                               std::to_string(cur.value()));
      }
      if (cmeta.successor == block) {
        found = true;
        break;
      }
      cur = cmeta.successor;
    }
    if (!found) {
      return CorruptionError("block " + std::to_string(block.value()) +
                             " not reachable on its list " +
                             std::to_string(list.value()));
    }
    cmeta.successor = bmeta.successor;
    PutBlock(cur, state, cmeta, gating_lsn, source_lsn);
    touched.blocks.push_back(cur);
    if (lmeta.last == block) {
      lmeta.last = cur;
      PutList(list, state, lmeta, gating_lsn, source_lsn);
      touched.lists.push_back(list);
    }
  }
  bmeta.list = ListId{};
  bmeta.successor = BlockId{};
  return Status::Ok();
}

Status Lld::ExecDeleteBlock(AruId state, BlockId block, Lsn gating_lsn,
                            Lsn source_lsn, Touched& touched) {
  BlockMeta bmeta = VisibleBlock(block, state);
  if (!bmeta.allocated) return BlockNotFound(block);

  if (bmeta.list.valid()) {
    ARU_RETURN_IF_ERROR(
        ExecUnlink(state, block, bmeta, gating_lsn, source_lsn, touched));
  }

  PutBlock(block, state, BlockMeta{}, gating_lsn, source_lsn);
  touched.blocks.push_back(block);
  if (!state.valid()) {
    assert(allocated_blocks_ > 0);
    --allocated_blocks_;
  }
  return Status::Ok();
}

Status Lld::ExecMove(AruId state, BlockId block, ListId to_list, BlockId pred,
                     Lsn gating_lsn, Lsn source_lsn, Touched& touched) {
  if (pred == block) {
    return InvalidArgumentError("cannot move a block after itself");
  }
  BlockMeta bmeta = VisibleBlock(block, state);
  if (!bmeta.allocated) return BlockNotFound(block);
  if (!VisibleList(to_list, state).exists) return ListNotFound(to_list);
  if (pred.valid()) {
    const BlockMeta pmeta = VisibleBlock(pred, state);
    if (!pmeta.allocated || pmeta.list != to_list) {
      return InvalidArgumentError(
          "predecessor is not a member of the destination list");
    }
  }

  if (bmeta.list.valid()) {
    ARU_RETURN_IF_ERROR(
        ExecUnlink(state, block, bmeta, gating_lsn, source_lsn, touched));
    // The unlink changed list/neighbor records; write the detached
    // state so ExecInsert starts from a listless block.
    PutBlock(block, state, bmeta, gating_lsn, source_lsn);
    touched.blocks.push_back(block);
  }
  return ExecInsert(state, to_list, block, pred, gating_lsn, source_lsn,
                    touched);
}

Status Lld::ExecDeleteList(AruId state, ListId list, Lsn gating_lsn,
                           Lsn source_lsn, Touched& touched) {
  ListMeta lmeta = VisibleList(list, state);
  if (!lmeta.exists) return ListNotFound(list);

  // Free all member blocks walking from the head: no predecessor
  // searches (the "improved file deletion" path of §5.3 relies on this).
  BlockId cur = lmeta.first;
  std::uint64_t steps = 0;
  while (cur.valid()) {
    if (++steps > geometry_.capacity_blocks + 1) {
      return CorruptionError("cycle while deleting list " +
                             std::to_string(list.value()));
    }
    const BlockMeta bmeta = VisibleBlock(cur, state);
    if (!bmeta.allocated) {
      return CorruptionError("list " + std::to_string(list.value()) +
                             " chains through unallocated block " +
                             std::to_string(cur.value()));
    }
    PutBlock(cur, state, BlockMeta{}, gating_lsn, source_lsn);
    touched.blocks.push_back(cur);
    if (!state.valid()) {
      assert(allocated_blocks_ > 0);
      --allocated_blocks_;
    }
    cur = bmeta.successor;
  }

  PutList(list, state, ListMeta{}, gating_lsn, source_lsn);
  touched.lists.push_back(list);
  if (!state.valid()) {
    assert(list_count_ > 0);
    --list_count_;
  }
  return Status::Ok();
}

void Lld::PushPromotions(const Touched& touched, Lsn eff_lsn,
                         AruState* staged) {
  auto push = [&](bool is_list, std::uint64_t id) {
    mu_.AssertHeld();
    const PromotionEntry entry{is_list, id, eff_lsn};
    if (staged != nullptr) {
      staged->staged.push_back(entry);
    } else {
      promotion_fifo_.push_back(entry);
    }
  };
  for (const BlockId b : touched.blocks) push(false, b.value());
  for (const ListId l : touched.lists) push(true, l.value());
}

// ---------------------------------------------------------------------
// Promotion: committed → persistent once the backing records hit disk.

// Two-phase promotion (DESIGN.md §9). Phase one, under mu_ alone:
// drain ready FIFO entries, drop the promoted version nodes, and
// accumulate per-table update batches — program order within the batch
// preserves the FIFO's promotion order for same-id entries. Phase two:
// ApplyBatch groups the updates by shard and publishes them walking
// the shard array in ascending index order. Crash-order invariant:
// every update's summary record is already durable (eff_lsn and the
// node's own lsn are both <= the persisted horizon read at entry), so
// the tables never get ahead of what recovery would reconstruct.
void Lld::MaybePromoteLocked() {
  const Lsn horizon = writer_.persisted_lsn();
  metrics_.promotion_lag_lsn->Set(
      static_cast<std::int64_t>(next_lsn_ - 1 - horizon));
  std::vector<ShardedBlockMap::Update> block_updates;
  std::vector<ShardedListTable::Update> list_updates;
  while (!promotion_fifo_.empty() &&
         promotion_fifo_.front().eff_lsn <= horizon) {
    const PromotionEntry entry = promotion_fifo_.front();
    promotion_fifo_.pop_front();
    if (entry.is_list) {
      const ListId id{entry.id};
      if (auto* node = list_versions_.FindExact(id, ld::kNoAru);
          node != nullptr && node->lsn <= horizon) {
        list_updates.push_back(
            ShardedListTable::Update{id, node->meta, !node->meta.exists});
        list_versions_.Remove(node);
      }
    } else {
      const BlockId id{entry.id};
      if (auto* node = block_versions_.FindExact(id, ld::kNoAru);
          node != nullptr && node->lsn <= horizon) {
        block_updates.push_back(
            ShardedBlockMap::Update{id, node->meta, !node->meta.allocated});
        block_versions_.Remove(node);
      }
    }
  }
  block_map_.ApplyBatch(block_updates);
  list_table_.ApplyBatch(list_updates);
  MarkDirtyLocked(block_updates, list_updates);
  metrics_.promotion_fifo_depth->Set(
      static_cast<std::int64_t>(promotion_fifo_.size()));
}

void Lld::PromoteAllCommittedLocked() {
  std::vector<ShardedBlockMap::Update> block_updates;
  block_versions_.ForEachCommitted([&](const BlockVersions::Node& node) {
    block_updates.push_back(
        ShardedBlockMap::Update{node.id, node.meta, !node.meta.allocated});
  });
  block_versions_.ClearCommitted();
  std::vector<ShardedListTable::Update> list_updates;
  list_versions_.ForEachCommitted([&](const ListVersions::Node& node) {
    list_updates.push_back(
        ShardedListTable::Update{node.id, node.meta, !node.meta.exists});
  });
  list_versions_.ClearCommitted();
  block_map_.ApplyBatch(block_updates);
  list_table_.ApplyBatch(list_updates);
  MarkDirtyLocked(block_updates, list_updates);
  promotion_fifo_.clear();
}

// Incremental checkpoints need to know which table entries changed
// since the chain tip; every promotion batch (and the cleaner's and
// recovery's direct table writes) records the touched ids here. The
// sets hold ids, not values — the delta builder re-reads the tables at
// checkpoint time, so a block rewritten five times costs one record.
void Lld::MarkDirtyLocked(
    const std::vector<ShardedBlockMap::Update>& block_updates,
    const std::vector<ShardedListTable::Update>& list_updates) {
  if (!options_.incremental_checkpoints) return;
  for (const auto& u : block_updates) dirty_blocks_.insert(u.id.value());
  for (const auto& u : list_updates) dirty_lists_.insert(u.id.value());
}

// ---------------------------------------------------------------------
// Lists.

Result<Lld::AruState*> Lld::FindAru(AruId aru) {
  const auto it = active_arus_.find(aru);
  if (it == active_arus_.end()) {
    return NotFoundError("ARU " + std::to_string(aru.value()) +
                         " is not active");
  }
  return &it->second;
}

Status Lld::CheckAruActiveLocked(AruId aru) const {
  if (active_arus_.contains(aru)) return Status::Ok();
  return NotFoundError("ARU " + std::to_string(aru.value()) +
                       " is not active");
}

Result<ListId> Lld::NewList(AruId aru) {
  const WriterMutexLock lock(mu_);
  AruState* state = nullptr;
  if (aru.valid()) {
    ARU_ASSIGN_OR_RETURN(state, FindAru(aru));
  }
  if (list_count_ >= geometry_.max_lists) {
    return OutOfSpaceError("list table full (" +
                           std::to_string(geometry_.max_lists) + " lists)");
  }
  ARU_RETURN_IF_ERROR(MaybeCleanLocked());

  const ListId list{next_list_id_++};
  const Lsn lsn = NextLsn();
  // List allocation is always done in the merged stream and committed
  // immediately, even inside an ARU (paper §3.3).
  ARU_RETURN_IF_ERROR(
      writer_.AppendRecord(AllocListRecord{list, aru, lsn}));
  ListMeta meta;
  meta.exists = true;
  PutList(list, ld::kNoAru, meta, lsn, lsn);
  promotion_fifo_.push_back(PromotionEntry{true, list.value(), lsn});
  ++list_count_;
  if (state != nullptr) state->allocated_lists.push_back(list);

  MaybePromoteLocked();
  ARU_RETURN_IF_ERROR(ParanoidCheck());
  return list;
}

Status Lld::DeleteList(ListId list, AruId aru) {
  const WriterMutexLock lock(mu_);
  ARU_RETURN_IF_ERROR(MaybeCleanLocked());

  if (aru.valid() && options_.aru_mode == AruMode::kConcurrent) {
    ARU_ASSIGN_OR_RETURN(AruState * state, FindAru(aru));
    Touched touched;
    ARU_RETURN_IF_ERROR(
        ExecDeleteList(aru, list, NextLsn(), kLsnMax, touched));
    state->link_log.push_back(
        LinkOp{LinkOp::Kind::kDeleteList, list, BlockId{}, BlockId{}});
    return ParanoidCheck();
  }

  AruState* staged = nullptr;
  Lsn gating = kNoLsn;
  if (aru.valid()) {  // sequential mode: direct, but promotion staged
    ARU_ASSIGN_OR_RETURN(staged, FindAru(aru));
    gating = kLsnMax;
  }
  const Lsn lsn = NextLsn();
  Touched touched;
  ARU_RETURN_IF_ERROR(ExecDeleteList(ld::kNoAru, list,
                                     gating == kNoLsn ? lsn : gating, lsn,
                                     touched));
  ARU_RETURN_IF_ERROR(writer_.AppendRecord(DeleteListRecord{list, aru, lsn}));
  PushPromotions(touched, lsn, staged);
  MaybePromoteLocked();
  return ParanoidCheck();
}

Result<std::vector<BlockId>> Lld::ListBlocks(ListId list, AruId aru) {
  const ReaderMutexLock lock(mu_);
  if (aru.valid()) {
    ARU_RETURN_IF_ERROR(CheckAruActiveLocked(aru));
  }
  const ListMeta lmeta = VisibleList(list, aru);
  if (!lmeta.exists) return ListNotFound(list);
  std::vector<BlockId> blocks;
  BlockId cur = lmeta.first;
  std::uint64_t steps = 0;
  while (cur.valid()) {
    if (++steps > geometry_.capacity_blocks + 1) {
      return CorruptionError("cycle in list " + std::to_string(list.value()));
    }
    blocks.push_back(cur);
    cur = VisibleBlock(cur, aru).successor;
  }
  return blocks;
}

Result<ListId> Lld::ListOf(BlockId block, AruId aru) {
  const ReaderMutexLock lock(mu_);
  if (aru.valid()) {
    ARU_RETURN_IF_ERROR(CheckAruActiveLocked(aru));
  }
  const BlockMeta meta = VisibleBlock(block, aru);
  if (!meta.allocated) return BlockNotFound(block);
  return meta.list;
}

// ---------------------------------------------------------------------
// Blocks.

Result<BlockId> Lld::NewBlock(ListId list, BlockId predecessor, AruId aru) {
  const WriterMutexLock lock(mu_);
  AruState* state = nullptr;
  if (aru.valid()) {
    ARU_ASSIGN_OR_RETURN(state, FindAru(aru));
  }
  if (allocated_blocks_ >= geometry_.capacity_blocks) {
    return OutOfSpaceError("logical capacity exhausted");
  }
  ARU_RETURN_IF_ERROR(MaybeCleanLocked());

  // Validate against the caller's view before allocating.
  if (!VisibleList(list, aru).exists) return ListNotFound(list);
  if (predecessor.valid()) {
    const BlockMeta pmeta = VisibleBlock(predecessor, aru);
    if (!pmeta.allocated || pmeta.list != list) {
      return InvalidArgumentError("predecessor is not a member of the list");
    }
  }

  const BlockId block{next_block_id_++};
  const Lsn alloc_lsn = NextLsn();
  // Allocation happens in the merged stream, committed immediately
  // (paper §3.3): other streams cannot obtain this id, but also do not
  // see the block on any list until the allocating ARU commits.
  ARU_RETURN_IF_ERROR(
      writer_.AppendRecord(AllocBlockRecord{block, list, aru, alloc_lsn}));
  BlockMeta ameta;
  ameta.allocated = true;
  PutBlock(block, ld::kNoAru, ameta, alloc_lsn, alloc_lsn);
  promotion_fifo_.push_back(PromotionEntry{false, block.value(), alloc_lsn});
  ++allocated_blocks_;
  if (state != nullptr) state->allocated_blocks.push_back(block);

  // The insertion into the list is part of the caller's stream.
  if (aru.valid() && options_.aru_mode == AruMode::kConcurrent) {
    Touched touched;
    ARU_RETURN_IF_ERROR(ExecInsert(aru, list, block, predecessor, NextLsn(),
                                   kLsnMax, touched));
    state->link_log.push_back(
        LinkOp{LinkOp::Kind::kInsert, list, block, predecessor});
  } else {
    AruState* staged = aru.valid() ? state : nullptr;
    const Lsn lsn = NextLsn();
    Touched touched;
    ARU_RETURN_IF_ERROR(ExecInsert(ld::kNoAru, list, block, predecessor,
                                   staged != nullptr ? kLsnMax : lsn, lsn,
                                   touched));
    ARU_RETURN_IF_ERROR(writer_.AppendRecord(
        InsertRecord{list, block, predecessor, aru, lsn}));
    PushPromotions(touched, lsn, staged);
  }

  MaybePromoteLocked();
  ARU_RETURN_IF_ERROR(ParanoidCheck());
  return block;
}

Status Lld::DeleteBlock(BlockId block, AruId aru) {
  const WriterMutexLock lock(mu_);
  ARU_RETURN_IF_ERROR(MaybeCleanLocked());

  if (aru.valid() && options_.aru_mode == AruMode::kConcurrent) {
    ARU_ASSIGN_OR_RETURN(AruState * state, FindAru(aru));
    Touched touched;
    ARU_RETURN_IF_ERROR(
        ExecDeleteBlock(aru, block, NextLsn(), kLsnMax, touched));
    state->link_log.push_back(
        LinkOp{LinkOp::Kind::kDeleteBlock, ListId{}, block, BlockId{}});
    return ParanoidCheck();
  }

  AruState* staged = nullptr;
  Lsn gating = kNoLsn;
  if (aru.valid()) {
    ARU_ASSIGN_OR_RETURN(staged, FindAru(aru));
    gating = kLsnMax;
  }
  const Lsn lsn = NextLsn();
  Touched touched;
  ARU_RETURN_IF_ERROR(ExecDeleteBlock(ld::kNoAru, block,
                                      gating == kNoLsn ? lsn : gating, lsn,
                                      touched));
  ARU_RETURN_IF_ERROR(writer_.AppendRecord(DeleteBlockRecord{block, aru, lsn}));
  PushPromotions(touched, lsn, staged);
  MaybePromoteLocked();
  return ParanoidCheck();
}

Status Lld::MoveBlock(BlockId block, ListId to_list, BlockId predecessor,
                      AruId aru) {
  const WriterMutexLock lock(mu_);
  ARU_RETURN_IF_ERROR(MaybeCleanLocked());

  if (aru.valid() && options_.aru_mode == AruMode::kConcurrent) {
    ARU_ASSIGN_OR_RETURN(AruState * state, FindAru(aru));
    Touched touched;
    ARU_RETURN_IF_ERROR(ExecMove(aru, block, to_list, predecessor, NextLsn(),
                                 kLsnMax, touched));
    state->link_log.push_back(
        LinkOp{LinkOp::Kind::kMove, to_list, block, predecessor});
    return ParanoidCheck();
  }

  AruState* staged = nullptr;
  Lsn gating = kNoLsn;
  if (aru.valid()) {
    ARU_ASSIGN_OR_RETURN(staged, FindAru(aru));
    gating = kLsnMax;
  }
  const Lsn lsn = NextLsn();
  Touched touched;
  ARU_RETURN_IF_ERROR(ExecMove(ld::kNoAru, block, to_list, predecessor,
                               gating == kNoLsn ? lsn : gating, lsn,
                               touched));
  ARU_RETURN_IF_ERROR(writer_.AppendRecord(
      MoveRecord{to_list, block, predecessor, aru, lsn}));
  PushPromotions(touched, lsn, staged);
  MaybePromoteLocked();
  return ParanoidCheck();
}

Status Lld::Write(BlockId block, ByteSpan data, AruId aru) {
  if (data.size() != geometry_.block_size) {
    return InvalidArgumentError("write size " + std::to_string(data.size()) +
                                " != block size " +
                                std::to_string(geometry_.block_size));
  }
  obs::SpanTimer latency(nullptr, "lld", "write", metrics_.op_write_us);
  const WriterMutexLock lock(mu_);
  AruState* state = nullptr;
  if (aru.valid()) {
    ARU_ASSIGN_OR_RETURN(state, FindAru(aru));
  }
  ARU_RETURN_IF_ERROR(MaybeCleanLocked());

  BlockMeta meta = VisibleBlock(block, aru);
  if (!meta.allocated) return BlockNotFound(block);

  const Lsn lsn = NextLsn();
  ARU_ASSIGN_OR_RETURN(const PhysAddr phys,
                       writer_.AppendWrite(WriteRecord{block, aru, lsn, {}},
                                           data));
  meta.phys = phys;
  meta.ts = lsn;

  if (aru.valid() && options_.aru_mode == AruMode::kConcurrent) {
    // Shadow version: local to the ARU until EndARU merges it.
    PutBlock(block, aru, meta, lsn, lsn);
  } else if (state != nullptr) {
    // Sequential-mode ARU: committed state directly, promotion staged.
    PutBlock(block, ld::kNoAru, meta, kLsnMax, lsn);
    state->staged.push_back(PromotionEntry{false, block.value(), kNoLsn});
  } else {
    PutBlock(block, ld::kNoAru, meta, lsn, lsn);
    promotion_fifo_.push_back(PromotionEntry{false, block.value(), lsn});
  }

  MaybePromoteLocked();
  return ParanoidCheck();
}

Status Lld::ReadBlockAt(PhysAddr phys, MutableByteSpan out) {
  const std::uint64_t sector =
      geometry_.slot_first_sector(phys.slot()) +
      static_cast<std::uint64_t>(phys.index()) *
          (geometry_.block_size / geometry_.sector_size);
  return device_.Read(sector, out);
}

// The parallel read path. The shared critical section covers only
// metadata resolution (visibility lookup, open-segment / in-flight
// serving — cheap memcpys) and the slot pin; the cache probe and the
// blocking device read run with no lock held, so readers overlap with
// each other and with mutators. Coherence out of the lock:
//   - the pin (taken under the shared lock, before it drops) keeps the
//     slot from being released, so its bytes cannot be overwritten;
//   - the generation is validated after the device read and before the
//     cache insert, so a recycled slot's stale bytes are neither
//     returned nor cached — the reader re-resolves instead (bounded by
//     kMaxPinRetries, counted in aru_lld_slot_pin_retries_total);
//   - cache entries themselves are coherent because InvalidateSlot runs
//     (under exclusive mu_) before a released slot can be rewritten,
//     and inserts only happen while the slot is pinned and gen-checked.
Status Lld::Read(BlockId block, MutableByteSpan out, AruId aru) {
  if (out.size() != geometry_.block_size) {
    return InvalidArgumentError("read size != block size");
  }
  obs::SpanTimer latency(nullptr, "lld", "read", metrics_.op_read_us);
  for (int attempt = 0; attempt < kMaxPinRetries; ++attempt) {
    PinGuard pins(slot_pins_);
    PhysAddr phys;
    std::uint64_t gen = 0;
    {
      const std::uint64_t lock_start_us = obs::NowUs();
      const ReaderMutexLock lock(mu_);
      if (aru.valid()) {
        ARU_RETURN_IF_ERROR(CheckAruActiveLocked(aru));
      }
      const BlockMeta meta = VisibleBlock(block, aru);
      if (!meta.allocated) return BlockNotFound(block);
      if (attempt == 0) metrics_.blocks_read->Increment();
      if (!meta.phys.valid()) {
        std::fill(out.begin(), out.end(), std::byte{0});
        return Status::Ok();
      }
      if (writer_.InOpenSegment(meta.phys)) {
        metrics_.reads_from_open_segment->Increment();
        writer_.ReadOpenBlock(meta.phys, out);
        return Status::Ok();
      }
      // Sealed but not yet durable: serve from the pinned in-flight
      // buffer (the write-behind extension of the open-segment path
      // above; ReadBuffered is internally synchronized by flush_mu_).
      if (pipeline_.ReadBuffered(meta.phys, out)) {
        metrics_.reads_from_inflight_segment->Increment();
        return Status::Ok();
      }
      phys = meta.phys;
      gen = slot_pins_.generation(phys.slot());
      slot_pins_.Pin(phys.slot());
      pins.Add(phys.slot());
      metrics_.read_lock_shared_us->Record(obs::NowUs() - lock_start_us);
    }
    // mu_ is dropped; the pin keeps the slot's bytes in place.
    if (read_cache_.Lookup(phys, out)) {
      metrics_.read_cache_hits->Increment();
      return Status::Ok();
    }
    metrics_.read_cache_misses->Increment();
    ARU_RETURN_IF_ERROR(ReadBlockAt(phys, out));
    if (slot_pins_.generation(phys.slot()) == gen) {
      read_cache_.Insert(phys, out);
      return Status::Ok();
    }
    metrics_.slot_pin_retries->Increment();
  }
  return UnavailableError("read retries exhausted: slot generation kept "
                          "changing under a resolved physical address");
}

Status Lld::ReadMany(std::span<const BlockId> blocks, MutableByteSpan out,
                     AruId aru) {
  const std::uint32_t bs = geometry_.block_size;
  if (out.size() != blocks.size() * bs) {
    return InvalidArgumentError("ReadMany buffer size mismatch");
  }

  // Same protocol as Read, vectorized. Each attempt: (1) under the
  // shared lock, resolve every unfinished block, serve the in-memory
  // sources (zero-fill / open segment / in-flight buffer) inline, and
  // pin + generation-stamp the rest; (2) with no lock held, probe the
  // cache, coalesce consecutive on-disk runs (same slot, adjacent
  // block indexes) into single device requests, and read; (3) validate
  // generations — stale targets stay unfinished and re-resolve on the
  // next attempt.
  struct Target {
    PhysAddr phys;
    std::uint64_t gen = 0;
    bool pending = false;  // pinned this attempt, awaiting device data
    bool done = false;
  };
  std::vector<Target> targets(blocks.size());
  const std::uint32_t sectors_per_block = bs / geometry_.sector_size;

  for (int attempt = 0; attempt < kMaxPinRetries; ++attempt) {
    PinGuard pins(slot_pins_);
    bool any_pending = false;
    {
      const std::uint64_t lock_start_us = obs::NowUs();
      const ReaderMutexLock lock(mu_);
      if (aru.valid()) {
        ARU_RETURN_IF_ERROR(CheckAruActiveLocked(aru));
      }
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        Target& target = targets[i];
        if (target.done) continue;
        MutableByteSpan slice = out.subspan(i * bs, bs);
        const BlockMeta meta = VisibleBlock(blocks[i], aru);
        if (!meta.allocated) return BlockNotFound(blocks[i]);
        if (attempt == 0) metrics_.blocks_read->Increment();
        if (!meta.phys.valid()) {
          std::fill(slice.begin(), slice.end(), std::byte{0});
          target.done = true;
          continue;
        }
        if (writer_.InOpenSegment(meta.phys)) {
          metrics_.reads_from_open_segment->Increment();
          writer_.ReadOpenBlock(meta.phys, slice);
          target.done = true;
          continue;
        }
        if (pipeline_.ReadBuffered(meta.phys, slice)) {
          metrics_.reads_from_inflight_segment->Increment();
          target.done = true;
          continue;
        }
        target.phys = meta.phys;
        target.gen = slot_pins_.generation(meta.phys.slot());
        slot_pins_.Pin(meta.phys.slot());
        pins.Add(meta.phys.slot());
        target.pending = true;
        any_pending = true;
      }
      metrics_.read_lock_shared_us->Record(obs::NowUs() - lock_start_us);
    }
    if (!any_pending) return Status::Ok();

    // Out of the lock: cache probes first (a hit needs no generation
    // check — entries are invalidated before a slot can be rewritten,
    // and inserted only while pinned and gen-validated).
    for (std::size_t i = 0; i < targets.size(); ++i) {
      Target& target = targets[i];
      if (!target.pending) continue;
      if (read_cache_.Lookup(target.phys, out.subspan(i * bs, bs))) {
        metrics_.read_cache_hits->Increment();
        target.pending = false;
        target.done = true;
      } else {
        metrics_.read_cache_misses->Increment();
      }
    }

    // Device reads, coalescing runs of physically-consecutive pending
    // targets into one request.
    std::size_t i = 0;
    while (i < targets.size()) {
      const Target& target = targets[i];
      if (!target.pending) {
        ++i;
        continue;
      }
      std::size_t run = 1;
      while (i + run < targets.size()) {
        const Target& next = targets[i + run];
        if (!next.pending || next.phys.slot() != target.phys.slot() ||
            next.phys.index() != target.phys.index() + run) {
          break;
        }
        ++run;
      }
      const std::uint64_t sector =
          geometry_.slot_first_sector(target.phys.slot()) +
          static_cast<std::uint64_t>(target.phys.index()) * sectors_per_block;
      ARU_RETURN_IF_ERROR(device_.Read(sector, out.subspan(i * bs, run * bs)));
      i += run;
    }

    // Generation validation: good targets are cached and finished;
    // stale ones re-resolve next attempt with fresh pins.
    bool all_done = true;
    for (std::size_t i2 = 0; i2 < targets.size(); ++i2) {
      Target& target = targets[i2];
      if (!target.pending) continue;
      target.pending = false;
      if (slot_pins_.generation(target.phys.slot()) == target.gen) {
        read_cache_.Insert(target.phys, out.subspan(i2 * bs, bs));
        target.done = true;
      } else {
        metrics_.slot_pin_retries->Increment();
        all_done = false;
      }
    }
    if (all_done) return Status::Ok();
  }
  return UnavailableError("ReadMany retries exhausted: slot generation kept "
                          "changing under resolved physical addresses");
}

// ---------------------------------------------------------------------
// ARUs.

Result<AruId> Lld::BeginARU() {
  const WriterMutexLock lock(mu_);
  if (options_.aru_mode == AruMode::kSequential && !active_arus_.empty()) {
    return FailedPreconditionError(
        "sequential-ARU mode supports one ARU at a time");
  }
  const AruId aru{next_aru_id_++};
  AruState state;
  state.id = aru;
  state.begin_lsn = NextLsn();
  state.begin_us = obs::NowUs();
  active_arus_.emplace(aru, std::move(state));
  metrics_.arus_begun->Increment();
  metrics_.active_arus->Set(static_cast<std::int64_t>(active_arus_.size()));
  return aru;
}

Status Lld::EndARU(AruId aru) {
  // Root span of the commit path: the group-commit wait, any seal this
  // thread performs (with its hand-off / synchronous device write), and
  // the flusher's device write for segments this commit enqueued all
  // nest under it — SpanBreakdown over a trace snapshot gives the
  // commit's critical path.
  obs::Span commit_span(&obs::Tracer::Default(), "lld", "end_aru",
                        metrics_.commit_us);
  std::uint64_t begin_us = 0;
  Lsn durable_target = kNoLsn;
  Status status;
  {
    const WriterMutexLock lock(mu_);
    ARU_ASSIGN_OR_RETURN(AruState * state, FindAru(aru));
    begin_us = state->begin_us;
    status = options_.aru_mode == AruMode::kConcurrent
                 ? EndAruConcurrentLocked(*state)
                 : EndAruSequentialLocked(*state);
    active_arus_.erase(aru);
    metrics_.active_arus->Set(static_cast<std::int64_t>(active_arus_.size()));
    if (status.ok() && options_.durable_commits) {
      durable_target = writer_.last_appended_lsn();
    }
  }
  if (status.ok() && durable_target != kNoLsn) {
    // Group commit, leader/follower: the commit record was appended
    // above; the seal is deferred until the pipeline is idle. While a
    // segment write is in flight every committer blocks in WaitDurable
    // (which also wakes when the queue drains), and their commit
    // records accumulate in the open segment; when the write completes,
    // whichever uncovered committer wakes first becomes the leader and
    // seals once, covering the whole batch with one device write.
    while (true) {
      const Status waited = pipeline_.WaitDurable(durable_target);
      if (!waited.ok()) {
        status = waited;
        break;
      }
      if (pipeline_.durable_lsn() >= durable_target) break;
      const WriterMutexLock lock(mu_);
      if (writer_.enqueued_lsn() < durable_target) {
        status = writer_.SealIfOpen();
        if (!status.ok()) break;
      }
    }
  }
  commit_span.Finish();

  const WriterMutexLock lock(mu_);
  if (status.ok()) {
    metrics_.arus_committed->Increment();
    const std::uint64_t lifetime = obs::NowUs() - begin_us;
    metrics_.aru_lifetime_us->Record(lifetime);
    obs::Tracer::Default().RecordComplete("lld", "aru", begin_us, lifetime);
  }
  MaybePromoteLocked();
  ARU_RETURN_IF_ERROR(status);
  return ParanoidCheck();
}

Status Lld::EndAruConcurrentLocked(AruState& state) {
  const AruId aru = state.id;

  // 1. Re-execute the list operation log against the committed state,
  //    generating the summary entries (paper §4). Gating LSNs are held
  //    at kLsnMax until the commit record's LSN is known.
  Touched touched;
  for (const LinkOp& op : state.link_log) {
    metrics_.link_log_entries_replayed->Increment();
    const Lsn lsn = NextLsn();
    Status applied;
    switch (op.kind) {
      case LinkOp::Kind::kInsert:
        applied = ExecInsert(ld::kNoAru, op.list, op.block, op.pred, kLsnMax,
                             lsn, touched);
        if (applied.ok()) {
          applied = writer_.AppendRecord(
              InsertRecord{op.list, op.block, op.pred, aru, lsn});
        }
        break;
      case LinkOp::Kind::kDeleteBlock:
        applied = ExecDeleteBlock(ld::kNoAru, op.block, kLsnMax, lsn, touched);
        if (applied.ok()) {
          applied = writer_.AppendRecord(DeleteBlockRecord{op.block, aru, lsn});
        }
        break;
      case LinkOp::Kind::kDeleteList:
        applied = ExecDeleteList(ld::kNoAru, op.list, kLsnMax, lsn, touched);
        if (applied.ok()) {
          applied = writer_.AppendRecord(DeleteListRecord{op.list, aru, lsn});
        }
        break;
      case LinkOp::Kind::kMove:
        applied = ExecMove(ld::kNoAru, op.block, op.list, op.pred, kLsnMax,
                           lsn, touched);
        if (applied.ok()) {
          applied = writer_.AppendRecord(
              MoveRecord{op.list, op.block, op.pred, aru, lsn});
        }
        break;
    }
    if (!applied.ok()) {
      if (applied.code() == StatusCode::kIoError ||
          applied.code() == StatusCode::kUnavailable ||
          applied.code() == StatusCode::kOutOfSpace) {
        return applied;  // substrate failure: surface it
      }
      // The operation no longer applies (a concurrent stream committed
      // a conflicting change first). ARUs provide no concurrency
      // control; the op is skipped and commit order decides.
      ARU_LOG(kWarning) << "EndARU: skipping inapplicable list op: "
                        << applied;
    }
  }

  // 2. The commit record: everything before it becomes effective.
  const Lsn commit_lsn = NextLsn();
  ARU_RETURN_IF_ERROR(writer_.AppendRecord(CommitRecord{aru, commit_lsn}));

  // 3. Merge the shadow versions into the committed state. Shadow
  //    records win over whatever the link replay wrote (they are the
  //    newest versions in this stream) — except versions of identifiers
  //    a conflicting stream already deleted from the committed state:
  //    those are dropped, exactly as recovery replay would drop them
  //    (their kWrite records target a block with no committed
  //    existence).
  std::vector<BlockId> merged_blocks;
  block_versions_.MergeIntoCommitted(
      aru, commit_lsn, [](const BlockMeta&) {},
      [this](BlockId id, const BlockMeta& shadow_meta) {
        mu_.AssertHeld();
        // A shadow deletion of an already-deleted block is a no-op;
        // a shadow write/insert of a deleted block must not resurrect
        // it. Either way: if the committed view says the block no
        // longer exists, the shadow version dies with the ARU's claim
        // to it. (The ARU's own uncommitted state is not consulted —
        // kNoAru sees committed → persistent only.)
        return shadow_meta.allocated &&
               !VisibleBlock(id, ld::kNoAru).allocated;
      },
      merged_blocks);
  std::vector<ListId> merged_lists;
  list_versions_.MergeIntoCommitted(
      aru, commit_lsn, [](const ListMeta&) {},
      [this](ListId id, const ListMeta& shadow_meta) {
        mu_.AssertHeld();
        return shadow_meta.exists && !VisibleList(id, ld::kNoAru).exists;
      },
      merged_lists);

  // 4. Release gating: restamp replay-touched committed records and
  //    queue promotions, all at the commit LSN (ARUs serialize by the
  //    time of the EndARU operation).
  for (const BlockId b : touched.blocks) {
    if (auto* node = block_versions_.FindExact(b, ld::kNoAru);
        node != nullptr && node->lsn == kLsnMax) {
      node->lsn = commit_lsn;
    }
  }
  for (const ListId l : touched.lists) {
    if (auto* node = list_versions_.FindExact(l, ld::kNoAru);
        node != nullptr && node->lsn == kLsnMax) {
      node->lsn = commit_lsn;
    }
  }
  PushPromotions(touched, commit_lsn, nullptr);
  for (const BlockId b : merged_blocks) {
    promotion_fifo_.push_back(PromotionEntry{false, b.value(), commit_lsn});
  }
  for (const ListId l : merged_lists) {
    promotion_fifo_.push_back(PromotionEntry{true, l.value(), commit_lsn});
  }
  return Status::Ok();
}

Status Lld::EndAruSequentialLocked(AruState& state) {
  const Lsn commit_lsn = NextLsn();
  ARU_RETURN_IF_ERROR(writer_.AppendRecord(CommitRecord{state.id, commit_lsn}));
  for (PromotionEntry& entry : state.staged) {
    entry.eff_lsn = commit_lsn;
    if (entry.is_list) {
      if (auto* node = list_versions_.FindExact(ListId{entry.id}, ld::kNoAru);
          node != nullptr && node->lsn == kLsnMax) {
        node->lsn = commit_lsn;
      }
    } else {
      if (auto* node = block_versions_.FindExact(BlockId{entry.id}, ld::kNoAru);
          node != nullptr && node->lsn == kLsnMax) {
        node->lsn = commit_lsn;
      }
    }
    promotion_fifo_.push_back(entry);
  }
  state.staged.clear();
  return Status::Ok();
}

Status Lld::AbortARU(AruId aru) {
  const WriterMutexLock lock(mu_);
  if (options_.aru_mode == AruMode::kSequential) {
    return FailedPreconditionError(
        "the sequential-ARU prototype cannot abort (operations were "
        "applied to the committed state directly)");
  }
  ARU_ASSIGN_OR_RETURN(AruState * state, FindAru(aru));

  const Lsn abort_lsn = NextLsn();
  ARU_RETURN_IF_ERROR(writer_.AppendRecord(AbortRecord{aru, abort_lsn}));

  block_versions_.DropState(aru, [](const BlockMeta&) {});
  list_versions_.DropState(aru, [](const ListMeta&) {});

  // Allocation is committed immediately, so ids handed to this ARU
  // survive the abort as allocated-but-listless garbage unless freed
  // here (recovery's consistency check would reclaim them after a
  // crash; AbortARU reclaims them eagerly).
  for (const BlockId block : state->allocated_blocks) {
    const BlockMeta meta = VisibleBlock(block, ld::kNoAru);
    if (!meta.allocated || meta.list.valid()) continue;
    const Lsn lsn = NextLsn();
    Touched touched;
    ARU_RETURN_IF_ERROR(
        ExecDeleteBlock(ld::kNoAru, block, lsn, lsn, touched));
    ARU_RETURN_IF_ERROR(
        writer_.AppendRecord(DeleteBlockRecord{block, ld::kNoAru, lsn}));
    PushPromotions(touched, lsn, nullptr);
  }
  for (const ListId list : state->allocated_lists) {
    const ListMeta meta = VisibleList(list, ld::kNoAru);
    if (!meta.exists || meta.first.valid()) continue;
    const Lsn lsn = NextLsn();
    Touched touched;
    ARU_RETURN_IF_ERROR(ExecDeleteList(ld::kNoAru, list, lsn, lsn, touched));
    ARU_RETURN_IF_ERROR(
        writer_.AppendRecord(DeleteListRecord{list, ld::kNoAru, lsn}));
    PushPromotions(touched, lsn, nullptr);
  }

  active_arus_.erase(aru);
  metrics_.arus_aborted->Increment();
  metrics_.active_arus->Set(static_cast<std::int64_t>(active_arus_.size()));
  MaybePromoteLocked();
  return ParanoidCheck();
}

Status Lld::Flush() {
  // Seal under the lock, then wait for the durable horizon with the
  // lock released: concurrent streams keep appending into the next
  // segment while this caller's segments drain through the flusher
  // (and any number of Flush callers ride the same device writes).
  Lsn target = kNoLsn;
  {
    const WriterMutexLock lock(mu_);
    ARU_RETURN_IF_ERROR(writer_.SealIfOpen());
    target = writer_.enqueued_lsn();
  }
  ARU_RETURN_IF_ERROR(pipeline_.WaitDurable(target));
  ARU_RETURN_IF_ERROR(device_.Sync());
  const WriterMutexLock lock(mu_);
  MaybePromoteLocked();
  metrics_.flushes->Increment();
  return ParanoidCheck();
}

// ---------------------------------------------------------------------
// Administration.

Status Lld::Checkpoint() {
  const WriterMutexLock lock(mu_);
  return TakeCheckpointLocked();
}

Status Lld::Clean() {
  const WriterMutexLock lock(mu_);
  return RunCleanerLocked();
}

Status Lld::Close() {
  // A closed disk samples nothing (and the final checkpoint below must
  // not race a sampler reading the registry mid-teardown in tests that
  // destroy the registry right after Close).
  if (sampler_ != nullptr) sampler_->Stop();
  std::vector<AruId> to_abort;
  {
    const WriterMutexLock lock(mu_);
    for (const auto& [id, state] : active_arus_) to_abort.push_back(id);
  }
  for (const AruId aru : to_abort) {
    ARU_RETURN_IF_ERROR(AbortARU(aru));
  }
  const WriterMutexLock lock(mu_);
  ARU_RETURN_IF_ERROR(writer_.SealIfOpen());
  ARU_RETURN_IF_ERROR(pipeline_.Drain());
  ARU_RETURN_IF_ERROR(device_.Sync());
  MaybePromoteLocked();
  return TakeCheckpointLocked();
}

Status Lld::RelocateShadowSourcesLocked() {
  // A shadow write whose data already reached disk pins checkpoint
  // coverage at its summary record: the record must stay replayable
  // until its ARU commits. A long-lived ARU would thus hold every
  // later segment hostage (cleaned slots could never be released).
  // Re-emitting the write — same block, same ARU tag, fresh segment —
  // moves the pin to the head of the log; within-ARU replay ordering by
  // record LSN makes the newer copy win and the old one dead.
  //
  // Only concurrent-mode shadow records need this: committed records
  // are fully promoted after the seal below, and the sequential-mode
  // prototype (which applies ARU operations in place and keeps no
  // re-executable operation log) simply holds coverage while its one
  // ARU is open — mirroring the original prototype's limitation.
  struct Relocation {
    BlockId block;
    AruId owner;
    PhysAddr phys;
    Lsn op_lsn;
  };
  std::vector<Relocation> relocations;
  const Lsn persisted = writer_.persisted_lsn();
  block_versions_.ForEachAll([&](const BlockVersions::Node& node) {
    if (node.owner.valid() && node.meta.phys.valid() &&
        node.source_lsn <= persisted) {
      relocations.push_back(
          Relocation{node.id, node.owner, node.meta.phys, node.lsn});
    }
  });
  if (relocations.empty()) return Status::Ok();

  Bytes data(geometry_.block_size);
  for (const Relocation& relocation : relocations) {
    if (writer_.InOpenSegment(relocation.phys)) continue;
    const std::uint64_t sector =
        geometry_.slot_first_sector(relocation.phys.slot()) +
        static_cast<std::uint64_t>(relocation.phys.index()) *
            (geometry_.block_size / geometry_.sector_size);
    ARU_RETURN_IF_ERROR(device_.Read(sector, data));
    const Lsn lsn = NextLsn();
    ARU_ASSIGN_OR_RETURN(
        const PhysAddr phys,
        writer_.AppendWrite(
            WriteRecord{relocation.block, relocation.owner, lsn, {}}, data));
    auto* node = block_versions_.FindExact(relocation.block,
                                           relocation.owner);
    if (node == nullptr || node->meta.phys != relocation.phys) {
      continue;  // superseded meanwhile (cannot happen under the lock)
    }
    node->meta.phys = phys;
    node->meta.ts = lsn;
    node->source_lsn = lsn;
  }
  return Status::Ok();
}

Status Lld::TakeCheckpointLocked() {
  ARU_RETURN_IF_ERROR(RelocateShadowSourcesLocked());
  ARU_RETURN_IF_ERROR(writer_.SealIfOpen());
  // Drain barrier: checkpoint coverage walks kWritten slots, and a
  // covered slot may be released for reuse — both require the segments
  // to actually be on the device, not queued behind the flusher.
  ARU_RETURN_IF_ERROR(pipeline_.Drain());
  MaybePromoteLocked();

  // A checkpoint may cover a segment only if no live in-memory record
  // still depends on one of its summary records.
  const Lsn min_source = std::min(block_versions_.MinSourceLsn(),
                                  list_versions_.MinSourceLsn());
  std::uint64_t covered = last_covered_seq_;
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    const SlotInfo& info = slots_[slot];
    if ((info.state == SlotState::kWritten ||
         info.state == SlotState::kPendingFree) &&
        info.last_lsn < min_source) {
      covered = std::max(covered, info.seq);
    }
  }

  const std::uint64_t parent_stamp = checkpoint_stamp_;
  CheckpointData data;
  data.stamp = ++checkpoint_stamp_;
  data.covered_seq = covered;
  data.next_lsn = next_lsn_;
  data.next_seq = writer_.next_seq();
  data.next_block_id = next_block_id_;
  data.next_list_id = next_list_id_;
  data.next_aru_id = next_aru_id_;
  data.allocated_blocks = allocated_blocks_;

  // Incremental path: append a delta image carrying only the entries
  // dirtied since the chain tip. Requires a live chain to extend
  // (ckpt_used_bytes_ > 0) and a chain shorter than the rebase
  // interval — a bounded chain bounds both recovery's delta replay and
  // the blast radius of a corrupt region.
  bool wrote_delta = false;
  if (options_.incremental_checkpoints && ckpt_used_bytes_ > 0 &&
      ckpt_delta_images_ < options_.checkpoint_rebase_interval) {
    std::vector<ckptfmt::DeltaRecord> records;
    records.reserve(dirty_blocks_.size() + dirty_lists_.size());
    for (const std::uint64_t raw : dirty_blocks_) {
      const BlockId id{raw};
      BlockMeta meta;
      if (block_map_.Get(id, meta)) {
        records.push_back(ckptfmt::DeltaBlockSetRecord{
            raw, meta.phys.encoded(), meta.successor.value(),
            meta.list.value(), meta.ts});
      } else {
        records.push_back(ckptfmt::DeltaBlockEraseRecord{raw});
      }
    }
    for (const std::uint64_t raw : dirty_lists_) {
      const ListId id{raw};
      ListMeta meta;
      if (list_table_.Get(id, meta)) {
        records.push_back(ckptfmt::DeltaListSetRecord{
            raw, meta.first.value(), meta.last.value()});
      } else {
        records.push_back(ckptfmt::DeltaListEraseRecord{raw});
      }
    }
    data.kind = kCheckpointKindDelta;
    data.parent_stamp = parent_stamp;
    const CheckpointChainInfo chain{ckpt_region_, parent_stamp,
                                    ckpt_used_bytes_, ckpt_delta_images_};
    auto appended =
        AppendCheckpointDelta(device_, geometry_, chain, data, records);
    if (appended.ok()) {
      ARU_RETURN_IF_ERROR(device_.Sync());
      ckpt_used_bytes_ += *appended;
      ++ckpt_delta_images_;
      metrics_.checkpoints_delta->Increment();
      wrote_delta = true;
    } else if (appended.status().code() != StatusCode::kOutOfSpace) {
      return appended.status();
    }
    // kOutOfSpace: the region cannot hold another delta — fall through
    // to a full rebase in the other region.
  }

  if (!wrote_delta) {
    data.kind = kCheckpointKindFull;
    data.parent_stamp = 0;
    // Flat snapshots for the checkpoint codec. Point-in-time
    // consistency: every table mutator runs under exclusive mu_, which
    // this function holds, so walking the shards one lock at a time
    // observes a frozen table.
    BlockMap block_snapshot;
    ListTable list_snapshot;
    block_map_.SnapshotInto(block_snapshot);
    list_table_.SnapshotInto(list_snapshot);
    // A full image always starts a fresh chain in the region the
    // current chain does NOT occupy, so a torn write here can never
    // destroy the newest durable checkpoint. For pure-full histories
    // this degenerates to the classic stamp-parity alternation.
    const std::uint64_t target = 1 - ckpt_region_;
    const Bytes encoded = EncodeCheckpoint(data, block_snapshot,
                                           list_snapshot);
    ARU_ASSIGN_OR_RETURN(const std::uint64_t padded,
                         WriteCheckpointImage(device_, geometry_, target,
                                              /*offset=*/0, encoded));
    ARU_RETURN_IF_ERROR(device_.Sync());
    ckpt_region_ = target;
    ckpt_used_bytes_ = padded;
    ckpt_delta_images_ = 0;
    metrics_.checkpoints_full->Increment();
  }
  dirty_blocks_.clear();
  dirty_lists_.clear();
  metrics_.checkpoint_delta_chain->Set(
      static_cast<std::int64_t>(ckpt_delta_images_));
  last_covered_seq_ = covered;
  // Release covered PendingFree slots for reuse. ReleasePending skips
  // slots still pinned by in-flight readers (they stay PendingFree for
  // a later checkpoint) and bumps the generation of each released slot;
  // the cache invalidation below runs before the slot can be re-opened
  // (both happen under exclusive mu_), so no stale entry survives into
  // the slot's next life.
  for (const std::uint32_t slot : slots_.ReleasePending(covered, slot_pins_)) {
    read_cache_.InvalidateSlot(slot);
  }
  metrics_.checkpoints->Increment();
  return Status::Ok();
}

}  // namespace aru::lld
