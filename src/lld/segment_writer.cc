#include "lld/segment_writer.h"

#include <cassert>
#include <cstring>

#include "obs/trace.h"
#include "util/crc32.h"

namespace aru::lld {

SegmentWriter::SegmentWriter(const Geometry& geometry, SlotTable& slots,
                             SegmentPipeline& pipeline, LldMetrics& metrics)
    : geometry_(geometry),
      slots_(slots),
      pipeline_(pipeline),
      metrics_(metrics) {
  buffer_.resize(geometry_.segment_size);
}

bool SegmentWriter::Fits(std::size_t data_bytes,
                         std::size_t record_bytes) const {
  const std::size_t usable = geometry_.segment_size - kFooterSize;
  return data_bytes_ + data_bytes + records_.size() + record_bytes <= usable;
}

std::size_t SegmentWriter::open_room() const {
  if (!open_) return 0;
  const std::size_t usable = geometry_.segment_size - kFooterSize;
  return usable - data_bytes_ - records_.size();
}

Status SegmentWriter::Open() {
  assert(!open_);
  const std::uint32_t slot = slots_.NextFree(slot_hint_);
  if (slot == slots_.size()) {
    return OutOfSpaceError("no free segment slots");
  }
  slots_[slot].state = SlotState::kOpen;
  open_ = true;
  open_slot_ = slot;
  slot_hint_ = (slot + 1) % slots_.size();
  std::memset(buffer_.data(), 0, buffer_.size());
  data_bytes_ = 0;
  data_blocks_ = 0;
  records_.clear();
  record_count_ = 0;
  last_lsn_in_segment_ = kNoLsn;
  return Status::Ok();
}

Status SegmentWriter::Seal() {
  assert(open_);
  if (data_blocks_ == 0 && record_count_ == 0) {
    // Nothing buffered: return the slot untouched.
    slots_[open_slot_].state = SlotState::kFree;
    open_ = false;
    return Status::Ok();
  }

  obs::SpanTimer span(&obs::Tracer::Default(), "lld", "segment_seal",
                      metrics_.seal_us);
  span.SetArg("records", record_count_);

  // Place the summary directly before the footer.
  const std::size_t summary_at =
      geometry_.segment_size - kFooterSize - records_.size();
  assert(summary_at >= data_bytes_);
  std::memcpy(buffer_.data() + summary_at, records_.data(), records_.size());

  SegmentFooter footer;
  footer.seq = next_seq_++;
  footer.last_lsn = last_lsn_in_segment_;
  footer.summary_len = static_cast<std::uint32_t>(records_.size());
  footer.record_count = record_count_;
  footer.summary_crc = Crc32c(records_);
  EncodeFooter(footer, MutableByteSpan(buffer_).last(kFooterSize));

  // Hand-off point: the pipeline takes the buffer (writing it inline at
  // depth 0, or queueing it for the flusher thread) and gives back a
  // replacement so the next segment can fill immediately. On failure
  // the segment stays open and re-sealable, as before.
  ARU_RETURN_IF_ERROR(
      pipeline_.Enqueue(geometry_.slot_first_sector(open_slot_),
                        last_lsn_in_segment_, open_slot_, data_blocks_,
                        buffer_));
  if (last_lsn_in_segment_ != kNoLsn) enqueued_lsn_ = last_lsn_in_segment_;

  // The slot is accounted written from the moment of hand-off. It
  // cannot be re-opened while the segment is still in flight: release
  // requires a checkpoint, and checkpoints drain the pipeline first.
  SlotInfo& info = slots_[open_slot_];
  info.state = SlotState::kWritten;
  info.seq = footer.seq;
  info.last_lsn = footer.last_lsn;

  metrics_.segments_written->Increment();
  const std::size_t usable = geometry_.segment_size - kFooterSize;
  metrics_.segment_fill_percent->Record(
      (data_bytes_ + records_.size()) * 100 / usable);
  const std::uint32_t max_blocks = geometry_.blocks_per_segment_max();
  if (data_blocks_ < max_blocks && open_room() > geometry_.block_size) {
    metrics_.partial_segments_written->Increment();
  }
  metrics_.bytes_written_to_disk->Add(geometry_.segment_size);
  open_ = false;
  return Status::Ok();
}

Status SegmentWriter::SealIfOpen() {
  if (!open_) return Status::Ok();
  return Seal();
}

Result<PhysAddr> SegmentWriter::AppendDataAndRecord(Record record,
                                                    ByteSpan data) {
  assert(data.size() == geometry_.block_size);
  if (open_ && !Fits(data.size(), kMaxRecordSize)) {
    ARU_RETURN_IF_ERROR(Seal());
  }
  if (!open_) {
    ARU_RETURN_IF_ERROR(Open());
  }
  const PhysAddr phys(open_slot_, data_blocks_);
  std::memcpy(buffer_.data() + data_bytes_, data.data(), data.size());
  data_bytes_ += data.size();
  ++data_blocks_;

  // Fill in the physical address now that it is known.
  if (auto* w = std::get_if<WriteRecord>(&record)) {
    w->phys = phys;
  } else {
    std::get<RewriteRecord>(record).phys = phys;
  }
  EncodeRecord(record, records_);
  ++record_count_;
  last_lsn_in_segment_ = RecordLsn(record);
  last_appended_lsn_ = last_lsn_in_segment_;
  return phys;
}

Result<PhysAddr> SegmentWriter::AppendWrite(WriteRecord record,
                                            ByteSpan data) {
  metrics_.blocks_written->Increment();
  return AppendDataAndRecord(record, data);
}

Result<PhysAddr> SegmentWriter::AppendRewrite(RewriteRecord record,
                                              ByteSpan data) {
  return AppendDataAndRecord(record, data);
}

Status SegmentWriter::AppendRecord(const Record& record) {
  if (open_ && !Fits(0, kMaxRecordSize)) {
    ARU_RETURN_IF_ERROR(Seal());
  }
  if (!open_) {
    ARU_RETURN_IF_ERROR(Open());
  }
  EncodeRecord(record, records_);
  ++record_count_;
  last_lsn_in_segment_ = RecordLsn(record);
  last_appended_lsn_ = last_lsn_in_segment_;
  return Status::Ok();
}

void SegmentWriter::ReadOpenBlock(PhysAddr phys, MutableByteSpan out) const {
  assert(InOpenSegment(phys));
  assert(out.size() == geometry_.block_size);
  const std::size_t offset =
      static_cast<std::size_t>(phys.index()) * geometry_.block_size;
  assert(offset + out.size() <= data_bytes_);
  std::memcpy(out.data(), buffer_.data() + offset, out.size());
}

}  // namespace aru::lld
