// LLD: the log-structured logical disk with concurrent atomic recovery
// units — the paper's prototype system.
//
// State administration (paper §3.1, §4):
//
//   persistent state   block-number-map + list-table (tables.h), always
//                      recoverable from checkpoint + segment summaries;
//   committed state    alternative records in a VersionIndex, promoted
//                      to the persistent tables once the segment
//                      carrying their authority reaches disk;
//   shadow states      one VersionIndex state per active ARU, plus the
//                      per-ARU link log of list operations that are
//                      re-executed against the committed state at
//                      EndARU, generating the summary entries, followed
//                      by the ARU's commit record.
//
// Promotion (committed → persistent) is gated by an LSN horizon: every
// committed record carries the LSN at which it became authoritative (a
// simple operation's own record, or its ARU's commit record), and is
// applied to the persistent tables only once the segment writer has
// persisted that LSN. This makes the in-memory persistent tables agree,
// at all times, with what crash recovery would reconstruct from disk.
//
// Concurrency: all public operations synchronize on one reader/writer
// mutex (the paper's prototype is single-threaded; the mutex makes the
// multi-stream API safe for multi-threaded clients). Mutators hold it
// exclusively; the read-only operations (Read/ReadMany/ListBlocks/
// ListOf/stats) take it shared, so readers run in parallel — and the
// device read itself happens with no lock held at all, bridged by the
// SlotPins pin/generation protocol (slot_table.h, DESIGN.md §8): a
// reader pins the slot backing its resolved PhysAddr under the shared
// lock, reads the device lock-free, then validates the slot generation
// before trusting (or caching) the bytes. ARUs provide failure
// atomicity, not concurrency control: clients that touch the same
// blocks or lists from concurrent streams must lock at their own level;
// with unsynchronized conflicting streams, commit order decides and
// writes into blocks deleted by a committed stream are dropped.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blockdev/block_device.h"
#include "ld/disk.h"
#include "lld/block_cache.h"
#include "lld/checkpoint.h"
#include "lld/layout.h"
#include "lld/lld_metrics.h"
#include "lld/segment_pipeline.h"
#include "lld/segment_writer.h"
#include "lld/slot_table.h"
#include "lld/tables.h"
#include "lld/types.h"
#include "lld/version_index.h"
#include "obs/sampler.h"
#include "util/mutex.h"
#include "util/protocol_annotations.h"
#include "util/thread_annotations.h"

namespace aru::lld {

// A recorded list operation, deferred for commit-time re-execution
// (the paper's in-memory "list operation log").
struct LinkOp {
  enum class Kind : std::uint8_t { kInsert, kDeleteBlock, kDeleteList, kMove };
  Kind kind;
  ListId list;   // kInsert / kDeleteList / kMove (destination)
  BlockId block; // kInsert / kDeleteBlock / kMove
  BlockId pred;  // kInsert / kMove: kListHead ⇒ beginning of list
};

// What recovery found and did; exposed for tests and operators.
struct RecoveryReport {
  std::uint64_t segments_replayed = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t committed_arus = 0;
  std::uint64_t uncommitted_arus_undone = 0;
  std::uint64_t orphan_blocks_reclaimed = 0;
  std::uint64_t orphan_lists_reclaimed = 0;
  std::uint64_t ops_skipped = 0;  // inapplicable records (conflicts)
  // Incremental-checkpoint chain replay (0/0 when the newest chain is
  // a single full image).
  std::uint64_t checkpoint_delta_images = 0;
  std::uint64_t checkpoint_delta_records = 0;
  // Workers the summary scan fanned out across (1 = serial scan).
  std::uint64_t scan_threads = 0;

  // Per-phase wall-clock timing of the recovery pipeline (also recorded
  // as aru_lld_recovery_*_us histograms and trace spans).
  std::uint64_t checkpoint_load_us = 0;  // newest chain read + delta replay
  std::uint64_t summary_scan_us = 0;     // footer scan + summary validate
  std::uint64_t replay_us = 0;           // event build + replay + promote
  std::uint64_t orphan_reclaim_us = 0;   // consistency sweep
  std::uint64_t checkpoint_us = 0;       // bounding checkpoint + check
  std::uint64_t total_us = 0;
};

class Lld final : public ld::Disk {
 public:
  // Initializes an LLD partition on the device: superblock, invalidated
  // segment slots, and an empty initial checkpoint.
  static Status Format(BlockDevice& device, const Options& options);

  // Opens a formatted partition, running crash recovery (checkpoint
  // load + summary roll-forward + undo of uncommitted ARUs).
  static Result<std::unique_ptr<Lld>> Open(BlockDevice& device,
                                           const Options& options);

  ~Lld() override;

  // ------------------------------------------------------------------
  // ld::Disk interface.
  std::uint32_t block_size() const override { return geometry_.block_size; }
  std::uint64_t capacity_blocks() const override {
    return geometry_.capacity_blocks;
  }
  std::uint64_t free_blocks() const override;

  Result<ListId> NewList(AruId aru = ld::kNoAru) override;
  Status DeleteList(ListId list, AruId aru = ld::kNoAru) override;
  Result<std::vector<BlockId>> ListBlocks(ListId list,
                                          AruId aru = ld::kNoAru) override;
  Result<ListId> ListOf(BlockId block, AruId aru = ld::kNoAru) override;

  Result<BlockId> NewBlock(ListId list, BlockId predecessor,
                           AruId aru = ld::kNoAru) override;
  Status DeleteBlock(BlockId block, AruId aru = ld::kNoAru) override;
  Status MoveBlock(BlockId block, ListId to_list, BlockId predecessor,
                   AruId aru = ld::kNoAru) override;
  Status Write(BlockId block, ByteSpan data,
               AruId aru = ld::kNoAru) override;
  Status Read(BlockId block, MutableByteSpan out,
              AruId aru = ld::kNoAru) override;
  Status ReadMany(std::span<const BlockId> blocks, MutableByteSpan out,
                  AruId aru = ld::kNoAru) override;

  Result<AruId> BeginARU() override;
  Status EndARU(AruId aru) override;
  Status AbortARU(AruId aru) override;
  Status Flush() override;

  // ------------------------------------------------------------------
  // Administration.

  // Flushes, checkpoints, and leaves the disk cleanly closed.
  Status Close() ARU_EXCLUDES(mu_);

  // Takes a checkpoint now (also releases cleaned slots for reuse).
  Status Checkpoint() ARU_EXCLUDES(mu_);

  // Runs a cleaning pass now regardless of free-space pressure.
  Status Clean() ARU_EXCLUDES(mu_);

  // Deep structural validation of tables, version indexes and lists.
  Status CheckConsistency() const ARU_EXCLUDES(mu_);

  // Consistent snapshot of the registry-backed counters, taken under
  // the operation mutex in shared mode (mutating streams cannot race
  // it; concurrent readers need not drain).
  LldStats stats() const ARU_EXCLUDES(mu_) {
    const ReaderMutexLock lock(mu_);
    metrics_.version_chain_steps->Set(static_cast<std::int64_t>(
        block_versions_.chain_steps() + list_versions_.chain_steps()));
    return metrics_.Snapshot();
  }
  // The registry holding this disk's counters, gauges and latency
  // histograms (obs::DumpText/DumpJson-able). Private to this disk
  // unless Options.registry supplied a shared one.
  obs::Registry& registry() const { return registry_; }
  // The background time-series sampler, nullptr unless
  // Options::sampler_period_ms > 0. Its ring (obs::Sampler::ToJson)
  // becomes the "timeseries" section of benchmark artifacts.
  obs::Sampler* sampler() const { return sampler_.get(); }
  const RecoveryReport& recovery_report() const { return recovery_report_; }
  // The cache is internally synchronized; no table lock involved.
  BlockCacheStats read_cache_stats() const { return read_cache_.stats(); }
  const Geometry& geometry() const { return geometry_; }
  std::uint64_t free_slots() const ARU_EXCLUDES(mu_);

 private:
  struct PromotionEntry {
    bool is_list = false;
    std::uint64_t id = 0;
    Lsn eff_lsn = kNoLsn;
  };

  struct AruState {
    AruId id;
    Lsn begin_lsn = kNoLsn;
    std::uint64_t begin_us = 0;  // obs::NowUs() at BeginARU
    std::vector<LinkOp> link_log;
    // Blocks/lists allocated inside this ARU (freed again on abort).
    std::vector<BlockId> allocated_blocks;
    std::vector<ListId> allocated_lists;
    // Sequential mode: promotion entries staged until the commit record
    // assigns their effective LSN.
    std::vector<PromotionEntry> staged;
  };

  // Ids of records touched by a list-operation executor.
  struct Touched {
    std::vector<BlockId> blocks;
    std::vector<ListId> lists;
  };

  Lld(BlockDevice& device, const Options& options, const Geometry& geometry);

  Lsn NextLsn() ARU_REQUIRES(mu_) { return next_lsn_++; }

  // Newest version of an id visible to `aru` (shadow → committed →
  // persistent). Returns meta with allocated/exists == false when the
  // id does not exist in that view. Pure lookups: shared mode
  // suffices, so parallel readers resolve concurrently.
  BlockMeta VisibleBlock(BlockId id, AruId aru) const
      ARU_REQUIRES_SHARED(mu_);
  ListMeta VisibleList(ListId id, AruId aru) const ARU_REQUIRES_SHARED(mu_);

  // Writes a version record into state `state`. `gating_lsn` controls
  // promotion (kLsnMax = held until commit restamps it).
  void PutBlock(BlockId id, AruId state, const BlockMeta& meta,
                Lsn gating_lsn, Lsn source_lsn) ARU_REQUIRES(mu_);
  void PutList(ListId id, AruId state, const ListMeta& meta, Lsn gating_lsn,
               Lsn source_lsn) ARU_REQUIRES(mu_);

  // List-operation executors. They mutate version state `state`
  // (kNoAru = committed), looking through to deeper states, and collect
  // the ids they touch. `source_lsn` backs the records they create.
  Status ExecInsert(AruId state, ListId list, BlockId block, BlockId pred,
                    Lsn gating_lsn, Lsn source_lsn, Touched& touched)
      ARU_REQUIRES(mu_);
  Status ExecDeleteBlock(AruId state, BlockId block, Lsn gating_lsn,
                         Lsn source_lsn, Touched& touched) ARU_REQUIRES(mu_);
  Status ExecMove(AruId state, BlockId block, ListId to_list, BlockId pred,
                  Lsn gating_lsn, Lsn source_lsn, Touched& touched)
      ARU_REQUIRES(mu_);
  // Unlinks `block` (with current meta `bmeta`) from its list without
  // de-allocating it; shared by delete and move.
  Status ExecUnlink(AruId state, BlockId block, BlockMeta& bmeta,
                    Lsn gating_lsn, Lsn source_lsn, Touched& touched)
      ARU_REQUIRES(mu_);
  Status ExecDeleteList(AruId state, ListId list, Lsn gating_lsn,
                        Lsn source_lsn, Touched& touched) ARU_REQUIRES(mu_);

  // Routes promotion entries for committed-state mutations: straight to
  // the FIFO (simple ops / commit-time) or staged on the ARU
  // (sequential mode).
  void PushPromotions(const Touched& touched, Lsn eff_lsn, AruState* staged)
      ARU_REQUIRES(mu_);

  // Applies committed records whose effective LSN has reached disk to
  // the persistent tables. ARU_MUTATES_TABLES moves arulint's
  // crash-order obligation to the call sites: every caller must have
  // appended the records it is about to promote (they all have — the
  // promotion FIFO only holds entries whose eff_lsn is assigned at
  // append time).
  void MaybePromoteLocked() ARU_MUTATES_TABLES ARU_REQUIRES(mu_);
  void PromoteAllCommittedLocked() ARU_MUTATES_TABLES ARU_REQUIRES(mu_);

  // Records just-applied table updates in the dirty sets feeding the
  // next incremental checkpoint delta. No-op unless
  // Options::incremental_checkpoints.
  void MarkDirtyLocked(
      const std::vector<ShardedBlockMap::Update>& block_updates,
      const std::vector<ShardedListTable::Update>& list_updates)
      ARU_REQUIRES(mu_);

  Status MaybeCleanLocked() ARU_REQUIRES(mu_);
  Status RunCleanerLocked() ARU_REQUIRES(mu_);
  Status TakeCheckpointLocked() ARU_REQUIRES(mu_);
  // Re-homes on-disk shadow-write sources so they stop pinning
  // checkpoint coverage (see the definition for the full story).
  Status RelocateShadowSourcesLocked() ARU_REQUIRES(mu_);

  Status EndAruConcurrentLocked(AruState& state) ARU_REQUIRES(mu_);
  Status EndAruSequentialLocked(AruState& state) ARU_REQUIRES(mu_);

  Result<AruState*> FindAru(AruId aru) ARU_REQUIRES(mu_);
  // Read-only existence check, for paths that hold mu_ shared (FindAru
  // hands out a mutable AruState* and so demands exclusive mode).
  Status CheckAruActiveLocked(AruId aru) const ARU_REQUIRES_SHARED(mu_);

  // Reads the block at `phys` from the device. Called with NO lock
  // held: the caller pinned phys's slot (slot_pins_) first, which keeps
  // the bytes in place — see SlotPins for the protocol.
  Status ReadBlockAt(PhysAddr phys, MutableByteSpan out) ARU_EXCLUDES(mu_);

  Status RecoverLocked() ARU_REQUIRES(mu_);
  Status CheckConsistencyLocked() const ARU_REQUIRES_SHARED(mu_);
  Status ParanoidCheck() const ARU_REQUIRES(mu_) {
    return options_.paranoid_checks ? CheckConsistencyLocked() : Status::Ok();
  }

  BlockDevice& device_;
  Options options_;
  Geometry geometry_;

  // Declared before writer_ (which records into metrics_).
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry& registry_;
  LldMetrics metrics_;

  // Internally synchronized (flush_mu_), so deliberately not guarded by
  // mu_: durability waits run with mu_ released so concurrent streams
  // keep operating while a committer blocks on the horizon. Declared
  // before writer_ (which holds a reference) so it is destroyed after —
  // the flusher thread drains and joins in ~SegmentPipeline. The lock
  // order is strictly mu_ → flush_mu_; the flusher takes only flush_mu_.
  SegmentPipeline pipeline_;

  // Internally synchronized (sharded, one Mutex per LRU shard), so
  // deliberately not guarded by mu_: cache hits on the parallel read
  // path never touch the table lock. The shard mutexes are leaves in
  // the lock order (nothing is acquired while one is held).
  BlockCache read_cache_;

  // Lock-free pin counts + generations, one per segment slot. Pins are
  // taken under mu_ (shared suffices) but released and re-checked with
  // no lock held, so this lives outside the guarded set — see SlotPins
  // in slot_table.h for the protocol and memory-ordering story.
  SlotPins slot_pins_;

  // The persistent tables, sharded by id hash with one named Mutex per
  // shard ("lld_table_shard") and internally synchronized — so, like
  // pipeline_ and read_cache_, deliberately not guarded by mu_. The
  // protocol layered on top: point reads (Get) take only the one shard
  // lock; every mutation happens while the caller also holds mu_
  // exclusively, which is what makes multi-key invariants (splices,
  // promotion merges, checkpoint snapshots) atomic across shards.
  // Promotion is two-phase: gather updates under mu_, then ApplyBatch
  // walks shards in ascending index order (DESIGN.md §9). Lock order:
  // mu_ → shard[i<j] → {cache shard, flush_mu_}; shard mutexes are
  // leaves (nothing else is acquired while one is held).
  ShardedBlockMap block_map_;
  ShardedListTable list_table_;

  mutable SharedMutex mu_{"lld_mu"};

  BlockVersions block_versions_ ARU_GUARDED_BY(mu_);
  ListVersions list_versions_ ARU_GUARDED_BY(mu_);
  SlotTable slots_ ARU_GUARDED_BY(mu_);
  SegmentWriter writer_ ARU_GUARDED_BY(mu_);

  std::deque<PromotionEntry> promotion_fifo_ ARU_GUARDED_BY(mu_);
  std::unordered_map<AruId, AruState> active_arus_ ARU_GUARDED_BY(mu_);

  Lsn next_lsn_ ARU_GUARDED_BY(mu_) = 1;
  std::uint64_t next_block_id_ ARU_GUARDED_BY(mu_) = 1;
  std::uint64_t next_list_id_ ARU_GUARDED_BY(mu_) = 1;
  std::uint64_t next_aru_id_ ARU_GUARDED_BY(mu_) = 1;
  std::uint64_t allocated_blocks_ ARU_GUARDED_BY(mu_) = 0;
  std::uint64_t list_count_ ARU_GUARDED_BY(mu_) = 0;
  std::uint64_t checkpoint_stamp_ ARU_GUARDED_BY(mu_) = 0;
  std::uint64_t last_covered_seq_ ARU_GUARDED_BY(mu_) = 0;

  // Incremental-checkpoint chain state (DESIGN §10): which region the
  // active chain occupies, how many sector-aligned bytes it has
  // consumed, and how many delta images sit on the base. Initialized
  // by recovery from the chain it loaded; a full rebase always targets
  // region 1 - ckpt_region_, so a torn rebase leaves the current tip
  // intact.
  std::uint64_t ckpt_region_ ARU_GUARDED_BY(mu_) = 0;
  std::uint64_t ckpt_used_bytes_ ARU_GUARDED_BY(mu_) = 0;
  std::uint64_t ckpt_delta_images_ ARU_GUARDED_BY(mu_) = 0;
  // Table ids mutated since the chain tip — exactly the entries the
  // next delta must carry (present id → Set with current meta, absent
  // id → Erase). Maintained only when incremental_checkpoints is on.
  std::unordered_set<std::uint64_t> dirty_blocks_ ARU_GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> dirty_lists_ ARU_GUARDED_BY(mu_);

  // Written once by RecoverLocked before Open returns the disk; read
  // lock-free afterwards through recovery_report().
  RecoveryReport recovery_report_;

  // Declared last so it is destroyed (and its thread joined) before
  // the registry and metrics it samples. Internally synchronized.
  std::unique_ptr<obs::Sampler> sampler_;
};

}  // namespace aru::lld
