// In-memory table of segment-slot states. Rebuilt from footers during
// recovery, maintained at runtime by the segment writer and cleaner.
//
// Slot lifecycle: Free → Open → Written → PendingFree → Free.
// A cleaned slot stays PendingFree until the next checkpoint: its
// summary records may still be needed for roll-forward recovery, so it
// must not be overwritten before a checkpoint captures their effects.
//
// Thread-compatibility: not internally synchronized. The table is owned
// by an Lld and reached only under Lld::mu_ — the owning member carries
// ARU_GUARDED_BY(mu_), so clang's -Wthread-safety checks every access
// path (see util/thread_annotations.h).
#pragma once

#include <cstdint>
#include <vector>

#include "lld/types.h"

namespace aru::lld {

enum class SlotState : std::uint8_t {
  kFree,
  kOpen,
  kWritten,
  kPendingFree,
};

struct SlotInfo {
  SlotState state = SlotState::kFree;
  std::uint64_t seq = 0;   // segment sequence number (valid when Written)
  Lsn last_lsn = kNoLsn;   // last record LSN in the segment
};

class SlotTable {
 public:
  explicit SlotTable(std::uint32_t slot_count) : slots_(slot_count) {}

  SlotInfo& operator[](std::uint32_t slot) { return slots_[slot]; }
  const SlotInfo& operator[](std::uint32_t slot) const {
    return slots_[slot];
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  std::uint32_t CountState(SlotState state) const {
    std::uint32_t n = 0;
    for (const SlotInfo& s : slots_) {
      if (s.state == state) ++n;
    }
    return n;
  }

  std::uint32_t free_count() const { return CountState(SlotState::kFree); }

  // Finds the next free slot at or after `hint`, wrapping around.
  // Returns size() if none is free.
  std::uint32_t NextFree(std::uint32_t hint) const {
    for (std::uint32_t i = 0; i < size(); ++i) {
      const std::uint32_t slot = (hint + i) % size();
      if (slots_[slot].state == SlotState::kFree) return slot;
    }
    return size();
  }

  // The PendingFree → Free transition, legal only for slots whose
  // summary records a checkpoint now covers. Returns the released
  // slots (their old contents may now be overwritten — cache owners
  // must invalidate).
  std::vector<std::uint32_t> ReleasePending(std::uint64_t covered_seq) {
    std::vector<std::uint32_t> released;
    for (std::uint32_t slot = 0; slot < size(); ++slot) {
      SlotInfo& s = slots_[slot];
      if (s.state == SlotState::kPendingFree && s.seq <= covered_seq) {
        s = SlotInfo{};
        released.push_back(slot);
      }
    }
    return released;
  }

 private:
  std::vector<SlotInfo> slots_;
};

}  // namespace aru::lld
