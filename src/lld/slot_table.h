// In-memory table of segment-slot states. Rebuilt from footers during
// recovery, maintained at runtime by the segment writer and cleaner.
//
// Slot lifecycle: Free → Open → Written → PendingFree → Free.
// A cleaned slot stays PendingFree until the next checkpoint: its
// summary records may still be needed for roll-forward recovery, so it
// must not be overwritten before a checkpoint captures their effects.
//
// Thread-compatibility: not internally synchronized. The table is owned
// by an Lld and reached only under Lld::mu_ — the owning member carries
// ARU_GUARDED_BY(mu_), so clang's -Wthread-safety checks every access
// path (see util/thread_annotations.h).
//
// SlotPins is the exception: it is the lock-free side table that lets a
// reader hold a reference to a slot's on-disk bytes *after* dropping
// the (shared) table lock — see the protocol comment on the class.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "lld/types.h"
#include "util/protocol_annotations.h"

namespace aru::lld {

// Per-slot pin counts and generations, enabling device reads outside
// Lld::mu_ (DESIGN.md "parallel read path"):
//
//   1. Under mu_ (shared suffices) a reader resolves its PhysAddr,
//      records generation(slot), and Pin()s the slot.
//   2. It drops mu_ and reads the device. A pinned slot is never
//      released for reuse: ReleasePending skips it and the cleaner
//      won't pick it as a victim, so the bytes under the reader are
//      stable even though no lock is held.
//   3. After the read it re-checks generation(slot) against the value
//      from step 1, then Unpin()s. A changed generation means the slot
//      was recycled between resolution and pin taking effect — the
//      reader discards the bytes and retries through the tables.
//
// Because every transition toward reuse (cleaner marking PendingFree,
// checkpoint releasing, writer re-opening) happens under exclusive mu_
// while pins are only taken under (at least shared) mu_, a pin taken
// before the exclusive section is visible to it — the generation check
// is defense-in-depth for future lock-free resolution, not the primary
// guard. Counts and generations are atomics; the class is safe to
// touch without any lock and is deliberately NOT ARU_GUARDED_BY(mu_).
class SlotPins {
 public:
  explicit SlotPins(std::uint32_t slot_count) : slots_(slot_count) {}

  void Pin(std::uint32_t slot) {
    slots_[slot].pins.fetch_add(1, std::memory_order_acquire);
  }
  void Unpin(std::uint32_t slot) {
    const std::uint32_t prev =
        slots_[slot].pins.fetch_sub(1, std::memory_order_release);
    assert(prev > 0 && "unpin without pin");
    (void)prev;
  }

  std::uint32_t pins(std::uint32_t slot) const {
    return slots_[slot].pins.load(std::memory_order_acquire);
  }
  std::uint64_t generation(std::uint32_t slot) const {
    return slots_[slot].gen.load(std::memory_order_acquire);
  }

  // Called (under exclusive mu_) when a slot is released for reuse:
  // in-flight readers that resolved into the old contents fail their
  // post-read generation check.
  void BumpGeneration(std::uint32_t slot) {
    slots_[slot].gen.fetch_add(1, std::memory_order_release);
  }

 private:
  struct PerSlot {
    std::atomic<std::uint32_t> pins ARU_ATOMIC_PUBLISHES(slot_contents){0};
    std::atomic<std::uint64_t> gen ARU_ATOMIC_PUBLISHES(slot_reuse){0};
  };
  std::vector<PerSlot> slots_;
};

enum class SlotState : std::uint8_t {
  kFree,
  kOpen,
  kWritten,
  kPendingFree,
};

struct SlotInfo {
  SlotState state = SlotState::kFree;
  std::uint64_t seq = 0;   // segment sequence number (valid when Written)
  Lsn last_lsn = kNoLsn;   // last record LSN in the segment
};

class SlotTable {
 public:
  explicit SlotTable(std::uint32_t slot_count) : slots_(slot_count) {}

  SlotInfo& operator[](std::uint32_t slot) { return slots_[slot]; }
  const SlotInfo& operator[](std::uint32_t slot) const {
    return slots_[slot];
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  std::uint32_t CountState(SlotState state) const {
    std::uint32_t n = 0;
    for (const SlotInfo& s : slots_) {
      if (s.state == state) ++n;
    }
    return n;
  }

  std::uint32_t free_count() const { return CountState(SlotState::kFree); }

  // Finds the next free slot at or after `hint`, wrapping around.
  // Returns size() if none is free.
  std::uint32_t NextFree(std::uint32_t hint) const {
    for (std::uint32_t i = 0; i < size(); ++i) {
      const std::uint32_t slot = (hint + i) % size();
      if (slots_[slot].state == SlotState::kFree) return slot;
    }
    return size();
  }

  // The PendingFree → Free transition, legal only for slots whose
  // summary records a checkpoint now covers. Returns the released
  // slots (their old contents may now be overwritten — cache owners
  // must invalidate). A slot still pinned by an in-flight reader is
  // skipped — it stays PendingFree and is released by a later
  // checkpoint once the pin drops; each actually-released slot gets
  // its generation bumped so late readers detect the recycle.
  std::vector<std::uint32_t> ReleasePending(std::uint64_t covered_seq,
                                            SlotPins& pins) {
    std::vector<std::uint32_t> released;
    for (std::uint32_t slot = 0; slot < size(); ++slot) {
      SlotInfo& s = slots_[slot];
      if (s.state == SlotState::kPendingFree && s.seq <= covered_seq) {
        if (pins.pins(slot) != 0) continue;
        s = SlotInfo{};
        pins.BumpGeneration(slot);
        released.push_back(slot);
      }
    }
    return released;
  }

 private:
  std::vector<SlotInfo> slots_;
};

}  // namespace aru::lld
