// SegmentPipeline: write-behind stage between the SegmentWriter and the
// device. Sealed segments are handed off (buffer and all) to a single
// background flusher thread through a bounded in-flight queue, so the
// next segment fills while the device write runs off-thread.
//
// The pipeline publishes a monotone durable-LSN horizon: the flusher
// writes segments strictly in seal order and advances `durable_lsn()`
// only after a segment's device write completes, so every record with
// lsn <= durable_lsn() is on disk. Promotion (committed → persistent)
// gates on this horizon exactly as it gated on the synchronous writer's
// persisted LSN; group commit falls out of WaitDurable — any number of
// committers whose commit LSNs share a segment ride one device write.
//
// Depth 0 (the default) keeps the paper's synchronous behavior: Enqueue
// writes inline on the caller's thread and no flusher is started.
//
// Thread-safety: internally synchronized by flush_mu_. The lock order
// with the owning Lld is strictly mu_ (shared or exclusive) →
// flush_mu_ (the flusher never touches Lld state), so callers may hold
// Lld::mu_ in either mode across any method — the shared-mode read
// path calls ReadBuffered under a reader hold of mu_.
// A device write failure is sticky: the flusher stops writing, and
// every later Enqueue/WaitDurable/Drain returns the error instead of
// blocking forever on a horizon that can no longer advance.
#pragma once

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "blockdev/block_device.h"
#include "lld/layout.h"
#include "lld/lld_metrics.h"
#include "lld/types.h"
#include "util/bytes.h"
#include "util/mutex.h"
#include "util/protocol_annotations.h"
#include "util/thread_annotations.h"

namespace aru::lld {

class SegmentPipeline {
 public:
  // `max_in_flight` == 0 disables the flusher thread (synchronous
  // writes); otherwise at most that many sealed segments may be queued
  // behind the device at once (Enqueue blocks when the pool is full).
  SegmentPipeline(BlockDevice& device, const Geometry& geometry,
                  LldMetrics& metrics, std::uint32_t max_in_flight);
  ~SegmentPipeline();

  SegmentPipeline(const SegmentPipeline&) = delete;
  SegmentPipeline& operator=(const SegmentPipeline&) = delete;

  // Hands a sealed segment to the flusher. On success `buffer` is
  // replaced with a recycled (or fresh) segment-sized buffer the caller
  // can start filling; on failure it is left untouched and the segment
  // was not queued. This is the durability hand-off point of the seal
  // protocol — the summary records in `buffer` are what crash recovery
  // replays — so the crash-order obligation lives here.
  Status Enqueue(std::uint64_t first_sector, Lsn last_lsn, std::uint32_t slot,
                 std::uint32_t data_blocks, Bytes& buffer)
      ARU_APPENDS_SUMMARY ARU_EXCLUDES(flush_mu_);

  // The durable horizon: every record with lsn <= durable_lsn() has
  // reached the device.
  Lsn durable_lsn() const ARU_EXCLUDES(flush_mu_);

  // Blocks until durable_lsn() >= target (group commit: many callers
  // ride the same segment write), the pipeline empties, or a sticky
  // write error surfaces. `target` must already be enqueued.
  Status WaitDurable(Lsn target) ARU_EXCLUDES(flush_mu_);

  // Blocks until no segment is in flight. Barrier for the checkpoint
  // (coverage must not include undurable segments), the cleaner
  // (victims are read back from the device), and Close.
  Status Drain() ARU_EXCLUDES(flush_mu_);

  // Serves a read of a sealed-but-not-yet-durable block from the
  // pinned in-flight buffer. Returns false if `phys` is not in flight
  // (never true at depth 0).
  bool ReadBuffered(PhysAddr phys, MutableByteSpan out) const
      ARU_EXCLUDES(flush_mu_);

  // True if `slot` currently has a segment in flight. Conservative
  // membership probe for read planning: a true answer may turn stale
  // (the write completes), but false is definitive while the caller
  // holds Lld::mu_ — new segments enqueue only under that lock.
  bool InFlightSlot(std::uint32_t slot) const ARU_EXCLUDES(flush_mu_);

  // Resets the horizon after recovery (the queue is empty then).
  void Restore(Lsn durable_lsn) ARU_EXCLUDES(flush_mu_);

  std::uint32_t max_in_flight() const { return max_in_flight_; }

 private:
  struct InFlight {
    std::uint64_t first_sector = 0;
    Lsn last_lsn = kNoLsn;
    std::uint32_t slot = 0;
    std::uint32_t data_blocks = 0;
    // Span active on the enqueuing thread (the seal span), so the
    // flusher's device_write span nests under the operation that
    // sealed the segment even though it runs on another thread.
    std::uint64_t parent_span = 0;
    Bytes buffer;
  };

  void FlusherMain();
  void UpdateGaugesLocked() ARU_REQUIRES(flush_mu_);

  BlockDevice& device_;
  const Geometry& geometry_;
  LldMetrics& metrics_;
  const std::uint32_t max_in_flight_;

  mutable Mutex flush_mu_{"lld_flush_mu"};
  CondVar work_cv_;     // producer → flusher: segments queued / shutdown
  CondVar durable_cv_;  // flusher → waiters: horizon advanced / drained
  CondVar space_cv_;    // flusher → producer: pool has room again

  std::deque<InFlight> queue_ ARU_GUARDED_BY(flush_mu_);
  std::vector<Bytes> spare_buffers_ ARU_GUARDED_BY(flush_mu_);
  Lsn durable_lsn_ ARU_GUARDED_BY(flush_mu_) = kNoLsn;
  Lsn enqueued_lsn_ ARU_GUARDED_BY(flush_mu_) = kNoLsn;
  Status error_ ARU_GUARDED_BY(flush_mu_);  // sticky first write failure
  bool shutdown_ ARU_GUARDED_BY(flush_mu_) = false;

  std::thread flusher_;  // started only when max_in_flight_ > 0
};

}  // namespace aru::lld
