// Checkpoints: double-buffered snapshots of the persistent state.
//
// The paper's LLD reconstructs its tables "by scanning the segment
// summaries"; like Sprite LFS (which LLD is modeled after), we bound
// that scan with periodic checkpoints: recovery loads the newest valid
// checkpoint and rolls forward through the summaries of segments whose
// sequence number exceeds the checkpoint's covered horizon.
//
// A checkpoint may only cover segments whose every effect is captured:
// covered_seq is capped by the earliest on-disk record that any live
// (committed or shadow) in-memory version record still depends on.
//
// Image formats (v2, DESIGN §10):
//
//   * A FULL image snapshots both tables, exactly like v1 but with a
//     versioned header word. It always lands at byte 0 of a region and
//     starts a new chain there; the previous chain in the *other*
//     region stays intact as the fallback.
//   * A DELTA image (incremental_checkpoints) carries only the table
//     entries dirtied since the chain's previous image, as tagged
//     ckptfmt records. It is appended sector-aligned after the chain
//     tip in the same region and names its parent by exact stamp, so a
//     stale or torn delta can never splice onto the wrong base: the
//     chain ends at the first image whose CRC or parent linkage fails,
//     and recovery falls back to the prefix plus summary roll-forward.
//
// v1 images (header pad word 0, no parent_stamp field) decode
// unchanged — a disk written before this format reads as a one-image
// chain.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "blockdev/block_device.h"
#include "lld/layout.h"
#include "lld/tables.h"
#include "lld/types.h"
#include "util/bytes.h"
#include "util/protocol_annotations.h"
#include "util/status.h"

namespace aru::lld {

// Header-word constants: the v1 format wrote a zero pad word after the
// magic; v2 packs (format_version << 8) | kind there, so pad == 0 *is*
// the v1 discriminator.
inline constexpr std::uint32_t kCheckpointFormatV1 = 1;
inline constexpr std::uint32_t kCheckpointFormatV2 = 2;
inline constexpr std::uint32_t kCheckpointKindFull = 0;
inline constexpr std::uint32_t kCheckpointKindDelta = 1;

struct CheckpointData {
  std::uint64_t stamp = 0;        // monotone checkpoint counter
  std::uint64_t covered_seq = 0;  // segments with seq > this are replayed
  Lsn next_lsn = 1;
  std::uint64_t next_seq = 1;
  std::uint64_t next_block_id = 1;
  std::uint64_t next_list_id = 1;
  std::uint64_t next_aru_id = 1;
  std::uint64_t allocated_blocks = 0;
  // Stamp of the chain image this one extends; 0 for full images. A
  // delta is valid only when this names the stamp of the image
  // physically preceding it in the region (exact match), which is what
  // keeps stale bytes from a recycled region out of the chain.
  std::uint64_t parent_stamp = 0;
  std::uint32_t format_version = kCheckpointFormatV2;
  std::uint32_t kind = kCheckpointKindFull;
};

// Format pin: the checkpoint header codec writes these fields at fixed
// offsets; recovery falls back to the *older* image when the newer one
// fails validation, so silent layout drift here would read old
// checkpoints wrong rather than fail loudly.
static_assert(std::is_trivially_copyable_v<CheckpointData>);
static_assert(sizeof(CheckpointData) == 80);

// Delta-record vocabulary for incremental checkpoint images. Kept in
// its own namespace so the enum never collides with the segment
// summary's RecordType (summary.h); extend compatibly (new record
// type) instead of mutating these.
namespace ckptfmt {

enum class RecordType : std::uint8_t {
  kDeltaBlockSet = 1,    // upsert one block-number-map entry
  kDeltaBlockErase = 2,  // remove one block-number-map entry
  kDeltaListSet = 3,     // upsert one list-table entry
  kDeltaListErase = 4,   // remove one list-table entry
};

// One block-map entry as of the delta's stamp. `phys` is
// PhysAddr::encoded() (0 = allocated but never written); the decoded
// entry is always `allocated` — unallocated ids are absent, which a
// kDeltaBlockErase expresses.
struct DeltaBlockSetRecord {
  std::uint64_t block = 0;
  std::uint64_t phys = 0;
  std::uint64_t successor = 0;
  std::uint64_t list = 0;
  std::uint64_t ts = 0;
};
static_assert(std::is_trivially_copyable_v<DeltaBlockSetRecord>);
static_assert(sizeof(DeltaBlockSetRecord) == 40);

struct DeltaBlockEraseRecord {
  std::uint64_t block = 0;
};
static_assert(std::is_trivially_copyable_v<DeltaBlockEraseRecord>);
static_assert(sizeof(DeltaBlockEraseRecord) == 8);

struct DeltaListSetRecord {
  std::uint64_t list = 0;
  std::uint64_t first = 0;
  std::uint64_t last = 0;
};
static_assert(std::is_trivially_copyable_v<DeltaListSetRecord>);
static_assert(sizeof(DeltaListSetRecord) == 24);

struct DeltaListEraseRecord {
  std::uint64_t list = 0;
};
static_assert(std::is_trivially_copyable_v<DeltaListEraseRecord>);
static_assert(sizeof(DeltaListEraseRecord) == 8);

using DeltaRecord = std::variant<DeltaBlockSetRecord, DeltaBlockEraseRecord,
                                 DeltaListSetRecord, DeltaListEraseRecord>;

}  // namespace ckptfmt

// Encodes a FULL image (data.kind must be kCheckpointKindFull).
Bytes EncodeCheckpoint(const CheckpointData& data, const BlockMap& blocks,
                       const ListTable& lists) ARU_ENCODES_RECORD;

// Decodes a full image (v1 or v2) into `data` and repopulates the
// tables (cleared first). `consumed`, when non-null, receives the
// image's exact byte length within `encoded` (the input may carry
// trailing chain bytes or region padding).
// ARU_MUTATES_TABLES: callers passing their *live* tables must hold a
// log position covering everything the checkpoint image replaces
// (recovery does — it replays forward from covered_seq afterwards).
Status DecodeCheckpoint(ByteSpan encoded, CheckpointData& data,
                        BlockMap& blocks, ListTable& lists,
                        std::size_t* consumed = nullptr)
    ARU_MUTATES_TABLES ARU_DECODES_RECORD;

// Encodes a DELTA image (data.kind must be kCheckpointKindDelta,
// data.parent_stamp the stamp of the chain tip it extends).
Bytes EncodeCheckpointDelta(const CheckpointData& data,
                            std::span<const ckptfmt::DeltaRecord> records)
    ARU_ENCODES_RECORD;

// Decodes a delta image header + records. Does not touch any table;
// apply with ApplyCheckpointDeltas (or recovery's staged loop) after
// validating the parent linkage. `consumed` as for DecodeCheckpoint.
Status DecodeCheckpointDelta(ByteSpan encoded, CheckpointData& data,
                             std::vector<ckptfmt::DeltaRecord>& records,
                             std::size_t* consumed = nullptr)
    ARU_DECODES_RECORD;

// Replays delta records, in order, onto tables positioned at the
// parent image's state. ARU_MUTATES_TABLES under the same contract as
// DecodeCheckpoint.
void ApplyCheckpointDeltas(std::span<const ckptfmt::DeltaRecord> records,
                           BlockMap& blocks, ListTable& lists)
    ARU_MUTATES_TABLES;

// Where recovery found the newest valid chain, so the writer can
// extend it in place (deltas append at `used_bytes`; a rebase targets
// region 1 - `region`).
// arulint: allow(on-disk-pin) in-memory cursor, never serialized
struct CheckpointChainInfo {
  std::uint64_t region = 0;        // 0 = A, 1 = B
  std::uint64_t tip_stamp = 0;     // stamp of the last valid image
  std::uint64_t used_bytes = 0;    // sector-aligned bytes the chain occupies
  std::uint64_t delta_images = 0;  // chain length excluding the base
};

// Encodes `records` as a delta image and appends it at the chain tip
// (`chain.region`, byte `chain.used_bytes`). ARU_APPENDS_SUMMARY: a
// delta image is a durable record append — recovery replays it like a
// log record, and the record-coverage rule traces the delta encode
// arms from here. Returns the padded byte length the image occupies.
Result<std::uint64_t> AppendCheckpointDelta(
    BlockDevice& device, const Geometry& geometry,
    const CheckpointChainInfo& chain, const CheckpointData& data,
    std::span<const ckptfmt::DeltaRecord> records) ARU_APPENDS_SUMMARY;

// Pads `encoded` to whole sectors and writes it into checkpoint region
// `region` (0 = A, 1 = B) at byte offset `offset` (must itself be
// sector-aligned). Returns the padded byte length on success; errors
// with kOutOfSpace if the image would overrun the region.
Result<std::uint64_t> WriteCheckpointImage(BlockDevice& device,
                                           const Geometry& geometry,
                                           std::uint64_t region,
                                           std::uint64_t offset,
                                           const Bytes& encoded);

// Writes a full checkpoint into region A or B (chosen by stamp
// parity) at offset 0. The legacy single-image writer: Format and the
// non-incremental runtime path use it, and consecutive stamps
// alternate regions so the previous checkpoint always survives a torn
// write.
Status WriteCheckpointRegion(BlockDevice& device, const Geometry& geometry,
                             const CheckpointData& data,
                             const BlockMap& blocks, const ListTable& lists);

// Reads both regions, parses each as a chain (full base + zero or more
// parent-linked deltas), and returns the chain with the newest tip:
// the base tables, the tip's header in `data`, and every delta's
// records in chain order in `deltas` (not yet applied). Fails with
// kCorruption if neither region holds a valid base image.
Status ReadNewestCheckpointChain(BlockDevice& device, const Geometry& geometry,
                                 CheckpointData& data, BlockMap& blocks,
                                 ListTable& lists,
                                 std::vector<ckptfmt::DeltaRecord>& deltas,
                                 CheckpointChainInfo& chain)
    ARU_MUTATES_TABLES;

// Chain read + delta replay in one call: `data` is the tip's header
// and the tables are the tip's state. The compatibility surface for
// callers that do not track chain placement (inspect_disk, tests).
Status ReadNewestCheckpoint(BlockDevice& device, const Geometry& geometry,
                            CheckpointData& data, BlockMap& blocks,
                            ListTable& lists) ARU_MUTATES_TABLES;

}  // namespace aru::lld
