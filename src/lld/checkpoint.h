// Checkpoints: double-buffered snapshots of the persistent state.
//
// The paper's LLD reconstructs its tables "by scanning the segment
// summaries"; like Sprite LFS (which LLD is modeled after), we bound
// that scan with periodic checkpoints: recovery loads the newest valid
// checkpoint and rolls forward through the summaries of segments whose
// sequence number exceeds the checkpoint's covered horizon.
//
// A checkpoint may only cover segments whose every effect is captured:
// covered_seq is capped by the earliest on-disk record that any live
// (committed or shadow) in-memory version record still depends on.
// The two regions are written alternately; a torn checkpoint write
// simply loses the newer one and recovery falls back to the older.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "blockdev/block_device.h"
#include "lld/layout.h"
#include "lld/tables.h"
#include "lld/types.h"
#include "util/bytes.h"
#include "util/protocol_annotations.h"
#include "util/status.h"

namespace aru::lld {

struct CheckpointData {
  std::uint64_t stamp = 0;        // monotone checkpoint counter
  std::uint64_t covered_seq = 0;  // segments with seq > this are replayed
  Lsn next_lsn = 1;
  std::uint64_t next_seq = 1;
  std::uint64_t next_block_id = 1;
  std::uint64_t next_list_id = 1;
  std::uint64_t next_aru_id = 1;
  std::uint64_t allocated_blocks = 0;
};

// Format pin: the checkpoint header codec writes these eight fields at
// fixed offsets; recovery falls back to the *older* region when the
// newer one fails validation, so silent layout drift here would read
// old checkpoints wrong rather than fail loudly.
static_assert(std::is_trivially_copyable_v<CheckpointData>);
static_assert(sizeof(CheckpointData) == 64);

Bytes EncodeCheckpoint(const CheckpointData& data, const BlockMap& blocks,
                       const ListTable& lists) ARU_ENCODES_RECORD;

// Decodes into `data` and repopulates the tables (cleared first).
// ARU_MUTATES_TABLES: callers passing their *live* tables must hold a
// log position covering everything the checkpoint image replaces
// (recovery does — it replays forward from covered_seq afterwards).
Status DecodeCheckpoint(ByteSpan encoded, CheckpointData& data,
                        BlockMap& blocks, ListTable& lists)
    ARU_MUTATES_TABLES ARU_DECODES_RECORD;

// Writes a checkpoint into region A or B (chosen by stamp parity).
Status WriteCheckpointRegion(BlockDevice& device, const Geometry& geometry,
                             const CheckpointData& data,
                             const BlockMap& blocks, const ListTable& lists);

// Reads both regions and returns the newest valid checkpoint.
// Fails with kCorruption if neither region holds a valid checkpoint.
Status ReadNewestCheckpoint(BlockDevice& device, const Geometry& geometry,
                            CheckpointData& data, BlockMap& blocks,
                            ListTable& lists) ARU_MUTATES_TABLES;

}  // namespace aru::lld
