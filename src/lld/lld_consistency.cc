// Deep structural validation. The persistent tables may transiently lag
// the log during promotion (per-identifier, converging at the next
// horizon advance), so structural invariants are checked on the *views*
// clients can observe: the committed view (what simple operations see)
// and each active ARU's shadow view. Each view must be a forest of
// well-formed lists:
//   * every list's first→successor chain terminates, cycle-free, at the
//     recorded last block;
//   * every chained block records the list it is on;
//   * every allocated block that records a list is reachable on it;
//   * version-index chains are structurally intact.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lld/lld.h"

namespace aru::lld {
namespace {

Status Broken(const std::string& what) { return CorruptionError(what); }

}  // namespace

Status Lld::CheckConsistencyLocked() const {
  if (!block_versions_.Validate()) {
    return Broken("block version index chains are inconsistent");
  }
  if (!list_versions_.Validate()) {
    return Broken("list version index chains are inconsistent");
  }

  std::vector<AruId> views;
  views.push_back(ld::kNoAru);
  for (const auto& [id, state] : active_arus_) views.push_back(id);

  for (const AruId view : views) {
    // Gather every identifier that exists in this view.
    std::unordered_set<ListId> lists;
    list_table_.ForEach(
        [&lists](ListId id, const ListMeta&) { lists.insert(id); });
    list_versions_.ForEachCommitted(
        [&lists](const ListVersions::Node& n) { lists.insert(n.id); });
    std::unordered_set<BlockId> blocks;
    block_map_.ForEach(
        [&blocks](BlockId id, const BlockMeta&) { blocks.insert(id); });
    block_versions_.ForEachCommitted(
        [&blocks](const BlockVersions::Node& n) { blocks.insert(n.id); });
    if (view.valid()) {
      list_versions_.ForEachInState(
          view, [&lists](const ListVersions::Node& n) { lists.insert(n.id); });
      block_versions_.ForEachInState(
          view,
          [&blocks](const BlockVersions::Node& n) { blocks.insert(n.id); });
    }

    std::unordered_map<BlockId, ListId> reached;
    for (const ListId list : lists) {
      const ListMeta lmeta = VisibleList(list, view);
      if (!lmeta.exists) continue;
      if (lmeta.first.valid() != lmeta.last.valid()) {
        return Broken("list " + std::to_string(list.value()) +
                      ": first/last validity mismatch");
      }
      BlockId cur = lmeta.first;
      BlockId prev;
      std::uint64_t steps = 0;
      while (cur.valid()) {
        if (++steps > geometry_.capacity_blocks + 1) {
          return Broken("list " + std::to_string(list.value()) + ": cycle");
        }
        if (reached.contains(cur)) {
          return Broken("block " + std::to_string(cur.value()) +
                        " reachable twice");
        }
        const BlockMeta bmeta = VisibleBlock(cur, view);
        if (!bmeta.allocated) {
          return Broken("list " + std::to_string(list.value()) +
                        " chains through unallocated block " +
                        std::to_string(cur.value()));
        }
        if (bmeta.list != list) {
          return Broken("block " + std::to_string(cur.value()) +
                        " on list " + std::to_string(list.value()) +
                        " records list " + std::to_string(bmeta.list.value()));
        }
        reached.emplace(cur, list);
        prev = cur;
        cur = bmeta.successor;
      }
      if (lmeta.last != prev) {
        return Broken("list " + std::to_string(list.value()) +
                      ": recorded last " + std::to_string(lmeta.last.value()) +
                      " != walked last " + std::to_string(prev.value()));
      }
    }

    for (const BlockId block : blocks) {
      const BlockMeta bmeta = VisibleBlock(block, view);
      if (!bmeta.allocated) continue;
      if (bmeta.list.valid() && !reached.contains(block)) {
        return Broken("block " + std::to_string(block.value()) +
                      " records list " + std::to_string(bmeta.list.value()) +
                      " but is not reachable on it");
      }
      if (!bmeta.list.valid() && bmeta.successor.valid()) {
        return Broken("listless block " + std::to_string(block.value()) +
                      " has a successor");
      }
    }
  }
  return Status::Ok();
}

Status Lld::CheckConsistency() const {
  const ReaderMutexLock lock(mu_);
  return CheckConsistencyLocked();
}

}  // namespace aru::lld
