// Byte-buffer helpers: fixed-width little-endian codecs used by the
// on-disk segment-summary format, plus a checked Decoder cursor.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace aru {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;
using MutableByteSpan = std::span<std::byte>;

inline void PutU16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}

inline void PutU32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

inline void PutBytes(Bytes& out, ByteSpan data) {
  out.insert(out.end(), data.begin(), data.end());
}

inline std::uint16_t GetU16(ByteSpan in) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(in[0]) |
                                    (static_cast<std::uint16_t>(in[1]) << 8));
}

inline std::uint32_t GetU32(ByteSpan in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

inline std::uint64_t GetU64(ByteSpan in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

// A bounds-checked read cursor over an immutable byte span. All reads
// report kCorruption on underflow, so decoding truncated or damaged
// summaries degrades into an error instead of undefined behaviour.
class Decoder {
 public:
  explicit Decoder(ByteSpan data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return remaining() == 0; }

  Result<std::uint8_t> ReadU8() {
    if (remaining() < 1) return Underflow(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  Result<std::uint16_t> ReadU16() {
    if (remaining() < 2) return Underflow(2);
    const std::uint16_t v = GetU16(data_.subspan(pos_));
    pos_ += 2;
    return v;
  }

  Result<std::uint32_t> ReadU32() {
    if (remaining() < 4) return Underflow(4);
    const std::uint32_t v = GetU32(data_.subspan(pos_));
    pos_ += 4;
    return v;
  }

  Result<std::uint64_t> ReadU64() {
    if (remaining() < 8) return Underflow(8);
    const std::uint64_t v = GetU64(data_.subspan(pos_));
    pos_ += 8;
    return v;
  }

  Result<ByteSpan> ReadBytes(std::size_t n) {
    if (remaining() < n) return Underflow(n);
    ByteSpan v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }

 private:
  Status Underflow(std::size_t need) const {
    return CorruptionError("decode underflow: need " + std::to_string(need) +
                           " bytes, have " + std::to_string(remaining()));
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace aru
