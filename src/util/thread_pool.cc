#include "util/thread_pool.h"

namespace aru::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { Run(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    const MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  idle_cv_.Wait(mu_, [this] {
    mu_.AssertHeld();
    return queue_.empty() && in_flight_ == 0;
  });
}

void ThreadPool::Run() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_, [this] {
        mu_.AssertHeld();
        return stopping_ || !queue_.empty();
      });
      // Even when stopping, drain the queue first so the destructor
      // never strands submitted work (Wait() would hang on in_flight_
      // accounting otherwise).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const MutexLock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace aru::util
