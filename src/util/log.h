// Minimal leveled logging to stderr. Off by default above WARNING so
// tests and benchmarks stay quiet; raise with aru::SetLogLevel.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace aru {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define ARU_LOG(level)                                              \
  if (::aru::LogLevel::level < ::aru::GetLogLevel()) {              \
  } else                                                            \
    ::aru::internal::LogMessage(::aru::LogLevel::level, __FILE__,   \
                                __LINE__)                           \
        .stream()

}  // namespace aru
