// CRC-32C (Castagnoli), used to validate segment summaries and
// checkpoint regions during recovery.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace aru {

// Computes CRC-32C over `data`, seeding with `seed` (pass the result of a
// previous call to checksum data incrementally).
std::uint32_t Crc32c(ByteSpan data, std::uint32_t seed = 0);

}  // namespace aru
