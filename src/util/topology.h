// Machine-topology-derived sizing defaults for sharded structures.
//
// Shard counts trade memory and cross-shard fan-out cost against lock
// independence: one shard per thread that can actually contend is
// enough, and rounding up to a power of two keeps the index mix cheap.
// Before this helper every shard-count default was a hard-coded
// constant (the read cache used 8 regardless of the machine); now the
// read cache and the persistent-table shards both derive their default
// from the hardware concurrency the process actually sees, so a
// 4-core CI runner does not pay a 64-shard table and a 64-core server
// is not serialized onto 8 locks.
//
// The core count comes from std::thread::hardware_concurrency(),
// which already reflects cgroup/affinity restrictions on Linux per
// libstdc++. Socket count is deliberately not consulted separately: on
// every topology we care about, hardware_concurrency() already scales
// with sockets, and reading /sys from library code would drag
// filesystem access into Lld construction.
#pragma once

#include <cstddef>
#include <thread>

namespace aru::util {

// Smallest power of two >= n (n = 0 or 1 gives 1).
constexpr std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Default shard count for a `threads`-way machine: one shard per
// hardware thread, rounded up to a power of two, clamped to [4, 64].
// The floor keeps small machines from collapsing to a single lock
// under oversubscription (benchmarks routinely run more streams than
// cores); the ceiling bounds per-shard bookkeeping and the cost of
// cross-shard sweeps (snapshots, ForEach) on very wide machines.
constexpr std::size_t ShardCountForThreads(std::size_t threads) {
  const std::size_t rounded = RoundUpPow2(threads);
  if (rounded < 4) return 4;
  if (rounded > 64) return 64;
  return rounded;
}

// ShardCountForThreads over the hardware concurrency of this process.
// hardware_concurrency() may return 0 when undeterminable; the clamp
// turns that into the floor of 4.
inline std::size_t DefaultShardCount() {
  return ShardCountForThreads(std::thread::hardware_concurrency());
}

// Worker-pool width for a `threads`-way machine. Unlike shard counts,
// pool threads pay a real per-thread cost (a stack, a kernel thread,
// context switches), so there is no power-of-two rounding and no floor
// above 1: one worker per hardware thread, clamped to [1, 16]. The
// ceiling bounds fan-out on very wide machines where recovery becomes
// device-bound long before 16 readers.
constexpr std::size_t PoolThreadsForMachine(std::size_t threads) {
  if (threads < 1) return 1;
  if (threads > 16) return 16;
  return threads;
}

// PoolThreadsForMachine over the hardware concurrency of this process
// (0 when undeterminable is clamped to 1).
inline std::size_t DefaultPoolThreads() {
  return PoolThreadsForMachine(std::thread::hardware_concurrency());
}

}  // namespace aru::util
