#include "util/crc32.h"

#include <array>

namespace aru {
namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected CRC-32C polynomial

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

std::uint32_t Crc32c(ByteSpan data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (const std::byte b : data) {
    crc = (crc >> 8) ^
          kTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xffu];
  }
  return ~crc;
}

}  // namespace aru
