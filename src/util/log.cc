#include "util/log.h"

#include <atomic>

#include "util/mutex.h"
#include "util/protocol_annotations.h"

namespace aru {
namespace {

std::atomic<LogLevel> g_level ARU_ATOMIC_COUNTER{LogLevel::kWarning};
Mutex g_output_mutex{"util_log"};  // serializes whole messages onto stderr

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::string_view Basename(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : level_(level) {
  stream_ << '[' << LevelName(level) << ' ' << Basename(file) << ':' << line
          << "] ";
}

LogMessage::~LogMessage() {
  const MutexLock lock(g_output_mutex);
  std::cerr << stream_.str() << '\n';
}

}  // namespace internal
}  // namespace aru
