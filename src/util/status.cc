#include "util/status.h"

namespace aru {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfSpace: return "OUT_OF_SPACE";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status InvalidArgumentError(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status NotFoundError(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
Status AlreadyExistsError(std::string message) {
  return {StatusCode::kAlreadyExists, std::move(message)};
}
Status FailedPreconditionError(std::string message) {
  return {StatusCode::kFailedPrecondition, std::move(message)};
}
Status OutOfSpaceError(std::string message) {
  return {StatusCode::kOutOfSpace, std::move(message)};
}
Status IoError(std::string message) {
  return {StatusCode::kIoError, std::move(message)};
}
Status CorruptionError(std::string message) {
  return {StatusCode::kCorruption, std::move(message)};
}
Status UnavailableError(std::string message) {
  return {StatusCode::kUnavailable, std::move(message)};
}

}  // namespace aru
