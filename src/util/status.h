// Status and Result<T>: explicit, allocation-light error propagation.
//
// The disk system reports expected failures (unallocated block, unknown
// list, out of space, I/O error, corruption) through these types rather
// than exceptions; exceptions remain reserved for programming errors.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace aru {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something nonsensical
  kNotFound,          // block/list/ARU id does not exist
  kAlreadyExists,     // id already allocated
  kFailedPrecondition,// operation not legal in current state
  kOutOfSpace,        // disk full even after cleaning
  kIoError,           // substrate read/write failed
  kCorruption,        // on-disk data failed validation
  kUnavailable,       // device is offline (e.g. simulated power failure)
};

std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no
// allocation); error path carries a code and a human-readable message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Convenience constructors, mirroring the StatusCode enumerators.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfSpaceError(std::string message);
Status IoError(std::string message);
Status CorruptionError(std::string message);
Status UnavailableError(std::string message);

// Result<T> holds either a T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from an OK status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK when a value is present
  std::optional<T> value_;
};

// Propagate an error Status from an expression producing Status.
#define ARU_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::aru::Status aru_status_ = (expr);             \
    if (!aru_status_.ok()) return aru_status_;      \
  } while (false)

#define ARU_CONCAT_INNER(a, b) a##b
#define ARU_CONCAT(a, b) ARU_CONCAT_INNER(a, b)

// Assign the value of a Result<T> expression or propagate its error.
#define ARU_ASSIGN_OR_RETURN(lhs, expr)                          \
  ARU_ASSIGN_OR_RETURN_IMPL(ARU_CONCAT(aru_result_, __LINE__), lhs, expr)

#define ARU_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace aru
