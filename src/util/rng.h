// Deterministic pseudo-random generator (xoshiro256**) for workload
// generation, fault injection and property tests. Deterministic across
// platforms, unlike std::mt19937 + std::uniform_int_distribution.
#pragma once

#include <cstdint>

namespace aru {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) {
    // Debiased via rejection sampling.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform value in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  // True with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) {
    return Below(den) < num;
  }

  double NextDouble() {  // in [0, 1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace aru
