// Write-ordering protocol annotations, checked by tools/arulint.
//
// The ARU commit protocol orders every metadata change behind the log:
// the summary / commit record describing a mutation must reach the
// segment before the in-memory block-number map or list table reflects
// it, because recovery rebuilds those tables by replaying the log —
// state the log never saw cannot be rebuilt after a crash.
//
// The macros expand to nothing; they are declarations of intent that
// arulint's crash-order rule enforces over the intra-file call graph:
//
//   ARU_APPENDS_SUMMARY   this function durably appends a summary /
//                         commit record to the segment log. Calls to it
//                         (direct or transitive) satisfy the ordering
//                         obligation for mutations later on the path.
//
//   ARU_MUTATES_TABLES    this function mutates the block-number map or
//                         list table. Its own body is exempt from the
//                         append-first check; instead every CALLER must
//                         have appended (or itself be annotated, moving
//                         the obligation further up).
//
// Place the macro on the declaration, after the parameter list:
//
//   void PromoteAllCommittedLocked() ARU_MUTATES_TABLES
//       ARU_EXCLUSIVE_LOCKS_REQUIRED(mu_);
//
// Suppress a deliberate violation at the call site with
// `// arulint: allow(crash-order) <reason>`.
#pragma once

#define ARU_MUTATES_TABLES
#define ARU_APPENDS_SUMMARY
