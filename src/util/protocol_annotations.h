// Concurrency-protocol annotations, checked by tools/arulint.
//
// The ARU commit protocol orders every metadata change behind the log:
// the summary / commit record describing a mutation must reach the
// segment before the in-memory block-number map or list table reflects
// it, because recovery rebuilds those tables by replaying the log —
// state the log never saw cannot be rebuilt after a crash.
//
// The macros expand to nothing; they are declarations of intent that
// arulint's crash-order rule enforces over the intra-file call graph:
//
//   ARU_APPENDS_SUMMARY   this function durably appends a summary /
//                         commit record to the segment log. Calls to it
//                         (direct or transitive) satisfy the ordering
//                         obligation for mutations later on the path.
//
//   ARU_MUTATES_TABLES    this function mutates the block-number map or
//                         list table. Its own body is exempt from the
//                         append-first check; instead every CALLER must
//                         have appended (or itself be annotated, moving
//                         the obligation further up).
//
// Place the macro on the declaration, after the parameter list:
//
//   void PromoteAllCommittedLocked() ARU_MUTATES_TABLES
//       ARU_EXCLUSIVE_LOCKS_REQUIRED(mu_);
//
// Suppress a deliberate violation at the call site with
// `// arulint: allow(crash-order) <reason>`.
//
// The atomic-order rule (arulint v3) adds a memory-order vocabulary for
// every `std::atomic` in src/. Each atomic declaration must state which
// discipline it follows; an unannotated atomic is flagged:
//
//   ARU_ATOMIC_COUNTER      a statistic, hint, or flag whose readers
//                           tolerate staleness or are ordered by some
//                           other synchronization (a mutex, a join).
//                           memory_order_relaxed loads/stores/RMW are
//                           legal and expected.
//
//   ARU_ATOMIC_PUBLISHES(what)  the atomic publishes `what` to readers
//                           that hold no common lock: the write must
//                           use release (or stronger) ordering and the
//                           read acquire (or stronger), so the data the
//                           value stands for is visible when the value
//                           is. memory_order_relaxed on such an atomic
//                           is flagged.
//
// Place the macro between the member name and its initializer:
//
//   std::atomic<std::uint64_t> gen ARU_ATOMIC_PUBLISHES(slot_reuse){0};
//   std::atomic<std::uint64_t> hits_ ARU_ATOMIC_COUNTER{0};
//
// The recovery-symmetry rules (arulint v4) add a codec vocabulary. A
// record that the runtime persists is only recoverable when its decode
// path mirrors its encode path, so the two halves are declared and the
// record-coverage / field-symmetry rules check them against each other:
//
//   ARU_ENCODES_RECORD    this function serializes on-disk record
//                         structs into log / checkpoint bytes. Every
//                         RecordType enumerator must be handled by an
//                         encoder reachable from an ARU_APPENDS_SUMMARY
//                         function, and every record field the encoders
//                         write must be read back by a decoder.
//
//   ARU_DECODES_RECORD    this function parses on-disk record structs
//                         back out of log / checkpoint bytes (the
//                         summary decoder, the checkpoint decoder, the
//                         recovery scan). The decode side of both
//                         symmetry checks is collected from these
//                         bodies.
//
// Like the crash-order pair, they go on the declaration after the
// parameter list:
//
//   std::size_t EncodeRecord(const Record& r, Bytes& out)
//       ARU_ENCODES_RECORD;
#pragma once

#define ARU_MUTATES_TABLES
#define ARU_APPENDS_SUMMARY
#define ARU_ATOMIC_COUNTER
#define ARU_ATOMIC_PUBLISHES(what)
#define ARU_ENCODES_RECORD
#define ARU_DECODES_RECORD
