// Fixed-width worker pool for fan-out/join parallelism.
//
// Recovery's summary scan (and any future bounded-parallel phase) needs
// N workers that pull independent chunks off a queue and a caller that
// blocks until all of them finish. std::async allocates a thread per
// task and gives no join-all primitive; this pool spawns its threads
// once, reuses them for every Submit, and exposes Wait() as the
// fan-in barrier. Width comes from util/topology.h
// (PoolThreadsForMachine) unless the caller pins it.
//
// Semantics:
//   - Submit() enqueues; any idle worker picks the task up in FIFO
//     order. Tasks must not throw (the pool runs them bare).
//   - Wait() blocks until the queue is empty AND no task is mid-run,
//     then returns with the pool reusable for the next batch.
//   - The destructor runs any still-queued tasks to completion, then
//     joins every worker (arulint's thread-lifecycle rule).
//
// Error handling stays with the caller: tasks capture per-task result
// slots (e.g. a Status per chunk) and the caller inspects them after
// Wait(). The pool itself never sees task outcomes.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aru::util {

class ThreadPool {
 public:
  // Spawns `threads` workers immediately (0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  // Enqueues `task` for execution on some worker, FIFO.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished running.
  void Wait();

 private:
  void Run();

  Mutex mu_{"util_thread_pool"};
  CondVar work_cv_;  // workers sleep here for queue_ / stopping_
  CondVar idle_cv_;  // Wait() sleeps here for drained + nothing in flight
  std::deque<std::function<void()>> queue_ ARU_GUARDED_BY(mu_);
  std::size_t in_flight_ ARU_GUARDED_BY(mu_) = 0;
  bool stopping_ ARU_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace aru::util
