// Clang Thread Safety Analysis annotations.
//
// The LLD serializes its public API behind a single mutex, the lock
// manager implements wait-die under another, and the obs registry has a
// third — the lock discipline is simple, but "simple and unchecked"
// rots. These macros let clang's -Wthread-safety prove, at compile
// time, that every access to a guarded member happens with the right
// mutex held. Under other compilers (the default toolchain here is
// gcc) they expand to nothing; CI runs the clang build.
//
// Vocabulary (see docs/STATIC_ANALYSIS.md for the full catalogue):
//   ARU_CAPABILITY        — marks a class as a lockable capability.
//   ARU_SCOPED_CAPABILITY — marks an RAII lock holder.
//   ARU_GUARDED_BY(mu)    — data member readable/writable only with mu.
//   ARU_PT_GUARDED_BY(mu) — pointee guarded (the pointer itself is not).
//   ARU_REQUIRES(mu)      — caller must hold mu to call this function.
//   ARU_ACQUIRE(mu) / ARU_RELEASE(mu) — function takes / drops mu.
//   ARU_TRY_ACQUIRE(ok, mu) — conditional acquisition.
//   ARU_EXCLUDES(mu)      — caller must NOT hold mu (deadlock guard).
//   ARU_ASSERT_CAPABILITY(mu) — runtime assertion the analysis trusts;
//                               the escape hatch for lambdas, which the
//                               analysis treats as separate functions.
//   ARU_SHARED_* vocabulary   — reader/writer capabilities. A shared
//       acquisition (ARU_ACQUIRE_SHARED / ARU_REQUIRES_SHARED /
//       ARU_ASSERT_SHARED_CAPABILITY) permits reads of guarded state;
//       writes still demand the exclusive forms. Holding a capability
//       exclusively satisfies a shared requirement, never vice versa.
//   ARU_RETURN_CAPABILITY(mu) — accessor returning a reference to mu.
//   ARU_NO_THREAD_SAFETY_ANALYSIS — opt a function out entirely.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define ARU_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ARU_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define ARU_CAPABILITY(name) ARU_THREAD_ANNOTATION(capability(name))
#define ARU_SCOPED_CAPABILITY ARU_THREAD_ANNOTATION(scoped_lockable)
#define ARU_GUARDED_BY(x) ARU_THREAD_ANNOTATION(guarded_by(x))
#define ARU_PT_GUARDED_BY(x) ARU_THREAD_ANNOTATION(pt_guarded_by(x))
#define ARU_ACQUIRED_BEFORE(...) \
  ARU_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ARU_ACQUIRED_AFTER(...) \
  ARU_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define ARU_REQUIRES(...) \
  ARU_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ARU_REQUIRES_SHARED(...) \
  ARU_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ARU_ACQUIRE(...) ARU_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ARU_ACQUIRE_SHARED(...) \
  ARU_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ARU_RELEASE(...) ARU_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ARU_RELEASE_SHARED(...) \
  ARU_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define ARU_TRY_ACQUIRE(...) \
  ARU_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ARU_EXCLUDES(...) ARU_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ARU_ASSERT_CAPABILITY(x) \
  ARU_THREAD_ANNOTATION(assert_capability(x))
#define ARU_ASSERT_SHARED_CAPABILITY(x) \
  ARU_THREAD_ANNOTATION(assert_shared_capability(x))
#define ARU_RETURN_CAPABILITY(x) ARU_THREAD_ANNOTATION(lock_returned(x))
#define ARU_NO_THREAD_SAFETY_ANALYSIS \
  ARU_THREAD_ANNOTATION(no_thread_safety_analysis)
