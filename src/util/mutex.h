// Annotated mutex wrappers for Clang Thread Safety Analysis, with
// named lock-site contention instrumentation.
//
// libstdc++'s std::mutex and std::lock_guard carry no thread-safety
// attributes, so -Wthread-safety cannot see through them. These thin
// wrappers add the attributes without changing behavior: Mutex is a
// std::mutex with a capability annotation, MutexLock is a lock_guard the
// analysis understands, and CondVar is a condition variable that waits
// on a Mutex (the analysis knows the mutex is held again when Wait
// returns).
//
// Contention attribution: every Mutex/SharedMutex carries a lock-site
// name (arulint's named-lock rule enforces this at every declaration)
// and an optional LockWaitSink. Uncontended acquires stay near the
// bare-std cost: exclusive mode is a try_lock plus one branch, shared
// mode is a relaxed pending-writer check plus a direct lock_shared
// (glibc's try_lock_shared is slower than lock_shared, so readers must
// not probe). Only a *contended* acquire pays for a clock read and a
// sink callback. util cannot depend on obs, so
// the sink is an interface here; obs::LockSiteMetrics implements it and
// publishes `aru_lock_wait_us_<site>_{exclusive,shared}` histograms and
// `aru_lock_contended_total_<site>_{exclusive,shared}` counters into an
// obs::Registry (see src/obs/lock_metrics.h). A mutex with no sink
// bound skips all accounting; the site name still documents the lock.
//
// AssertHeld() is the escape hatch for lambdas: the analysis treats a
// lambda body as a separate function with no knowledge of the enclosing
// scope's locks, so a lambda touching guarded state states its
// precondition with mu_.AssertHeld() (a no-op at runtime).
//
// SharedMutex is the reader/writer variant: ReaderMutexLock takes it in
// shared mode (many readers in parallel, reads of guarded state only),
// WriterMutexLock takes it exclusively. There is no upgrade path — a
// thread holding shared mode that calls Lock() deadlocks against
// itself, which both -Wthread-safety and arulint's lock-order rule
// flag. CondVar only waits on plain Mutex; code paths that need to
// block under a SharedMutex must drop it and re-validate instead.
// CondVar re-acquisition goes through the unannotated BasicLockable
// surface on purpose: time spent parked on a condition is not lock
// contention and must not pollute the wait histograms.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "util/protocol_annotations.h"
#include "util/thread_annotations.h"

namespace aru {

// Receiver for contended-acquire reports. Implemented by
// obs::LockSiteMetrics; defined here so util does not depend on obs.
// RecordContendedWait must be lock-free with respect to the reporting
// mutex (the obs implementation only touches relaxed atomics).
class LockWaitSink {
 public:
  virtual ~LockWaitSink() = default;

  // One contended acquire completed after blocking for `wait_us`
  // microseconds; `shared` is true for reader-mode acquisitions.
  virtual void RecordContendedWait(bool shared, std::uint64_t wait_us) = 0;
};

namespace internal {
inline std::uint64_t LockWaitElapsedUs(
    std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}
}  // namespace internal

class ARU_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  // `site` names this lock for contention attribution and must be a
  // string literal (stored by pointer, like trace categories).
  explicit Mutex(const char* site) : site_(site) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ARU_ACQUIRE() {
    if (!mu_.try_lock()) ContendedLock();
  }
  void Unlock() ARU_RELEASE() { mu_.unlock(); }
  bool TryLock() ARU_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  const char* site() const { return site_; }

  // Binds the contention sink. Not owned; the sink must outlive every
  // subsequent Lock(). The release store publishes the sink object's
  // construction to contended acquires, whose acquire load makes it
  // safe to call; a late bind (after threads started) at worst lets a
  // racing contended acquire go unreported.
  void SetWaitSink(LockWaitSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }

  // Declares (to the analysis only) that this mutex is held. No-op at
  // runtime; used inside lambdas that run under the enclosing lock.
  void AssertHeld() const ARU_ASSERT_CAPABILITY(this) {}

  // BasicLockable surface so std::condition_variable_any can wait on a
  // Mutex directly. Intentionally unannotated and uninstrumented: only
  // CondVar::Wait uses these, it carries the REQUIRES annotation
  // itself, and condition-wait re-acquires are not contention.
  void lock() ARU_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() ARU_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  // Slow path: the try_lock above failed, so this acquire blocks.
  void ContendedLock() {
    const auto start = std::chrono::steady_clock::now();
    mu_.lock();
    LockWaitSink* sink = sink_.load(std::memory_order_acquire);
    if (sink != nullptr) {
      sink->RecordContendedWait(/*shared=*/false,
                                internal::LockWaitElapsedUs(start));
    }
  }

  std::mutex mu_;
  const char* site_ = nullptr;
  std::atomic<LockWaitSink*> sink_ ARU_ATOMIC_PUBLISHES(lock_site_metrics){nullptr};
};

// RAII lock holder; the annotated equivalent of std::lock_guard.
class ARU_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ARU_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ARU_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Reader/writer mutex: std::shared_mutex with capability annotations.
// Exclusive mode uses the same Lock/Unlock vocabulary as Mutex so
// WriterMutexLock reads identically to MutexLock at call sites.
// Contended waits are attributed per mode: a reader blocked behind a
// writer reports shared, a writer blocked behind anyone reports
// exclusive.
class ARU_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  // `site` names this lock for contention attribution and must be a
  // string literal.
  explicit SharedMutex(const char* site) : site_(site) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  // Exclusive acquires bracket themselves in `writers_` so the shared
  // fast path below can stay a direct lock_shared(): glibc's
  // try_lock_shared is measurably (~10-20%) slower than lock_shared
  // even uncontended, so readers must not probe. The two extra relaxed
  // RMWs here are paid by the (rare, already device-I/O-bound)
  // exclusive path instead.
  void Lock() ARU_ACQUIRE() {
    writers_.fetch_add(1, std::memory_order_relaxed);
    if (!mu_.try_lock()) ContendedLock();
  }
  void Unlock() ARU_RELEASE() {
    mu_.unlock();
    writers_.fetch_sub(1, std::memory_order_relaxed);
  }
  bool TryLock() ARU_TRY_ACQUIRE(true) {
    writers_.fetch_add(1, std::memory_order_relaxed);
    if (mu_.try_lock()) return true;
    writers_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }

  // Fast path: one relaxed load + branch on top of the baseline
  // lock_shared() — readers never pay the try_lock_shared penalty.
  // `writers_` is a hint: a reader racing a writer's increment may
  // block unrecorded (missed sample, accepted), and a stale nonzero
  // just detours through the slow path's try, which filters it.
  void ReaderLock() ARU_ACQUIRE_SHARED() {
    if (writers_.load(std::memory_order_relaxed) != 0) {
      ContendedReaderLock();
      return;
    }
    mu_.lock_shared();
  }
  void ReaderUnlock() ARU_RELEASE_SHARED() { mu_.unlock_shared(); }

  const char* site() const { return site_; }

  // See Mutex::SetWaitSink.
  void SetWaitSink(LockWaitSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }

  // Lambda escape hatches, mirroring Mutex::AssertHeld: no-ops at
  // runtime that state the (exclusive / at-least-shared) precondition.
  void AssertHeld() const ARU_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ARU_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  void ContendedLock() {
    const auto start = std::chrono::steady_clock::now();
    mu_.lock();
    LockWaitSink* sink = sink_.load(std::memory_order_acquire);
    if (sink != nullptr) {
      sink->RecordContendedWait(/*shared=*/false,
                                internal::LockWaitElapsedUs(start));
    }
  }

  void ContendedReaderLock() {
    // The writer hint can be stale (Unlock decrements after release);
    // keep "contended" meaning "a try failed", not "the hint fired".
    if (mu_.try_lock_shared()) return;
    const auto start = std::chrono::steady_clock::now();
    mu_.lock_shared();
    LockWaitSink* sink = sink_.load(std::memory_order_acquire);
    if (sink != nullptr) {
      sink->RecordContendedWait(/*shared=*/true,
                                internal::LockWaitElapsedUs(start));
    }
  }

  std::shared_mutex mu_;
  const char* site_ = nullptr;
  std::atomic<LockWaitSink*> sink_ ARU_ATOMIC_PUBLISHES(lock_site_metrics){nullptr};
  // Writers currently holding or waiting for exclusive mode; the
  // shared fast path's contention hint.
  std::atomic<std::uint32_t> writers_ ARU_ATOMIC_COUNTER{0};
};

// RAII exclusive holder for SharedMutex; the writer-side MutexLock.
class ARU_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ARU_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() ARU_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared holder for SharedMutex. Reads of ARU_GUARDED_BY state are
// permitted while one of these is live; writes are not.
class ARU_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ARU_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  // Generic release: the analysis pairs it with whichever mode the
  // constructor acquired.
  ~ReaderMutexLock() ARU_RELEASE() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to an annotated Mutex at each wait site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and re-acquires `mu` before
  // returning — so from the analysis's view the capability is held
  // throughout (REQUIRES, not RELEASE+ACQUIRE).
  void Wait(Mutex& mu) ARU_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) ARU_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  // Timed wait: returns the predicate's value when the wait ends
  // (false on timeout with the predicate still unsatisfied). Used by
  // periodic workers (obs::Sampler) so Stop() interrupts the sleep.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Pred pred) ARU_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace aru
