// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex and std::lock_guard carry no thread-safety
// attributes, so -Wthread-safety cannot see through them. These thin
// wrappers add the attributes without changing behavior: Mutex is a
// std::mutex with a capability annotation, MutexLock is a lock_guard the
// analysis understands, and CondVar is a condition variable that waits
// on a Mutex (the analysis knows the mutex is held again when Wait
// returns).
//
// AssertHeld() is the escape hatch for lambdas: the analysis treats a
// lambda body as a separate function with no knowledge of the enclosing
// scope's locks, so a lambda touching guarded state states its
// precondition with mu_.AssertHeld() (a no-op at runtime).
//
// SharedMutex is the reader/writer variant: ReaderMutexLock takes it in
// shared mode (many readers in parallel, reads of guarded state only),
// WriterMutexLock takes it exclusively. There is no upgrade path — a
// thread holding shared mode that calls Lock() deadlocks against
// itself, which both -Wthread-safety and arulint's lock-order rule
// flag. CondVar only waits on plain Mutex; code paths that need to
// block under a SharedMutex must drop it and re-validate instead.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace aru {

class ARU_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ARU_ACQUIRE() { mu_.lock(); }
  void Unlock() ARU_RELEASE() { mu_.unlock(); }
  bool TryLock() ARU_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Declares (to the analysis only) that this mutex is held. No-op at
  // runtime; used inside lambdas that run under the enclosing lock.
  void AssertHeld() const ARU_ASSERT_CAPABILITY(this) {}

  // BasicLockable surface so std::condition_variable_any can wait on a
  // Mutex directly. Intentionally unannotated: only CondVar::Wait uses
  // these, and it carries the REQUIRES annotation itself.
  void lock() ARU_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() ARU_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock holder; the annotated equivalent of std::lock_guard.
class ARU_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ARU_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ARU_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Reader/writer mutex: std::shared_mutex with capability annotations.
// Exclusive mode uses the same Lock/Unlock vocabulary as Mutex so
// WriterMutexLock reads identically to MutexLock at call sites.
class ARU_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ARU_ACQUIRE() { mu_.lock(); }
  void Unlock() ARU_RELEASE() { mu_.unlock(); }
  bool TryLock() ARU_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() ARU_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() ARU_RELEASE_SHARED() { mu_.unlock_shared(); }

  // Lambda escape hatches, mirroring Mutex::AssertHeld: no-ops at
  // runtime that state the (exclusive / at-least-shared) precondition.
  void AssertHeld() const ARU_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ARU_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// RAII exclusive holder for SharedMutex; the writer-side MutexLock.
class ARU_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ARU_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() ARU_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared holder for SharedMutex. Reads of ARU_GUARDED_BY state are
// permitted while one of these is live; writes are not.
class ARU_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ARU_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  // Generic release: the analysis pairs it with whichever mode the
  // constructor acquired.
  ~ReaderMutexLock() ARU_RELEASE() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to an annotated Mutex at each wait site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and re-acquires `mu` before
  // returning — so from the analysis's view the capability is held
  // throughout (REQUIRES, not RELEASE+ACQUIRE).
  void Wait(Mutex& mu) ARU_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) ARU_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace aru
