// Virtual time used by the disk service-time model. The simulated disk
// advances this clock by each request's modeled service time, which lets
// benchmarks report paper-comparable throughput (MB/s, files/s on a 1996
// SCSI disk) deterministically and independent of host speed.
#pragma once

#include <cstdint>

namespace aru {

// Monotone virtual clock with microsecond resolution.
class VirtualClock {
 public:
  std::uint64_t now_us() const { return now_us_; }

  void Advance(std::uint64_t delta_us) { now_us_ += delta_us; }

  // Moves the clock to `t` if `t` is in the future (e.g. the disk arm is
  // busy until `t`); no-op otherwise.
  void AdvanceTo(std::uint64_t t_us) {
    if (t_us > now_us_) now_us_ = t_us;
  }

  void Reset() { now_us_ = 0; }

 private:
  std::uint64_t now_us_ = 0;
};

}  // namespace aru
