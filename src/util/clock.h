// Virtual time used by the disk service-time model. The simulated disk
// advances this clock by each request's modeled service time, which lets
// benchmarks report paper-comparable throughput (MB/s, files/s on a 1996
// SCSI disk) deterministically and independent of host speed.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/protocol_annotations.h"

namespace aru {

// Monotone virtual clock with microsecond resolution. Atomic so that
// concurrent streams over one ModeledDisk advance it without tearing;
// relaxed ordering suffices — readers only need *a* monotone value, not
// ordering against other memory.
class VirtualClock {
 public:
  std::uint64_t now_us() const {
    return now_us_.load(std::memory_order_relaxed);
  }

  void Advance(std::uint64_t delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_relaxed);
  }

  // Moves the clock to `t` if `t` is in the future (e.g. the disk arm is
  // busy until `t`); no-op otherwise.
  void AdvanceTo(std::uint64_t t_us) {
    std::uint64_t now = now_us_.load(std::memory_order_relaxed);
    while (t_us > now && !now_us_.compare_exchange_weak(
                             now, t_us, std::memory_order_relaxed)) {
    }
  }

  void Reset() { now_us_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> now_us_ ARU_ATOMIC_COUNTER{0};
};

}  // namespace aru
