#include "btree/btree.h"

#include <algorithm>
#include <string>

#include "util/bytes.h"

namespace aru::btree {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::ListId;

constexpr std::uint32_t kMetaMagic = 0x42545231;  // "BTR1"
constexpr std::uint32_t kNodeMagic = 0x42544e44;  // "BTND"

// Entries per node: header (16 bytes) + 16 bytes per key/value or
// key/child pair in a 4 KB block.
constexpr std::uint16_t kMaxEntries = 254;

struct Meta {
  std::uint64_t root = 0;
  std::uint16_t height = 1;
  std::uint64_t entries = 0;
};

struct Node {
  bool leaf = true;
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> values;  // leaf: values.size() == keys.size()
  std::vector<BlockId> kids;          // internal: keys.size() + 1 children
};

Bytes EncodeMeta(const Meta& meta, std::uint32_t block_size) {
  Bytes out;
  PutU32(out, kMetaMagic);
  PutU16(out, meta.height);
  PutU16(out, 0);
  PutU64(out, meta.root);
  PutU64(out, meta.entries);
  out.resize(block_size);
  return out;
}

Result<Meta> DecodeMeta(ByteSpan block) {
  Decoder dec(block);
  ARU_ASSIGN_OR_RETURN(const std::uint32_t magic, dec.ReadU32());
  if (magic != kMetaMagic) return CorruptionError("not a B+tree meta block");
  Meta meta;
  ARU_ASSIGN_OR_RETURN(meta.height, dec.ReadU16());
  ARU_ASSIGN_OR_RETURN(std::uint16_t pad, dec.ReadU16());
  (void)pad;
  ARU_ASSIGN_OR_RETURN(meta.root, dec.ReadU64());
  ARU_ASSIGN_OR_RETURN(meta.entries, dec.ReadU64());
  return meta;
}

Bytes EncodeNode(const Node& node, std::uint32_t block_size) {
  Bytes out;
  PutU32(out, kNodeMagic);
  PutU16(out, node.leaf ? 1 : 2);
  PutU16(out, static_cast<std::uint16_t>(node.keys.size()));
  PutU64(out, 0);  // reserved
  for (const std::uint64_t key : node.keys) PutU64(out, key);
  if (node.leaf) {
    for (const std::uint64_t value : node.values) PutU64(out, value);
  } else {
    for (const BlockId kid : node.kids) PutU64(out, kid.value());
  }
  out.resize(block_size);
  return out;
}

Result<Node> DecodeNode(ByteSpan block) {
  Decoder dec(block);
  ARU_ASSIGN_OR_RETURN(const std::uint32_t magic, dec.ReadU32());
  if (magic != kNodeMagic) return CorruptionError("not a B+tree node");
  ARU_ASSIGN_OR_RETURN(const std::uint16_t type, dec.ReadU16());
  ARU_ASSIGN_OR_RETURN(const std::uint16_t count, dec.ReadU16());
  ARU_ASSIGN_OR_RETURN(std::uint64_t reserved, dec.ReadU64());
  (void)reserved;
  Node node;
  node.leaf = type == 1;
  node.keys.resize(count);
  for (auto& key : node.keys) {
    ARU_ASSIGN_OR_RETURN(key, dec.ReadU64());
  }
  if (node.leaf) {
    node.values.resize(count);
    for (auto& value : node.values) {
      ARU_ASSIGN_OR_RETURN(value, dec.ReadU64());
    }
  } else {
    node.kids.resize(count + 1u);
    for (auto& kid : node.kids) {
      ARU_ASSIGN_OR_RETURN(const std::uint64_t raw, dec.ReadU64());
      kid = BlockId{raw};
    }
  }
  return node;
}

// The child to descend into for `key`.
std::size_t ChildIndex(const Node& node, std::uint64_t key) {
  const auto it =
      std::upper_bound(node.keys.begin(), node.keys.end(), key);
  return static_cast<std::size_t>(it - node.keys.begin());
}

}  // namespace

// ----------------------------------------------------------------------
// Tree operations live in a helper with the disk/aru plumbing.

namespace {

class TreeOps {
 public:
  TreeOps(ld::Disk& disk, ListId list, BlockId meta_block, AruId aru)
      : disk_(disk), list_(list), meta_block_(meta_block), aru_(aru) {}

  Result<Meta> LoadMeta() {
    Bytes block(disk_.block_size());
    ARU_RETURN_IF_ERROR(disk_.Read(meta_block_, block, aru_));
    return DecodeMeta(block);
  }

  Status StoreMeta(const Meta& meta) {
    return disk_.Write(meta_block_, EncodeMeta(meta, disk_.block_size()),
                       aru_);
  }

  Result<Node> Load(BlockId id) {
    Bytes block(disk_.block_size());
    ARU_RETURN_IF_ERROR(disk_.Read(id, block, aru_));
    return DecodeNode(block);
  }

  Status Store(BlockId id, const Node& node) {
    return disk_.Write(id, EncodeNode(node, disk_.block_size()), aru_);
  }

  Result<BlockId> Allocate() {
    return disk_.NewBlock(list_, meta_block_, aru_);
  }

  struct SplitResult {
    bool split = false;
    std::uint64_t separator = 0;
    BlockId right;
  };

  // Inserts into the subtree at `id`; splits propagate upward.
  Result<SplitResult> Insert(BlockId id, std::uint64_t key,
                             std::uint64_t value, bool* fresh_key,
                             std::uint64_t* splits) {
    ARU_ASSIGN_OR_RETURN(Node node, Load(id));
    if (node.leaf) {
      const auto it =
          std::lower_bound(node.keys.begin(), node.keys.end(), key);
      const auto at = static_cast<std::size_t>(it - node.keys.begin());
      if (it != node.keys.end() && *it == key) {
        node.values[at] = value;  // overwrite
        *fresh_key = false;
      } else {
        node.keys.insert(it, key);
        node.values.insert(node.values.begin() +
                               static_cast<std::ptrdiff_t>(at),
                           value);
        *fresh_key = true;
      }
      return FinishInsert(id, std::move(node), splits);
    }

    const std::size_t child_index = ChildIndex(node, key);
    ARU_ASSIGN_OR_RETURN(
        const SplitResult child_split,
        Insert(node.kids[child_index], key, value, fresh_key, splits));
    if (child_split.split) {
      node.keys.insert(node.keys.begin() +
                           static_cast<std::ptrdiff_t>(child_index),
                       child_split.separator);
      node.kids.insert(node.kids.begin() +
                           static_cast<std::ptrdiff_t>(child_index) + 1,
                       child_split.right);
    }
    return FinishInsert(id, std::move(node), splits);
  }

  // Removes from the subtree at `id`. `emptied` reports that this
  // child is now empty and was freed (the parent must drop it).
  Result<bool> Remove(BlockId id, std::uint64_t key, bool* removed,
                      std::uint64_t* frees) {
    ARU_ASSIGN_OR_RETURN(Node node, Load(id));
    if (node.leaf) {
      const auto it =
          std::lower_bound(node.keys.begin(), node.keys.end(), key);
      if (it == node.keys.end() || *it != key) {
        *removed = false;
        return false;
      }
      const auto at = static_cast<std::size_t>(it - node.keys.begin());
      node.keys.erase(it);
      node.values.erase(node.values.begin() +
                        static_cast<std::ptrdiff_t>(at));
      *removed = true;
      if (node.keys.empty()) return true;  // parent frees us
      ARU_RETURN_IF_ERROR(Store(id, node));
      return false;
    }

    const std::size_t child_index = ChildIndex(node, key);
    const BlockId child = node.kids[child_index];
    ARU_ASSIGN_OR_RETURN(const bool child_emptied,
                         Remove(child, key, removed, frees));
    if (!child_emptied) return false;

    // Drop the emptied child and its separator.
    ARU_RETURN_IF_ERROR(disk_.DeleteBlock(child, aru_));
    ++*frees;
    node.kids.erase(node.kids.begin() +
                    static_cast<std::ptrdiff_t>(child_index));
    if (!node.keys.empty()) {
      const std::size_t sep =
          child_index == 0 ? 0 : child_index - 1;
      node.keys.erase(node.keys.begin() + static_cast<std::ptrdiff_t>(sep));
    }
    if (node.kids.empty()) return true;  // internal node now empty too
    ARU_RETURN_IF_ERROR(Store(id, node));
    return false;
  }

  Status ScanRange(BlockId id, std::uint64_t first, std::uint64_t last,
                   const std::function<void(std::uint64_t, std::uint64_t)>&
                       visit) {
    ARU_ASSIGN_OR_RETURN(const Node node, Load(id));
    if (node.leaf) {
      for (std::size_t i = 0; i < node.keys.size(); ++i) {
        if (node.keys[i] >= first && node.keys[i] <= last) {
          visit(node.keys[i], node.values[i]);
        }
      }
      return Status::Ok();
    }
    const std::size_t begin = ChildIndex(node, first);
    std::size_t end = ChildIndex(node, last);
    // upper_bound: keys equal to `last` live in the child to the right.
    end = std::min(end, node.kids.size() - 1);
    for (std::size_t i = begin; i <= end; ++i) {
      ARU_RETURN_IF_ERROR(ScanRange(node.kids[i], first, last, visit));
    }
    return Status::Ok();
  }

  struct ValidationState {
    std::uint64_t entries = 0;
    std::uint64_t nodes = 0;
  };

  Status ValidateSubtree(BlockId id, std::uint16_t depth,
                         std::uint16_t height,
                         std::optional<std::uint64_t> lower,
                         std::optional<std::uint64_t> upper,
                         ValidationState& state) {
    ARU_ASSIGN_OR_RETURN(const Node node, Load(id));
    ++state.nodes;
    if (!std::is_sorted(node.keys.begin(), node.keys.end())) {
      return CorruptionError("unsorted keys in node " +
                             std::to_string(id.value()));
    }
    if (std::adjacent_find(node.keys.begin(), node.keys.end()) !=
        node.keys.end()) {
      return CorruptionError("duplicate key in node " +
                             std::to_string(id.value()));
    }
    for (const std::uint64_t key : node.keys) {
      if ((lower && key < *lower) || (upper && key >= *upper)) {
        return CorruptionError("key out of separator range in node " +
                               std::to_string(id.value()));
      }
    }
    if (node.leaf) {
      if (depth != height) {
        return CorruptionError("leaf at wrong depth");
      }
      state.entries += node.keys.size();
      return Status::Ok();
    }
    if (node.kids.size() != node.keys.size() + 1) {
      return CorruptionError("internal node fan-out mismatch");
    }
    for (std::size_t i = 0; i < node.kids.size(); ++i) {
      const std::optional<std::uint64_t> kid_lower =
          i == 0 ? lower : std::optional<std::uint64_t>(node.keys[i - 1]);
      const std::optional<std::uint64_t> kid_upper =
          i == node.keys.size() ? upper
                                : std::optional<std::uint64_t>(node.keys[i]);
      ARU_RETURN_IF_ERROR(ValidateSubtree(node.kids[i],
                                          static_cast<std::uint16_t>(depth + 1),
                                          height, kid_lower, kid_upper,
                                          state));
    }
    return Status::Ok();
  }

 private:
  Result<SplitResult> FinishInsert(BlockId id, Node node,
                                   std::uint64_t* splits) {
    if (node.keys.size() <= kMaxEntries) {
      ARU_RETURN_IF_ERROR(Store(id, node));
      return SplitResult{};
    }
    // Split: upper half moves to a fresh right sibling.
    ++*splits;
    const std::size_t mid = node.keys.size() / 2;
    Node right;
    right.leaf = node.leaf;
    SplitResult result;
    result.split = true;
    if (node.leaf) {
      result.separator = node.keys[mid];
      right.keys.assign(node.keys.begin() + static_cast<std::ptrdiff_t>(mid),
                        node.keys.end());
      right.values.assign(
          node.values.begin() + static_cast<std::ptrdiff_t>(mid),
          node.values.end());
      node.keys.resize(mid);
      node.values.resize(mid);
    } else {
      // The middle key moves up; it does not stay in either half.
      result.separator = node.keys[mid];
      right.keys.assign(
          node.keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
          node.keys.end());
      right.kids.assign(node.kids.begin() + static_cast<std::ptrdiff_t>(mid) +
                            1,
                        node.kids.end());
      node.keys.resize(mid);
      node.kids.resize(mid + 1);
    }
    ARU_ASSIGN_OR_RETURN(result.right, Allocate());
    ARU_RETURN_IF_ERROR(Store(id, node));
    ARU_RETURN_IF_ERROR(Store(result.right, right));
    return result;
  }

  ld::Disk& disk_;
  ListId list_;
  BlockId meta_block_;
  AruId aru_;
};

}  // namespace

// ----------------------------------------------------------------------
// Public API.

Result<std::unique_ptr<BTree>> BTree::Create(ld::Disk& disk) {
  ARU_ASSIGN_OR_RETURN(const ListId list, disk.NewList());
  ARU_ASSIGN_OR_RETURN(const BlockId meta_block,
                       disk.NewBlock(list, ld::kListHead));
  ARU_ASSIGN_OR_RETURN(const BlockId root, disk.NewBlock(list, meta_block));

  Node empty_root;
  empty_root.leaf = true;
  ARU_RETURN_IF_ERROR(
      disk.Write(root, EncodeNode(empty_root, disk.block_size())));
  Meta meta;
  meta.root = root.value();
  ARU_RETURN_IF_ERROR(
      disk.Write(meta_block, EncodeMeta(meta, disk.block_size())));
  return std::unique_ptr<BTree>(new BTree(disk, list, meta_block));
}

Result<std::unique_ptr<BTree>> BTree::Open(ld::Disk& disk, ld::ListId list) {
  ARU_ASSIGN_OR_RETURN(const auto blocks, disk.ListBlocks(list));
  if (blocks.empty()) return CorruptionError("empty B+tree list");
  const BlockId meta_block = blocks.front();
  Bytes block(disk.block_size());
  ARU_RETURN_IF_ERROR(disk.Read(meta_block, block));
  ARU_RETURN_IF_ERROR(DecodeMeta(block).status());  // verify
  return std::unique_ptr<BTree>(new BTree(disk, list, meta_block));
}

Status BTree::Put(std::uint64_t key, std::uint64_t value) {
  ld::AruScope aru(disk_);
  ARU_RETURN_IF_ERROR(aru.status());
  TreeOps ops(disk_, list_, meta_block_, aru.id());
  ARU_ASSIGN_OR_RETURN(Meta meta, ops.LoadMeta());

  bool fresh_key = false;
  ARU_ASSIGN_OR_RETURN(
      const auto split,
      ops.Insert(BlockId{meta.root}, key, value, &fresh_key, &splits_));
  bool meta_dirty = fresh_key;
  if (fresh_key) ++meta.entries;
  if (split.split) {
    // Grow a new root above the old one.
    ARU_ASSIGN_OR_RETURN(const BlockId new_root, ops.Allocate());
    Node root;
    root.leaf = false;
    root.keys.push_back(split.separator);
    root.kids.push_back(BlockId{meta.root});
    root.kids.push_back(split.right);
    ARU_RETURN_IF_ERROR(ops.Store(new_root, root));
    meta.root = new_root.value();
    ++meta.height;
    meta_dirty = true;
  }
  if (meta_dirty) {
    ARU_RETURN_IF_ERROR(ops.StoreMeta(meta));
  }
  return aru.Commit();
}

Result<std::uint64_t> BTree::Get(std::uint64_t key) {
  TreeOps ops(disk_, list_, meta_block_, ld::kNoAru);
  ARU_ASSIGN_OR_RETURN(const Meta meta, ops.LoadMeta());
  BlockId id{meta.root};
  for (;;) {
    ARU_ASSIGN_OR_RETURN(const Node node, ops.Load(id));
    if (node.leaf) {
      const auto it =
          std::lower_bound(node.keys.begin(), node.keys.end(), key);
      if (it == node.keys.end() || *it != key) {
        return NotFoundError("key " + std::to_string(key));
      }
      return node.values[static_cast<std::size_t>(it - node.keys.begin())];
    }
    id = node.kids[ChildIndex(node, key)];
  }
}

Status BTree::Remove(std::uint64_t key) {
  ld::AruScope aru(disk_);
  ARU_RETURN_IF_ERROR(aru.status());
  TreeOps ops(disk_, list_, meta_block_, aru.id());
  ARU_ASSIGN_OR_RETURN(Meta meta, ops.LoadMeta());

  bool removed = false;
  ARU_ASSIGN_OR_RETURN(
      const bool root_emptied,
      ops.Remove(BlockId{meta.root}, key, &removed, &frees_));
  if (!removed) return NotFoundError("key " + std::to_string(key));
  --meta.entries;

  if (root_emptied) {
    // The root leaf went empty: keep it (a tree is never rootless),
    // just rewrite it empty. (An internal root that lost all children
    // cannot happen: it always retains at least one child below.)
    Node empty_root;
    empty_root.leaf = true;
    ARU_RETURN_IF_ERROR(ops.Store(BlockId{meta.root}, empty_root));
  } else {
    // Collapse a chain of single-child internal roots.
    for (;;) {
      ARU_ASSIGN_OR_RETURN(const Node root, ops.Load(BlockId{meta.root}));
      if (root.leaf || root.kids.size() > 1) break;
      const BlockId old_root{meta.root};
      meta.root = root.kids.front().value();
      --meta.height;
      ARU_RETURN_IF_ERROR(disk_.DeleteBlock(old_root, aru.id()));
      ++frees_;
    }
  }
  ARU_RETURN_IF_ERROR(ops.StoreMeta(meta));
  return aru.Commit();
}

Status BTree::Scan(std::uint64_t first, std::uint64_t last,
                   const std::function<void(std::uint64_t, std::uint64_t)>&
                       visit) {
  TreeOps ops(disk_, list_, meta_block_, ld::kNoAru);
  ARU_ASSIGN_OR_RETURN(const Meta meta, ops.LoadMeta());
  return ops.ScanRange(BlockId{meta.root}, first, last, visit);
}

Status BTree::Validate() {
  TreeOps ops(disk_, list_, meta_block_, ld::kNoAru);
  ARU_ASSIGN_OR_RETURN(const Meta meta, ops.LoadMeta());
  TreeOps::ValidationState state;
  ARU_RETURN_IF_ERROR(ops.ValidateSubtree(BlockId{meta.root}, 1, meta.height,
                                          std::nullopt, std::nullopt,
                                          state));
  if (state.entries != meta.entries) {
    return CorruptionError("entry count mismatch: meta says " +
                           std::to_string(meta.entries) + ", tree holds " +
                           std::to_string(state.entries));
  }
  ARU_ASSIGN_OR_RETURN(const auto blocks, disk_.ListBlocks(list_));
  if (blocks.size() != state.nodes + 1) {  // +1 for the meta block
    return CorruptionError("node count mismatch: list holds " +
                           std::to_string(blocks.size()) + " blocks, tree " +
                           std::to_string(state.nodes) + " nodes");
  }
  return Status::Ok();
}

Result<BTreeStats> BTree::Stats() {
  TreeOps ops(disk_, list_, meta_block_, ld::kNoAru);
  ARU_ASSIGN_OR_RETURN(const Meta meta, ops.LoadMeta());
  ARU_ASSIGN_OR_RETURN(const auto blocks, disk_.ListBlocks(list_));
  BTreeStats stats;
  stats.entries = meta.entries;
  stats.height = meta.height;
  stats.nodes = blocks.size() - 1;
  stats.splits = splits_;
  stats.frees = frees_;
  return stats;
}

}  // namespace aru::btree
