// A B+tree on the Logical Disk — a database index as a direct LD
// client, with every structural mutation protected by an ARU.
//
// This is the paper's second motivating client class (§3: transaction
// systems "often … bypass the file system altogether and utilize the
// raw disk interface"; ARUs give them multi-block failure atomicity
// without a write-ahead log). A node split touches three or more
// blocks — the overflowing node, its new sibling, and the parent (and
// possibly a new root). Bracketing the whole insert in one ARU makes
// the split atomic: after any crash the tree is either pre-split or
// post-split, never a dangling half.
//
// Layout: fixed-size u64 → u64 entries; one 4 KB block per node; all
// node blocks live on one LD list whose head block holds the tree
// meta-data (root pointer, height, entry count). Range scans walk the
// tree in order (no sibling chain: unlinking emptied leaves stays a
// strictly local, ARU-friendly operation).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ld/disk.h"

namespace aru::btree {

struct BTreeStats {
  std::uint64_t entries = 0;
  std::uint32_t height = 0;   // 1 = a single leaf
  std::uint64_t nodes = 0;
  std::uint64_t splits = 0;   // this session
  std::uint64_t frees = 0;    // emptied nodes freed, this session
};

class BTree {
 public:
  // Builds an empty tree on the disk. The returned handle's `list()`
  // identifies the tree (persist it to reopen later).
  static Result<std::unique_ptr<BTree>> Create(ld::Disk& disk);

  // Opens an existing tree by its list id.
  static Result<std::unique_ptr<BTree>> Open(ld::Disk& disk, ld::ListId list);

  // Inserts or overwrites. Structural changes (splits, new root) and
  // the data write commit in a single ARU.
  Status Put(std::uint64_t key, std::uint64_t value);

  Result<std::uint64_t> Get(std::uint64_t key);

  // Removes a key (kNotFound if absent). Emptied non-root leaves are
  // unlinked from their parents and freed, atomically.
  Status Remove(std::uint64_t key);

  // In-order [first, last] inclusive range scan.
  Status Scan(std::uint64_t first, std::uint64_t last,
              const std::function<void(std::uint64_t key,
                                       std::uint64_t value)>& visit);

  // Validates the whole structure: key ordering, child separators,
  // leaf chaining, and entry count.
  Status Validate();

  Result<BTreeStats> Stats();

  ld::ListId list() const { return list_; }

 private:
  BTree(ld::Disk& disk, ld::ListId list, ld::BlockId meta_block)
      : disk_(disk), list_(list), meta_block_(meta_block) {}

  ld::Disk& disk_;
  ld::ListId list_;
  ld::BlockId meta_block_;
  std::uint64_t splits_ = 0;
  std::uint64_t frees_ = 0;
};

}  // namespace aru::btree
