// MemDisk: RAM-backed block device. The workhorse substrate for tests
// and benchmarks; a successful Write is immediately "persistent" (the
// backing image survives for a post-crash reopen via TakeImage/FromImage).
#pragma once

#include <memory>

#include "blockdev/block_device.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aru {

class MemDisk final : public BlockDevice {
 public:
  MemDisk(std::uint64_t sector_count, std::uint32_t sector_size = 512);

  // Re-opens a device over an existing image (e.g. after a simulated
  // power failure, to run recovery against exactly what was on disk).
  static std::unique_ptr<MemDisk> FromImage(Bytes image,
                                            std::uint32_t sector_size = 512);

  std::uint32_t sector_size() const override { return sector_size_; }
  std::uint64_t sector_count() const override { return sector_count_; }

  Status Read(std::uint64_t first_sector, MutableByteSpan out) override;
  Status Write(std::uint64_t first_sector, ByteSpan data) override;
  Status Sync() override;

  DeviceStats stats() const override ARU_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return stats_;
  }

  // Copies the current on-disk image (what a crash would leave behind).
  Bytes CopyImage() const ARU_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return data_;
  }

 private:
  std::uint32_t sector_size_;
  std::uint64_t sector_count_;
  mutable Mutex mu_{"blockdev_mem_disk"};
  Bytes data_ ARU_GUARDED_BY(mu_);
  DeviceStats stats_ ARU_GUARDED_BY(mu_);
};

}  // namespace aru
