#include "blockdev/mem_disk.h"

#include <cassert>
#include <cstring>
#include <utility>

namespace aru {

MemDisk::MemDisk(std::uint64_t sector_count, std::uint32_t sector_size)
    : sector_size_(sector_size),
      sector_count_(sector_count),
      data_(sector_count * sector_size) {
  assert(sector_size > 0 && (sector_size & (sector_size - 1)) == 0);
}

std::unique_ptr<MemDisk> MemDisk::FromImage(Bytes image,
                                            std::uint32_t sector_size) {
  assert(image.size() % sector_size == 0);
  auto disk = std::make_unique<MemDisk>(image.size() / sector_size,
                                        sector_size);
  const MutexLock lock(disk->mu_);
  disk->data_ = std::move(image);
  return disk;
}

Status MemDisk::Read(std::uint64_t first_sector, MutableByteSpan out) {
  ARU_RETURN_IF_ERROR(CheckRange(first_sector, out.size()));
  const MutexLock lock(mu_);
  std::memcpy(out.data(), data_.data() + first_sector * sector_size_,
              out.size());
  ++stats_.read_ops;
  stats_.sectors_read += out.size() / sector_size_;
  return Status::Ok();
}

Status MemDisk::Write(std::uint64_t first_sector, ByteSpan data) {
  ARU_RETURN_IF_ERROR(CheckRange(first_sector, data.size()));
  const MutexLock lock(mu_);
  std::memcpy(data_.data() + first_sector * sector_size_, data.data(),
              data.size());
  ++stats_.write_ops;
  stats_.sectors_written += data.size() / sector_size_;
  return Status::Ok();
}

Status MemDisk::Sync() {
  const MutexLock lock(mu_);
  ++stats_.syncs;
  return Status::Ok();
}

}  // namespace aru
