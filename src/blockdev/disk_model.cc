#include "blockdev/disk_model.h"

#include <cmath>
#include <utility>

namespace aru {

std::uint64_t DiskModel::ServiceUs(std::uint64_t first_sector,
                                   std::uint64_t sectors,
                                   std::uint32_t sector_size) {
  double us = params_.controller_overhead_us;

  const std::uint64_t distance = first_sector > head_sector_
                                     ? first_sector - head_sector_
                                     : head_sector_ - first_sector;
  if (distance > 0) {
    // Square-root seek curve through (0, t2t) and (total, max).
    const double frac =
        static_cast<double>(distance) / static_cast<double>(total_sectors_);
    const double seek_ms =
        params_.track_to_track_ms +
        (params_.max_seek_ms - params_.track_to_track_ms) * std::sqrt(frac);
    us += seek_ms * 1000.0;
    // Rotational latency: half a rotation on average; sequential access
    // (distance 0) continues under the head with no extra latency.
    us += params_.rotation_ms() * 1000.0 / 2.0;
  }

  const double bytes =
      static_cast<double>(sectors) * static_cast<double>(sector_size);
  us += bytes / (params_.transfer_mb_s * 1e6) * 1e6;

  head_sector_ = first_sector + sectors;
  return static_cast<std::uint64_t>(us);
}

ModeledDisk::ModeledDisk(std::unique_ptr<BlockDevice> inner,
                         DiskModelParams params, VirtualClock* clock,
                         obs::Registry* registry)
    : inner_(std::move(inner)),
      model_(params, inner_->sector_count()),
      clock_(clock),
      read_service_vus_(obs::Registry::OrDefault(registry).GetHistogram(
          "aru_device_read_service_vus",
          "Modeled read service time (virtual microseconds)")),
      write_service_vus_(obs::Registry::OrDefault(registry).GetHistogram(
          "aru_device_write_service_vus",
          "Modeled write service time (virtual microseconds)")) {}

Status ModeledDisk::Read(std::uint64_t first_sector, MutableByteSpan out) {
  ARU_RETURN_IF_ERROR(inner_->Read(first_sector, out));
  std::uint64_t service = 0;
  {
    const MutexLock lock(mu_);
    service = model_.ServiceUs(first_sector, out.size() / sector_size(),
                               sector_size());
  }
  read_service_vus_->Record(service);
  clock_->Advance(service);
  return Status::Ok();
}

Status ModeledDisk::Write(std::uint64_t first_sector, ByteSpan data) {
  ARU_RETURN_IF_ERROR(inner_->Write(first_sector, data));
  std::uint64_t service = 0;
  {
    const MutexLock lock(mu_);
    service = model_.ServiceUs(first_sector, data.size() / sector_size(),
                               sector_size());
  }
  write_service_vus_->Record(service);
  clock_->Advance(service);
  return Status::Ok();
}

}  // namespace aru
