// Disk service-time model, parameterized for the paper's testbed disk
// (HP C3010: 2 GB, SCSI-II, 5400 rpm, 11.5 ms average seek).
//
// The evaluation in the paper reports wall-clock throughput on real
// hardware we do not have; ModeledDisk substitutes a deterministic
// service-time model driven by a virtual clock, so benchmarks can report
// paper-comparable MB/s and files/s figures. The model is deliberately
// simple (seek ~ sqrt(distance), constant half-rotation latency,
// linear transfer time) — the paper's claims are relative between two
// LLD variants on the *same* disk, so fidelity of the relative shape is
// what matters.
#pragma once

#include <cstdint>
#include <memory>

#include "blockdev/block_device.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aru {

struct DiskModelParams {
  double rpm = 5400.0;
  double avg_seek_ms = 11.5;        // average (1/3-stroke) seek
  double track_to_track_ms = 2.5;   // minimum seek
  double max_seek_ms = 22.0;        // full-stroke seek
  double transfer_mb_s = 2.3;       // sustained media rate (SCSI-II era)
  double controller_overhead_us = 500.0;  // per-request fixed cost

  static DiskModelParams HpC3010() { return {}; }

  double rotation_ms() const { return 60.0 * 1000.0 / rpm; }
};

// Computes per-request service times and tracks head position.
class DiskModel {
 public:
  DiskModel(DiskModelParams params, std::uint64_t total_sectors)
      : params_(params), total_sectors_(total_sectors) {}

  // Service time in microseconds for a request of `sectors` sectors
  // starting at `first_sector`, given the current head position.
  // Updates the head position.
  std::uint64_t ServiceUs(std::uint64_t first_sector, std::uint64_t sectors,
                          std::uint32_t sector_size);

  void ResetHead() { head_sector_ = 0; }

 private:
  DiskModelParams params_;
  std::uint64_t total_sectors_;
  std::uint64_t head_sector_ = 0;
};

// Decorator: delegates all I/O to `inner` and advances a virtual clock
// by the modeled service time of each request. Per-request modeled
// service times land in the aru_device_{read,write}_service_vus
// histograms (virtual microseconds) of `registry`
// (obs::Registry::Default() when nullptr).
class ModeledDisk final : public BlockDevice {
 public:
  ModeledDisk(std::unique_ptr<BlockDevice> inner, DiskModelParams params,
              VirtualClock* clock, obs::Registry* registry = nullptr);

  std::uint32_t sector_size() const override { return inner_->sector_size(); }
  std::uint64_t sector_count() const override { return inner_->sector_count(); }

  Status Read(std::uint64_t first_sector, MutableByteSpan out) override
      ARU_EXCLUDES(mu_);
  Status Write(std::uint64_t first_sector, ByteSpan data) override
      ARU_EXCLUDES(mu_);
  Status Sync() override { return inner_->Sync(); }

  DeviceStats stats() const override { return inner_->stats(); }

 private:
  std::unique_ptr<BlockDevice> inner_;
  Mutex mu_{"blockdev_disk_model"};
  DiskModel model_ ARU_GUARDED_BY(mu_);  // head position mutates per request
  VirtualClock* clock_;  // not owned; atomic internally
  obs::Histogram* read_service_vus_;
  obs::Histogram* write_service_vus_;
};

}  // namespace aru
