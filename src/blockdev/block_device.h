// BlockDevice: the raw-disk substrate underneath the logical disk.
//
// The 1996 prototype ran on a SunOS raw-disk partition of an HP C3010.
// Here the substrate is an abstract sector-addressed device with
// memory- and file-backed implementations, plus composable decorators
// for fault injection (power cuts, torn writes, media errors), service-
// time modeling, and I/O accounting.
//
// Durability contract: a successful Write() is persistent (the paper's
// LLD issues whole-segment writes synchronously; the volatile state that
// crash recovery contends with lives in LLD's in-memory segment buffer
// and tables, not in a device write cache). Sync() exists for file-backed
// devices that buffer in the host page cache.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/status.h"

namespace aru {

struct DeviceStats {
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t sectors_read = 0;
  std::uint64_t sectors_written = 0;
  std::uint64_t syncs = 0;
};

// Mirrors a DeviceStats snapshot into `registry` as the counters
// <prefix>_{read_ops,write_ops,sectors_read,sectors_written,syncs}_total
// (each reset to the snapshot value), so device-level I/O accounting
// shows up in the same DumpText/DumpJson output as everything else.
void ExportDeviceStats(const DeviceStats& stats, obs::Registry& registry,
                       const std::string& prefix = "aru_device");

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  // Sector size in bytes; a power of two. All I/O is whole sectors.
  virtual std::uint32_t sector_size() const = 0;
  virtual std::uint64_t sector_count() const = 0;

  std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(sector_size()) * sector_count();
  }

  // Reads out.size() bytes starting at sector `first_sector`.
  // out.size() must be a non-zero multiple of sector_size().
  virtual Status Read(std::uint64_t first_sector, MutableByteSpan out) = 0;

  // Writes data.size() bytes starting at sector `first_sector`.
  // data.size() must be a non-zero multiple of sector_size().
  virtual Status Write(std::uint64_t first_sector, ByteSpan data) = 0;

  virtual Status Sync() = 0;

  // Snapshot of the I/O counters. By value: implementations guard their
  // counters with a mutex, and a returned reference would escape it.
  virtual DeviceStats stats() const = 0;

 protected:
  BlockDevice() = default;

  // Validates the (sector, size) pair against the device geometry.
  Status CheckRange(std::uint64_t first_sector, std::size_t size_bytes) const;
};

}  // namespace aru
