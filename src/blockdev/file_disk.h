// FileDisk: block device backed by a regular file (pread/pwrite), for
// examples and long-running workloads that should survive process exit.
#pragma once

#include <memory>
#include <string>

#include "blockdev/block_device.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aru {

class FileDisk final : public BlockDevice {
 public:
  // Creates (or truncates) a backing file of the given geometry.
  static Result<std::unique_ptr<FileDisk>> Create(
      const std::string& path, std::uint64_t sector_count,
      std::uint32_t sector_size = 512);

  // Opens an existing backing file; geometry derived from file size.
  static Result<std::unique_ptr<FileDisk>> Open(const std::string& path,
                                                std::uint32_t sector_size =
                                                    512);

  ~FileDisk() override;

  std::uint32_t sector_size() const override { return sector_size_; }
  std::uint64_t sector_count() const override { return sector_count_; }

  // I/O goes through pread/pwrite on a fixed offset per call, so the
  // data path needs no lock; mu_ guards only the stats counters.
  Status Read(std::uint64_t first_sector, MutableByteSpan out) override;
  Status Write(std::uint64_t first_sector, ByteSpan data) override;
  Status Sync() override;

  DeviceStats stats() const override ARU_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return stats_;
  }

 private:
  FileDisk(int fd, std::uint64_t sector_count, std::uint32_t sector_size)
      : fd_(fd), sector_size_(sector_size), sector_count_(sector_count) {}

  int fd_;
  std::uint32_t sector_size_;
  std::uint64_t sector_count_;
  mutable Mutex mu_{"blockdev_file_disk"};
  DeviceStats stats_ ARU_GUARDED_BY(mu_);
};

}  // namespace aru
