#include "blockdev/fault_disk.h"

#include <algorithm>
#include <utility>

namespace aru {

FaultInjectionDisk::FaultInjectionDisk(std::unique_ptr<BlockDevice> inner,
                                       std::uint64_t seed,
                                       obs::Registry* registry)
    : inner_(std::move(inner)),
      rng_(seed),
      power_cuts_(obs::Registry::OrDefault(registry).GetCounter(
          "aru_fault_power_cuts_total", "Simulated power failures fired")),
      torn_sectors_(obs::Registry::OrDefault(registry).GetCounter(
          "aru_fault_torn_sectors_total",
          "Garbage sectors written by torn-write injection")),
      bad_sector_reads_(obs::Registry::OrDefault(registry).GetCounter(
          "aru_fault_bad_sector_reads_total",
          "Reads failed by simulated media errors")) {}

void FaultInjectionDisk::SchedulePowerCut(std::uint64_t sectors, bool tear) {
  const MutexLock lock(mu_);
  cut_after_ = sectors_written_ + sectors;
  tear_ = tear;
}

Status FaultInjectionDisk::Read(std::uint64_t first_sector,
                                MutableByteSpan out) {
  const MutexLock lock(mu_);
  if (dead_) return UnavailableError("device is powered off");
  ARU_RETURN_IF_ERROR(CheckRange(first_sector, out.size()));
  const std::uint64_t sectors = out.size() / sector_size();
  for (std::uint64_t s = first_sector; s < first_sector + sectors; ++s) {
    if (bad_sectors_.contains(s)) {
      bad_sector_reads_->Increment();
      return IoError("media failure at sector " + std::to_string(s));
    }
  }
  return inner_->Read(first_sector, out);
}

Status FaultInjectionDisk::Write(std::uint64_t first_sector, ByteSpan data) {
  const MutexLock lock(mu_);
  if (dead_) return UnavailableError("device is powered off");
  ARU_RETURN_IF_ERROR(CheckRange(first_sector, data.size()));
  const std::uint32_t ssz = sector_size();
  const std::uint64_t sectors = data.size() / ssz;

  if (sectors_written_ + sectors <= cut_after_) {
    sectors_written_ += sectors;
    if (sectors_written_ == cut_after_) {
      dead_ = true;
      power_cuts_->Increment();
    }
    return inner_->Write(first_sector, data);
  }

  // The power fails part-way through this request: persist the prefix.
  const std::uint64_t keep = cut_after_ - sectors_written_;
  if (keep > 0) {
    const Status s = inner_->Write(first_sector, data.first(keep * ssz));
    if (!s.ok()) return s;
  }
  if (tear_ && keep < sectors) {
    Bytes garbage(ssz);
    for (auto& b : garbage) {
      b = static_cast<std::byte>(rng_.Next() & 0xff);
    }
    // Discarded: the torn sector is best-effort garbage — the injected
    // power failure below is the authoritative outcome either way.
    (void)inner_->Write(first_sector + keep, garbage);
    torn_sectors_->Increment();
  }
  sectors_written_ = cut_after_;
  dead_ = true;
  power_cuts_->Increment();
  return UnavailableError("power failed during write");
}

Status FaultInjectionDisk::Sync() {
  const MutexLock lock(mu_);
  if (dead_) return UnavailableError("device is powered off");
  return inner_->Sync();
}

}  // namespace aru
