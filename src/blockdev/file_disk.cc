#include "blockdev/file_disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aru {
namespace {

Status Errno(const std::string& what) {
  return IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<FileDisk>> FileDisk::Create(const std::string& path,
                                                   std::uint64_t sector_count,
                                                   std::uint32_t sector_size) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open " + path);
  const off_t size =
      static_cast<off_t>(sector_count * static_cast<std::uint64_t>(sector_size));
  if (::ftruncate(fd, size) != 0) {
    const Status s = Errno("ftruncate " + path);
    ::close(fd);
    return s;
  }
  return std::unique_ptr<FileDisk>(
      new FileDisk(fd, sector_count, sector_size));
}

Result<std::unique_ptr<FileDisk>> FileDisk::Open(const std::string& path,
                                                 std::uint32_t sector_size) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Errno("open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status s = Errno("fstat " + path);
    ::close(fd);
    return s;
  }
  if (st.st_size <= 0 ||
      static_cast<std::uint64_t>(st.st_size) % sector_size != 0) {
    ::close(fd);
    return InvalidArgumentError(path + " size is not a multiple of " +
                                std::to_string(sector_size));
  }
  return std::unique_ptr<FileDisk>(new FileDisk(
      fd, static_cast<std::uint64_t>(st.st_size) / sector_size, sector_size));
}

FileDisk::~FileDisk() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileDisk::Read(std::uint64_t first_sector, MutableByteSpan out) {
  ARU_RETURN_IF_ERROR(CheckRange(first_sector, out.size()));
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(
        fd_, out.data() + done, out.size() - done,
        static_cast<off_t>(first_sector * sector_size_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread");
    }
    if (n == 0) return IoError("pread: unexpected EOF");
    done += static_cast<std::size_t>(n);
  }
  const MutexLock lock(mu_);
  ++stats_.read_ops;
  stats_.sectors_read += out.size() / sector_size_;
  return Status::Ok();
}

Status FileDisk::Write(std::uint64_t first_sector, ByteSpan data) {
  ARU_RETURN_IF_ERROR(CheckRange(first_sector, data.size()));
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(
        fd_, data.data() + done, data.size() - done,
        static_cast<off_t>(first_sector * sector_size_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite");
    }
    done += static_cast<std::size_t>(n);
  }
  const MutexLock lock(mu_);
  ++stats_.write_ops;
  stats_.sectors_written += data.size() / sector_size_;
  return Status::Ok();
}

Status FileDisk::Sync() {
  if (::fsync(fd_) != 0) return Errno("fsync");
  const MutexLock lock(mu_);
  ++stats_.syncs;
  return Status::Ok();
}

}  // namespace aru
