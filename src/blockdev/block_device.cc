#include "blockdev/block_device.h"

#include <string>

namespace aru {

Status BlockDevice::CheckRange(std::uint64_t first_sector,
                               std::size_t size_bytes) const {
  const std::uint32_t ssz = sector_size();
  if (size_bytes == 0 || size_bytes % ssz != 0) {
    return InvalidArgumentError("I/O size " + std::to_string(size_bytes) +
                                " is not a positive multiple of sector size " +
                                std::to_string(ssz));
  }
  const std::uint64_t sectors = size_bytes / ssz;
  if (first_sector >= sector_count() ||
      sectors > sector_count() - first_sector) {
    return InvalidArgumentError(
        "I/O range [" + std::to_string(first_sector) + ", " +
        std::to_string(first_sector + sectors) + ") exceeds device size " +
        std::to_string(sector_count()));
  }
  return Status::Ok();
}

}  // namespace aru
