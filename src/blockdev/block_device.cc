#include "blockdev/block_device.h"

#include <string>

namespace aru {

Status BlockDevice::CheckRange(std::uint64_t first_sector,
                               std::size_t size_bytes) const {
  const std::uint32_t ssz = sector_size();
  if (size_bytes == 0 || size_bytes % ssz != 0) {
    return InvalidArgumentError("I/O size " + std::to_string(size_bytes) +
                                " is not a positive multiple of sector size " +
                                std::to_string(ssz));
  }
  const std::uint64_t sectors = size_bytes / ssz;
  if (first_sector >= sector_count() ||
      sectors > sector_count() - first_sector) {
    return InvalidArgumentError(
        "I/O range [" + std::to_string(first_sector) + ", " +
        std::to_string(first_sector + sectors) + ") exceeds device size " +
        std::to_string(sector_count()));
  }
  return Status::Ok();
}

void ExportDeviceStats(const DeviceStats& stats, obs::Registry& registry,
                       const std::string& prefix) {
  const auto set = [&registry](const std::string& name, const char* help,
                               std::uint64_t value) {
    obs::Counter* counter = registry.GetCounter(name, help);
    counter->Reset();
    counter->Add(value);
  };
  set(prefix + "_read_ops_total", "Device read requests", stats.read_ops);
  set(prefix + "_write_ops_total", "Device write requests", stats.write_ops);
  set(prefix + "_sectors_read_total", "Sectors read", stats.sectors_read);
  set(prefix + "_sectors_written_total", "Sectors written",
      stats.sectors_written);
  set(prefix + "_syncs_total", "Device sync requests", stats.syncs);
}

}  // namespace aru
