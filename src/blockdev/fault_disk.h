// FaultInjectionDisk: decorator that simulates the failures ARUs protect
// against — power cuts (possibly mid-write, leaving a torn segment) and
// partial media failures (unreadable sectors).
//
// Crash model: a crash is scheduled at a sector-write granularity. When
// the cumulative count of written sectors reaches the scheduled point,
// the current request persists only its prefix (optionally followed by
// one garbage "torn" sector) and the device goes dead: every subsequent
// operation returns kUnavailable. Tests then reopen the underlying image
// with a fresh device and run recovery against exactly what a real power
// failure would have left on the platters.
#pragma once

#include <limits>
#include <memory>
#include <unordered_set>

#include "blockdev/block_device.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace aru {

class FaultInjectionDisk final : public BlockDevice {
 public:
  // Injected faults are counted into `registry`
  // (obs::Registry::Default() when nullptr) as
  // aru_fault_{power_cuts,torn_sectors,bad_sector_reads}_total.
  explicit FaultInjectionDisk(std::unique_ptr<BlockDevice> inner,
                              std::uint64_t seed = 42,
                              obs::Registry* registry = nullptr);

  std::uint32_t sector_size() const override { return inner_->sector_size(); }
  std::uint64_t sector_count() const override { return inner_->sector_count(); }

  Status Read(std::uint64_t first_sector, MutableByteSpan out) override
      ARU_EXCLUDES(mu_);
  Status Write(std::uint64_t first_sector, ByteSpan data) override
      ARU_EXCLUDES(mu_);
  Status Sync() override ARU_EXCLUDES(mu_);

  DeviceStats stats() const override { return inner_->stats(); }

  // Schedules a power failure after `sectors` more sectors have been
  // written. With `tear`, the first unpersisted sector of the interrupted
  // request is additionally filled with garbage (a torn write).
  void SchedulePowerCut(std::uint64_t sectors, bool tear = false)
      ARU_EXCLUDES(mu_);

  // Marks a sector as unreadable (simulated partial media failure).
  void AddBadSector(std::uint64_t sector) ARU_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    bad_sectors_.insert(sector);
  }

  bool dead() const ARU_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return dead_;
  }
  std::uint64_t sectors_written() const ARU_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return sectors_written_;
  }

  BlockDevice& inner() { return *inner_; }

 private:
  std::unique_ptr<BlockDevice> inner_;
  mutable Mutex mu_{"blockdev_fault_disk"};
  Rng rng_ ARU_GUARDED_BY(mu_);
  std::uint64_t sectors_written_ ARU_GUARDED_BY(mu_) = 0;
  std::uint64_t cut_after_ ARU_GUARDED_BY(mu_) =
      std::numeric_limits<std::uint64_t>::max();
  bool tear_ ARU_GUARDED_BY(mu_) = false;
  bool dead_ ARU_GUARDED_BY(mu_) = false;
  std::unordered_set<std::uint64_t> bad_sectors_ ARU_GUARDED_BY(mu_);
  obs::Counter* power_cuts_;
  obs::Counter* torn_sectors_;
  obs::Counter* bad_sector_reads_;
};

}  // namespace aru
