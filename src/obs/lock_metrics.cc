#include "obs/lock_metrics.h"

#include <string>

namespace aru::obs {
namespace {

std::string MetricName(std::string_view prefix, std::string_view site,
                       std::string_view mode) {
  std::string name(prefix);
  name += site;
  name += mode;
  return name;
}

}  // namespace

LockSiteMetrics::LockSiteMetrics(Registry* registry, std::string_view site,
                                 bool with_shared) {
  Registry& r = Registry::OrDefault(registry);
  contended_exclusive_ = r.GetCounter(
      MetricName("aru_lock_contended_total_", site, "_exclusive"),
      "Exclusive acquires of this lock site that blocked");
  wait_exclusive_ =
      r.GetHistogram(MetricName("aru_lock_wait_us_", site, "_exclusive"),
                     "Blocked time of contended exclusive acquires");
  if (with_shared) {
    contended_shared_ = r.GetCounter(
        MetricName("aru_lock_contended_total_", site, "_shared"),
        "Shared acquires of this lock site that blocked");
    wait_shared_ =
        r.GetHistogram(MetricName("aru_lock_wait_us_", site, "_shared"),
                       "Blocked time of contended shared acquires");
  }
}

void LockSiteMetrics::RecordContendedWait(bool shared,
                                          std::uint64_t wait_us) {
  Counter* counter = shared ? contended_shared_ : contended_exclusive_;
  Histogram* histogram = shared ? wait_shared_ : wait_exclusive_;
  if (counter != nullptr) counter->Increment();
  if (histogram != nullptr) histogram->Record(wait_us);
}

std::unique_ptr<LockSiteMetrics> BindLockSite(Registry* registry, Mutex& mu) {
  if (mu.site() == nullptr) return nullptr;
  auto sink = std::make_unique<LockSiteMetrics>(registry, mu.site(),
                                                /*with_shared=*/false);
  mu.SetWaitSink(sink.get());
  return sink;
}

std::unique_ptr<LockSiteMetrics> BindLockSite(Registry* registry,
                                              SharedMutex& mu) {
  if (mu.site() == nullptr) return nullptr;
  auto sink = std::make_unique<LockSiteMetrics>(registry, mu.site(),
                                                /*with_shared=*/true);
  mu.SetWaitSink(sink.get());
  return sink;
}

}  // namespace aru::obs
