// Lock-contention attribution: the obs-side implementation of
// aru::LockWaitSink (declared in util/mutex.h, where the instrumented
// Mutex/SharedMutex live — util cannot depend on obs, so the mutex
// only sees the interface).
//
// One LockSiteMetrics publishes a named lock site into a Registry as
//
//   aru_lock_contended_total_<site>_exclusive   counter
//   aru_lock_wait_us_<site>_exclusive           histogram
//   aru_lock_contended_total_<site>_shared      counter   (SharedMutex)
//   aru_lock_wait_us_<site>_shared              histogram (SharedMutex)
//
// so shared and exclusive waits on the same mutex are distinguishable
// in every dump, artifact, and time-series. RecordContendedWait only
// touches lock-free metric atomics — it is safe to call while the
// reporting mutex itself is being handed over, and it can never
// re-enter the registry (handles are resolved once, at bind time).
//
// Binding is explicit: the component that owns both the mutex and the
// registry (LldMetrics for the LLD's locks) constructs the sink and
// calls mu.SetWaitSink(...), keeping ownership. Uncontended acquires
// never reach the sink; see util/mutex.h for the fast-path contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace aru::obs {

class LockSiteMetrics final : public LockWaitSink {
 public:
  // Registers the per-site metrics in `registry` (nullptr: the default
  // registry). `with_shared` controls whether the shared-mode pair is
  // created; plain Mutex sites omit it so dumps stay noise-free.
  LockSiteMetrics(Registry* registry, std::string_view site,
                  bool with_shared);

  void RecordContendedWait(bool shared, std::uint64_t wait_us) override;

 private:
  Counter* contended_exclusive_ = nullptr;
  Histogram* wait_exclusive_ = nullptr;
  Counter* contended_shared_ = nullptr;
  Histogram* wait_shared_ = nullptr;
};

// Creates the sink for `mu.site()` in `registry` and binds it to the
// mutex. Returns the sink for the caller to own (it must outlive the
// mutex's last contended acquire); returns nullptr when the mutex has
// no site name.
std::unique_ptr<LockSiteMetrics> BindLockSite(Registry* registry, Mutex& mu);
std::unique_ptr<LockSiteMetrics> BindLockSite(Registry* registry,
                                              SharedMutex& mu);

}  // namespace aru::obs
