#include "obs/trace.h"

#include <atomic>

namespace aru::obs {
namespace {

std::uint32_t ThisThreadId() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

void AppendEscaped(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  out += '"';
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), slots_(capacity_) {}

Tracer& Tracer::Default() {
  // arulint: allow(raw-new) leaky singleton, intentionally never destroyed
  static Tracer* instance = new Tracer();
  return *instance;
}

void Tracer::RecordComplete(const char* category, const char* name,
                            std::uint64_t ts_us, std::uint64_t dur_us,
                            const char* arg_name, std::uint64_t arg_value) {
  if (!enabled_) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = ThisThreadId();
  event.arg_name = arg_name;
  event.arg_value = arg_value;

  const MutexLock lock(mu_);
  slots_[next_ % slots_.size()] = event;
  ++next_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  const MutexLock lock(mu_);
  std::vector<TraceEvent> events;
  const std::uint64_t capacity = slots_.size();
  const std::uint64_t first = next_ > capacity ? next_ - capacity : 0;
  events.reserve(static_cast<std::size_t>(next_ - first));
  for (std::uint64_t i = first; i < next_; ++i) {
    events.push_back(slots_[i % capacity]);
  }
  return events;
}

std::uint64_t Tracer::dropped() const {
  const MutexLock lock(mu_);
  const std::uint64_t capacity = slots_.size();
  return next_ > capacity ? next_ - capacity : 0;
}

std::size_t Tracer::size() const {
  const MutexLock lock(mu_);
  return static_cast<std::size_t>(
      next_ < slots_.size() ? next_ : slots_.size());
}

void Tracer::Clear() {
  const MutexLock lock(mu_);
  next_ = 0;
}

std::string Tracer::DumpChromeJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendEscaped(out, event.name);
    out += ",\"cat\":";
    AppendEscaped(out, event.category);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(event.tid) +
           ",\"ts\":" + std::to_string(event.ts_us) +
           ",\"dur\":" + std::to_string(event.dur_us);
    if (event.arg_name != nullptr) {
      out += ",\"args\":{";
      AppendEscaped(out, event.arg_name);
      out += ":" + std::to_string(event.arg_value) + "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void SpanTimer::Finish() {
  if (finished_) return;
  finished_ = true;
  const std::uint64_t elapsed = NowUs() - start_us_;
  if (histogram_ != nullptr) histogram_->Record(elapsed);
  if (tracer_ != nullptr) {
    tracer_->RecordComplete(category_, name_, start_us_, elapsed, arg_name_,
                            arg_value_);
  }
}

}  // namespace aru::obs
