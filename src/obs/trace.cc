#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <string_view>

#include "util/protocol_annotations.h"

namespace aru::obs {
namespace {

std::uint32_t ThisThreadId() {
  static std::atomic<std::uint32_t> next ARU_ATOMIC_COUNTER{1};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

// Per-thread stack of unfinished span ids, innermost last. Spans from
// every tracer share it: ids are process-unique, and "what encloses me
// on this thread" is a property of the thread, not of any one ring.
std::vector<std::uint64_t>& SpanStack() {
  thread_local std::vector<std::uint64_t> stack;
  return stack;
}

void AppendEscaped(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  out += '"';
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), slots_(capacity_) {}

Tracer& Tracer::Default() {
  // arulint: allow(raw-new) leaky singleton, intentionally never destroyed
  static Tracer* instance = new Tracer();
  return *instance;
}

std::uint64_t Tracer::NextSpanId() {
  static std::atomic<std::uint64_t> next ARU_ATOMIC_COUNTER{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::CurrentSpanId() {
  const auto& stack = SpanStack();
  return stack.empty() ? 0 : stack.back();
}

void Tracer::PushSpan(std::uint64_t id) { SpanStack().push_back(id); }

void Tracer::PopSpan(std::uint64_t id) {
  auto& stack = SpanStack();
  // Almost always the innermost frame; the scan handles spans finished
  // out of stack order (a long-lived span Finish()ed while an inner
  // sibling is still open) by removing only the matching frame.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (*it == id) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

void Tracer::RecordComplete(const char* category, const char* name,
                            std::uint64_t ts_us, std::uint64_t dur_us,
                            const char* arg_name, std::uint64_t arg_value) {
  RecordSpan(category, name, ts_us, dur_us, /*id=*/0, /*parent_id=*/0,
             arg_name, arg_value);
}

void Tracer::RecordSpan(const char* category, const char* name,
                        std::uint64_t ts_us, std::uint64_t dur_us,
                        std::uint64_t id, std::uint64_t parent_id,
                        const char* arg_name, std::uint64_t arg_value) {
  if (!enabled()) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = ThisThreadId();
  event.id = id;
  event.parent_id = parent_id;
  event.arg_name = arg_name;
  event.arg_value = arg_value;

  const MutexLock lock(mu_);
  slots_[next_ % slots_.size()] = event;
  ++next_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  const MutexLock lock(mu_);
  std::vector<TraceEvent> events;
  const std::uint64_t capacity = slots_.size();
  const std::uint64_t first = next_ > capacity ? next_ - capacity : 0;
  events.reserve(static_cast<std::size_t>(next_ - first));
  for (std::uint64_t i = first; i < next_; ++i) {
    events.push_back(slots_[i % capacity]);
  }
  return events;
}

std::uint64_t Tracer::dropped() const {
  const MutexLock lock(mu_);
  const std::uint64_t capacity = slots_.size();
  return next_ > capacity ? next_ - capacity : 0;
}

std::size_t Tracer::size() const {
  const MutexLock lock(mu_);
  return static_cast<std::size_t>(
      next_ < slots_.size() ? next_ : slots_.size());
}

void Tracer::Clear() {
  const MutexLock lock(mu_);
  next_ = 0;
}

std::string Tracer::DumpChromeJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendEscaped(out, event.name);
    out += ",\"cat\":";
    AppendEscaped(out, event.category);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(event.tid) +
           ",\"ts\":" + std::to_string(event.ts_us) +
           ",\"dur\":" + std::to_string(event.dur_us);
    const bool has_arg = event.arg_name != nullptr;
    if (has_arg || event.id != 0) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (event.id != 0) {
        out += "\"span_id\":" + std::to_string(event.id) +
               ",\"parent_id\":" + std::to_string(event.parent_id);
        first_arg = false;
      }
      if (has_arg) {
        if (!first_arg) out += ",";
        AppendEscaped(out, event.arg_name);
        out += ":" + std::to_string(event.arg_value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------
// Span.

Span::Span(Tracer* tracer, const char* category, const char* name,
           Histogram* histogram)
    : tracer_(tracer),
      category_(category),
      name_(name),
      histogram_(histogram),
      start_us_(NowUs()) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    id_ = Tracer::NextSpanId();
    parent_id_ = Tracer::CurrentSpanId();
    Tracer::PushSpan(id_);
  }
}

Span::Span(Tracer* tracer, const char* category, const char* name,
           std::uint64_t parent_id, Histogram* histogram)
    : tracer_(tracer),
      category_(category),
      name_(name),
      histogram_(histogram),
      start_us_(NowUs()) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    id_ = Tracer::NextSpanId();
    parent_id_ = parent_id;
    Tracer::PushSpan(id_);
  }
}

void Span::Finish() {
  if (finished_) return;
  finished_ = true;
  const std::uint64_t elapsed = NowUs() - start_us_;
  if (histogram_ != nullptr) histogram_->Record(elapsed);
  if (id_ != 0) {
    Tracer::PopSpan(id_);
    tracer_->RecordSpan(category_, name_, start_us_, elapsed, id_, parent_id_,
                        arg_name_, arg_value_);
  } else if (tracer_ != nullptr) {
    // Tracing was off when the span started; record flat if it has
    // been re-enabled so the sample is not silently lost.
    tracer_->RecordComplete(category_, name_, start_us_, elapsed, arg_name_,
                            arg_value_);
  }
}

// ---------------------------------------------------------------------
// Critical-path breakdown.

std::vector<SpanBreakdownEntry> SpanBreakdown(
    const std::vector<TraceEvent>& events, std::uint64_t root_id) {
  if (root_id == 0) return {};
  // parent id -> indices of child events. One linear pass; the ring is
  // bounded so this stays small.
  std::map<std::uint64_t, std::vector<std::size_t>> children;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].id != 0 && events[i].parent_id != 0) {
      children[events[i].parent_id].push_back(i);
    }
  }
  std::map<std::string, SpanBreakdownEntry, std::less<>> by_name;
  std::vector<std::uint64_t> frontier{root_id};
  while (!frontier.empty()) {
    const std::uint64_t id = frontier.back();
    frontier.pop_back();
    const auto it = children.find(id);
    if (it == children.end()) continue;
    for (const std::size_t index : it->second) {
      const TraceEvent& event = events[index];
      SpanBreakdownEntry& entry = by_name[event.name];
      if (entry.name.empty()) entry.name = event.name;
      entry.total_us += event.dur_us;
      ++entry.count;
      frontier.push_back(event.id);
    }
  }
  std::vector<SpanBreakdownEntry> out;
  out.reserve(by_name.size());
  for (auto& [name, entry] : by_name) out.push_back(std::move(entry));
  std::sort(out.begin(), out.end(),
            [](const SpanBreakdownEntry& a, const SpanBreakdownEntry& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return out;
}

}  // namespace aru::obs
