// Background time-series sampler: a thread that snapshots a selected
// set of registry metrics at a fixed period into a bounded in-memory
// ring, so a benchmark artifact can show how durable lag, in-flight
// segments, cache hit counts, and lock-wait totals *evolved* over a
// run instead of only their end-of-run totals.
//
// Each tracked name is resolved against the registry at sample time
// (so metrics registered after Track() still appear once they exist)
// and reduced to one signed value per sample:
//
//   counter    cumulative value (plot deltas to get a rate)
//   gauge      current value
//   histogram  cumulative sample count
//
// The ring holds the most recent `ring_slots` samples; older rows are
// overwritten and counted in dropped(). Sampling takes the registry
// lock only for name resolution — metric reads are lock-free — so the
// sampler never stalls the I/O path.
//
// SampleOnce() is public and the clock is injectable, so unit tests
// drive the sampler deterministically without the thread; production
// callers Start() it and Stop() before tearing down the registry.
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/protocol_annotations.h"
#include "util/thread_annotations.h"

namespace aru::obs {

struct SamplerOptions {
  // Sampling period for the background thread (Start/Stop).
  std::uint64_t period_ms = 100;
  // Ring capacity in samples; the newest overwrite the oldest.
  std::size_t ring_slots = 512;
  // Timestamp source; nullptr means obs::NowUs. Tests inject a fake.
  std::uint64_t (*now_us)() = nullptr;
};

class Sampler {
 public:
  // `registry` may be nullptr for the process-wide default.
  explicit Sampler(Registry* registry, SamplerOptions options = {});
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;
  ~Sampler();

  // Adds a metric name to the sampled set. Duplicate names are ignored.
  // Values recorded before a Track() call are not back-filled; rows
  // sampled while the name was untracked report 0 for it.
  void Track(std::string_view name) ARU_EXCLUDES(mu_);

  // Starts the background thread; no-op if already running.
  void Start() ARU_EXCLUDES(mu_);

  // Stops and joins the background thread; no-op if not running. The
  // ring contents survive Stop so they can still be exported.
  void Stop() ARU_EXCLUDES(mu_);

  // Takes one sample immediately (also what the thread calls each
  // period). Safe concurrently with the thread.
  void SampleOnce() ARU_EXCLUDES(mu_);

  // Samples currently held / overwritten because the ring was full.
  std::size_t size() const ARU_EXCLUDES(mu_);
  std::uint64_t dropped() const ARU_EXCLUDES(mu_);

  // One JSON object, rows oldest-first:
  //   {"period_ms":N,"dropped":N,"ts_us":[...],
  //    "series":{"<name>":[...], ...}}
  // Emitted as the "timeseries" section of BENCH_*.json artifacts.
  std::string ToJson() const ARU_EXCLUDES(mu_);

 private:
  struct Row {
    std::uint64_t ts_us = 0;
    std::vector<std::int64_t> values;  // parallel to names_
  };

  std::uint64_t Now() const;
  void SampleLocked() ARU_REQUIRES(mu_);
  void Run();

  Registry& registry_;
  const SamplerOptions options_;

  mutable Mutex mu_{"obs_sampler"};
  CondVar cv_;
  std::vector<std::string> names_ ARU_GUARDED_BY(mu_);
  std::vector<Row> slots_ ARU_GUARDED_BY(mu_);
  // Monotone sample count; the slot written is next_ % ring_slots.
  std::uint64_t next_ ARU_GUARDED_BY(mu_) = 0;
  std::thread thread_;
  std::atomic<bool> running_ ARU_ATOMIC_COUNTER{false};
  std::atomic<bool> stop_ ARU_ATOMIC_COUNTER{false};
};

}  // namespace aru::obs
