#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

namespace aru::obs {
namespace {

std::string FormatF(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::uint64_t NowUs() {
  static const auto epoch = std::chrono::steady_clock::now();
  const auto elapsed = std::chrono::steady_clock::now() - epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

// ---------------------------------------------------------------------
// Histogram.

std::size_t Histogram::BucketFor(std::uint64_t value) {
  if (value == 0) return 0;
  const auto index = static_cast<std::size_t>(std::bit_width(value));
  return std::min(index, kOverflowBucket);
}

std::uint64_t Histogram::BucketUpperBound(std::size_t i) {
  if (i == 0) return 0;
  if (i >= kOverflowBucket) return ~0ull;
  return (1ull << i) - 1;
}

void Histogram::Record(std::uint64_t value) {
  // Publish the sum contribution (and bucket) before the count so a
  // snapshot that reads sum-then-count pairs every counted sample with
  // a sum that already includes it; see the weak-consistency note in
  // metrics.h.
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  // sum before count, mirroring Record's count-last publication order:
  // a snapshot must never pair a sample's bucket/count with a stale sum
  // that excludes it (mean would be biased high under concurrent
  // recording). Reading sum first can only *under*-report in-flight
  // samples, which the weak-consistency bound in metrics.h documents.
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = min == ~0ull ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets[i] == 0) continue;
    const auto next = static_cast<double>(cumulative + buckets[i]);
    if (next >= target) {
      // Interpolate linearly inside the bucket [lower, upper].
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(BucketUpperBound(i - 1)) + 1.0;
      const double upper = i >= kOverflowBucket
                               ? static_cast<double>(max)
                               : static_cast<double>(BucketUpperBound(i));
      const double within =
          std::clamp((target - static_cast<double>(cumulative)) /
                         static_cast<double>(buckets[i]),
                     0.0, 1.0);
      const double estimate = lower + (upper - lower) * within;
      return std::clamp(estimate, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cumulative += buckets[i];
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------
// Registry.

Registry& Registry::Default() {
  // arulint: allow(raw-new) leaky singleton, intentionally never destroyed
  static Registry* instance = new Registry();
  return *instance;
}

Registry::Entry* Registry::GetEntry(std::string_view name,
                                    std::string_view help, Kind kind) {
  const MutexLock lock(mu_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == kind ? &it->second : nullptr;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = std::string(help);
  switch (kind) {
    case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(std::string(name), std::move(entry)).first->second;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help) {
  Entry* entry = GetEntry(name, help, Kind::kCounter);
  return entry != nullptr ? entry->counter.get() : nullptr;
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help) {
  Entry* entry = GetEntry(name, help, Kind::kGauge);
  return entry != nullptr ? entry->gauge.get() : nullptr;
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view help) {
  Entry* entry = GetEntry(name, help, Kind::kHistogram);
  return entry != nullptr ? entry->histogram.get() : nullptr;
}

const Counter* Registry::FindCounter(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kCounter
             ? it->second.counter.get()
             : nullptr;
}

const Gauge* Registry::FindGauge(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kGauge
             ? it->second.gauge.get()
             : nullptr;
}

const Histogram* Registry::FindHistogram(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kHistogram
             ? it->second.histogram.get()
             : nullptr;
}

void Registry::Reset() {
  const MutexLock lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->Reset(); break;
      case Kind::kGauge: entry.gauge->Reset(); break;
      case Kind::kHistogram: entry.histogram->Reset(); break;
    }
  }
}

std::string Registry::DumpText() const {
  const MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) {
      out += "# HELP " + name + " " + entry.help + "\n";
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(entry.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot snap = entry.histogram->TakeSnapshot();
        out += "# TYPE " + name + " summary\n";
        out += name + "_count " + std::to_string(snap.count) + "\n";
        out += name + "_sum " + std::to_string(snap.sum) + "\n";
        for (const double q : {50.0, 95.0, 99.0}) {
          out += name + "{quantile=\"" + FormatF(q / 100.0) + "\"} " +
                 FormatF(snap.Percentile(q)) + "\n";
        }
        out += name + "_min " + std::to_string(snap.min) + "\n";
        out += name + "_max " + std::to_string(snap.max) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::DumpJson() const {
  const MutexLock lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        AppendJsonString(counters, name);
        counters += ":";
        counters += std::to_string(entry.counter->value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        AppendJsonString(gauges, name);
        gauges += ":";
        gauges += std::to_string(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot snap = entry.histogram->TakeSnapshot();
        if (!histograms.empty()) histograms += ",";
        AppendJsonString(histograms, name);
        histograms += ":{\"count\":" + std::to_string(snap.count) +
                      ",\"sum\":" + std::to_string(snap.sum) +
                      ",\"min\":" + std::to_string(snap.min) +
                      ",\"max\":" + std::to_string(snap.max) +
                      ",\"mean\":" + FormatF(snap.mean()) +
                      ",\"p50\":" + FormatF(snap.Percentile(50)) +
                      ",\"p95\":" + FormatF(snap.Percentile(95)) +
                      ",\"p99\":" + FormatF(snap.Percentile(99)) +
                      ",\"buckets\":[";
        bool first = true;
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
          if (snap.buckets[i] == 0) continue;
          if (!first) histograms += ",";
          first = false;
          histograms += "{\"le\":" +
                        std::to_string(Histogram::BucketUpperBound(i)) +
                        ",\"count\":" + std::to_string(snap.buckets[i]) + "}";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

}  // namespace aru::obs
