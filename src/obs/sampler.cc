#include "obs/sampler.h"

#include <algorithm>
#include <chrono>

namespace aru::obs {

Sampler::Sampler(Registry* registry, SamplerOptions options)
    : registry_(Registry::OrDefault(registry)), options_(options) {
  const MutexLock lock(mu_);
  slots_.resize(std::max<std::size_t>(options_.ring_slots, 1));
}

Sampler::~Sampler() { Stop(); }

std::uint64_t Sampler::Now() const {
  return options_.now_us != nullptr ? options_.now_us() : NowUs();
}

void Sampler::Track(std::string_view name) {
  const MutexLock lock(mu_);
  for (const std::string& existing : names_) {
    if (existing == name) return;
  }
  names_.emplace_back(name);
}

void Sampler::SampleLocked() {
  Row row;
  row.ts_us = Now();
  row.values.reserve(names_.size());
  for (const std::string& name : names_) {
    std::int64_t value = 0;
    if (const Counter* c = registry_.FindCounter(name); c != nullptr) {
      value = static_cast<std::int64_t>(c->value());
    } else if (const Gauge* g = registry_.FindGauge(name); g != nullptr) {
      value = g->value();
    } else if (const Histogram* h = registry_.FindHistogram(name);
               h != nullptr) {
      value = static_cast<std::int64_t>(h->count());
    }
    row.values.push_back(value);
  }
  slots_[static_cast<std::size_t>(next_ % slots_.size())] = std::move(row);
  ++next_;
}

void Sampler::SampleOnce() {
  const MutexLock lock(mu_);
  SampleLocked();
}

void Sampler::Start() {
  if (running_.exchange(true)) return;
  stop_.store(false);
  thread_ = std::thread([this] { Run(); });
}

void Sampler::Stop() {
  if (!running_.exchange(false)) return;
  {
    const MutexLock lock(mu_);
    stop_.store(true);
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void Sampler::Run() {
  const auto period = std::chrono::milliseconds(options_.period_ms);
  MutexLock lock(mu_);
  while (true) {
    SampleLocked();
    // Interruptible sleep: Stop() flips stop_ under mu_ and notifies,
    // so shutdown never waits out a full period.
    if (cv_.WaitFor(mu_, period,
                    [this] { return stop_.load(std::memory_order_relaxed); })) {
      return;
    }
  }
}

std::size_t Sampler::size() const {
  const MutexLock lock(mu_);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(next_, slots_.size()));
}

std::uint64_t Sampler::dropped() const {
  const MutexLock lock(mu_);
  const std::uint64_t capacity = slots_.size();
  return next_ > capacity ? next_ - capacity : 0;
}

std::string Sampler::ToJson() const {
  const MutexLock lock(mu_);
  const std::uint64_t capacity = slots_.size();
  const std::uint64_t first = next_ > capacity ? next_ - capacity : 0;
  std::string out = "{\"period_ms\":" + std::to_string(options_.period_ms) +
                    ",\"dropped\":" +
                    std::to_string(next_ > capacity ? next_ - capacity : 0) +
                    ",\"ts_us\":[";
  for (std::uint64_t i = first; i < next_; ++i) {
    if (i != first) out += ",";
    out += std::to_string(slots_[static_cast<std::size_t>(i % capacity)].ts_us);
  }
  out += "],\"series\":{";
  for (std::size_t s = 0; s < names_.size(); ++s) {
    if (s != 0) out += ",";
    out += "\"" + names_[s] + "\":[";
    for (std::uint64_t i = first; i < next_; ++i) {
      if (i != first) out += ",";
      const Row& row = slots_[static_cast<std::size_t>(i % capacity)];
      // Rows sampled before this name was tracked are padded with 0.
      out += std::to_string(s < row.values.size() ? row.values[s] : 0);
    }
    out += "]";
  }
  out += "}}";
  return out;
}

}  // namespace aru::obs
