// aru::obs — process-wide observability primitives for the LLD stack.
//
// A Registry names and owns three metric kinds:
//
//   Counter    monotone u64 (suffix `_total`, or `_us`/`_bytes` sums);
//   Gauge      settable i64 snapshot of a current level (queue depth,
//              promotion-horizon lag, ...);
//   Histogram  log2-bucketed latency/size distribution with
//              p50/p95/p99/max. Values are dimensionless integers; the
//              metric name carries the unit (`_us` = wall-clock
//              microseconds, `_vus` = VirtualClock modeled-disk
//              microseconds, `_percent`, `_blocks`, ...).
//
// All mutators are lock-free atomics, safe to call from concurrent
// client threads (the multi-stream ARU API is thread-safe; its metrics
// must be too). Snapshots and dumps are weakly consistent — they may
// trail in-flight recordings — but the read order is chosen so a
// histogram mean is never biased high (see the Histogram class comment
// for the exact bound).
//
// Registry::Default() is the process-wide instance. Components accept a
// Registry* and fall back to Default() when given nullptr, so tests and
// benchmark rigs can isolate their numbers by supplying their own.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/protocol_annotations.h"
#include "util/thread_annotations.h"

namespace aru::obs {

class Counter {
 public:
  void Increment() { Add(1); }
  void Add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_ ARU_ATOMIC_COUNTER{0};
};

class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<std::int64_t> value_ ARU_ATOMIC_COUNTER{0};
};

// Power-of-two buckets: bucket 0 holds the value 0, bucket i (1..47)
// holds [2^(i-1), 2^i), and the last bucket is the overflow for
// everything >= 2^47 (~4.5 years in microseconds — effectively "too
// large to bucket, see max").
//
// Weak-consistency bound: recording publishes sum, then bucket, then
// count (all relaxed), and TakeSnapshot reads sum before count. A
// snapshot taken under concurrent recording may therefore miss up to
// one in-flight sample per recording thread from any individual field,
// but it never pairs a counted sample with a sum that excludes it on
// TSO hardware — mean() is exact or biased low by at most
// (max in-flight sample) / count, never high. Bucket totals may lag
// `count` by the same in-flight margin; Percentile() tolerates this by
// clamping to the scanned mass.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 49;
  static constexpr std::size_t kOverflowBucket = kBucketCount - 1;

  // Upper bound (inclusive) of bucket `i`; u64 max for the overflow.
  static std::uint64_t BucketUpperBound(std::size_t i);

  void Record(std::uint64_t value);

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  // 0 when empty
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBucketCount> buckets{};

    // Percentile estimate in [0, 100], interpolated within the bucket
    // and clamped to [min, max]; 0 when the histogram is empty.
    double Percentile(double p) const;
    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };
  Snapshot TakeSnapshot() const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  static std::size_t BucketFor(std::uint64_t value);

  std::atomic<std::uint64_t> count_ ARU_ATOMIC_COUNTER{0};
  std::atomic<std::uint64_t> sum_ ARU_ATOMIC_COUNTER{0};
  std::atomic<std::uint64_t> min_ ARU_ATOMIC_COUNTER{~0ull};
  std::atomic<std::uint64_t> max_ ARU_ATOMIC_COUNTER{0};
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_ ARU_ATOMIC_COUNTER{};
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry.
  static Registry& Default();

  // Resolves `registry`: nullptr means the process-wide default.
  static Registry& OrDefault(Registry* registry) {
    return registry != nullptr ? *registry : Default();
  }

  // Find-or-create. The returned pointer is stable for the lifetime of
  // the registry. Re-registering an existing name with a different
  // metric kind returns nullptr (a programming error worth surfacing).
  Counter* GetCounter(std::string_view name, std::string_view help = "")
      ARU_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, std::string_view help = "")
      ARU_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name, std::string_view help = "")
      ARU_EXCLUDES(mu_);

  // Lookup without creating; nullptr when absent or of another kind.
  const Counter* FindCounter(std::string_view name) const ARU_EXCLUDES(mu_);
  const Gauge* FindGauge(std::string_view name) const ARU_EXCLUDES(mu_);
  const Histogram* FindHistogram(std::string_view name) const
      ARU_EXCLUDES(mu_);

  // Zeroes every metric (the metrics stay registered).
  void Reset() ARU_EXCLUDES(mu_);

  // Prometheus-style text exposition.
  std::string DumpText() const ARU_EXCLUDES(mu_);

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":
  // {name:{count,sum,min,max,mean,p50,p95,p99,buckets:[{le,count}]}}}.
  std::string DumpJson() const ARU_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetEntry(std::string_view name, std::string_view help, Kind kind)
      ARU_EXCLUDES(mu_);

  // Guards the name→entry map only; the metric objects themselves are
  // lock-free and are mutated through the stable pointers handed out.
  // Named but never bound to a LockWaitSink: the registry is its own
  // metrics store, so reporting its contention into itself would be
  // circular.
  mutable Mutex mu_{"obs_registry"};
  std::map<std::string, Entry, std::less<>> entries_ ARU_GUARDED_BY(mu_);
};

// Microseconds on the steady clock since process start; the timebase
// for every `_us` histogram and every trace-event timestamp.
std::uint64_t NowUs();

}  // namespace aru::obs
