// Bounded ring-buffer span tracer with Chrome trace_event export.
//
// v2 extends the flat complete-event model to hierarchical spans: every
// Span carries a process-unique id and the id of its parent — the span
// active on the constructing thread (a thread-local active-span stack),
// or an explicit id handed across threads (the write-behind flusher
// parents its device_write span on the seal span that enqueued the
// segment). The ring stores complete events ("ph":"X") exactly as
// before; once full, the newest event overwrites the oldest, so a
// tracer never grows and the tail of history is always available.
// DumpChromeJson() emits the Trace Event Format that chrome://tracing
// and Perfetto load directly, with span/parent ids in "args" so the
// hierarchy survives export. SpanBreakdown() turns a snapshot into a
// per-operation critical-path table (how an EndARU decomposes into
// group-commit wait, seal hand-off, and device writes).
//
// Event name/category strings must be string literals (the ring stores
// the pointers, not copies).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/protocol_annotations.h"
#include "util/thread_annotations.h"

namespace aru::obs {

struct TraceEvent {
  const char* category = "";
  const char* name = "";
  std::uint64_t ts_us = 0;   // start, NowUs() timebase
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::uint64_t id = 0;         // span id; 0 for flat (non-span) events
  std::uint64_t parent_id = 0;  // enclosing span id; 0 for roots
  const char* arg_name = nullptr;  // optional single numeric argument
  std::uint64_t arg_value = 0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 8192);

  // The process-wide tracer used by the built-in instrumentation.
  static Tracer& Default();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Flat complete event (no span identity). Kept for call sites that
  // time something that is not a nesting scope.
  void RecordComplete(const char* category, const char* name,
                      std::uint64_t ts_us, std::uint64_t dur_us,
                      const char* arg_name = nullptr,
                      std::uint64_t arg_value = 0) ARU_EXCLUDES(mu_);

  // Complete event with span identity; used by Span and by call sites
  // that record on behalf of a span finished elsewhere (cross-thread
  // children pass the parent id explicitly).
  void RecordSpan(const char* category, const char* name,
                  std::uint64_t ts_us, std::uint64_t dur_us,
                  std::uint64_t id, std::uint64_t parent_id,
                  const char* arg_name = nullptr, std::uint64_t arg_value = 0)
      ARU_EXCLUDES(mu_);

  // Process-unique span id (never 0). Ids are global, not per-tracer,
  // so parentage is unambiguous even across tracers.
  static std::uint64_t NextSpanId();

  // The innermost unfinished span started on this thread, 0 if none.
  // This is the implicit parent for new spans and for flat events that
  // want attribution (e.g. the pipeline capturing the seal span to
  // parent an asynchronous device write on another thread).
  static std::uint64_t CurrentSpanId();

  // Events currently held, oldest first (wraparound resolved).
  std::vector<TraceEvent> Snapshot() const ARU_EXCLUDES(mu_);

  // Events overwritten because the ring was full.
  std::uint64_t dropped() const ARU_EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const ARU_EXCLUDES(mu_);

  void Clear() ARU_EXCLUDES(mu_);

  // {"displayTimeUnit":"ms","traceEvents":[{"ph":"X",...},...]}
  // Span events carry {"span_id":...,"parent_id":...} in "args".
  std::string DumpChromeJson() const ARU_EXCLUDES(mu_);

 private:
  friend class Span;

  // Thread-local active-span stack maintenance (Span only).
  static void PushSpan(std::uint64_t id);
  // Removes `id` from this thread's stack wherever it sits: finishing
  // out of order removes only that span's frame — children started
  // under it keep their recorded parentage, and an already-removed id
  // is a no-op.
  static void PopSpan(std::uint64_t id);

  // Named but never bound to a LockWaitSink: the tracer is part of the
  // observability substrate itself.
  mutable Mutex mu_{"obs_tracer"};
  const std::size_t capacity_;  // fixed at construction; lock-free reads
  std::vector<TraceEvent> slots_ ARU_GUARDED_BY(mu_);
  // Monotone event count; the slot written is next_ % capacity_.
  std::uint64_t next_ ARU_GUARDED_BY(mu_) = 0;
  std::atomic<bool> enabled_ ARU_ATOMIC_COUNTER{true};
};

// RAII span: measures wall time from construction to Finish (or
// destruction), records it into `histogram` (if any) and into `tracer`
// (if any and enabled) as a parent-linked complete event. On
// construction the span becomes the innermost active span of the
// current thread; its parent is whatever was innermost before (or an
// explicit id for cross-thread children). Both sinks are optional so
// call sites read uniformly.
class Span {
 public:
  Span(Tracer* tracer, const char* category, const char* name,
       Histogram* histogram = nullptr);

  // Cross-thread child: nests under `parent_id` (from another thread's
  // Span::id() or Tracer::CurrentSpanId()) instead of this thread's
  // active span.
  Span(Tracer* tracer, const char* category, const char* name,
       std::uint64_t parent_id, Histogram* histogram);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { Finish(); }

  // Attaches one numeric argument to the trace event.
  void SetArg(const char* name, std::uint64_t value) {
    arg_name_ = name;
    arg_value_ = value;
  }

  std::uint64_t ElapsedUs() const { return NowUs() - start_us_; }

  // 0 when the span is not being traced (null/disabled tracer).
  std::uint64_t id() const { return id_; }

  // Records now instead of at destruction (idempotent) and pops this
  // span off the thread's active-span stack.
  void Finish();

 private:
  Tracer* tracer_;
  const char* category_;
  const char* name_;
  Histogram* histogram_;
  std::uint64_t start_us_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_id_ = 0;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_value_ = 0;
  bool finished_ = false;
};

// The historical name for the histogram-plus-trace RAII timer; spans
// are a strict superset, so old call sites compile unchanged.
using SpanTimer = Span;

// One row of a critical-path breakdown: every descendant of a root
// span, grouped by event name.
struct SpanBreakdownEntry {
  std::string name;
  std::uint64_t total_us = 0;
  std::uint64_t count = 0;
};

// Sums the recorded durations of every descendant of `root_id` in
// `events` (a Tracer::Snapshot()), grouped by name and ordered by
// total time descending. Asynchronous children (a device write that
// completed after its parent finished) are attributed logically, so
// totals can exceed the root's own duration.
std::vector<SpanBreakdownEntry> SpanBreakdown(
    const std::vector<TraceEvent>& events, std::uint64_t root_id);

}  // namespace aru::obs
