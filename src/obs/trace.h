// Bounded ring-buffer event tracer with Chrome trace_event export.
//
// Spans (segment seals, cleaner passes, recovery phases, ARU
// Begin→End lifetimes) are recorded as complete events ("ph":"X") into
// a fixed-capacity ring; once full, the newest event overwrites the
// oldest, so a tracer never grows and the tail of history is always
// available. DumpChromeJson() emits the Trace Event Format that
// chrome://tracing and Perfetto load directly.
//
// Event name/category strings must be string literals (the ring stores
// the pointers, not copies).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aru::obs {

struct TraceEvent {
  const char* category = "";
  const char* name = "";
  std::uint64_t ts_us = 0;   // start, NowUs() timebase
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
  const char* arg_name = nullptr;  // optional single numeric argument
  std::uint64_t arg_value = 0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 8192);

  // The process-wide tracer used by the built-in instrumentation.
  static Tracer& Default();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void RecordComplete(const char* category, const char* name,
                      std::uint64_t ts_us, std::uint64_t dur_us,
                      const char* arg_name = nullptr,
                      std::uint64_t arg_value = 0) ARU_EXCLUDES(mu_);

  // Events currently held, oldest first (wraparound resolved).
  std::vector<TraceEvent> Snapshot() const ARU_EXCLUDES(mu_);

  // Events overwritten because the ring was full.
  std::uint64_t dropped() const ARU_EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const ARU_EXCLUDES(mu_);

  void Clear() ARU_EXCLUDES(mu_);

  // {"displayTimeUnit":"ms","traceEvents":[{"ph":"X",...},...]}
  std::string DumpChromeJson() const ARU_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  const std::size_t capacity_;  // fixed at construction; lock-free reads
  std::vector<TraceEvent> slots_ ARU_GUARDED_BY(mu_);
  // Monotone event count; the slot written is next_ % capacity_.
  std::uint64_t next_ ARU_GUARDED_BY(mu_) = 0;
  std::atomic<bool> enabled_{true};
};

// RAII span: measures wall time from construction to destruction,
// records it into `histogram` (if any) and into `tracer` (if any and
// enabled). Both sinks are optional so call sites read uniformly.
class SpanTimer {
 public:
  SpanTimer(Tracer* tracer, const char* category, const char* name,
            Histogram* histogram = nullptr)
      : tracer_(tracer),
        category_(category),
        name_(name),
        histogram_(histogram),
        start_us_(NowUs()) {}

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() { Finish(); }

  // Attaches one numeric argument to the trace event.
  void SetArg(const char* name, std::uint64_t value) {
    arg_name_ = name;
    arg_value_ = value;
  }

  std::uint64_t ElapsedUs() const { return NowUs() - start_us_; }

  // Records now instead of at destruction (idempotent).
  void Finish();

 private:
  Tracer* tracer_;
  const char* category_;
  const char* name_;
  Histogram* histogram_;
  std::uint64_t start_us_;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_value_ = 0;
  bool finished_ = false;
};

}  // namespace aru::obs
