#include "bench_support/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>

namespace aru::bench {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : (xs[mid - 1] + xs[mid]) / 2.0;
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double sum = 0.0;
  for (const double x : xs) sum += (x - mean) * (x - mean);
  return std::sqrt(sum / static_cast<double>(xs.size() - 1));
}

double PercentDifference(double old_value, double new_value) {
  if (old_value == 0.0) return 0.0;
  return (old_value - new_value) / old_value * 100.0;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::uint64_t FlagU64(int argc, char** argv, const std::string& key,
                      std::uint64_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

bool FlagBool(int argc, char** argv, const std::string& key, bool fallback) {
  const std::string on = "--" + key;
  const std::string off = "--no" + key;
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == on || argv[i] == on + "=true") return true;
    if (argv[i] == off || argv[i] == on + "=false") return false;
  }
  return fallback;
}

std::string SanitizeKey(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  bool pending_sep = false;
  for (const char c : raw) {
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9');
    if (alnum) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += c;
    } else {
      pending_sep = true;  // collapse the run; trim at the edges
    }
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void BenchArtifact::AddScalar(const std::string& key, double value) {
  scalars_.emplace_back(SanitizeKey(key), value);
}

void BenchArtifact::AddString(const std::string& key,
                              const std::string& value) {
  strings_.emplace_back(SanitizeKey(key), value);
}

std::string BenchArtifact::ToJson() const {
  std::ostringstream out;
  out << "{\"name\":\"" << JsonEscape(name_) << "\"";
  if (!strings_.empty()) {
    out << ",\"config\":{";
    bool first = true;
    for (const auto& [key, value] : strings_) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << "\"";
    }
    out << "}";
  }
  out << ",\"scalars\":{";
  bool first = true;
  for (const auto& [key, value] : scalars_) {
    if (!first) out << ",";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out << "\"" << JsonEscape(key) << "\":" << buf;
  }
  out << "}";
  if (registry_ != nullptr) {
    out << ",\"metrics\":" << registry_->DumpJson();
  }
  if (!timeseries_.empty()) {
    out << ",\"timeseries\":" << timeseries_;
  }
  out << "}\n";
  return out.str();
}

Status BenchArtifact::WriteFile() const {
  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream file(path, std::ios::trunc);
  if (!file) return IoError("cannot open " + path);
  file << ToJson();
  file.flush();
  if (!file) return IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace aru::bench
