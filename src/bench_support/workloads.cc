#include "bench_support/workloads.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "bench_support/report.h"
#include "util/rng.h"

namespace aru::bench {
namespace {

// Files are spread over subdirectories (100 files each) so that the
// figure measures creation/deletion meta-data cost rather than linear
// directory scans; Minix 1.x's 16-byte entries made large flat
// directories far cheaper to scan than our 64-byte entries.
constexpr std::uint64_t kFilesPerDir = 100;

std::string DirName(std::uint64_t i) {
  return "/d" + std::to_string(i / kFilesPerDir);
}

std::string FileName(std::uint64_t i) {
  return DirName(i) + "/f" + std::to_string(i);
}

class PhaseScope {
 public:
  explicit PhaseScope(Rig& rig, Phase& phase) : rig_(rig), phase_(phase) {
    virtual_start_ = rig_.virtual_io_us();
    watch_.Start();
  }
  ~PhaseScope() {
    phase_.wall_s = static_cast<double>(watch_.StopUs()) / 1e6;
    phase_.virtual_io_s =
        static_cast<double>(rig_.virtual_io_us() - virtual_start_) / 1e6;
  }

 private:
  Rig& rig_;
  Phase& phase_;
  Stopwatch watch_;
  std::uint64_t virtual_start_ = 0;
};

}  // namespace

Result<SmallFileResult> RunSmallFileWorkload(Rig& rig, std::uint64_t files,
                                             std::uint64_t file_bytes) {
  SmallFileResult result;
  result.files = files;
  result.file_bytes = file_bytes;

  Bytes payload(file_bytes);
  Rng rng(7);
  for (auto& b : payload) b = static_cast<std::byte>(rng.Next() & 0xff);

  {
    PhaseScope scope(rig, result.create_write);
    for (std::uint64_t i = 0; i < files; ++i) {
      if (i % kFilesPerDir == 0) {
        ARU_RETURN_IF_ERROR(rig.fs->Mkdir(DirName(i)).status());
      }
      ARU_ASSIGN_OR_RETURN(const auto inode, rig.fs->Create(FileName(i)));
      ARU_ASSIGN_OR_RETURN(auto file, rig.fs->OpenInode(inode));
      ARU_RETURN_IF_ERROR(rig.fs->WriteAt(file, 0, payload));
      ARU_RETURN_IF_ERROR(rig.fs->Close(file));
    }
    ARU_RETURN_IF_ERROR(rig.fs->Sync());
  }

  {
    PhaseScope scope(rig, result.read);
    Bytes buffer(file_bytes);
    for (std::uint64_t i = 0; i < files; ++i) {
      ARU_ASSIGN_OR_RETURN(auto file, rig.fs->Open(FileName(i)));
      ARU_RETURN_IF_ERROR(rig.fs->ReadAt(file, 0, buffer));
    }
  }

  {
    PhaseScope scope(rig, result.remove);
    for (std::uint64_t i = 0; i < files; ++i) {
      ARU_RETURN_IF_ERROR(rig.fs->Unlink(FileName(i)));
    }
    ARU_RETURN_IF_ERROR(rig.fs->Sync());
  }
  return result;
}

Result<LargeFileResult> RunLargeFileWorkload(Rig& rig,
                                             std::uint64_t file_bytes,
                                             std::uint64_t seed) {
  LargeFileResult result;
  result.file_bytes = file_bytes;
  const std::uint32_t bs = rig.fs->block_size();
  const std::uint64_t blocks = (file_bytes + bs - 1) / bs;

  Bytes chunk(bs);
  Rng rng(seed);
  for (auto& b : chunk) b = static_cast<std::byte>(rng.Next() & 0xff);

  ARU_RETURN_IF_ERROR(rig.fs->Create("/large").status());
  ARU_ASSIGN_OR_RETURN(auto file, rig.fs->Open("/large"));

  {
    PhaseScope scope(rig, result.write1);
    for (std::uint64_t i = 0; i < blocks; ++i) {
      ARU_RETURN_IF_ERROR(rig.fs->WriteAt(file, i * bs, chunk));
    }
    ARU_RETURN_IF_ERROR(rig.fs->Close(file));
    ARU_RETURN_IF_ERROR(rig.fs->Sync());
  }

  Bytes buffer(bs);
  {
    PhaseScope scope(rig, result.read1);
    for (std::uint64_t i = 0; i < blocks; ++i) {
      ARU_RETURN_IF_ERROR(rig.fs->ReadAt(file, i * bs, buffer));
    }
  }

  std::vector<std::uint64_t> order(blocks);
  std::iota(order.begin(), order.end(), 0);
  for (std::uint64_t i = blocks - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Below(i + 1)]);
  }

  {
    PhaseScope scope(rig, result.write2);
    for (const std::uint64_t i : order) {
      ARU_RETURN_IF_ERROR(rig.fs->WriteAt(file, i * bs, chunk));
    }
    ARU_RETURN_IF_ERROR(rig.fs->Close(file));
    ARU_RETURN_IF_ERROR(rig.fs->Sync());
  }

  for (std::uint64_t i = blocks - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Below(i + 1)]);
  }
  {
    PhaseScope scope(rig, result.read2);
    for (const std::uint64_t i : order) {
      ARU_RETURN_IF_ERROR(rig.fs->ReadAt(file, i * bs, buffer));
    }
  }

  {
    PhaseScope scope(rig, result.read3);
    for (std::uint64_t i = 0; i < blocks; ++i) {
      ARU_RETURN_IF_ERROR(rig.fs->ReadAt(file, i * bs, buffer));
    }
  }
  return result;
}

double FilesPerSecond(std::uint64_t files, const Phase& phase) {
  return phase.wall_s > 0.0 ? static_cast<double>(files) / phase.wall_s : 0.0;
}

double MBytesPerSecond(std::uint64_t bytes, const Phase& phase) {
  return phase.wall_s > 0.0
             ? static_cast<double>(bytes) / (1024.0 * 1024.0) / phase.wall_s
             : 0.0;
}

double ModeledMBytesPerSecond(std::uint64_t bytes, const Phase& phase) {
  return phase.virtual_io_s > 0.0 ? static_cast<double>(bytes) /
                                        (1024.0 * 1024.0) / phase.virtual_io_s
                                  : 0.0;
}

}  // namespace aru::bench
