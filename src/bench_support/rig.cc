#include "bench_support/rig.h"

namespace aru::bench {

MinixLldConfig OldConfig() {
  MinixLldConfig config;
  config.name = "old";
  config.aru_mode = lld::AruMode::kSequential;
  config.policy.use_arus = false;
  config.policy.improved_delete = false;
  return config;
}

MinixLldConfig NewConfig() {
  MinixLldConfig config;
  config.name = "new";
  config.aru_mode = lld::AruMode::kConcurrent;
  config.policy.use_arus = true;
  config.policy.improved_delete = false;
  return config;
}

MinixLldConfig NewDeleteConfig() {
  MinixLldConfig config;
  config.name = "new, delete";
  config.aru_mode = lld::AruMode::kConcurrent;
  config.policy.use_arus = true;
  config.policy.improved_delete = true;
  return config;
}

Result<std::unique_ptr<Rig>> MakeRig(const MinixLldConfig& config,
                                     const RigOptions& options) {
  auto rig = std::make_unique<Rig>();
  rig->config = config;

  const std::uint64_t sectors = options.device_mb * 1024 * 1024 / 512;
  auto mem = std::make_unique<MemDisk>(sectors);
  if (options.model_disk_time) {
    rig->device = std::make_unique<ModeledDisk>(
        std::move(mem), DiskModelParams::HpC3010(), &rig->clock,
        &rig->registry);
  } else if (options.device_write_latency_us > 0 ||
             options.device_read_latency_us > 0) {
    auto latency = std::make_unique<LatencyDisk>(std::move(mem));
    rig->latency_disk = latency.get();  // latency enabled after setup
    rig->device = std::move(latency);
  } else {
    rig->device = std::move(mem);
  }

  lld::Options lld_options;
  lld_options.block_size = 4096;
  lld_options.segment_size = options.segment_size;
  lld_options.aru_mode = config.aru_mode;
  lld_options.capacity_blocks = options.capacity_blocks;
  lld_options.write_behind_segments = options.write_behind_segments;
  lld_options.durable_commits = options.durable_commits;
  lld_options.read_cache_blocks = options.read_cache_blocks;
  lld_options.read_cache_shards = options.read_cache_shards;
  lld_options.table_shards = options.table_shards;
  lld_options.sampler_period_ms = options.sampler_period_ms;
  lld_options.registry = &rig->registry;
  ARU_RETURN_IF_ERROR(lld::Lld::Format(*rig->device, lld_options));
  ARU_ASSIGN_OR_RETURN(rig->disk, lld::Lld::Open(*rig->device, lld_options));

  ARU_RETURN_IF_ERROR(minixfs::MinixFs::Mkfs(*rig->disk));
  ARU_ASSIGN_OR_RETURN(rig->fs,
                       minixfs::MinixFs::Mount(*rig->disk, config.policy));
  // Start the clock (and any write latency) after setup so phases
  // measure only workload I/O.
  rig->clock.Reset();
  if (rig->latency_disk != nullptr) {
    rig->latency_disk->set_write_latency_us(options.device_write_latency_us);
    rig->latency_disk->set_read_latency_us(options.device_read_latency_us);
  }
  return rig;
}

}  // namespace aru::bench
