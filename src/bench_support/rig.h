// Benchmark rigs: assembles the three MinixLLD configurations the paper
// evaluates (Table 1) on a simulated disk.
//
//   old          the original MinixLLD: LLD with sequential ARUs, and a
//                Minix that does NOT bracket creation/deletion in ARUs
//                ("The new version … differs from the original version
//                in that directory and file creation and deletion are
//                bracketed by BeginARU and EndARU", §5.3);
//   new          LLD with concurrent ARUs; creation and deletion each
//                run in their own ARU;
//   new, delete  same, with the improved file-deletion policy of §5.3.
//
// The substrate is a RAM-backed device; wall-clock throughput measures
// the software path (the paper's concurrency overhead is CPU-side
// meta-data work, so relative old/new differences survive the
// substrate change). An optional HP C3010 service-time model reports
// paper-scale I/O time on a virtual clock for absolute comparisons.
#pragma once

#include <memory>
#include <string>

#include "bench_support/latency_disk.h"
#include "blockdev/disk_model.h"
#include "blockdev/mem_disk.h"
#include "lld/lld.h"
#include "minixfs/minix_fs.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace aru::bench {

struct MinixLldConfig {
  std::string name;
  lld::AruMode aru_mode = lld::AruMode::kConcurrent;
  minixfs::Policy policy;
};

// The paper's Table 1.
MinixLldConfig OldConfig();
MinixLldConfig NewConfig();
MinixLldConfig NewDeleteConfig();

struct Rig {
  MinixLldConfig config;
  // All layers (disk model, LLD) report into this registry; declared
  // first so it outlives everything that records into it.
  obs::Registry registry;
  VirtualClock clock;                     // advanced by the disk model
  std::unique_ptr<BlockDevice> device;    // MemDisk, optionally decorated
  LatencyDisk* latency_disk = nullptr;    // set when write latency requested
  std::unique_ptr<lld::Lld> disk;
  std::unique_ptr<minixfs::MinixFs> fs;

  std::uint64_t virtual_io_us() const { return clock.now_us(); }
};

struct RigOptions {
  std::uint64_t device_mb = 512;
  std::uint64_t capacity_blocks = 100000;  // paper: 100,000 4 KB blocks
  std::uint32_t segment_size = 512 * 1024;
  bool model_disk_time = false;  // wrap the device in the HP C3010 model
  // Write-behind pipeline knobs (lld::Options passthrough): in-flight
  // segment pool depth (0 = synchronous seal) and group-commit EndARU.
  std::uint32_t write_behind_segments = 0;
  bool durable_commits = false;
  // Wall-clock sleep per device write/read (LatencyDisk), enabled
  // after setup so Format/Mkfs run at memory speed. 0/0 = no decorator.
  std::uint64_t device_write_latency_us = 0;
  std::uint64_t device_read_latency_us = 0;
  // Read-path knobs (lld::Options passthrough): read cache capacity in
  // blocks (0 disables) and LRU shard count (0 = library default).
  std::size_t read_cache_blocks = 0;
  std::size_t read_cache_shards = 0;
  // Persistent-table shard count (lld::Options passthrough); 0 = the
  // topology-derived library default (util/topology.h).
  std::size_t table_shards = 0;
  // Time-series sampler period (lld::Options passthrough); 0 = off.
  // The ring is reachable as rig->disk->sampler() for SetTimeseries.
  std::uint64_t sampler_period_ms = 0;
};

// Builds a formatted LLD + mounted MinixFS per the config.
Result<std::unique_ptr<Rig>> MakeRig(const MinixLldConfig& config,
                                     const RigOptions& options = {});

}  // namespace aru::bench
