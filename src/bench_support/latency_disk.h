// Wall-clock latency decorator for benchmarks: every Write (and,
// when enabled, every Read) sleeps a fixed duration before reaching
// the inner (RAM-backed) device, modeling a storage device whose I/O
// takes real time without consuming CPU — the regime where moving the
// segment write off-thread (write-behind, group commit) and letting
// readers overlap device reads (shared-mode read path) pay off.
// Unlike ModeledDisk this costs *wall* time, so multi-threaded
// throughput benchmarks feel it; the latencies are settable after
// setup so Format/Mkfs are not padded.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

#include "blockdev/block_device.h"
#include "util/protocol_annotations.h"

namespace aru::bench {

class LatencyDisk final : public BlockDevice {
 public:
  explicit LatencyDisk(std::unique_ptr<BlockDevice> inner)
      : inner_(std::move(inner)) {}

  std::uint32_t sector_size() const override { return inner_->sector_size(); }
  std::uint64_t sector_count() const override {
    return inner_->sector_count();
  }

  Status Read(std::uint64_t first_sector, MutableByteSpan out) override {
    const std::uint64_t us = read_latency_us_.load(std::memory_order_relaxed);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
    return inner_->Read(first_sector, out);
  }

  Status Write(std::uint64_t first_sector, ByteSpan data) override {
    const std::uint64_t us = write_latency_us_.load(std::memory_order_relaxed);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
    return inner_->Write(first_sector, data);
  }

  Status Sync() override { return inner_->Sync(); }

  DeviceStats stats() const override { return inner_->stats(); }

  void set_write_latency_us(std::uint64_t us) {
    write_latency_us_.store(us, std::memory_order_relaxed);
  }

  void set_read_latency_us(std::uint64_t us) {
    read_latency_us_.store(us, std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<BlockDevice> inner_;
  std::atomic<std::uint64_t> write_latency_us_ ARU_ATOMIC_COUNTER{0};
  std::atomic<std::uint64_t> read_latency_us_ ARU_ATOMIC_COUNTER{0};
};

}  // namespace aru::bench
