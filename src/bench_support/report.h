// Small table/statistics helpers shared by the benchmark binaries.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace aru::bench {

// Wall-clock stopwatch in microseconds.
class Stopwatch {
 public:
  void Start() { start_ = std::chrono::steady_clock::now(); }
  std::uint64_t StopUs() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

double Mean(const std::vector<double>& xs);
double Median(std::vector<double> xs);
double StdDev(const std::vector<double>& xs);

// (new - old) / old in percent; the paper's "percent-difference".
double PercentDifference(double old_value, double new_value);

// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatDouble(double value, int precision = 1);

// Canonical scalar-key form: runs of non-alphanumeric characters
// collapse to a single '_', trimmed at both ends ("new, delete" →
// "new_delete"). Applied to every BenchArtifact key so comparison
// scripts see stable identifiers regardless of display labels.
std::string SanitizeKey(std::string_view raw);

// Parses "--key=value" style flags; returns fallback when absent.
std::uint64_t FlagU64(int argc, char** argv, const std::string& key,
                      std::uint64_t fallback);
bool FlagBool(int argc, char** argv, const std::string& key, bool fallback);

// Machine-readable benchmark result: named scalars plus (optionally)
// the full obs::Registry dump of the run, written to
// BENCH_<name>.json in the current directory so CI and comparison
// scripts don't have to scrape the human-readable tables.
class BenchArtifact {
 public:
  explicit BenchArtifact(std::string name) : name_(std::move(name)) {}

  void AddScalar(const std::string& key, double value);
  void AddString(const std::string& key, const std::string& value);

  // Registry whose DumpJson() is embedded under "metrics" at write
  // time; not owned, must outlive WriteFile().
  void SetRegistry(const obs::Registry* registry) { registry_ = registry; }

  // Pre-serialized JSON object embedded verbatim under "timeseries" —
  // an obs::Sampler::ToJson() ring, so the artifact carries how the
  // tracked gauges/counters evolved over the run.
  void SetTimeseries(std::string json_object) {
    timeseries_ = std::move(json_object);
  }

  std::string ToJson() const;
  Status WriteFile() const;  // BENCH_<name_>.json

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, std::string>> strings_;
  const obs::Registry* registry_ = nullptr;
  std::string timeseries_;  // empty = no section
};

}  // namespace aru::bench
