// Small table/statistics helpers shared by the benchmark binaries.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace aru::bench {

// Wall-clock stopwatch in microseconds.
class Stopwatch {
 public:
  void Start() { start_ = std::chrono::steady_clock::now(); }
  std::uint64_t StopUs() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

double Mean(const std::vector<double>& xs);
double Median(std::vector<double> xs);
double StdDev(const std::vector<double>& xs);

// (new - old) / old in percent; the paper's "percent-difference".
double PercentDifference(double old_value, double new_value);

// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatDouble(double value, int precision = 1);

// Parses "--key=value" style flags; returns fallback when absent.
std::uint64_t FlagU64(int argc, char** argv, const std::string& key,
                      std::uint64_t fallback);
bool FlagBool(int argc, char** argv, const std::string& key, bool fallback);

}  // namespace aru::bench
