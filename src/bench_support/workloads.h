// The paper's micro-benchmarks (§5.2), parameterized.
//
//  * Small-file workload: create and write, then read, then delete
//    N files of S bytes (paper: 10,000 × 1 KB and 1,000 × 10 KB).
//  * Large-file workload: one 78.125 MB file written sequentially
//    (write1), read sequentially (read1), written in random order
//    (write2), read in random order (read2), read sequentially again
//    (read3).
//
// Each phase reports wall-clock time (the software path on the RAM
// substrate) and, when the rig models disk service time, the virtual
// I/O time accumulated by the HP C3010 model.
#pragma once

#include "bench_support/rig.h"
#include "util/status.h"

namespace aru::bench {

struct Phase {
  double wall_s = 0.0;
  double virtual_io_s = 0.0;
};

struct SmallFileResult {
  std::uint64_t files = 0;
  std::uint64_t file_bytes = 0;
  Phase create_write;
  Phase read;
  Phase remove;
};

Result<SmallFileResult> RunSmallFileWorkload(Rig& rig, std::uint64_t files,
                                             std::uint64_t file_bytes);

struct LargeFileResult {
  std::uint64_t file_bytes = 0;
  Phase write1, read1, write2, read2, read3;
};

Result<LargeFileResult> RunLargeFileWorkload(Rig& rig,
                                             std::uint64_t file_bytes,
                                             std::uint64_t seed = 42);

// files/second for a small-file phase (wall clock).
double FilesPerSecond(std::uint64_t files, const Phase& phase);
// MB/second for a large-file phase (wall clock).
double MBytesPerSecond(std::uint64_t bytes, const Phase& phase);
// Same, against the modeled disk time.
double ModeledMBytesPerSecond(std::uint64_t bytes, const Phase& phase);

}  // namespace aru::bench
