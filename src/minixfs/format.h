// On-disk format of the Minix-like file system (MinixFS).
//
// MinixFS is a deliberately faithful stand-in for the Minix 1.x file
// system the paper runs on top of LLD: i-nodes plus directories whose
// data blocks hold fixed-size entries, with all disk management
// delegated to LD. As in the paper's MinixLLD, each file's data lives
// on its own LD block list; the i-node table occupies a dedicated list;
// a one-block superblock list ties everything together.
//
//   list 1                superblock (one block)
//   inode list            i-node table, 64 i-nodes per 4 KB block
//   one list per file     data blocks, in file order
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "ld/ids.h"
#include "util/bytes.h"
#include "util/status.h"

namespace aru::minixfs {

inline constexpr std::uint32_t kSuperMagic = 0x4d4e5846;  // "MNXF"
inline constexpr std::uint16_t kFsVersion = 1;

// 64-byte on-disk i-node.
inline constexpr std::size_t kInodeSize = 64;

enum class InodeType : std::uint16_t {
  kFree = 0,
  kFile = 1,
  kDirectory = 2,
};

using InodeNum = std::uint32_t;
inline constexpr InodeNum kNoInode = 0xffffffffu;

struct Inode {
  InodeType type = InodeType::kFree;
  std::uint16_t links = 0;
  std::uint32_t reserved = 0;   // explicit padding before `size`
  std::uint64_t size = 0;       // bytes
  ld::ListId data_list;         // the file's LD list
  std::uint64_t mtime = 0;      // logical modification counter
};

// Format pin: i-nodes are encoded into fixed 64-byte table slots; the
// in-memory struct must stay a fixed-size POD so fsck and recovery read
// old images correctly.
static_assert(std::is_trivially_copyable_v<Inode>);
static_assert(sizeof(Inode) == 32);

// 64-byte directory entry: 8-byte i-node field (0 = free slot, else
// i-node number + 1), 55-byte name, NUL.
inline constexpr std::size_t kDirEntrySize = 64;
inline constexpr std::size_t kMaxNameLen = 55;

// arulint: allow(on-disk-pin) decoded view, not the serialized layout —
// the 64-byte slot format is pinned by kDirEntrySize and the codec; the
// name field is an owning copy of the NUL-terminated on-disk bytes.
struct DirEntry {
  InodeNum inode = kNoInode;
  std::string name;
};

struct SuperBlock {
  ld::ListId inode_list;
  InodeNum root = 0;
  std::uint32_t reserved = 0;  // explicit tail padding (codec writes it)
};

// Format pin: the superblock codec writes these fields at fixed offsets
// in block 0 of the superblock list.
static_assert(std::is_trivially_copyable_v<SuperBlock>);
static_assert(sizeof(SuperBlock) == 16);

// Codecs: fixed offsets within a block buffer.
void EncodeInode(const Inode& inode, MutableByteSpan slot64);
Inode DecodeInode(ByteSpan slot64);

void EncodeDirEntry(const DirEntry& entry, MutableByteSpan slot64);
// Returns an entry with inode == kNoInode for a free slot.
DirEntry DecodeDirEntry(ByteSpan slot64);

Bytes EncodeSuperBlock(const SuperBlock& sb, std::uint32_t block_size);
Result<SuperBlock> DecodeSuperBlock(ByteSpan block);

// Validates a path component (no '/', nonempty, short enough).
Status ValidateName(std::string_view name);

}  // namespace aru::minixfs
