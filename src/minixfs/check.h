// File-system integrity checker ("fsck" for MinixFS).
//
// The paper's thesis is that with ARUs this tool never finds anything
// to repair: after recovery the file system is consistent by
// construction. It exists (a) to prove that in tests — runs after
// crash/recovery must report zero inconsistencies when creation and
// deletion were bracketed in ARUs — and (b) to show what a non-ARU
// configuration risks.
#pragma once

#include <string>
#include <vector>

#include "ld/disk.h"
#include "minixfs/format.h"

namespace aru::minixfs {

struct CheckReport {
  std::uint64_t inodes_in_use = 0;
  std::uint64_t directories = 0;
  std::uint64_t files = 0;
  std::uint64_t data_blocks = 0;
  // Human-readable descriptions of every inconsistency found.
  std::vector<std::string> problems;

  bool clean() const { return problems.empty(); }
};

// Walks the whole file system (i-node table, directory tree, data
// lists) and cross-checks every invariant:
//  * the superblock and i-node table are readable;
//  * every directory entry names an allocated i-node;
//  * every in-use i-node is referenced by exactly `links` entries
//    (and every directory by exactly one);
//  * every i-node's data list exists on the logical disk and holds
//    enough blocks for the recorded size;
//  * no i-node is orphaned (in use but unreachable from the root).
Result<CheckReport> CheckFileSystem(ld::Disk& disk);

}  // namespace aru::minixfs
