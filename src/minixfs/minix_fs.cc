#include "minixfs/minix_fs.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/log.h"

namespace aru::minixfs {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

// The superblock lives on the first list a fresh disk hands out.
constexpr ListId kSuperList{1};

Status NotADirectory(std::string_view name) {
  return FailedPreconditionError("not a directory: " + std::string(name));
}

}  // namespace

// ---------------------------------------------------------------------
// Mkfs / Mount.

Status MinixFs::Mkfs(ld::Disk& disk) {
  ARU_ASSIGN_OR_RETURN(const ListId super_list, disk.NewList());
  if (super_list != kSuperList) {
    return FailedPreconditionError(
        "Mkfs requires a freshly formatted logical disk");
  }
  ARU_ASSIGN_OR_RETURN(const BlockId super_block,
                       disk.NewBlock(super_list, kListHead));

  SuperBlock sb;
  ARU_ASSIGN_OR_RETURN(sb.inode_list, disk.NewList());
  ARU_ASSIGN_OR_RETURN(const BlockId inode_block0,
                       disk.NewBlock(sb.inode_list, kListHead));

  // Root directory: i-node 0, with an (empty) data list of its own.
  ARU_ASSIGN_OR_RETURN(const ListId root_list, disk.NewList());
  Inode root;
  root.type = InodeType::kDirectory;
  root.links = 1;
  root.data_list = root_list;
  Bytes inode_block(disk.block_size());
  EncodeInode(root, MutableByteSpan(inode_block).first(kInodeSize));
  ARU_RETURN_IF_ERROR(disk.Write(inode_block0, inode_block));

  sb.root = 0;
  ARU_RETURN_IF_ERROR(
      disk.Write(super_block, EncodeSuperBlock(sb, disk.block_size())));
  return disk.Flush();
}

Result<std::unique_ptr<MinixFs>> MinixFs::Mount(ld::Disk& disk,
                                                Policy policy) {
  ARU_ASSIGN_OR_RETURN(const auto super_blocks,
                       disk.ListBlocks(kSuperList));
  if (super_blocks.empty()) {
    return CorruptionError("superblock list is empty");
  }
  Bytes block(disk.block_size());
  ARU_RETURN_IF_ERROR(disk.Read(super_blocks.front(), block));
  ARU_ASSIGN_OR_RETURN(const SuperBlock sb, DecodeSuperBlock(block));

  std::unique_ptr<MinixFs> fs(new MinixFs(disk, policy));
  fs->sb_ = sb;
  ARU_ASSIGN_OR_RETURN(fs->inode_blocks_, disk.ListBlocks(sb.inode_list));
  if (fs->inode_blocks_.empty()) {
    return CorruptionError("i-node table is empty");
  }
  return fs;
}

// ---------------------------------------------------------------------
// Block cache.

Result<Bytes> MinixFs::ReadBlockCached(BlockId block, AruId aru) {
  if (const auto it = cache_map_.find(block); it != cache_map_.end()) {
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return it->second->second;
  }
  Bytes data(disk_.block_size());
  ARU_RETURN_IF_ERROR(disk_.Read(block, data, aru));
  cache_lru_.emplace_front(block, data);
  cache_map_[block] = cache_lru_.begin();
  CacheEvictIfNeeded();
  return data;
}

Status MinixFs::WriteBlockCached(BlockId block, const Bytes& data,
                                 AruId aru) {
  ARU_RETURN_IF_ERROR(disk_.Write(block, data, aru));
  if (const auto it = cache_map_.find(block); it != cache_map_.end()) {
    it->second->second = data;
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  } else {
    cache_lru_.emplace_front(block, data);
    cache_map_[block] = cache_lru_.begin();
    CacheEvictIfNeeded();
  }
  return Status::Ok();
}

void MinixFs::CacheEvictIfNeeded() {
  while (cache_lru_.size() > policy_.cache_blocks) {
    cache_map_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
  }
}

void MinixFs::CacheDrop(BlockId block) {
  if (const auto it = cache_map_.find(block); it != cache_map_.end()) {
    cache_lru_.erase(it->second);
    cache_map_.erase(it);
  }
}

void MinixFs::InvalidateCaches() {
  cache_lru_.clear();
  cache_map_.clear();
  if (auto blocks = disk_.ListBlocks(sb_.inode_list); blocks.ok()) {
    inode_blocks_ = std::move(blocks).value();
  }
}

// ---------------------------------------------------------------------
// I-nodes.

Result<Inode> MinixFs::GetInode(InodeNum inode, AruId aru) {
  const std::size_t per_block = disk_.block_size() / kInodeSize;
  const std::size_t block_index = inode / per_block;
  if (block_index >= inode_blocks_.size()) {
    return NotFoundError("i-node " + std::to_string(inode) +
                         " out of range");
  }
  ARU_ASSIGN_OR_RETURN(const Bytes block,
                       ReadBlockCached(inode_blocks_[block_index], aru));
  return DecodeInode(
      ByteSpan(block).subspan((inode % per_block) * kInodeSize, kInodeSize));
}

Status MinixFs::PutInode(InodeNum inode, const Inode& meta, AruId aru) {
  const std::size_t per_block = disk_.block_size() / kInodeSize;
  const std::size_t block_index = inode / per_block;
  if (block_index >= inode_blocks_.size()) {
    return NotFoundError("i-node " + std::to_string(inode) +
                         " out of range");
  }
  ARU_ASSIGN_OR_RETURN(Bytes block,
                       ReadBlockCached(inode_blocks_[block_index], aru));
  EncodeInode(meta, MutableByteSpan(block).subspan(
                        (inode % per_block) * kInodeSize, kInodeSize));
  return WriteBlockCached(inode_blocks_[block_index], block, aru);
}

Result<InodeNum> MinixFs::AllocInode(const Inode& meta, AruId aru) {
  const std::size_t per_block = disk_.block_size() / kInodeSize;
  const InodeNum total =
      static_cast<InodeNum>(inode_blocks_.size() * per_block);
  for (InodeNum probe = 0; probe < total; ++probe) {
    const InodeNum candidate =
        static_cast<InodeNum>((alloc_hint_ + probe) % total);
    ARU_ASSIGN_OR_RETURN(const Inode existing, GetInode(candidate, aru));
    if (existing.type == InodeType::kFree) {
      ARU_RETURN_IF_ERROR(PutInode(candidate, meta, aru));
      alloc_hint_ = candidate + 1;
      return candidate;
    }
  }
  // Grow the i-node table by one block (zeroed).
  ARU_ASSIGN_OR_RETURN(
      const BlockId grown,
      disk_.NewBlock(sb_.inode_list, inode_blocks_.back(), aru));
  ARU_RETURN_IF_ERROR(WriteBlockCached(grown, Bytes(disk_.block_size()), aru));
  inode_blocks_.push_back(grown);
  const InodeNum candidate = total;
  ARU_RETURN_IF_ERROR(PutInode(candidate, meta, aru));
  alloc_hint_ = candidate + 1;
  return candidate;
}

// ---------------------------------------------------------------------
// Directories.

Result<InodeNum> MinixFs::LookupIn(InodeNum dir, std::string_view name,
                                   AruId aru) {
  ARU_ASSIGN_OR_RETURN(const Inode meta, GetInode(dir, aru));
  if (meta.type != InodeType::kDirectory) return NotADirectory(name);
  ARU_ASSIGN_OR_RETURN(const auto blocks,
                       disk_.ListBlocks(meta.data_list, aru));
  const std::size_t per_block = disk_.block_size() / kDirEntrySize;
  for (const BlockId block : blocks) {
    ARU_ASSIGN_OR_RETURN(const Bytes data, ReadBlockCached(block, aru));
    for (std::size_t i = 0; i < per_block; ++i) {
      const DirEntry entry =
          DecodeDirEntry(ByteSpan(data).subspan(i * kDirEntrySize,
                                                kDirEntrySize));
      if (entry.inode != kNoInode && entry.name == name) return entry.inode;
    }
  }
  return NotFoundError("no such entry: " + std::string(name));
}

Status MinixFs::AddEntry(InodeNum dir, std::string_view name,
                         InodeNum target, AruId aru) {
  ARU_ASSIGN_OR_RETURN(Inode meta, GetInode(dir, aru));
  if (meta.type != InodeType::kDirectory) return NotADirectory(name);
  ARU_ASSIGN_OR_RETURN(const auto blocks,
                       disk_.ListBlocks(meta.data_list, aru));
  const std::size_t per_block = disk_.block_size() / kDirEntrySize;

  DirEntry entry;
  entry.inode = target;
  entry.name = std::string(name);

  for (const BlockId block : blocks) {
    ARU_ASSIGN_OR_RETURN(Bytes data, ReadBlockCached(block, aru));
    for (std::size_t i = 0; i < per_block; ++i) {
      const std::size_t at = i * kDirEntrySize;
      if (DecodeDirEntry(ByteSpan(data).subspan(at, kDirEntrySize)).inode ==
          kNoInode) {
        EncodeDirEntry(entry,
                       MutableByteSpan(data).subspan(at, kDirEntrySize));
        ARU_RETURN_IF_ERROR(WriteBlockCached(block, data, aru));
        meta.mtime = ++mtime_counter_;
        return PutInode(dir, meta, aru);
      }
    }
  }

  // Directory full: append a data block.
  const BlockId pred = blocks.empty() ? kListHead : blocks.back();
  ARU_ASSIGN_OR_RETURN(const BlockId grown,
                       disk_.NewBlock(meta.data_list, pred, aru));
  Bytes data(disk_.block_size());
  EncodeDirEntry(entry, MutableByteSpan(data).first(kDirEntrySize));
  ARU_RETURN_IF_ERROR(WriteBlockCached(grown, data, aru));
  meta.size += disk_.block_size();
  meta.mtime = ++mtime_counter_;
  return PutInode(dir, meta, aru);
}

Status MinixFs::RemoveEntry(InodeNum dir, std::string_view name, AruId aru) {
  ARU_ASSIGN_OR_RETURN(Inode meta, GetInode(dir, aru));
  if (meta.type != InodeType::kDirectory) return NotADirectory(name);
  ARU_ASSIGN_OR_RETURN(const auto blocks,
                       disk_.ListBlocks(meta.data_list, aru));
  const std::size_t per_block = disk_.block_size() / kDirEntrySize;
  for (const BlockId block : blocks) {
    ARU_ASSIGN_OR_RETURN(Bytes data, ReadBlockCached(block, aru));
    for (std::size_t i = 0; i < per_block; ++i) {
      const std::size_t at = i * kDirEntrySize;
      const DirEntry entry =
          DecodeDirEntry(ByteSpan(data).subspan(at, kDirEntrySize));
      if (entry.inode != kNoInode && entry.name == name) {
        std::fill(data.begin() + static_cast<std::ptrdiff_t>(at),
                  data.begin() + static_cast<std::ptrdiff_t>(at) +
                      kDirEntrySize,
                  std::byte{0});
        ARU_RETURN_IF_ERROR(WriteBlockCached(block, data, aru));
        meta.mtime = ++mtime_counter_;
        return PutInode(dir, meta, aru);
      }
    }
  }
  return NotFoundError("no such entry: " + std::string(name));
}

// ---------------------------------------------------------------------
// Path resolution.

Result<MinixFs::Resolved> MinixFs::Resolve(std::string_view path,
                                           AruId aru) {
  if (path.empty() || path.front() != '/') {
    return InvalidArgumentError("path must be absolute: " +
                                std::string(path));
  }
  Resolved out;
  InodeNum current = sb_.root;
  std::string_view rest = path.substr(1);
  while (!rest.empty() && rest.back() == '/') rest.remove_suffix(1);
  if (rest.empty()) {  // the root itself
    out.parent = kNoInode;
    out.inode = sb_.root;
    return out;
  }
  for (;;) {
    const std::size_t slash = rest.find('/');
    const std::string_view component =
        slash == std::string_view::npos ? rest : rest.substr(0, slash);
    ARU_RETURN_IF_ERROR(ValidateName(component));
    if (slash == std::string_view::npos) {
      out.parent = current;
      out.name = std::string(component);
      auto leaf = LookupIn(current, component, aru);
      out.inode = leaf.ok() ? *leaf : kNoInode;
      if (!leaf.ok() && leaf.status().code() != StatusCode::kNotFound) {
        return leaf.status();
      }
      return out;
    }
    ARU_ASSIGN_OR_RETURN(current, LookupIn(current, component, aru));
    rest = rest.substr(slash + 1);
  }
}

// ---------------------------------------------------------------------
// ARU bracketing.

Result<AruId> MinixFs::BeginOp() {
  if (!policy_.use_arus) return kNoAru;
  return disk_.BeginARU();
}

Status MinixFs::CommitOp(AruId aru) {
  if (!aru.valid()) return Status::Ok();
  return disk_.EndARU(aru);
}

Status MinixFs::FailOp(AruId aru, Status error) {
  if (aru.valid()) {
    const Status aborted = disk_.AbortARU(aru);
    if (!aborted.ok()) {
      // The sequential-ARU prototype cannot unroll; close the stream so
      // the disk stays usable (partial meta-data may persist — exactly
      // the weakness ARUs remove in the concurrent prototype).
      (void)disk_.EndARU(aru);
    }
    InvalidateCaches();
  }
  return error;
}

// ---------------------------------------------------------------------
// Namespace operations.

Result<InodeNum> MinixFs::Create(std::string_view path) {
  ARU_ASSIGN_OR_RETURN(const AruId aru, BeginOp());
  Resolved resolved;
  {
    auto r = Resolve(path, aru);
    if (!r.ok()) return FailOp(aru, r.status());
    resolved = std::move(r).value();
  }
  if (resolved.inode != kNoInode) {
    return FailOp(aru, AlreadyExistsError(std::string(path)));
  }

  auto list = disk_.NewList(aru);
  if (!list.ok()) return FailOp(aru, list.status());
  Inode meta;
  meta.type = InodeType::kFile;
  meta.links = 1;
  meta.data_list = *list;
  meta.mtime = ++mtime_counter_;

  auto inode = AllocInode(meta, aru);
  if (!inode.ok()) return FailOp(aru, inode.status());
  if (Status s = AddEntry(resolved.parent, resolved.name, *inode, aru);
      !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  if (Status s = CommitOp(aru); !s.ok()) return FailOp(kNoAru, std::move(s));
  return *inode;
}

Result<InodeNum> MinixFs::Mkdir(std::string_view path) {
  ARU_ASSIGN_OR_RETURN(const AruId aru, BeginOp());
  Resolved resolved;
  {
    auto r = Resolve(path, aru);
    if (!r.ok()) return FailOp(aru, r.status());
    resolved = std::move(r).value();
  }
  if (resolved.inode != kNoInode) {
    return FailOp(aru, AlreadyExistsError(std::string(path)));
  }

  auto list = disk_.NewList(aru);
  if (!list.ok()) return FailOp(aru, list.status());
  Inode meta;
  meta.type = InodeType::kDirectory;
  meta.links = 1;
  meta.data_list = *list;
  meta.mtime = ++mtime_counter_;

  auto inode = AllocInode(meta, aru);
  if (!inode.ok()) return FailOp(aru, inode.status());
  if (Status s = AddEntry(resolved.parent, resolved.name, *inode, aru);
      !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  if (Status s = CommitOp(aru); !s.ok()) return FailOp(kNoAru, std::move(s));
  return *inode;
}

Status MinixFs::FreeFileStorage(const Inode& meta, AruId aru) {
  if (policy_.improved_delete) {
    // §5.3 "new, delete": delete the list wholesale; LD walks it from
    // the head, freeing blocks without predecessor searches.
    return disk_.DeleteList(meta.data_list, aru);
  }
  // Classic Minix truncate order: free data blocks from the end of the
  // file backwards — each DeleteBlock makes LD search the list for the
  // block's predecessor — then delete the emptied list.
  ARU_ASSIGN_OR_RETURN(const auto blocks,
                       disk_.ListBlocks(meta.data_list, aru));
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    ARU_RETURN_IF_ERROR(disk_.DeleteBlock(*it, aru));
  }
  return disk_.DeleteList(meta.data_list, aru);
}

Status MinixFs::Unlink(std::string_view path) {
  ARU_ASSIGN_OR_RETURN(const AruId aru, BeginOp());
  Resolved resolved;
  {
    auto r = Resolve(path, aru);
    if (!r.ok()) return FailOp(aru, r.status());
    resolved = std::move(r).value();
  }
  if (resolved.inode == kNoInode) {
    return FailOp(aru, NotFoundError(std::string(path)));
  }
  Inode meta;
  {
    auto m = GetInode(resolved.inode, aru);
    if (!m.ok()) return FailOp(aru, m.status());
    meta = *m;
  }
  if (meta.type != InodeType::kFile) {
    return FailOp(aru, FailedPreconditionError("not a file: " +
                                               std::string(path)));
  }

  if (Status s = RemoveEntry(resolved.parent, resolved.name, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  if (meta.links > 1) {
    // Other hard links remain: only the entry and the count go.
    --meta.links;
    meta.mtime = ++mtime_counter_;
    if (Status s = PutInode(resolved.inode, meta, aru); !s.ok()) {
      return FailOp(aru, std::move(s));
    }
    return CommitOp(aru);
  }
  if (Status s = FreeFileStorage(meta, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  if (Status s = PutInode(resolved.inode, Inode{}, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  if (resolved.inode < alloc_hint_) alloc_hint_ = resolved.inode;
  return CommitOp(aru);
}

Status MinixFs::Link(std::string_view existing, std::string_view link_path) {
  ARU_ASSIGN_OR_RETURN(const AruId aru, BeginOp());
  Resolved src;
  {
    auto r = Resolve(existing, aru);
    if (!r.ok()) return FailOp(aru, r.status());
    src = std::move(r).value();
  }
  if (src.inode == kNoInode) {
    return FailOp(aru, NotFoundError(std::string(existing)));
  }
  Inode meta;
  {
    auto m = GetInode(src.inode, aru);
    if (!m.ok()) return FailOp(aru, m.status());
    meta = *m;
  }
  if (meta.type != InodeType::kFile) {
    return FailOp(aru, FailedPreconditionError(
                           "hard links to directories are not allowed"));
  }
  Resolved dst;
  {
    auto r = Resolve(link_path, aru);
    if (!r.ok()) return FailOp(aru, r.status());
    dst = std::move(r).value();
  }
  if (dst.inode != kNoInode) {
    return FailOp(aru, AlreadyExistsError(std::string(link_path)));
  }
  if (Status s = AddEntry(dst.parent, dst.name, src.inode, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  ++meta.links;
  meta.mtime = ++mtime_counter_;
  if (Status s = PutInode(src.inode, meta, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  return CommitOp(aru);
}

Status MinixFs::Rmdir(std::string_view path) {
  ARU_ASSIGN_OR_RETURN(const AruId aru, BeginOp());
  Resolved resolved;
  {
    auto r = Resolve(path, aru);
    if (!r.ok()) return FailOp(aru, r.status());
    resolved = std::move(r).value();
  }
  if (resolved.inode == kNoInode) {
    return FailOp(aru, NotFoundError(std::string(path)));
  }
  if (resolved.parent == kNoInode) {
    return FailOp(aru, FailedPreconditionError("cannot remove the root"));
  }
  Inode meta;
  {
    auto m = GetInode(resolved.inode, aru);
    if (!m.ok()) return FailOp(aru, m.status());
    meta = *m;
  }
  if (meta.type != InodeType::kDirectory) {
    return FailOp(aru, NotADirectory(path));
  }
  // Must be empty.
  {
    auto blocks = disk_.ListBlocks(meta.data_list, aru);
    if (!blocks.ok()) return FailOp(aru, blocks.status());
    const std::size_t per_block = disk_.block_size() / kDirEntrySize;
    for (const BlockId block : *blocks) {
      auto data = ReadBlockCached(block, aru);
      if (!data.ok()) return FailOp(aru, data.status());
      for (std::size_t i = 0; i < per_block; ++i) {
        if (DecodeDirEntry(ByteSpan(*data).subspan(i * kDirEntrySize,
                                                   kDirEntrySize))
                .inode != kNoInode) {
          return FailOp(aru, FailedPreconditionError("directory not empty"));
        }
      }
    }
  }

  if (Status s = RemoveEntry(resolved.parent, resolved.name, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  if (Status s = disk_.DeleteList(meta.data_list, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  if (Status s = PutInode(resolved.inode, Inode{}, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  if (resolved.inode < alloc_hint_) alloc_hint_ = resolved.inode;
  return CommitOp(aru);
}

Status MinixFs::Rename(std::string_view from, std::string_view to) {
  // Moving a directory under itself would disconnect it from the root
  // (the classic rename cycle). Paths are the only way to name nodes,
  // so a string prefix check suffices.
  if (to.size() > from.size() && to.substr(0, from.size()) == from &&
      to[from.size()] == '/') {
    return FailedPreconditionError(
        "cannot move a directory into its own subtree");
  }
  ARU_ASSIGN_OR_RETURN(const AruId aru, BeginOp());
  Resolved src;
  {
    auto r = Resolve(from, aru);
    if (!r.ok()) return FailOp(aru, r.status());
    src = std::move(r).value();
  }
  if (src.inode == kNoInode) {
    return FailOp(aru, NotFoundError(std::string(from)));
  }
  Resolved dst;
  {
    auto r = Resolve(to, aru);
    if (!r.ok()) return FailOp(aru, r.status());
    dst = std::move(r).value();
  }
  if (dst.inode != kNoInode) {
    return FailOp(aru, AlreadyExistsError(std::string(to)));
  }
  if (Status s = AddEntry(dst.parent, dst.name, src.inode, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  if (Status s = RemoveEntry(src.parent, src.name, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  return CommitOp(aru);
}

Status MinixFs::Truncate(std::string_view path, std::uint64_t size) {
  ARU_ASSIGN_OR_RETURN(const AruId aru, BeginOp());
  Resolved resolved;
  {
    auto r = Resolve(path, aru);
    if (!r.ok()) return FailOp(aru, r.status());
    resolved = std::move(r).value();
  }
  if (resolved.inode == kNoInode) {
    return FailOp(aru, NotFoundError(std::string(path)));
  }
  Inode meta;
  {
    auto m = GetInode(resolved.inode, aru);
    if (!m.ok()) return FailOp(aru, m.status());
    meta = *m;
  }
  if (meta.type != InodeType::kFile) {
    return FailOp(aru, FailedPreconditionError("not a file: " +
                                               std::string(path)));
  }

  if (size < meta.size) {
    const std::uint32_t bs = disk_.block_size();
    const std::uint64_t keep = (size + bs - 1) / bs;
    auto blocks = disk_.ListBlocks(meta.data_list, aru);
    if (!blocks.ok()) return FailOp(aru, blocks.status());
    // Free from the end backwards — Minix truncate order.
    for (std::size_t i = blocks->size(); i > keep; --i) {
      if (Status s = disk_.DeleteBlock((*blocks)[i - 1], aru); !s.ok()) {
        return FailOp(aru, std::move(s));
      }
    }
    // Zero the now-trailing bytes of the last kept block so a later
    // extension reads zeroes, not stale data.
    if (keep > 0 && size % bs != 0) {
      Bytes data(bs);
      if (Status s = disk_.Read((*blocks)[keep - 1], data, aru); !s.ok()) {
        return FailOp(aru, std::move(s));
      }
      std::fill(data.begin() + static_cast<std::ptrdiff_t>(size % bs),
                data.end(), std::byte{0});
      if (Status s = disk_.Write((*blocks)[keep - 1], data, aru); !s.ok()) {
        return FailOp(aru, std::move(s));
      }
    }
  }
  meta.size = size;
  meta.mtime = ++mtime_counter_;
  if (Status s = PutInode(resolved.inode, meta, aru); !s.ok()) {
    return FailOp(aru, std::move(s));
  }
  return CommitOp(aru);
}

Result<std::vector<DirEntry>> MinixFs::ReadDir(std::string_view path) {
  ARU_ASSIGN_OR_RETURN(const Resolved resolved, Resolve(path, kNoAru));
  if (resolved.inode == kNoInode) return NotFoundError(std::string(path));
  ARU_ASSIGN_OR_RETURN(const Inode meta, GetInode(resolved.inode, kNoAru));
  if (meta.type != InodeType::kDirectory) return NotADirectory(path);
  ARU_ASSIGN_OR_RETURN(const auto blocks,
                       disk_.ListBlocks(meta.data_list, kNoAru));
  std::vector<DirEntry> entries;
  const std::size_t per_block = disk_.block_size() / kDirEntrySize;
  for (const BlockId block : blocks) {
    ARU_ASSIGN_OR_RETURN(const Bytes data, ReadBlockCached(block, kNoAru));
    for (std::size_t i = 0; i < per_block; ++i) {
      DirEntry entry = DecodeDirEntry(
          ByteSpan(data).subspan(i * kDirEntrySize, kDirEntrySize));
      if (entry.inode != kNoInode) entries.push_back(std::move(entry));
    }
  }
  return entries;
}

Result<FileStat> MinixFs::Stat(std::string_view path) {
  ARU_ASSIGN_OR_RETURN(const Resolved resolved, Resolve(path, kNoAru));
  if (resolved.inode == kNoInode) return NotFoundError(std::string(path));
  ARU_ASSIGN_OR_RETURN(const Inode meta, GetInode(resolved.inode, kNoAru));
  FileStat stat;
  stat.type = meta.type;
  stat.size = meta.size;
  stat.inode = resolved.inode;
  stat.links = meta.links;
  return stat;
}

bool MinixFs::Exists(std::string_view path) {
  auto resolved = Resolve(path, kNoAru);
  return resolved.ok() && resolved->inode != kNoInode;
}

// ---------------------------------------------------------------------
// File I/O.

Result<OpenFile> MinixFs::Open(std::string_view path) {
  ARU_ASSIGN_OR_RETURN(const Resolved resolved, Resolve(path, kNoAru));
  if (resolved.inode == kNoInode) return NotFoundError(std::string(path));
  return OpenInode(resolved.inode);
}

Result<OpenFile> MinixFs::OpenInode(InodeNum inode) {
  ARU_ASSIGN_OR_RETURN(const Inode meta, GetInode(inode, kNoAru));
  if (meta.type != InodeType::kFile) {
    return FailedPreconditionError("i-node " + std::to_string(inode) +
                                   " is not a file");
  }
  OpenFile file;
  file.inode_ = inode;
  file.meta_ = meta;
  ARU_ASSIGN_OR_RETURN(file.blocks_, disk_.ListBlocks(meta.data_list));
  return file;
}

Status MinixFs::WriteAt(OpenFile& file, std::uint64_t offset, ByteSpan data) {
  const std::uint32_t bs = disk_.block_size();
  std::uint64_t pos = offset;
  std::size_t done = 0;

  while (done < data.size()) {
    const std::uint64_t block_index = pos / bs;
    const std::uint32_t in_block = static_cast<std::uint32_t>(pos % bs);
    const std::size_t chunk =
        std::min<std::size_t>(bs - in_block, data.size() - done);

    // Extend the file with fresh blocks up to the target block.
    while (file.blocks_.size() <= block_index) {
      const BlockId pred =
          file.blocks_.empty() ? kListHead : file.blocks_.back();
      ARU_ASSIGN_OR_RETURN(const BlockId grown,
                           disk_.NewBlock(file.meta_.data_list, pred));
      file.blocks_.push_back(grown);
    }

    const BlockId block = file.blocks_[block_index];
    if (chunk == bs) {
      ARU_RETURN_IF_ERROR(disk_.Write(block, data.subspan(done, chunk)));
    } else {
      Bytes buffer(bs);
      ARU_RETURN_IF_ERROR(disk_.Read(block, buffer));
      std::memcpy(buffer.data() + in_block, data.data() + done, chunk);
      ARU_RETURN_IF_ERROR(disk_.Write(block, buffer));
    }
    pos += chunk;
    done += chunk;
  }

  if (pos > file.meta_.size) file.meta_.size = pos;
  file.meta_.mtime = ++mtime_counter_;
  file.dirty_ = true;
  return Status::Ok();
}

Status MinixFs::ReadAt(OpenFile& file, std::uint64_t offset,
                       MutableByteSpan out) {
  const std::uint32_t bs = disk_.block_size();
  if (offset + out.size() > file.meta_.size) {
    return InvalidArgumentError("read beyond end of file");
  }
  std::uint64_t pos = offset;
  std::size_t done = 0;
  Bytes buffer(bs);
  while (done < out.size()) {
    const std::uint64_t block_index = pos / bs;
    const std::uint32_t in_block = static_cast<std::uint32_t>(pos % bs);
    std::size_t chunk = std::min<std::size_t>(bs - in_block,
                                              out.size() - done);
    if (block_index >= file.blocks_.size()) {
      // Tail hole (a Truncate extension): no blocks back this range.
      const std::size_t rest = out.size() - done;
      std::fill(out.begin() + static_cast<std::ptrdiff_t>(done), out.end(),
                std::byte{0});
      done += rest;
      break;
    }
    const std::size_t whole_blocks_left =
        (std::min<std::size_t>(out.size() - done,
                               (file.blocks_.size() - block_index) * bs)) /
        bs;
    if (in_block == 0 && whole_blocks_left >= 2) {
      // A run of whole blocks: use LD's multi-block read, which
      // coalesces physically adjacent blocks into single device I/Os.
      const std::span<const BlockId> blocks(
          file.blocks_.data() + block_index, whole_blocks_left);
      ARU_RETURN_IF_ERROR(disk_.ReadMany(
          blocks, out.subspan(done, whole_blocks_left * bs)));
      chunk = whole_blocks_left * bs;
    } else if (chunk == bs) {
      ARU_RETURN_IF_ERROR(disk_.Read(file.blocks_[block_index],
                                     out.subspan(done, chunk)));
    } else {
      ARU_RETURN_IF_ERROR(disk_.Read(file.blocks_[block_index], buffer));
      std::memcpy(out.data() + done, buffer.data() + in_block, chunk);
    }
    pos += chunk;
    done += chunk;
  }
  return Status::Ok();
}

Status MinixFs::Close(OpenFile& file) {
  if (!file.dirty_) return Status::Ok();
  ARU_RETURN_IF_ERROR(PutInode(file.inode_, file.meta_, kNoAru));
  file.dirty_ = false;
  return Status::Ok();
}

Status MinixFs::WriteFile(std::string_view path, ByteSpan data) {
  if (!Exists(path)) {
    ARU_RETURN_IF_ERROR(Create(path).status());
  }
  ARU_ASSIGN_OR_RETURN(OpenFile file, Open(path));
  ARU_RETURN_IF_ERROR(WriteAt(file, 0, data));
  return Close(file);
}

Result<Bytes> MinixFs::ReadFile(std::string_view path) {
  ARU_ASSIGN_OR_RETURN(OpenFile file, Open(path));
  Bytes data(file.size());
  if (!data.empty()) {
    ARU_RETURN_IF_ERROR(ReadAt(file, 0, data));
  }
  return data;
}

Status MinixFs::Sync() { return disk_.Flush(); }

}  // namespace aru::minixfs
