#include "minixfs/check.h"

#include <map>
#include <set>

namespace aru::minixfs {
namespace {

using ld::BlockId;
using ld::ListId;

constexpr ListId kSuperList{1};

struct Checker {
  explicit Checker(ld::Disk& fs_disk) : disk(fs_disk) {}

  ld::Disk& disk;
  CheckReport report;
  SuperBlock sb;
  std::vector<BlockId> inode_blocks;
  std::map<InodeNum, Inode> in_use;
  std::map<InodeNum, std::uint64_t> reference_counts;

  void Problem(std::string description) {
    report.problems.push_back(std::move(description));
  }

  Status LoadInodeTable() {
    ARU_ASSIGN_OR_RETURN(const auto super_blocks,
                         disk.ListBlocks(kSuperList));
    if (super_blocks.empty()) {
      return CorruptionError("superblock list is empty");
    }
    Bytes block(disk.block_size());
    ARU_RETURN_IF_ERROR(disk.Read(super_blocks.front(), block));
    ARU_ASSIGN_OR_RETURN(sb, DecodeSuperBlock(block));
    ARU_ASSIGN_OR_RETURN(inode_blocks, disk.ListBlocks(sb.inode_list));

    const std::size_t per_block = disk.block_size() / kInodeSize;
    InodeNum number = 0;
    for (const BlockId inode_block : inode_blocks) {
      ARU_RETURN_IF_ERROR(disk.Read(inode_block, block));
      for (std::size_t i = 0; i < per_block; ++i, ++number) {
        const Inode inode = DecodeInode(
            ByteSpan(block).subspan(i * kInodeSize, kInodeSize));
        if (inode.type == InodeType::kFree) continue;
        if (inode.type != InodeType::kFile &&
            inode.type != InodeType::kDirectory) {
          Problem("i-node " + std::to_string(number) +
                  " has invalid type " +
                  std::to_string(static_cast<int>(inode.type)));
          continue;
        }
        in_use[number] = inode;
        ++report.inodes_in_use;
        if (inode.type == InodeType::kDirectory) {
          ++report.directories;
        } else {
          ++report.files;
        }
      }
    }
    return Status::Ok();
  }

  Status CheckDataList(InodeNum number, const Inode& inode) {
    auto blocks = disk.ListBlocks(inode.data_list);
    if (!blocks.ok()) {
      Problem("i-node " + std::to_string(number) + " references list " +
              std::to_string(inode.data_list.value()) + ": " +
              blocks.status().ToString());
      return Status::Ok();
    }
    report.data_blocks += blocks->size();
    const std::uint64_t needed =
        (inode.size + disk.block_size() - 1) / disk.block_size();
    if (blocks->size() < needed) {
      Problem("i-node " + std::to_string(number) + " records size " +
              std::to_string(inode.size) + " but its list holds only " +
              std::to_string(blocks->size()) + " blocks");
    }
    return Status::Ok();
  }

  Status WalkDirectory(InodeNum dir, std::set<InodeNum>& visiting) {
    if (!visiting.insert(dir).second) {
      Problem("directory cycle through i-node " + std::to_string(dir));
      return Status::Ok();
    }
    const Inode& meta = in_use.at(dir);
    ARU_ASSIGN_OR_RETURN(const auto blocks, disk.ListBlocks(meta.data_list));
    Bytes data(disk.block_size());
    const std::size_t per_block = disk.block_size() / kDirEntrySize;
    for (const BlockId block : blocks) {
      ARU_RETURN_IF_ERROR(disk.Read(block, data));
      for (std::size_t i = 0; i < per_block; ++i) {
        const DirEntry entry = DecodeDirEntry(
            ByteSpan(data).subspan(i * kDirEntrySize, kDirEntrySize));
        if (entry.inode == kNoInode) continue;
        const auto target = in_use.find(entry.inode);
        if (target == in_use.end()) {
          Problem("dangling entry \"" + entry.name + "\" in directory " +
                  std::to_string(dir) + " -> free i-node " +
                  std::to_string(entry.inode));
          continue;
        }
        ++reference_counts[entry.inode];
        if (target->second.type == InodeType::kDirectory) {
          ARU_RETURN_IF_ERROR(WalkDirectory(entry.inode, visiting));
        }
      }
    }
    return Status::Ok();
  }

  Status Run() {
    ARU_RETURN_IF_ERROR(LoadInodeTable());
    if (!in_use.contains(sb.root)) {
      Problem("root i-node " + std::to_string(sb.root) + " is not in use");
      return Status::Ok();
    }
    for (const auto& [number, inode] : in_use) {
      ARU_RETURN_IF_ERROR(CheckDataList(number, inode));
    }
    std::set<InodeNum> visiting;
    reference_counts[sb.root] = 1;  // the root is its own reference
    ARU_RETURN_IF_ERROR(WalkDirectory(sb.root, visiting));

    for (const auto& [number, inode] : in_use) {
      const auto it = reference_counts.find(number);
      const std::uint64_t refs =
          it == reference_counts.end() ? 0 : it->second;
      if (refs == 0) {
        Problem("orphaned i-node " + std::to_string(number) +
                " (in use but unreachable from the root)");
      } else if (refs != inode.links) {
        Problem("i-node " + std::to_string(number) + " has " +
                std::to_string(refs) + " references but records links=" +
                std::to_string(inode.links));
      }
    }
    return Status::Ok();
  }
};

}  // namespace

Result<CheckReport> CheckFileSystem(ld::Disk& disk) {
  Checker checker(disk);
  ARU_RETURN_IF_ERROR(checker.Run());
  return checker.report;
}

}  // namespace aru::minixfs
