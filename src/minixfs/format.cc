#include "minixfs/format.h"

#include <algorithm>
#include <cstring>

#include "util/crc32.h"

namespace aru::minixfs {

void EncodeInode(const Inode& inode, MutableByteSpan slot64) {
  Bytes buf;
  buf.reserve(kInodeSize);
  PutU16(buf, static_cast<std::uint16_t>(inode.type));
  PutU16(buf, inode.links);
  PutU32(buf, 0);  // pad
  PutU64(buf, inode.size);
  PutU64(buf, inode.data_list.value());
  PutU64(buf, inode.mtime);
  buf.resize(kInodeSize);
  std::copy(buf.begin(), buf.end(), slot64.begin());
}

Inode DecodeInode(ByteSpan slot64) {
  Inode inode;
  inode.type = static_cast<InodeType>(GetU16(slot64));
  inode.links = GetU16(slot64.subspan(2));
  inode.size = GetU64(slot64.subspan(8));
  inode.data_list = ld::ListId{GetU64(slot64.subspan(16))};
  inode.mtime = GetU64(slot64.subspan(24));
  return inode;
}

void EncodeDirEntry(const DirEntry& entry, MutableByteSpan slot64) {
  Bytes buf;
  buf.reserve(kDirEntrySize);
  PutU64(buf, entry.inode == kNoInode
                  ? 0
                  : static_cast<std::uint64_t>(entry.inode) + 1);
  buf.resize(kDirEntrySize);
  std::copy(buf.begin(), buf.end(), slot64.begin());
  const std::size_t n = std::min(entry.name.size(), kMaxNameLen);
  std::memcpy(slot64.data() + 8, entry.name.data(), n);
}

DirEntry DecodeDirEntry(ByteSpan slot64) {
  DirEntry entry;
  const std::uint64_t raw = GetU64(slot64);
  if (raw == 0) {
    entry.inode = kNoInode;
    return entry;
  }
  entry.inode = static_cast<InodeNum>(raw - 1);
  const char* name = reinterpret_cast<const char*>(slot64.data() + 8);
  entry.name.assign(name, strnlen(name, kMaxNameLen));
  return entry;
}

Bytes EncodeSuperBlock(const SuperBlock& sb, std::uint32_t block_size) {
  Bytes out;
  PutU32(out, kSuperMagic);
  PutU16(out, kFsVersion);
  PutU16(out, 0);
  PutU64(out, sb.inode_list.value());
  PutU32(out, sb.root);
  PutU32(out, Crc32c(out));
  out.resize(block_size);
  return out;
}

Result<SuperBlock> DecodeSuperBlock(ByteSpan block) {
  Decoder dec(block);
  ARU_ASSIGN_OR_RETURN(const std::uint32_t magic, dec.ReadU32());
  if (magic != kSuperMagic) {
    return CorruptionError("not a MinixFS superblock");
  }
  ARU_ASSIGN_OR_RETURN(const std::uint16_t version, dec.ReadU16());
  if (version != kFsVersion) {
    return CorruptionError("unsupported MinixFS version");
  }
  ARU_ASSIGN_OR_RETURN(std::uint16_t pad, dec.ReadU16());
  (void)pad;
  SuperBlock sb;
  ARU_ASSIGN_OR_RETURN(const std::uint64_t inode_list, dec.ReadU64());
  sb.inode_list = ld::ListId{inode_list};
  ARU_ASSIGN_OR_RETURN(sb.root, dec.ReadU32());
  ARU_ASSIGN_OR_RETURN(const std::uint32_t crc, dec.ReadU32());
  if (crc != Crc32c(block.first(dec.position() - 4))) {
    return CorruptionError("MinixFS superblock CRC mismatch");
  }
  return sb;
}

Status ValidateName(std::string_view name) {
  if (name.empty()) return InvalidArgumentError("empty path component");
  if (name.size() > kMaxNameLen) {
    return InvalidArgumentError("name too long: " + std::string(name));
  }
  if (name.find('/') != std::string_view::npos) {
    return InvalidArgumentError("name contains '/'");
  }
  if (name == "." || name == "..") {
    return InvalidArgumentError("reserved name: " + std::string(name));
  }
  return Status::Ok();
}

}  // namespace aru::minixfs
