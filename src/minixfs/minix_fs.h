// MinixFS: a Minix-like file system running as a client of the Logical
// Disk — the paper's "MinixLLD" configuration.
//
// All disk management lives below the LD interface; the file system
// only organizes files. Per the paper's §5.1:
//  * every file and directory keeps its data on its own LD block list;
//  * directory and file creation as well as file deletion execute
//    inside their own ARU (when Policy::use_arus is set), bracketing
//    the i-node update and the directory-data update so that after a
//    failure all or none of the meta-data is persistent — no fsck;
//  * Policy::improved_delete switches file deletion from the classic
//    Minix truncate order (free data blocks last-to-first, each
//    requiring an LD predecessor search, then delete the emptied list)
//    to the improved policy of §5.3 (delete the list wholesale; LD
//    frees blocks from the head without predecessor searches).
//
// The file system is single-threaded, like the paper's Minix. A small
// write-through block cache stands in for the Minix buffer cache; all
// ARUs the file system opens are committed (or aborted) before the
// operation returns, so the cache always holds the file system's own
// coherent view.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ld/disk.h"
#include "minixfs/format.h"

namespace aru::minixfs {

struct Policy {
  // Bracket create/mkdir/unlink/rmdir in BeginARU/EndARU.
  bool use_arus = true;
  // Delete files by deleting the whole list (§5.3 "new, delete").
  bool improved_delete = false;
  // Block-cache capacity for meta-data blocks (i-nodes, directories).
  std::size_t cache_blocks = 512;
};

struct FileStat {
  InodeType type = InodeType::kFree;
  std::uint64_t size = 0;
  InodeNum inode = kNoInode;
  std::uint16_t links = 0;
};

// An open file: caches the i-node and the data-block vector so that
// sequential and random I/O need not re-walk the LD list per call.
// Handles are invalidated by Unlink/Rename of the same file.
class OpenFile {
 public:
  InodeNum inode() const { return inode_; }
  std::uint64_t size() const { return meta_.size; }

 private:
  friend class MinixFs;
  InodeNum inode_ = kNoInode;
  Inode meta_;
  std::vector<ld::BlockId> blocks_;
  bool dirty_ = false;
};

class MinixFs {
 public:
  // Builds an empty file system. The LD disk must be freshly formatted
  // (MinixFS claims the first list the disk hands out for its
  // superblock).
  static Status Mkfs(ld::Disk& disk);

  static Result<std::unique_ptr<MinixFs>> Mount(ld::Disk& disk,
                                                Policy policy = {});

  // ------------------------------------------------------------------
  // Namespace operations (failure-atomic when policy.use_arus).

  Result<InodeNum> Create(std::string_view path);
  Result<InodeNum> Mkdir(std::string_view path);
  Status Unlink(std::string_view path);
  Status Rmdir(std::string_view path);
  // Moves/renames a file or empty-target rename; one ARU.
  Status Rename(std::string_view from, std::string_view to);
  // Creates a second directory entry for an existing file (hard link);
  // one ARU covering the new entry and the link-count update. Unlink
  // frees the file's storage only when the last link goes.
  Status Link(std::string_view existing, std::string_view link_path);

  // Shrinks (or extends with a hole) a file to `size` bytes; one ARU
  // covering the i-node update and every block de-allocation. Freed
  // blocks go tail-first (the classic Minix truncate order — each one
  // costs LD a predecessor search) or, when the whole file goes and
  // policy.improved_delete is set, via wholesale list deletion.
  Status Truncate(std::string_view path, std::uint64_t size);

  Result<std::vector<DirEntry>> ReadDir(std::string_view path);
  Result<FileStat> Stat(std::string_view path);
  bool Exists(std::string_view path);

  // ------------------------------------------------------------------
  // File I/O (simple LD operations, like Minix data writes).

  Result<OpenFile> Open(std::string_view path);
  // Opens directly by i-node number (as a fd-based client would after
  // Create), skipping path resolution.
  Result<OpenFile> OpenInode(InodeNum inode);
  // Writes may extend the file; holes read as zeroes.
  Status WriteAt(OpenFile& file, std::uint64_t offset, ByteSpan data);
  Status ReadAt(OpenFile& file, std::uint64_t offset, MutableByteSpan out);
  // Writes back a dirty i-node (size/mtime). Also called by Sync paths.
  Status Close(OpenFile& file);

  // Convenience: whole-file write (create if missing) and read.
  Status WriteFile(std::string_view path, ByteSpan data);
  Result<Bytes> ReadFile(std::string_view path);

  // Flushes all committed state to persistent storage.
  Status Sync();

  std::uint32_t block_size() const { return disk_.block_size(); }
  const Policy& policy() const { return policy_; }

 private:
  MinixFs(ld::Disk& disk, Policy policy) : disk_(disk), policy_(policy) {}

  // --- block cache (write-through) ---
  Result<Bytes> ReadBlockCached(ld::BlockId block, ld::AruId aru);
  Status WriteBlockCached(ld::BlockId block, const Bytes& data,
                          ld::AruId aru);
  void CacheEvictIfNeeded();
  void CacheDrop(ld::BlockId block);
  void InvalidateCaches();

  // --- i-nodes ---
  Result<Inode> GetInode(InodeNum inode, ld::AruId aru);
  Status PutInode(InodeNum inode, const Inode& meta, ld::AruId aru);
  Result<InodeNum> AllocInode(const Inode& meta, ld::AruId aru);

  // --- directories ---
  Result<InodeNum> LookupIn(InodeNum dir, std::string_view name,
                            ld::AruId aru);
  Status AddEntry(InodeNum dir, std::string_view name, InodeNum target,
                  ld::AruId aru);
  Status RemoveEntry(InodeNum dir, std::string_view name, ld::AruId aru);

  struct Resolved {
    InodeNum parent = kNoInode;
    std::string name;        // final component
    InodeNum inode = kNoInode;  // kNoInode if the leaf does not exist
  };
  Result<Resolved> Resolve(std::string_view path, ld::AruId aru);

  // --- ARU bracketing ---
  Result<ld::AruId> BeginOp();
  Status CommitOp(ld::AruId aru);
  // Unwinds a failed bracketed operation and returns `error`.
  Status FailOp(ld::AruId aru, Status error);

  // Frees an i-node and its data blocks per the deletion policy.
  Status FreeFileStorage(const Inode& meta, ld::AruId aru);

  ld::Disk& disk_;
  Policy policy_;
  SuperBlock sb_;
  std::vector<ld::BlockId> inode_blocks_;  // i-node table, in order
  std::uint64_t mtime_counter_ = 0;
  InodeNum alloc_hint_ = 0;

  // LRU write-through cache of meta-data blocks.
  using CacheList = std::list<std::pair<ld::BlockId, Bytes>>;
  CacheList cache_lru_;
  std::unordered_map<ld::BlockId, CacheList::iterator> cache_map_;
};

}  // namespace aru::minixfs
