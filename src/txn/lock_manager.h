// Lock manager for the transaction layer: strict two-phase locking on
// logical-disk resources (blocks and lists), with wait-die deadlock
// avoidance.
//
// ARUs deliberately provide no concurrency control (paper §3: "clients
// need to define and implement their own locking mechanisms"); this is
// that client-side mechanism, built the way a database on top of LD
// would build it.
//
// Wait-die: lock requests carry the requesting transaction's birth
// order. A request that conflicts with locks held by *older*
// transactions dies immediately (kFailedPrecondition, "wait-die");
// a request conflicting only with younger holders waits. Older
// transactions therefore never wait on younger ones and no cycle can
// form.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "ld/ids.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace aru::txn {

using TxnId = std::uint64_t;

enum class LockMode : std::uint8_t { kShared, kExclusive };

// A lockable resource: a block, a list, or a whole-disk namespace lock
// (used for id allocation fairness; kind 2).
struct ResourceId {
  std::uint8_t kind = 0;  // 0 = block, 1 = list, 2 = namespace
  std::uint64_t id = 0;

  static ResourceId Block(ld::BlockId block) { return {0, block.value()}; }
  static ResourceId List(ld::ListId list) { return {1, list.value()}; }
  static ResourceId Namespace() { return {2, 0}; }

  friend auto operator<=>(const ResourceId&, const ResourceId&) = default;
};

class LockManager {
 public:
  // Acquires (or upgrades to) `mode` on `resource` for `txn`.
  // Returns kFailedPrecondition when wait-die kills the request; the
  // caller is expected to abort and retry the whole transaction.
  Status Acquire(TxnId txn, ResourceId resource, LockMode mode)
      ARU_EXCLUDES(mu_);

  // Releases every lock `txn` holds (commit or abort time — strict 2PL
  // releases nothing earlier).
  void ReleaseAll(TxnId txn) ARU_EXCLUDES(mu_);

  // Introspection for tests.
  std::size_t LockedResources() const ARU_EXCLUDES(mu_);

 private:
  struct ResourceState {
    std::map<TxnId, LockMode> holders;
    std::uint64_t waiters = 0;
  };

  // True if `txn` may take `mode` alongside the current holders.
  static bool Compatible(const ResourceState& state, TxnId txn,
                         LockMode mode);
  // True if every conflicting holder is younger than `txn` (wait is
  // allowed under wait-die).
  static bool MayWait(const ResourceState& state, TxnId txn, LockMode mode);

  mutable Mutex mu_{"txn_lock_manager"};
  CondVar released_;
  std::map<ResourceId, ResourceState> resources_ ARU_GUARDED_BY(mu_);
};

}  // namespace aru::txn
