// Transactions on top of atomic recovery units.
//
// The paper positions ARUs as the disk-level mechanism on which
// transaction systems can be built directly ("failure atomicity over
// several disk operations is necessary to efficiently support
// transaction-based systems as direct disk system clients", §3) while
// explicitly leaving isolation and durability to the client. This layer
// supplies exactly those two pieces:
//
//   atomicity    = the ARU (BeginARU … EndARU);
//   isolation    = strict two-phase locking on blocks and lists, with
//                  wait-die deadlock avoidance (LockManager);
//   durability   = optional Flush at commit;
//   consistency  = the client's business, as always.
//
// A transaction that loses a wait-die conflict returns kAborted-style
// kFailedPrecondition from the failing operation; the caller aborts and
// retries (RunTransaction automates the retry loop).
#pragma once

#include <atomic>
#include <functional>
#include <set>
#include <vector>

#include "ld/disk.h"
#include "txn/lock_manager.h"
#include "util/protocol_annotations.h"

namespace aru::txn {

enum class Durability : std::uint8_t {
  kNone,   // EndARU only: atomic, may be lost whole (never torn)
  kFlush,  // EndARU + Flush: atomic and durable at commit return
};

class TransactionManager;

// One transaction: a lock set + an ARU. Not thread-safe (one thread per
// transaction); different transactions may run on different threads.
class Transaction {
 public:
  ~Transaction();

  Transaction(Transaction&&) = delete;
  Transaction& operator=(Transaction&&) = delete;

  TxnId id() const { return id_; }

  // Data operations: take the needed lock, then issue the LD operation
  // in this transaction's ARU stream.
  Status Read(ld::BlockId block, MutableByteSpan out);
  Status Write(ld::BlockId block, ByteSpan data);
  Result<ld::BlockId> NewBlock(ld::ListId list, ld::BlockId predecessor);
  Status DeleteBlock(ld::BlockId block);
  Result<ld::ListId> NewList();
  Status DeleteList(ld::ListId list);
  Result<std::vector<ld::BlockId>> ListBlocks(ld::ListId list);

  // Commits the ARU and releases all locks. After an error from any
  // operation, call Abort() instead (Commit refuses).
  Status Commit(Durability durability = Durability::kNone);
  // Discards all effects and releases locks. Idempotent-ish: safe after
  // failed operations; implied by destruction.
  Status Abort();

 private:
  friend class TransactionManager;
  Transaction(TransactionManager& manager, TxnId id, ld::AruId aru)
      : manager_(manager), id_(id), aru_(aru) {}

  Status Lock(ResourceId resource, LockMode mode);
  // Marks the transaction poisoned after a failed op.
  Status Fail(Status status);

  TransactionManager& manager_;
  TxnId id_;
  ld::AruId aru_;
  bool finished_ = false;
  bool poisoned_ = false;
};

class TransactionManager {
 public:
  explicit TransactionManager(ld::Disk& disk) : disk_(disk) {}

  // Begins a transaction. The returned object must Commit() or Abort()
  // before destruction (destruction aborts as a safety net).
  Result<std::unique_ptr<Transaction>> Begin();

  // Runs `body` in a transaction, retrying on wait-die aborts (with the
  // transaction freshly begun each attempt). `body` returns OK to
  // commit; any error aborts. kFailedPrecondition from lock conflicts
  // triggers a retry up to `max_attempts`.
  Status RunTransaction(const std::function<Status(Transaction&)>& body,
                        Durability durability = Durability::kNone,
                        int max_attempts = 16);

  ld::Disk& disk() { return disk_; }
  LockManager& locks() { return locks_; }

 private:
  ld::Disk& disk_;
  LockManager locks_;
  std::atomic<TxnId> next_id_ ARU_ATOMIC_COUNTER{1};
};

}  // namespace aru::txn
