#include "txn/lock_manager.h"

#include <string>

namespace aru::txn {

bool LockManager::Compatible(const ResourceState& state, TxnId txn,
                             LockMode mode) {
  for (const auto& [holder, held] : state.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

bool LockManager::MayWait(const ResourceState& state, TxnId txn,
                          LockMode mode) {
  for (const auto& [holder, held] : state.holders) {
    if (holder == txn) continue;
    const bool conflicts =
        mode == LockMode::kExclusive || held == LockMode::kExclusive;
    // Wait-die: only an older transaction (smaller id) may wait for a
    // younger holder; a younger requester dies.
    if (conflicts && holder < txn) return false;
  }
  return true;
}

Status LockManager::Acquire(TxnId txn, ResourceId resource, LockMode mode) {
  const MutexLock lock(mu_);
  ResourceState& state = resources_[resource];

  // Already held? Upgrade if needed.
  if (const auto it = state.holders.find(txn); it != state.holders.end()) {
    if (it->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::Ok();
    }
    // Shared → exclusive upgrade: same protocol as a fresh acquire.
  }

  while (!Compatible(state, txn, mode)) {
    if (!MayWait(state, txn, mode)) {
      return FailedPreconditionError(
          "wait-die: transaction " + std::to_string(txn) +
          " must abort (conflicting lock held by an older transaction)");
    }
    ++state.waiters;
    released_.Wait(mu_);
    --state.waiters;
  }
  LockMode& held = state.holders[txn];
  held = (held == LockMode::kExclusive) ? held : mode;
  return Status::Ok();
}

void LockManager::ReleaseAll(TxnId txn) {
  {
    const MutexLock lock(mu_);
    for (auto it = resources_.begin(); it != resources_.end();) {
      it->second.holders.erase(txn);
      if (it->second.holders.empty() && it->second.waiters == 0) {
        it = resources_.erase(it);
      } else {
        ++it;
      }
    }
  }
  released_.NotifyAll();
}

std::size_t LockManager::LockedResources() const {
  const MutexLock lock(mu_);
  return resources_.size();
}

}  // namespace aru::txn
