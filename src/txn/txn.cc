#include "txn/txn.h"

#include <chrono>
#include <thread>

#include "util/log.h"

namespace aru::txn {

Transaction::~Transaction() {
  // Discarded: destructors cannot propagate; a failed abort leaves the
  // ARU uncommitted, which a crash-equivalent recovery discards anyway.
  if (!finished_) (void)Abort();
}

Status Transaction::Lock(ResourceId resource, LockMode mode) {
  return manager_.locks().Acquire(id_, resource, mode);
}

Status Transaction::Fail(Status status) {
  poisoned_ = true;
  return status;
}

Status Transaction::Read(ld::BlockId block, MutableByteSpan out) {
  if (finished_) return FailedPreconditionError("transaction finished");
  ARU_RETURN_IF_ERROR(Lock(ResourceId::Block(block), LockMode::kShared));
  // Reads in the ARU see this transaction's own shadow versions.
  if (Status s = manager_.disk().Read(block, out, aru_); !s.ok()) {
    return Fail(std::move(s));
  }
  return Status::Ok();
}

Status Transaction::Write(ld::BlockId block, ByteSpan data) {
  if (finished_) return FailedPreconditionError("transaction finished");
  ARU_RETURN_IF_ERROR(Lock(ResourceId::Block(block), LockMode::kExclusive));
  if (Status s = manager_.disk().Write(block, data, aru_); !s.ok()) {
    return Fail(std::move(s));
  }
  return Status::Ok();
}

Result<ld::BlockId> Transaction::NewBlock(ld::ListId list,
                                          ld::BlockId predecessor) {
  if (finished_) return FailedPreconditionError("transaction finished");
  // Structural change: exclusive on the list (covers the predecessor's
  // successor pointer too, since only list members are touched).
  ARU_RETURN_IF_ERROR(Lock(ResourceId::List(list), LockMode::kExclusive));
  auto block = manager_.disk().NewBlock(list, predecessor, aru_);
  if (!block.ok()) return Fail(block.status());
  // The new id is ours alone until commit, but lock it so that a later
  // same-transaction DeleteBlock upgrade path stays uniform.
  ARU_RETURN_IF_ERROR(Lock(ResourceId::Block(*block), LockMode::kExclusive));
  return block;
}

Status Transaction::DeleteBlock(ld::BlockId block) {
  if (finished_) return FailedPreconditionError("transaction finished");
  ARU_RETURN_IF_ERROR(Lock(ResourceId::Block(block), LockMode::kExclusive));
  // Unlinking rewrites the predecessor's successor pointer: the whole
  // list structure must be locked, not just the block.
  auto list = manager_.disk().ListOf(block, aru_);
  if (!list.ok()) return Fail(list.status());
  if (list->valid()) {
    ARU_RETURN_IF_ERROR(Lock(ResourceId::List(*list), LockMode::kExclusive));
  }
  if (Status s = manager_.disk().DeleteBlock(block, aru_); !s.ok()) {
    return Fail(std::move(s));
  }
  return Status::Ok();
}

Result<ld::ListId> Transaction::NewList() {
  if (finished_) return FailedPreconditionError("transaction finished");
  auto list = manager_.disk().NewList(aru_);
  if (!list.ok()) return Fail(list.status());
  ARU_RETURN_IF_ERROR(Lock(ResourceId::List(*list), LockMode::kExclusive));
  return list;
}

Status Transaction::DeleteList(ld::ListId list) {
  if (finished_) return FailedPreconditionError("transaction finished");
  ARU_RETURN_IF_ERROR(Lock(ResourceId::List(list), LockMode::kExclusive));
  if (Status s = manager_.disk().DeleteList(list, aru_); !s.ok()) {
    return Fail(std::move(s));
  }
  return Status::Ok();
}

Result<std::vector<ld::BlockId>> Transaction::ListBlocks(ld::ListId list) {
  if (finished_) return FailedPreconditionError("transaction finished");
  ARU_RETURN_IF_ERROR(Lock(ResourceId::List(list), LockMode::kShared));
  auto blocks = manager_.disk().ListBlocks(list, aru_);
  if (!blocks.ok()) return Fail(blocks.status());
  return blocks;
}

Status Transaction::Commit(Durability durability) {
  if (finished_) return FailedPreconditionError("transaction finished");
  if (poisoned_) {
    return FailedPreconditionError(
        "transaction had a failed operation; Abort() it");
  }
  finished_ = true;
  const Status committed = manager_.disk().EndARU(aru_);
  manager_.locks().ReleaseAll(id_);
  ARU_RETURN_IF_ERROR(committed);
  if (durability == Durability::kFlush) {
    return manager_.disk().Flush();
  }
  return Status::Ok();
}

Status Transaction::Abort() {
  if (finished_) return Status::Ok();
  finished_ = true;
  const Status aborted = manager_.disk().AbortARU(aru_);
  manager_.locks().ReleaseAll(id_);
  return aborted;
}

Result<std::unique_ptr<Transaction>> TransactionManager::Begin() {
  ARU_ASSIGN_OR_RETURN(const ld::AruId aru, disk_.BeginARU());
  const TxnId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Transaction>(new Transaction(*this, id, aru));
}

Status TransactionManager::RunTransaction(
    const std::function<Status(Transaction&)>& body, Durability durability,
    int max_attempts) {
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ARU_ASSIGN_OR_RETURN(auto txn, Begin());
    Status status = body(*txn);
    if (status.ok()) {
      status = txn->Commit(durability);
      if (status.ok()) return Status::Ok();
    }
    // Discarded: the retry decision is driven by `status` from the body
    // or commit; abort failure cannot make the outcome worse.
    (void)txn->Abort();
    if (status.code() != StatusCode::kFailedPrecondition) {
      return status;  // a real error, not a wait-die conflict
    }
    last = std::move(status);
    // Back off so a freshly-begun (hence younger, hence wait-die-losing)
    // retry does not spin itself out of attempts while the conflicting
    // older transaction finishes.
    std::this_thread::sleep_for(
        std::chrono::microseconds(50u << std::min(attempt, 8)));
  }
  return FailedPreconditionError("transaction retries exhausted: " +
                                 last.message());
}

}  // namespace aru::txn
