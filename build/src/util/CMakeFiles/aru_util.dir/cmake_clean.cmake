file(REMOVE_RECURSE
  "CMakeFiles/aru_util.dir/crc32.cc.o"
  "CMakeFiles/aru_util.dir/crc32.cc.o.d"
  "CMakeFiles/aru_util.dir/log.cc.o"
  "CMakeFiles/aru_util.dir/log.cc.o.d"
  "CMakeFiles/aru_util.dir/status.cc.o"
  "CMakeFiles/aru_util.dir/status.cc.o.d"
  "libaru_util.a"
  "libaru_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aru_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
