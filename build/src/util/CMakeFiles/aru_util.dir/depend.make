# Empty dependencies file for aru_util.
# This may be replaced when dependencies are built.
