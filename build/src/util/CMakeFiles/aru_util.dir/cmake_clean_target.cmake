file(REMOVE_RECURSE
  "libaru_util.a"
)
