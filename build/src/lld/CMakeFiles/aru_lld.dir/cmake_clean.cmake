file(REMOVE_RECURSE
  "CMakeFiles/aru_lld.dir/checkpoint.cc.o"
  "CMakeFiles/aru_lld.dir/checkpoint.cc.o.d"
  "CMakeFiles/aru_lld.dir/layout.cc.o"
  "CMakeFiles/aru_lld.dir/layout.cc.o.d"
  "CMakeFiles/aru_lld.dir/lld.cc.o"
  "CMakeFiles/aru_lld.dir/lld.cc.o.d"
  "CMakeFiles/aru_lld.dir/lld_cleaner.cc.o"
  "CMakeFiles/aru_lld.dir/lld_cleaner.cc.o.d"
  "CMakeFiles/aru_lld.dir/lld_consistency.cc.o"
  "CMakeFiles/aru_lld.dir/lld_consistency.cc.o.d"
  "CMakeFiles/aru_lld.dir/lld_recovery.cc.o"
  "CMakeFiles/aru_lld.dir/lld_recovery.cc.o.d"
  "CMakeFiles/aru_lld.dir/segment_writer.cc.o"
  "CMakeFiles/aru_lld.dir/segment_writer.cc.o.d"
  "CMakeFiles/aru_lld.dir/summary.cc.o"
  "CMakeFiles/aru_lld.dir/summary.cc.o.d"
  "libaru_lld.a"
  "libaru_lld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aru_lld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
