# Empty dependencies file for aru_lld.
# This may be replaced when dependencies are built.
