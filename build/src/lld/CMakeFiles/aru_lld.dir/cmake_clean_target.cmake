file(REMOVE_RECURSE
  "libaru_lld.a"
)
