
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lld/checkpoint.cc" "src/lld/CMakeFiles/aru_lld.dir/checkpoint.cc.o" "gcc" "src/lld/CMakeFiles/aru_lld.dir/checkpoint.cc.o.d"
  "/root/repo/src/lld/layout.cc" "src/lld/CMakeFiles/aru_lld.dir/layout.cc.o" "gcc" "src/lld/CMakeFiles/aru_lld.dir/layout.cc.o.d"
  "/root/repo/src/lld/lld.cc" "src/lld/CMakeFiles/aru_lld.dir/lld.cc.o" "gcc" "src/lld/CMakeFiles/aru_lld.dir/lld.cc.o.d"
  "/root/repo/src/lld/lld_cleaner.cc" "src/lld/CMakeFiles/aru_lld.dir/lld_cleaner.cc.o" "gcc" "src/lld/CMakeFiles/aru_lld.dir/lld_cleaner.cc.o.d"
  "/root/repo/src/lld/lld_consistency.cc" "src/lld/CMakeFiles/aru_lld.dir/lld_consistency.cc.o" "gcc" "src/lld/CMakeFiles/aru_lld.dir/lld_consistency.cc.o.d"
  "/root/repo/src/lld/lld_recovery.cc" "src/lld/CMakeFiles/aru_lld.dir/lld_recovery.cc.o" "gcc" "src/lld/CMakeFiles/aru_lld.dir/lld_recovery.cc.o.d"
  "/root/repo/src/lld/segment_writer.cc" "src/lld/CMakeFiles/aru_lld.dir/segment_writer.cc.o" "gcc" "src/lld/CMakeFiles/aru_lld.dir/segment_writer.cc.o.d"
  "/root/repo/src/lld/summary.cc" "src/lld/CMakeFiles/aru_lld.dir/summary.cc.o" "gcc" "src/lld/CMakeFiles/aru_lld.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aru_util.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/aru_blockdev.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
