# Empty dependencies file for aru_btree.
# This may be replaced when dependencies are built.
