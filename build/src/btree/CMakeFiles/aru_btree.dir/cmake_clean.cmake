file(REMOVE_RECURSE
  "CMakeFiles/aru_btree.dir/btree.cc.o"
  "CMakeFiles/aru_btree.dir/btree.cc.o.d"
  "libaru_btree.a"
  "libaru_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aru_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
