file(REMOVE_RECURSE
  "libaru_btree.a"
)
