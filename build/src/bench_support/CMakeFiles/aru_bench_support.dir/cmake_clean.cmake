file(REMOVE_RECURSE
  "CMakeFiles/aru_bench_support.dir/report.cc.o"
  "CMakeFiles/aru_bench_support.dir/report.cc.o.d"
  "CMakeFiles/aru_bench_support.dir/rig.cc.o"
  "CMakeFiles/aru_bench_support.dir/rig.cc.o.d"
  "CMakeFiles/aru_bench_support.dir/workloads.cc.o"
  "CMakeFiles/aru_bench_support.dir/workloads.cc.o.d"
  "libaru_bench_support.a"
  "libaru_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aru_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
