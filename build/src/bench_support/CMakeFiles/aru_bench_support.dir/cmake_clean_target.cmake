file(REMOVE_RECURSE
  "libaru_bench_support.a"
)
