# Empty compiler generated dependencies file for aru_bench_support.
# This may be replaced when dependencies are built.
