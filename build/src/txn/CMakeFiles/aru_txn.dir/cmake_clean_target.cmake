file(REMOVE_RECURSE
  "libaru_txn.a"
)
