# Empty compiler generated dependencies file for aru_txn.
# This may be replaced when dependencies are built.
