file(REMOVE_RECURSE
  "CMakeFiles/aru_txn.dir/lock_manager.cc.o"
  "CMakeFiles/aru_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/aru_txn.dir/txn.cc.o"
  "CMakeFiles/aru_txn.dir/txn.cc.o.d"
  "libaru_txn.a"
  "libaru_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aru_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
