file(REMOVE_RECURSE
  "libaru_blockdev.a"
)
