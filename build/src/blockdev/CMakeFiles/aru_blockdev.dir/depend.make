# Empty dependencies file for aru_blockdev.
# This may be replaced when dependencies are built.
