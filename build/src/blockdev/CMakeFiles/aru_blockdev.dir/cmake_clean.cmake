file(REMOVE_RECURSE
  "CMakeFiles/aru_blockdev.dir/block_device.cc.o"
  "CMakeFiles/aru_blockdev.dir/block_device.cc.o.d"
  "CMakeFiles/aru_blockdev.dir/disk_model.cc.o"
  "CMakeFiles/aru_blockdev.dir/disk_model.cc.o.d"
  "CMakeFiles/aru_blockdev.dir/fault_disk.cc.o"
  "CMakeFiles/aru_blockdev.dir/fault_disk.cc.o.d"
  "CMakeFiles/aru_blockdev.dir/file_disk.cc.o"
  "CMakeFiles/aru_blockdev.dir/file_disk.cc.o.d"
  "CMakeFiles/aru_blockdev.dir/mem_disk.cc.o"
  "CMakeFiles/aru_blockdev.dir/mem_disk.cc.o.d"
  "libaru_blockdev.a"
  "libaru_blockdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aru_blockdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
