file(REMOVE_RECURSE
  "libaru_minixfs.a"
)
