
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minixfs/check.cc" "src/minixfs/CMakeFiles/aru_minixfs.dir/check.cc.o" "gcc" "src/minixfs/CMakeFiles/aru_minixfs.dir/check.cc.o.d"
  "/root/repo/src/minixfs/format.cc" "src/minixfs/CMakeFiles/aru_minixfs.dir/format.cc.o" "gcc" "src/minixfs/CMakeFiles/aru_minixfs.dir/format.cc.o.d"
  "/root/repo/src/minixfs/minix_fs.cc" "src/minixfs/CMakeFiles/aru_minixfs.dir/minix_fs.cc.o" "gcc" "src/minixfs/CMakeFiles/aru_minixfs.dir/minix_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aru_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
