# Empty dependencies file for aru_minixfs.
# This may be replaced when dependencies are built.
