file(REMOVE_RECURSE
  "CMakeFiles/aru_minixfs.dir/check.cc.o"
  "CMakeFiles/aru_minixfs.dir/check.cc.o.d"
  "CMakeFiles/aru_minixfs.dir/format.cc.o"
  "CMakeFiles/aru_minixfs.dir/format.cc.o.d"
  "CMakeFiles/aru_minixfs.dir/minix_fs.cc.o"
  "CMakeFiles/aru_minixfs.dir/minix_fs.cc.o.d"
  "libaru_minixfs.a"
  "libaru_minixfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aru_minixfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
