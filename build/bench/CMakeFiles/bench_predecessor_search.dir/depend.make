# Empty dependencies file for bench_predecessor_search.
# This may be replaced when dependencies are built.
