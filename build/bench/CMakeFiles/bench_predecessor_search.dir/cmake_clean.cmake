file(REMOVE_RECURSE
  "CMakeFiles/bench_predecessor_search.dir/bench_predecessor_search.cc.o"
  "CMakeFiles/bench_predecessor_search.dir/bench_predecessor_search.cc.o.d"
  "bench_predecessor_search"
  "bench_predecessor_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predecessor_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
