# Empty dependencies file for bench_large_file.
# This may be replaced when dependencies are built.
