file(REMOVE_RECURSE
  "CMakeFiles/bench_cleaner.dir/bench_cleaner.cc.o"
  "CMakeFiles/bench_cleaner.dir/bench_cleaner.cc.o.d"
  "bench_cleaner"
  "bench_cleaner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cleaner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
