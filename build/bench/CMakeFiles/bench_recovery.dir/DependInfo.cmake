
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_recovery.cc" "bench/CMakeFiles/bench_recovery.dir/bench_recovery.cc.o" "gcc" "bench/CMakeFiles/bench_recovery.dir/bench_recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_support/CMakeFiles/aru_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lld/CMakeFiles/aru_lld.dir/DependInfo.cmake"
  "/root/repo/build/src/minixfs/CMakeFiles/aru_minixfs.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/aru_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aru_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
