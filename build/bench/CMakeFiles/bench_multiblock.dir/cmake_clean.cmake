file(REMOVE_RECURSE
  "CMakeFiles/bench_multiblock.dir/bench_multiblock.cc.o"
  "CMakeFiles/bench_multiblock.dir/bench_multiblock.cc.o.d"
  "bench_multiblock"
  "bench_multiblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
