# Empty dependencies file for bench_multiblock.
# This may be replaced when dependencies are built.
