file(REMOVE_RECURSE
  "CMakeFiles/bench_commit_batch.dir/bench_commit_batch.cc.o"
  "CMakeFiles/bench_commit_batch.dir/bench_commit_batch.cc.o.d"
  "bench_commit_batch"
  "bench_commit_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
