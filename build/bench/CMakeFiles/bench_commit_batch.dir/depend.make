# Empty dependencies file for bench_commit_batch.
# This may be replaced when dependencies are built.
