# Empty compiler generated dependencies file for bench_version_lookup.
# This may be replaced when dependencies are built.
