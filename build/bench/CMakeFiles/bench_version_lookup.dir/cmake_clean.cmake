file(REMOVE_RECURSE
  "CMakeFiles/bench_version_lookup.dir/bench_version_lookup.cc.o"
  "CMakeFiles/bench_version_lookup.dir/bench_version_lookup.cc.o.d"
  "bench_version_lookup"
  "bench_version_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_version_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
