# Empty dependencies file for bench_small_files.
# This may be replaced when dependencies are built.
