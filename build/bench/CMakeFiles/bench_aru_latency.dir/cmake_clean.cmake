file(REMOVE_RECURSE
  "CMakeFiles/bench_aru_latency.dir/bench_aru_latency.cc.o"
  "CMakeFiles/bench_aru_latency.dir/bench_aru_latency.cc.o.d"
  "bench_aru_latency"
  "bench_aru_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aru_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
