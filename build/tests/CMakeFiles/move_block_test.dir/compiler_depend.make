# Empty compiler generated dependencies file for move_block_test.
# This may be replaced when dependencies are built.
