file(REMOVE_RECURSE
  "CMakeFiles/move_block_test.dir/move_block_test.cc.o"
  "CMakeFiles/move_block_test.dir/move_block_test.cc.o.d"
  "move_block_test"
  "move_block_test.pdb"
  "move_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
