# Empty dependencies file for move_block_test.
# This may be replaced when dependencies are built.
