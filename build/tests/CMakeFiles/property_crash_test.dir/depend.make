# Empty dependencies file for property_crash_test.
# This may be replaced when dependencies are built.
