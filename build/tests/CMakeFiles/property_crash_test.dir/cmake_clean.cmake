file(REMOVE_RECURSE
  "CMakeFiles/property_crash_test.dir/property_crash_test.cc.o"
  "CMakeFiles/property_crash_test.dir/property_crash_test.cc.o.d"
  "property_crash_test"
  "property_crash_test.pdb"
  "property_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
