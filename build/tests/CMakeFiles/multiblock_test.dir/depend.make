# Empty dependencies file for multiblock_test.
# This may be replaced when dependencies are built.
