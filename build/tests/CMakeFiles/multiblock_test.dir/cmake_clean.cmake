file(REMOVE_RECURSE
  "CMakeFiles/multiblock_test.dir/multiblock_test.cc.o"
  "CMakeFiles/multiblock_test.dir/multiblock_test.cc.o.d"
  "multiblock_test"
  "multiblock_test.pdb"
  "multiblock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiblock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
