file(REMOVE_RECURSE
  "CMakeFiles/geometry_sweep_test.dir/geometry_sweep_test.cc.o"
  "CMakeFiles/geometry_sweep_test.dir/geometry_sweep_test.cc.o.d"
  "geometry_sweep_test"
  "geometry_sweep_test.pdb"
  "geometry_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
