file(REMOVE_RECURSE
  "CMakeFiles/semantics_pin_test.dir/semantics_pin_test.cc.o"
  "CMakeFiles/semantics_pin_test.dir/semantics_pin_test.cc.o.d"
  "semantics_pin_test"
  "semantics_pin_test.pdb"
  "semantics_pin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_pin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
