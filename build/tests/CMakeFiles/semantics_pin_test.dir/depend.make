# Empty dependencies file for semantics_pin_test.
# This may be replaced when dependencies are built.
