# Empty dependencies file for aru_semantics_test.
# This may be replaced when dependencies are built.
