file(REMOVE_RECURSE
  "CMakeFiles/aru_semantics_test.dir/aru_semantics_test.cc.o"
  "CMakeFiles/aru_semantics_test.dir/aru_semantics_test.cc.o.d"
  "aru_semantics_test"
  "aru_semantics_test.pdb"
  "aru_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aru_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
