# Empty compiler generated dependencies file for segment_writer_test.
# This may be replaced when dependencies are built.
