file(REMOVE_RECURSE
  "CMakeFiles/segment_writer_test.dir/segment_writer_test.cc.o"
  "CMakeFiles/segment_writer_test.dir/segment_writer_test.cc.o.d"
  "segment_writer_test"
  "segment_writer_test.pdb"
  "segment_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
