# Empty compiler generated dependencies file for minixfs_property_test.
# This may be replaced when dependencies are built.
