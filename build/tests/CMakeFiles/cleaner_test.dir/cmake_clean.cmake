file(REMOVE_RECURSE
  "CMakeFiles/cleaner_test.dir/cleaner_test.cc.o"
  "CMakeFiles/cleaner_test.dir/cleaner_test.cc.o.d"
  "cleaner_test"
  "cleaner_test.pdb"
  "cleaner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
