file(REMOVE_RECURSE
  "CMakeFiles/version_index_test.dir/version_index_test.cc.o"
  "CMakeFiles/version_index_test.dir/version_index_test.cc.o.d"
  "version_index_test"
  "version_index_test.pdb"
  "version_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
