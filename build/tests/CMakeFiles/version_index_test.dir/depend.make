# Empty dependencies file for version_index_test.
# This may be replaced when dependencies are built.
