# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lld_basic_test[1]_include.cmake")
include("/root/repo/build/tests/aru_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/minixfs_test[1]_include.cmake")
include("/root/repo/build/tests/property_crash_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/blockdev_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/version_index_test[1]_include.cmake")
include("/root/repo/build/tests/cleaner_test[1]_include.cmake")
include("/root/repo/build/tests/threads_test[1]_include.cmake")
include("/root/repo/build/tests/fsck_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/read_cache_test[1]_include.cmake")
include("/root/repo/build/tests/multiblock_test[1]_include.cmake")
include("/root/repo/build/tests/minixfs_property_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/segment_writer_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_pin_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/api_surface_test[1]_include.cmake")
include("/root/repo/build/tests/move_block_test[1]_include.cmake")
