# Empty compiler generated dependencies file for crash_atomicity.
# This may be replaced when dependencies are built.
