file(REMOVE_RECURSE
  "CMakeFiles/crash_atomicity.dir/crash_atomicity.cpp.o"
  "CMakeFiles/crash_atomicity.dir/crash_atomicity.cpp.o.d"
  "crash_atomicity"
  "crash_atomicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_atomicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
