
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/crash_atomicity.cpp" "examples/CMakeFiles/crash_atomicity.dir/crash_atomicity.cpp.o" "gcc" "examples/CMakeFiles/crash_atomicity.dir/crash_atomicity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lld/CMakeFiles/aru_lld.dir/DependInfo.cmake"
  "/root/repo/build/src/minixfs/CMakeFiles/aru_minixfs.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/aru_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/aru_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/aru_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aru_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
