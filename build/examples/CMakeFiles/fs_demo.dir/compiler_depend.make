# Empty compiler generated dependencies file for fs_demo.
# This may be replaced when dependencies are built.
