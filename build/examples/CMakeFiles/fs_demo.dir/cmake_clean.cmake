file(REMOVE_RECURSE
  "CMakeFiles/fs_demo.dir/fs_demo.cpp.o"
  "CMakeFiles/fs_demo.dir/fs_demo.cpp.o.d"
  "fs_demo"
  "fs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
