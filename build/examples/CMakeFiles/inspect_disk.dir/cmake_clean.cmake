file(REMOVE_RECURSE
  "CMakeFiles/inspect_disk.dir/inspect_disk.cpp.o"
  "CMakeFiles/inspect_disk.dir/inspect_disk.cpp.o.d"
  "inspect_disk"
  "inspect_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
