# Empty dependencies file for inspect_disk.
# This may be replaced when dependencies are built.
