// Ablation: EndARU cost as a function of the number of operations in
// the ARU. Commit re-executes the list-operation log against the
// committed state and merges every shadow record (paper §4), so commit
// latency should grow linearly with ARU size — while per-operation
// cost stays flat (the whole point of batching meta-data updates into
// one recovery unit).
//
// Also sweeps the write-behind pipeline: N client streams of durable
// commits against flusher off (synchronous seal) and in-flight pool
// depths 1/2/4/8, reporting multi-stream throughput and commit p99
// into BENCH_commit_batch.json. With the flusher on, the device write
// leaves the critical section and concurrent streams ride one shared
// segment write (group commit).
//
// A second sweep holds the pipeline at wb4 and scales writer threads
// (1/2/4/8) to measure multi-writer commit scaling over the sharded
// persistent tables: writer_scaling_4t is the 4-writer/1-writer
// throughput ratio, with per-shard table-lock contention scalars
// alongside so a scaling regression can be attributed.
//
// The artifact embeds the metrics registry and a "timeseries" section
// (background sampler ring: durable lag, in-flight segments, commit
// counts, lock contention) from the deepest pipeline point, and the
// Chrome trace of the sweep lands in TRACE_commit_batch.json.
//
// Flags: --streams=4 --arus=300 --sampler_period_ms=5, then
// google-benchmark's own.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/report.h"
#include "bench_support/rig.h"
#include "obs/trace.h"

namespace aru::bench {
namespace {

void BM_EndAruVsOpsPerAru(benchmark::State& state) {
  const auto ops = static_cast<std::uint64_t>(state.range(0));
  auto rig = MakeRig(NewConfig());
  if (!rig.ok()) {
    state.SkipWithError(rig.status().ToString().c_str());
    return;
  }
  lld::Lld& disk = *(*rig)->disk;
  Bytes payload(disk.block_size(), std::byte{7});

  for (auto _ : state) {
    const auto aru = disk.BeginARU();
    const auto list = disk.NewList(*aru);
    ld::BlockId pred = ld::kListHead;
    for (std::uint64_t i = 0; i < ops; ++i) {
      pred = *disk.NewBlock(*list, pred, *aru);
      (void)disk.Write(pred, payload, *aru);
    }
    (void)disk.EndARU(*aru);
    // Keep the disk from filling: drop the list again (simple op).
    (void)disk.DeleteList(*list, ld::kNoAru);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_EndAruVsOpsPerAru)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_EmptyAru(benchmark::State& state) {
  auto rig = MakeRig(NewConfig());
  if (!rig.ok()) {
    state.SkipWithError(rig.status().ToString().c_str());
    return;
  }
  lld::Lld& disk = *(*rig)->disk;
  for (auto _ : state) {
    const auto aru = disk.BeginARU();
    (void)disk.EndARU(*aru);
  }
}
BENCHMARK(BM_EmptyAru);

// The same batched meta-data updates as individual simple operations:
// the baseline ARUs compete against (synchronous-write-style usage
// would add a Flush per op; see EXPERIMENTS.md).
void BM_SimpleOpsNoAru(benchmark::State& state) {
  const auto ops = static_cast<std::uint64_t>(state.range(0));
  auto rig = MakeRig(NewConfig());
  if (!rig.ok()) {
    state.SkipWithError(rig.status().ToString().c_str());
    return;
  }
  lld::Lld& disk = *(*rig)->disk;
  Bytes payload(disk.block_size(), std::byte{7});
  for (auto _ : state) {
    const auto list = disk.NewList(ld::kNoAru);
    ld::BlockId pred = ld::kListHead;
    for (std::uint64_t i = 0; i < ops; ++i) {
      pred = *disk.NewBlock(*list, pred, ld::kNoAru);
      (void)disk.Write(pred, payload, ld::kNoAru);
    }
    (void)disk.DeleteList(*list, ld::kNoAru);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_SimpleOpsNoAru)->Arg(16)->Arg(64);

// One client stream of durable ARU commits: each ARU allocates a
// 4-block list, writes it, commits, and drops it again.
Status RunStream(lld::Lld& disk, std::uint64_t arus) {
  Bytes payload(disk.block_size(), std::byte{9});
  for (std::uint64_t i = 0; i < arus; ++i) {
    ARU_ASSIGN_OR_RETURN(const ld::AruId aru, disk.BeginARU());
    ARU_ASSIGN_OR_RETURN(const ld::ListId list, disk.NewList(aru));
    ld::BlockId pred = ld::kListHead;
    for (int b = 0; b < 4; ++b) {
      ARU_ASSIGN_OR_RETURN(pred, disk.NewBlock(list, pred, aru));
      ARU_RETURN_IF_ERROR(disk.Write(pred, payload, aru));
    }
    ARU_RETURN_IF_ERROR(disk.EndARU(aru));
    ARU_RETURN_IF_ERROR(disk.DeleteList(list, ld::kNoAru));
  }
  return Status::Ok();
}

struct SweepPoint {
  std::string label;
  std::uint32_t depth = 0;
};

// Writer-thread scaling at a fixed pipeline depth (wb4): 1/2/4/8
// concurrent committers, each running the same durable-ARU stream.
// With the tables sharded, the exclusive-mu_ hold per operation is
// narrow (version-index bookkeeping only — the table publication takes
// per-shard locks) and concurrent committers' commit records ride one
// group-commit segment write, so throughput should scale with writers
// until the device write saturates. Emits writersN_arus_per_s scalars,
// the headline writer_scaling_4t ratio (4-writer vs 1-writer), and the
// per-shard table-lock contention counters from the 4-writer point.
int WriterSweep(int argc, char** argv, BenchArtifact& artifact) {
  const std::uint64_t arus = FlagU64(argc, argv, "arus", 300);
  const std::uint64_t sampler_ms = FlagU64(argc, argv, "sampler_period_ms", 5);

  std::printf("\nWriter scaling sweep: wb4, %llu durable ARU commits "
              "per writer\n",
              static_cast<unsigned long long>(arus));
  Table table({"writers", "arus/s", "commit p99 us", "shard waits"});

  double one_writer = 0.0;
  double four_writers = 0.0;
  for (const std::uint64_t writers : {1u, 2u, 4u, 8u}) {
    RigOptions options;
    options.segment_size = 256 * 1024;
    options.write_behind_segments = 4;
    options.durable_commits = true;
    options.read_cache_blocks = 1024;
    options.device_write_latency_us =
        FlagU64(argc, argv, "write_latency_us", 400);
    options.sampler_period_ms = sampler_ms;
    auto rig = MakeRig(NewConfig(), options);
    if (!rig.ok()) {
      std::fprintf(stderr, "rig failed: %s\n",
                   rig.status().ToString().c_str());
      return 1;
    }
    lld::Lld& disk = *(*rig)->disk;

    std::vector<Status> results(writers, Status::Ok());
    Stopwatch watch;
    watch.Start();
    std::vector<std::thread> workers;
    workers.reserve(writers);
    for (std::uint64_t w = 0; w < writers; ++w) {
      workers.emplace_back(
          [&disk, &results, w, arus] { results[w] = RunStream(disk, arus); });
    }
    for (std::thread& worker : workers) worker.join();
    const double us = static_cast<double>(watch.StopUs());
    for (const Status& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "writer stream failed (%llu writers): %s\n",
                     static_cast<unsigned long long>(writers),
                     result.ToString().c_str());
        return 1;
      }
    }

    const double total =
        static_cast<double>(writers) * static_cast<double>(arus);
    const double arus_per_s = total / (us / 1e6);
    double p99 = 0.0;
    if (const obs::Histogram* h =
            (*rig)->registry.FindHistogram("aru_lld_commit_us")) {
      p99 = h->TakeSnapshot().Percentile(99);
    }
    double shard_waits = 0.0;
    if (const obs::Counter* c = (*rig)->registry.FindCounter(
            "aru_lock_contended_total_lld_table_shard_exclusive")) {
      shard_waits = static_cast<double>(c->value());
    }
    table.AddRow({std::to_string(writers), FormatDouble(arus_per_s, 0),
                  FormatDouble(p99, 1), FormatDouble(shard_waits, 0)});
    const std::string prefix = "writers" + std::to_string(writers);
    artifact.AddScalar(prefix + "_arus_per_s", arus_per_s);
    artifact.AddScalar(prefix + "_commit_p99_us", p99);
    if (writers == 1) one_writer = arus_per_s;
    if (writers == 4) {
      four_writers = arus_per_s;
      // Lock attribution from the contended point: how often the table
      // shards vs the global mu_ actually blocked a thread.
      artifact.AddScalar("table_shard_lock_contended_4t", shard_waits);
      if (const obs::Histogram* h = (*rig)->registry.FindHistogram(
              "aru_lock_wait_us_lld_table_shard_exclusive")) {
        artifact.AddScalar("table_shard_lock_wait_p99_us_4t",
                           h->TakeSnapshot().Percentile(99));
      }
      if (const obs::Counter* c = (*rig)->registry.FindCounter(
              "aru_lock_contended_total_lld_mu_exclusive")) {
        artifact.AddScalar("lld_mu_lock_contended_4t",
                           static_cast<double>(c->value()));
      }
      if (const obs::Gauge* g =
              (*rig)->registry.FindGauge("aru_lld_table_shard_count")) {
        artifact.AddScalar("table_shard_count",
                           static_cast<double>(g->value()));
      }
    }
  }
  table.Print();
  if (one_writer > 0.0) {
    const double scaling = four_writers / one_writer;
    std::printf("4 writers vs 1: %.2fx throughput\n", scaling);
    artifact.AddScalar("writer_scaling_4t", scaling);
  }
  return 0;
}

int PipelineSweep(int argc, char** argv) {
  const std::uint64_t streams = FlagU64(argc, argv, "streams", 4);
  const std::uint64_t arus = FlagU64(argc, argv, "arus", 300);
  const std::uint64_t sampler_ms = FlagU64(argc, argv, "sampler_period_ms", 5);

  BenchArtifact artifact("commit_batch");
  artifact.AddScalar("streams", static_cast<double>(streams));
  artifact.AddScalar("arus_per_stream", static_cast<double>(arus));
  artifact.AddScalar("sampler_period_ms", static_cast<double>(sampler_ms));

  std::printf("Write-behind sweep: %llu streams x %llu durable ARU "
              "commits (4 writes each)\n",
              static_cast<unsigned long long>(streams),
              static_cast<unsigned long long>(arus));
  Table table({"pipeline", "arus/s", "commit p50 us", "commit p99 us"});

  double sync_throughput = 0.0;
  double best_async = 0.0;
  // The deepest pipeline point's rig survives the loop so the artifact
  // can embed its registry and sampler ring (each point builds a fresh
  // rig; the last one — wb8 — is where lag/in-flight dynamics are most
  // interesting).
  std::unique_ptr<Rig> last_rig;
  for (const SweepPoint& point :
       {SweepPoint{"sync", 0}, SweepPoint{"wb1", 1}, SweepPoint{"wb2", 2},
        SweepPoint{"wb4", 4}, SweepPoint{"wb8", 8}}) {
    RigOptions options;
    // Smaller segments than the paper figures: every durable commit
    // seals, so the sweep is seal-bound by design. The 400 us write
    // latency models a real device; with the flusher on, that time is
    // off-thread and concurrent committers share one segment write.
    options.segment_size = 256 * 1024;
    options.write_behind_segments = point.depth;
    options.durable_commits = true;
    // Modest read cache so the shard-count gauges in the embedded
    // registry reflect the topology-derived defaults rather than the
    // zero-capacity clamp.
    options.read_cache_blocks = 1024;
    options.device_write_latency_us =
        FlagU64(argc, argv, "write_latency_us", 400);
    options.sampler_period_ms = sampler_ms;
    auto rig = MakeRig(NewConfig(), options);
    if (!rig.ok()) {
      std::fprintf(stderr, "rig failed: %s\n",
                   rig.status().ToString().c_str());
      return 1;
    }
    lld::Lld& disk = *(*rig)->disk;

    std::vector<Status> results(streams, Status::Ok());
    Stopwatch watch;
    watch.Start();
    std::vector<std::thread> workers;
    workers.reserve(streams);
    for (std::uint64_t s = 0; s < streams; ++s) {
      workers.emplace_back(
          [&disk, &results, s, arus] { results[s] = RunStream(disk, arus); });
    }
    for (std::thread& w : workers) w.join();
    const double us = static_cast<double>(watch.StopUs());
    for (const Status& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "stream failed (%s): %s\n", point.label.c_str(),
                     result.ToString().c_str());
        return 1;
      }
    }

    const double total =
        static_cast<double>(streams) * static_cast<double>(arus);
    const double arus_per_s = total / (us / 1e6);
    double p50 = 0.0;
    double p99 = 0.0;
    if (const obs::Histogram* h =
            (*rig)->registry.FindHistogram("aru_lld_commit_us")) {
      const obs::Histogram::Snapshot snap = h->TakeSnapshot();
      p50 = snap.Percentile(50);
      p99 = snap.Percentile(99);
    }
    table.AddRow({point.label, FormatDouble(arus_per_s, 0),
                  FormatDouble(p50, 1), FormatDouble(p99, 1)});
    artifact.AddScalar(point.label + "_arus_per_s", arus_per_s);
    artifact.AddScalar(point.label + "_commit_p50_us", p50);
    artifact.AddScalar(point.label + "_commit_p99_us", p99);
    if (point.depth == 0) {
      sync_throughput = arus_per_s;
    } else {
      best_async = std::max(best_async, arus_per_s);
    }
    last_rig = std::move(*rig);
  }
  table.Print();
  if (sync_throughput > 0.0) {
    const double speedup = best_async / sync_throughput;
    std::printf("best write-behind vs sync: %.2fx throughput\n", speedup);
    artifact.AddScalar("write_behind_speedup", speedup);
  }
  if (const int rc = WriterSweep(argc, argv, artifact); rc != 0) return rc;
  if (last_rig != nullptr) {
    artifact.SetRegistry(&last_rig->registry);
    if (obs::Sampler* sampler = last_rig->disk->sampler()) {
      sampler->Stop();
      artifact.SetTimeseries(sampler->ToJson());
    }
  }
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  {
    std::ofstream trace("TRACE_commit_batch.json", std::ios::trunc);
    trace << obs::Tracer::Default().DumpChromeJson();
  }
  return 0;
}

}  // namespace
}  // namespace aru::bench

// Custom main (instead of benchmark_main): run the pipeline sweep
// first, then the registered google-benchmark cases.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (const int rc = aru::bench::PipelineSweep(argc, argv); rc != 0) {
    return rc;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
