// Ablation: EndARU cost as a function of the number of operations in
// the ARU. Commit re-executes the list-operation log against the
// committed state and merges every shadow record (paper §4), so commit
// latency should grow linearly with ARU size — while per-operation
// cost stays flat (the whole point of batching meta-data updates into
// one recovery unit).
//
// Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "bench_support/rig.h"

namespace aru::bench {
namespace {

void BM_EndAruVsOpsPerAru(benchmark::State& state) {
  const auto ops = static_cast<std::uint64_t>(state.range(0));
  auto rig = MakeRig(NewConfig());
  if (!rig.ok()) {
    state.SkipWithError(rig.status().ToString().c_str());
    return;
  }
  lld::Lld& disk = *(*rig)->disk;
  Bytes payload(disk.block_size(), std::byte{7});

  for (auto _ : state) {
    const auto aru = disk.BeginARU();
    const auto list = disk.NewList(*aru);
    ld::BlockId pred = ld::kListHead;
    for (std::uint64_t i = 0; i < ops; ++i) {
      pred = *disk.NewBlock(*list, pred, *aru);
      (void)disk.Write(pred, payload, *aru);
    }
    (void)disk.EndARU(*aru);
    // Keep the disk from filling: drop the list again (simple op).
    (void)disk.DeleteList(*list, ld::kNoAru);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_EndAruVsOpsPerAru)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_EmptyAru(benchmark::State& state) {
  auto rig = MakeRig(NewConfig());
  if (!rig.ok()) {
    state.SkipWithError(rig.status().ToString().c_str());
    return;
  }
  lld::Lld& disk = *(*rig)->disk;
  for (auto _ : state) {
    const auto aru = disk.BeginARU();
    (void)disk.EndARU(*aru);
  }
}
BENCHMARK(BM_EmptyAru);

// The same batched meta-data updates as individual simple operations:
// the baseline ARUs compete against (synchronous-write-style usage
// would add a Flush per op; see EXPERIMENTS.md).
void BM_SimpleOpsNoAru(benchmark::State& state) {
  const auto ops = static_cast<std::uint64_t>(state.range(0));
  auto rig = MakeRig(NewConfig());
  if (!rig.ok()) {
    state.SkipWithError(rig.status().ToString().c_str());
    return;
  }
  lld::Lld& disk = *(*rig)->disk;
  Bytes payload(disk.block_size(), std::byte{7});
  for (auto _ : state) {
    const auto list = disk.NewList(ld::kNoAru);
    ld::BlockId pred = ld::kListHead;
    for (std::uint64_t i = 0; i < ops; ++i) {
      pred = *disk.NewBlock(*list, pred, ld::kNoAru);
      (void)disk.Write(pred, payload, ld::kNoAru);
    }
    (void)disk.DeleteList(*list, ld::kNoAru);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_SimpleOpsNoAru)->Arg(16)->Arg(64);

}  // namespace
}  // namespace aru::bench
