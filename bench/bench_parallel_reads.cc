// Parallel read scaling: aggregate read throughput and p99 latency at
// 1/2/4/8 reader threads over a device whose reads cost wall-clock
// time (LatencyDisk), comparing the shared-mode read path against the
// old behaviour of one exclusive lock around every Read.
//
// The shared path resolves block -> PhysAddr under a reader lock, pins
// the slot, and performs the device read with no LLD lock held, so N
// readers overlap N device sleeps; the exclusive baseline (emulated
// here with an external mutex around the Read calls, exactly the
// serialization the old exclusive Lld::mu_ imposed) admits one device
// read at a time. Expected: near-linear scaling for shared, flat for
// exclusive, >= 2x aggregate at 4 threads.
//
// The read cache is disabled so every Read pays the device latency —
// the regime where lock hold time across the device read dominates.
// Results land in BENCH_parallel_reads.json, which also carries:
//   - per-site lock-contention metrics (aru_lock_wait_us_lld_mu_*,
//     shared vs exclusive) exercised by a mixed 4-reader/1-writer
//     phase, where the writer's exclusive acquires of Lld::mu_ block
//     behind the readers' shared holds;
//   - a "timeseries" section from the disk's background sampler;
//   - an uncontended-overhead micro-measurement of the instrumented
//     mutex vs a bare std::shared_mutex (lock_overhead_pct).
// The Chrome trace of the run is written to TRACE_parallel_reads.json.
//
// Flags: --blocks=1024 --reads_per_thread=600 --read_latency_us=50
//        --sampler_period_ms=5
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/report.h"
#include "bench_support/rig.h"
#include "obs/lock_metrics.h"
#include "obs/trace.h"
#include "util/mutex.h"

namespace aru::bench {
namespace {

// Deterministic per-thread block picker (benchmarks must not use
// rand(): seeded LCG, distinct stream per thread).
struct Lcg {
  std::uint64_t state;
  std::uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

struct ThreadResult {
  Status status = Status::Ok();
  std::vector<double> latencies_us;
};

// One reader thread: `reads` random reads over the working set, each
// timed. `serialize` is the exclusive-path emulation (null = shared).
void RunReader(lld::Lld& disk, const std::vector<ld::BlockId>& blocks,
               std::uint64_t reads, std::uint64_t seed, std::mutex* serialize,
               ThreadResult& out) {
  Bytes buffer(disk.block_size());
  Lcg rng{seed * 0x9E3779B97F4A7C15ull + 1};
  out.latencies_us.reserve(reads);
  for (std::uint64_t i = 0; i < reads; ++i) {
    const ld::BlockId block = blocks[rng.Next() % blocks.size()];
    Stopwatch watch;
    watch.Start();
    Status status;
    if (serialize != nullptr) {
      const std::lock_guard<std::mutex> lock(*serialize);
      status = disk.Read(block, buffer);
    } else {
      status = disk.Read(block, buffer);
    }
    out.latencies_us.push_back(static_cast<double>(watch.StopUs()));
    if (!status.ok()) {
      out.status = status;
      return;
    }
  }
}

struct ModePoint {
  double reads_per_s = 0.0;
  double p99_us = 0.0;
};

Result<ModePoint> RunMode(lld::Lld& disk,
                          const std::vector<ld::BlockId>& blocks,
                          std::uint64_t threads, std::uint64_t reads,
                          bool exclusive) {
  std::mutex serialize;
  std::vector<ThreadResult> results(threads);
  Stopwatch watch;
  watch.Start();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint64_t thread = 0; thread < threads; ++thread) {
    workers.emplace_back([&disk, &blocks, reads, thread, exclusive, &serialize,
                          &results] {
      RunReader(disk, blocks, reads, thread + 1,
                exclusive ? &serialize : nullptr, results[thread]);
    });
  }
  for (std::thread& w : workers) w.join();
  const double us = static_cast<double>(watch.StopUs());

  std::vector<double> merged;
  merged.reserve(threads * reads);
  for (ThreadResult& r : results) {
    ARU_RETURN_IF_ERROR(r.status);
    merged.insert(merged.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  std::sort(merged.begin(), merged.end());
  ModePoint point;
  const double total = static_cast<double>(threads) * static_cast<double>(reads);
  point.reads_per_s = total / (us / 1e6);
  if (!merged.empty()) {
    const std::size_t at = std::min(
        merged.size() - 1,
        static_cast<std::size_t>(0.99 * static_cast<double>(merged.size())));
    point.p99_us = merged[at];
  }
  return point;
}

// Uncontended acquire/release cost of the instrumented SharedMutex
// (sink bound, so the fast path includes the one extra branch) vs a
// bare std::shared_mutex, in nanoseconds per lock/unlock pair. Single
// thread: this is exactly the acceptance regime — the parallel read
// path when nobody contends.
// Best-of-rounds: a ~20 ns pair is at the mercy of scheduler and
// frequency noise over a single long run, so both sides report the
// fastest of several shorter rounds — the standard way to compare
// near-identical fast paths.
constexpr std::uint64_t kOverheadIters = 500000;
constexpr int kOverheadRounds = 7;

double PlainSharedMutexNs() {
  std::shared_mutex mu;
  double best = 0.0;
  for (int round = 0; round < kOverheadRounds; ++round) {
    Stopwatch watch;
    watch.Start();
    for (std::uint64_t i = 0; i < kOverheadIters; ++i) {
      mu.lock_shared();
      mu.unlock_shared();
    }
    const double ns = static_cast<double>(watch.StopUs()) * 1000.0 /
                      static_cast<double>(kOverheadIters);
    if (round == 0 || ns < best) best = ns;
  }
  return best;
}

double InstrumentedSharedMutexNs(obs::Registry& registry) {
  SharedMutex mu{"bench_overhead_probe"};
  const auto sink = obs::BindLockSite(&registry, mu);
  double best = 0.0;
  for (int round = 0; round < kOverheadRounds; ++round) {
    Stopwatch watch;
    watch.Start();
    for (std::uint64_t i = 0; i < kOverheadIters; ++i) {
      mu.ReaderLock();
      mu.ReaderUnlock();
    }
    const double ns = static_cast<double>(watch.StopUs()) * 1000.0 /
                      static_cast<double>(kOverheadIters);
    if (round == 0 || ns < best) best = ns;
  }
  return best;
}

// Mixed phase: `threads` readers run the usual random-read loop while
// one writer keeps rewriting blocks of the working set. The writer's
// exclusive acquires of Lld::mu_ block behind the readers' shared
// holds (and vice versa), so aru_lock_wait_us_lld_mu_exclusive and
// _shared both fill — the contention-attribution example the artifact
// exists to show.
Result<ModePoint> RunMixed(lld::Lld& disk,
                           const std::vector<ld::BlockId>& blocks,
                           std::uint64_t threads, std::uint64_t reads,
                           std::uint64_t& writes_done) {
  std::atomic<bool> stop{false};
  Status writer_status = Status::Ok();
  std::uint64_t writes = 0;
  std::thread writer([&disk, &blocks, &stop, &writer_status, &writes] {
    Bytes payload(disk.block_size(), std::byte{0xA5});
    Lcg rng{0xFEEDFACEull};
    while (!stop.load(std::memory_order_relaxed)) {
      const ld::BlockId block = blocks[rng.Next() % blocks.size()];
      if (const Status s = disk.Write(block, payload, ld::kNoAru); !s.ok()) {
        writer_status = s;
        return;
      }
      ++writes;
    }
  });
  auto point = RunMode(disk, blocks, threads, reads, /*exclusive=*/false);
  stop.store(true);
  writer.join();
  ARU_RETURN_IF_ERROR(writer_status);
  writes_done = writes;
  return point;
}

int Run(int argc, char** argv) {
  const std::uint64_t block_count = FlagU64(argc, argv, "blocks", 1024);
  const std::uint64_t reads = FlagU64(argc, argv, "reads_per_thread", 600);
  const std::uint64_t latency_us = FlagU64(argc, argv, "read_latency_us", 50);
  const std::uint64_t sampler_ms = FlagU64(argc, argv, "sampler_period_ms", 5);

  RigOptions options;
  options.device_read_latency_us = latency_us;
  options.read_cache_blocks = 0;  // every read pays the device latency
  options.sampler_period_ms = sampler_ms;
  auto rig = MakeRig(NewConfig(), options);
  if (!rig.ok()) {
    std::fprintf(stderr, "rig failed: %s\n", rig.status().ToString().c_str());
    return 1;
  }
  lld::Lld& disk = *(*rig)->disk;

  // Working set: one list of `block_count` written blocks, flushed and
  // checkpointed so every block is on-device (no open-segment or
  // in-flight serving, which would dodge the device latency).
  const auto list = disk.NewList(ld::kNoAru);
  if (!list.ok()) return 1;
  std::vector<ld::BlockId> blocks;
  blocks.reserve(block_count);
  Bytes payload(disk.block_size(), std::byte{0x5A});
  ld::BlockId pred = ld::kListHead;
  for (std::uint64_t i = 0; i < block_count; ++i) {
    const auto block = disk.NewBlock(*list, pred, ld::kNoAru);
    if (!block.ok()) return 1;
    pred = *block;
    if (const Status s = disk.Write(pred, payload, ld::kNoAru); !s.ok()) {
      return 1;
    }
    blocks.push_back(pred);
  }
  if (const Status s = disk.Flush(); !s.ok()) return 1;
  if (const Status s = disk.Checkpoint(); !s.ok()) return 1;

  BenchArtifact artifact("parallel_reads");
  artifact.AddScalar("blocks", static_cast<double>(block_count));
  artifact.AddScalar("reads_per_thread", static_cast<double>(reads));
  artifact.AddScalar("read_latency_us", static_cast<double>(latency_us));

  std::printf("Parallel read sweep: %llu-block working set, %llu reads per "
              "thread, %llu us device read latency\n",
              static_cast<unsigned long long>(block_count),
              static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(latency_us));
  Table table({"threads", "mode", "reads/s", "p99 us"});

  double exclusive_at_4 = 0.0;
  double shared_at_4 = 0.0;
  for (const std::uint64_t threads : {1ull, 2ull, 4ull, 8ull}) {
    for (const bool exclusive : {true, false}) {
      const auto point = RunMode(disk, blocks, threads, reads, exclusive);
      if (!point.ok()) {
        std::fprintf(stderr, "reader failed: %s\n",
                     point.status().ToString().c_str());
        return 1;
      }
      const std::string mode = exclusive ? "exclusive" : "shared";
      table.AddRow({std::to_string(threads), mode,
                    FormatDouble(point->reads_per_s, 0),
                    FormatDouble(point->p99_us, 1)});
      const std::string key = mode + "_t" + std::to_string(threads);
      artifact.AddScalar(key + "_reads_per_s", point->reads_per_s);
      artifact.AddScalar(key + "_p99_us", point->p99_us);
      if (threads == 4) {
        (exclusive ? exclusive_at_4 : shared_at_4) = point->reads_per_s;
      }
    }
  }
  table.Print();
  if (exclusive_at_4 > 0.0) {
    const double speedup = shared_at_4 / exclusive_at_4;
    std::printf("shared vs exclusive at 4 threads: %.2fx aggregate reads/s\n",
                speedup);
    artifact.AddScalar("shared_speedup_at_4_threads", speedup);
  }

  // Contention-attribution phase: 4 readers vs 1 writer on Lld::mu_.
  std::uint64_t mixed_writes = 0;
  const auto mixed = RunMixed(disk, blocks, 4, reads, mixed_writes);
  if (!mixed.ok()) {
    std::fprintf(stderr, "mixed phase failed: %s\n",
                 mixed.status().ToString().c_str());
    return 1;
  }
  artifact.AddScalar("mixed_reads_per_s", mixed->reads_per_s);
  artifact.AddScalar("mixed_p99_us", mixed->p99_us);
  artifact.AddScalar("mixed_writer_writes", static_cast<double>(mixed_writes));
  const obs::Registry& registry = (*rig)->registry;
  for (const char* site :
       {"aru_lock_contended_total_lld_mu_exclusive",
        "aru_lock_contended_total_lld_mu_shared",
        "aru_lock_contended_total_lld_flush_mu_exclusive"}) {
    const obs::Counter* counter = registry.FindCounter(site);
    artifact.AddScalar(site,
                       counter != nullptr
                           ? static_cast<double>(counter->value())
                           : 0.0);
  }
  std::printf("mixed 4r/1w phase: %.0f reads/s, %llu writes; lock waits "
              "land in aru_lock_wait_us_lld_mu_{shared,exclusive}\n",
              mixed->reads_per_s,
              static_cast<unsigned long long>(mixed_writes));

  // Uncontended instrumented-mutex overhead (acceptance: <= 2%).
  const double plain_ns = PlainSharedMutexNs();
  const double instrumented_ns = InstrumentedSharedMutexNs((*rig)->registry);
  const double overhead_pct =
      plain_ns > 0.0 ? (instrumented_ns - plain_ns) / plain_ns * 100.0 : 0.0;
  artifact.AddScalar("plain_shared_mutex_lock_ns", plain_ns);
  artifact.AddScalar("instrumented_mutex_lock_ns", instrumented_ns);
  artifact.AddScalar("lock_overhead_pct", overhead_pct);
  std::printf("uncontended shared lock/unlock: plain %.1f ns, instrumented "
              "%.1f ns (%.2f%% overhead)\n",
              plain_ns, instrumented_ns, overhead_pct);

  artifact.SetRegistry(&(*rig)->registry);
  if (disk.sampler() != nullptr) {
    disk.sampler()->Stop();
    artifact.SetTimeseries(disk.sampler()->ToJson());
  }
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  std::ofstream trace("TRACE_parallel_reads.json", std::ios::trunc);
  trace << obs::Tracer::Default().DumpChromeJson();
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Run(argc, argv); }
