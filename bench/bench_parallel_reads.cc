// Parallel read scaling: aggregate read throughput and p99 latency at
// 1/2/4/8 reader threads over a device whose reads cost wall-clock
// time (LatencyDisk), comparing the shared-mode read path against the
// old behaviour of one exclusive lock around every Read.
//
// The shared path resolves block -> PhysAddr under a reader lock, pins
// the slot, and performs the device read with no LLD lock held, so N
// readers overlap N device sleeps; the exclusive baseline (emulated
// here with an external mutex around the Read calls, exactly the
// serialization the old exclusive Lld::mu_ imposed) admits one device
// read at a time. Expected: near-linear scaling for shared, flat for
// exclusive, >= 2x aggregate at 4 threads.
//
// The read cache is disabled so every Read pays the device latency —
// the regime where lock hold time across the device read dominates.
// Results land in BENCH_parallel_reads.json.
//
// Flags: --blocks=1024 --reads_per_thread=600 --read_latency_us=50
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/report.h"
#include "bench_support/rig.h"

namespace aru::bench {
namespace {

// Deterministic per-thread block picker (benchmarks must not use
// rand(): seeded LCG, distinct stream per thread).
struct Lcg {
  std::uint64_t state;
  std::uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

struct ThreadResult {
  Status status = Status::Ok();
  std::vector<double> latencies_us;
};

// One reader thread: `reads` random reads over the working set, each
// timed. `serialize` is the exclusive-path emulation (null = shared).
void RunReader(lld::Lld& disk, const std::vector<ld::BlockId>& blocks,
               std::uint64_t reads, std::uint64_t seed, std::mutex* serialize,
               ThreadResult& out) {
  Bytes buffer(disk.block_size());
  Lcg rng{seed * 0x9E3779B97F4A7C15ull + 1};
  out.latencies_us.reserve(reads);
  for (std::uint64_t i = 0; i < reads; ++i) {
    const ld::BlockId block = blocks[rng.Next() % blocks.size()];
    Stopwatch watch;
    watch.Start();
    Status status;
    if (serialize != nullptr) {
      const std::lock_guard<std::mutex> lock(*serialize);
      status = disk.Read(block, buffer);
    } else {
      status = disk.Read(block, buffer);
    }
    out.latencies_us.push_back(static_cast<double>(watch.StopUs()));
    if (!status.ok()) {
      out.status = status;
      return;
    }
  }
}

struct ModePoint {
  double reads_per_s = 0.0;
  double p99_us = 0.0;
};

Result<ModePoint> RunMode(lld::Lld& disk,
                          const std::vector<ld::BlockId>& blocks,
                          std::uint64_t threads, std::uint64_t reads,
                          bool exclusive) {
  std::mutex serialize;
  std::vector<ThreadResult> results(threads);
  Stopwatch watch;
  watch.Start();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint64_t thread = 0; thread < threads; ++thread) {
    workers.emplace_back([&disk, &blocks, reads, thread, exclusive, &serialize,
                          &results] {
      RunReader(disk, blocks, reads, thread + 1,
                exclusive ? &serialize : nullptr, results[thread]);
    });
  }
  for (std::thread& w : workers) w.join();
  const double us = static_cast<double>(watch.StopUs());

  std::vector<double> merged;
  merged.reserve(threads * reads);
  for (ThreadResult& r : results) {
    ARU_RETURN_IF_ERROR(r.status);
    merged.insert(merged.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  std::sort(merged.begin(), merged.end());
  ModePoint point;
  const double total = static_cast<double>(threads) * static_cast<double>(reads);
  point.reads_per_s = total / (us / 1e6);
  if (!merged.empty()) {
    const std::size_t at = std::min(
        merged.size() - 1,
        static_cast<std::size_t>(0.99 * static_cast<double>(merged.size())));
    point.p99_us = merged[at];
  }
  return point;
}

int Run(int argc, char** argv) {
  const std::uint64_t block_count = FlagU64(argc, argv, "blocks", 1024);
  const std::uint64_t reads = FlagU64(argc, argv, "reads_per_thread", 600);
  const std::uint64_t latency_us = FlagU64(argc, argv, "read_latency_us", 50);

  RigOptions options;
  options.device_read_latency_us = latency_us;
  options.read_cache_blocks = 0;  // every read pays the device latency
  auto rig = MakeRig(NewConfig(), options);
  if (!rig.ok()) {
    std::fprintf(stderr, "rig failed: %s\n", rig.status().ToString().c_str());
    return 1;
  }
  lld::Lld& disk = *(*rig)->disk;

  // Working set: one list of `block_count` written blocks, flushed and
  // checkpointed so every block is on-device (no open-segment or
  // in-flight serving, which would dodge the device latency).
  const auto list = disk.NewList(ld::kNoAru);
  if (!list.ok()) return 1;
  std::vector<ld::BlockId> blocks;
  blocks.reserve(block_count);
  Bytes payload(disk.block_size(), std::byte{0x5A});
  ld::BlockId pred = ld::kListHead;
  for (std::uint64_t i = 0; i < block_count; ++i) {
    const auto block = disk.NewBlock(*list, pred, ld::kNoAru);
    if (!block.ok()) return 1;
    pred = *block;
    if (const Status s = disk.Write(pred, payload, ld::kNoAru); !s.ok()) {
      return 1;
    }
    blocks.push_back(pred);
  }
  if (const Status s = disk.Flush(); !s.ok()) return 1;
  if (const Status s = disk.Checkpoint(); !s.ok()) return 1;

  BenchArtifact artifact("parallel_reads");
  artifact.AddScalar("blocks", static_cast<double>(block_count));
  artifact.AddScalar("reads_per_thread", static_cast<double>(reads));
  artifact.AddScalar("read_latency_us", static_cast<double>(latency_us));

  std::printf("Parallel read sweep: %llu-block working set, %llu reads per "
              "thread, %llu us device read latency\n",
              static_cast<unsigned long long>(block_count),
              static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(latency_us));
  Table table({"threads", "mode", "reads/s", "p99 us"});

  double exclusive_at_4 = 0.0;
  double shared_at_4 = 0.0;
  for (const std::uint64_t threads : {1ull, 2ull, 4ull, 8ull}) {
    for (const bool exclusive : {true, false}) {
      const auto point = RunMode(disk, blocks, threads, reads, exclusive);
      if (!point.ok()) {
        std::fprintf(stderr, "reader failed: %s\n",
                     point.status().ToString().c_str());
        return 1;
      }
      const std::string mode = exclusive ? "exclusive" : "shared";
      table.AddRow({std::to_string(threads), mode,
                    FormatDouble(point->reads_per_s, 0),
                    FormatDouble(point->p99_us, 1)});
      const std::string key = mode + "_t" + std::to_string(threads);
      artifact.AddScalar(key + "_reads_per_s", point->reads_per_s);
      artifact.AddScalar(key + "_p99_us", point->p99_us);
      if (threads == 4) {
        (exclusive ? exclusive_at_4 : shared_at_4) = point->reads_per_s;
      }
    }
  }
  table.Print();
  if (exclusive_at_4 > 0.0) {
    const double speedup = shared_at_4 / exclusive_at_4;
    std::printf("shared vs exclusive at 4 threads: %.2fx aggregate reads/s\n",
                speedup);
    artifact.AddScalar("shared_speedup_at_4_threads", speedup);
  }
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Run(argc, argv); }
