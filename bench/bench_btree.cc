// B+tree-on-LD microbenchmarks: insert/lookup cost (each Put is one
// full ARU: begin, shadow writes, commit-time merge) and range scans.
//
// Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "bench_support/rig.h"
#include "btree/btree.h"
#include "util/rng.h"

namespace aru::bench {
namespace {

struct TreeRig {
  TreeRig() {
    auto rig = MakeRig(NewConfig());
    if (!rig.ok()) return;
    holder = std::move(rig).value();
    auto created = btree::BTree::Create(*holder->disk);
    if (created.ok()) tree = std::move(created).value();
  }
  std::unique_ptr<Rig> holder;
  std::unique_ptr<btree::BTree> tree;
};

void BM_BTreePutSequential(benchmark::State& state) {
  TreeRig rig;
  if (rig.tree == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    ++key;
    if (!rig.tree->Put(key, key).ok()) {
      state.SkipWithError("Put failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreePutSequential);

void BM_BTreePutRandom(benchmark::State& state) {
  TreeRig rig;
  if (rig.tree == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  Rng rng(3);
  for (auto _ : state) {
    if (!rig.tree->Put(rng.Next() % 1000000, 1).ok()) {
      state.SkipWithError("Put failed");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreePutRandom);

void BM_BTreeGet(benchmark::State& state) {
  const auto entries = static_cast<std::uint64_t>(state.range(0));
  TreeRig rig;
  if (rig.tree == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  for (std::uint64_t k = 1; k <= entries; ++k) {
    if (!rig.tree->Put(k, k).ok()) {
      state.SkipWithError("Put failed");
      return;
    }
  }
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.tree->Get(rng.Range(1, entries)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreeGet)->Arg(1000)->Arg(30000)->Arg(100000);

void BM_BTreeScan1000(benchmark::State& state) {
  TreeRig rig;
  if (rig.tree == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  for (std::uint64_t k = 1; k <= 50000; ++k) {
    if (!rig.tree->Put(k, k).ok()) {
      state.SkipWithError("Put failed");
      return;
    }
  }
  Rng rng(5);
  for (auto _ : state) {
    const std::uint64_t first = rng.Range(1, 49000);
    std::uint64_t sum = 0;
    (void)rig.tree->Scan(first, first + 999,
                         [&sum](std::uint64_t, std::uint64_t value) {
                           sum += value;
                         });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_BTreeScan1000);

}  // namespace
}  // namespace aru::bench
