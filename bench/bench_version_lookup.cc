// Ablation: the paper's in-memory administration — "two perpendicular
// singly-linked lists" of alternative version records (§4). The mesh
// makes lookup-by-id and iteration-by-state both cheap; this bench
// measures LookupVisible against the number of concurrent shadow
// states holding versions of the same blocks (chain length ~ n+2, the
// paper's version bound), and iteration/merge costs.
//
// Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "lld/version_index.h"

namespace aru::lld {
namespace {

void BM_LookupVisible_ChainLength(benchmark::State& state) {
  // `arus` concurrent shadow states, each holding a version of every
  // block: the same-id chains are arus+1 long.
  const auto arus = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kBlocks = 1024;
  BlockVersions index;
  BlockMeta meta;
  meta.allocated = true;
  for (std::uint64_t b = 1; b <= kBlocks; ++b) {
    index.Put(BlockId{b}, ld::kNoAru, meta, 1, 1);
    for (std::uint64_t a = 1; a <= arus; ++a) {
      index.Put(BlockId{b}, AruId{a}, meta, 1, 1);
    }
  }
  std::uint64_t b = 1;
  const AruId reader{arus};  // the last ARU: worst-case chain position
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LookupVisible(BlockId{b}, reader));
    b = b % kBlocks + 1;
  }
}
BENCHMARK(BM_LookupVisible_ChainLength)->Arg(0)->Arg(1)->Arg(4)->Arg(16);

void BM_LookupVisible_Miss(benchmark::State& state) {
  // Blocks with no alternative records at all (the common case: lookup
  // falls through to the persistent tables immediately).
  BlockVersions index;
  BlockMeta meta;
  meta.allocated = true;
  for (std::uint64_t b = 1; b <= 64; ++b) {
    index.Put(BlockId{b}, ld::kNoAru, meta, 1, 1);
  }
  std::uint64_t b = 100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LookupVisible(BlockId{b}, ld::kNoAru));
    ++b;
  }
}
BENCHMARK(BM_LookupVisible_Miss);

void BM_MergeIntoCommitted(benchmark::State& state) {
  const auto records = static_cast<std::uint64_t>(state.range(0));
  BlockMeta meta;
  meta.allocated = true;
  for (auto _ : state) {
    state.PauseTiming();
    BlockVersions index;
    const AruId aru{1};
    for (std::uint64_t b = 1; b <= records; ++b) {
      index.Put(BlockId{b}, aru, meta, 1, 1);
    }
    std::vector<BlockId> touched;
    touched.reserve(records);
    state.ResumeTiming();
    index.MergeIntoCommitted(aru, 100, [](const BlockMeta&) {},
                             [](BlockId, const BlockMeta&) { return false; },
                             touched);
    benchmark::DoNotOptimize(touched);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_MergeIntoCommitted)->Arg(16)->Arg(256)->Arg(4096);

// The ablation baseline the paper argues against (§4: access through
// per-state lists alone "is inefficient"): one flat list of all
// alternative records, scanned linearly per lookup.
struct FlatRecord {
  BlockId id;
  AruId owner;
  BlockMeta meta;
};

void BM_FlatListLookup_Baseline(benchmark::State& state) {
  const auto arus = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kBlocks = 1024;
  std::vector<FlatRecord> records;
  BlockMeta meta;
  meta.allocated = true;
  for (std::uint64_t b = 1; b <= kBlocks; ++b) {
    records.push_back({BlockId{b}, ld::kNoAru, meta});
    for (std::uint64_t a = 1; a <= arus; ++a) {
      records.push_back({BlockId{b}, AruId{a}, meta});
    }
  }
  const AruId reader{arus};
  std::uint64_t b = 1;
  for (auto _ : state) {
    // Newest visible version: scan for the reader's shadow record,
    // falling back to committed — over the WHOLE record population.
    const FlatRecord* committed = nullptr;
    const FlatRecord* shadow = nullptr;
    for (const FlatRecord& record : records) {
      if (record.id != BlockId{b}) continue;
      if (reader.valid() && record.owner == reader) shadow = &record;
      if (!record.owner.valid()) committed = &record;
    }
    benchmark::DoNotOptimize(shadow != nullptr ? shadow : committed);
    b = b % kBlocks + 1;
  }
}
BENCHMARK(BM_FlatListLookup_Baseline)->Arg(0)->Arg(1)->Arg(4)->Arg(16);

void BM_PutReplaceShadow(benchmark::State& state) {
  // Repeated writes of the same block inside one ARU replace the shadow
  // record in place (the paper keeps only the newest version per
  // class).
  BlockVersions index;
  BlockMeta meta;
  meta.allocated = true;
  const AruId aru{1};
  Lsn lsn = 1;
  for (auto _ : state) {
    ++lsn;
    index.Put(BlockId{7}, aru, meta, lsn, lsn);
  }
}
BENCHMARK(BM_PutReplaceShadow);

}  // namespace
}  // namespace aru::lld
