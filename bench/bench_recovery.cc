// Ablation: crash-recovery time as a function of roll-forward log
// length, and the effect of checkpoints.
//
// LLD recovers by loading the newest checkpoint and replaying segment
// summaries written after it (DESIGN.md §Recovery). This bench crashes
// the disk after N file creations and measures Open() time, once with
// the log intact (no checkpoint since mkfs) and once after an explicit
// checkpoint (recovery then replays nothing).
//
// Flags: --max-files=8000
#include <cstdio>

#include "bench_support/report.h"
#include "bench_support/rig.h"
#include "blockdev/mem_disk.h"

namespace aru::bench {
namespace {

struct Sample {
  std::uint64_t files = 0;
  double no_ckpt_ms = 0;
  std::uint64_t segments_replayed = 0;
  double with_ckpt_ms = 0;
  lld::RecoveryReport report;  // of the no-checkpoint recovery
};

Result<Sample> RunOne(std::uint64_t files) {
  Sample sample;
  sample.files = files;

  for (const bool checkpoint : {false, true}) {
    auto device = std::make_unique<MemDisk>(512 * 1024 * 1024 / 512);
    lld::Options options;
    options.capacity_blocks = 100000;
    ARU_RETURN_IF_ERROR(lld::Lld::Format(*device, options));
    ARU_ASSIGN_OR_RETURN(auto disk, lld::Lld::Open(*device, options));
    ARU_RETURN_IF_ERROR(minixfs::MinixFs::Mkfs(*disk));
    ARU_ASSIGN_OR_RETURN(auto fs, minixfs::MinixFs::Mount(*disk));

    Bytes payload(1024, std::byte{42});
    for (std::uint64_t i = 0; i < files; ++i) {
      const std::string dir = "/d" + std::to_string(i / 100);
      if (i % 100 == 0) {
        ARU_RETURN_IF_ERROR(fs->Mkdir(dir).status());
      }
      ARU_RETURN_IF_ERROR(
          fs->WriteFile(dir + "/f" + std::to_string(i), payload));
    }
    ARU_RETURN_IF_ERROR(fs->Sync());
    if (checkpoint) {
      ARU_RETURN_IF_ERROR(disk->Checkpoint());
    }

    // Crash: reopen from the on-disk image only.
    Bytes image = device->CopyImage();
    fs.reset();
    disk.reset();
    auto survivor = MemDisk::FromImage(std::move(image));

    Stopwatch watch;
    watch.Start();
    ARU_ASSIGN_OR_RETURN(auto recovered, lld::Lld::Open(*survivor, options));
    const double ms = static_cast<double>(watch.StopUs()) / 1000.0;
    if (checkpoint) {
      sample.with_ckpt_ms = ms;
    } else {
      sample.no_ckpt_ms = ms;
      sample.segments_replayed = recovered->recovery_report().segments_replayed;
      sample.report = recovered->recovery_report();
    }
  }
  return sample;
}

int Main(int argc, char** argv) {
  const std::uint64_t max_files = FlagU64(argc, argv, "max-files", 8000);

  std::printf("Recovery time vs roll-forward log length\n");
  BenchArtifact artifact("recovery");
  artifact.AddScalar("max_files", static_cast<double>(max_files));
  Table table({"files", "log segments", "recover (no ckpt) ms",
               "recover (after ckpt) ms"});
  Table phases({"files", "ckpt load ms", "summary scan ms", "replay ms",
                "orphan sweep ms", "checkpoint ms"});
  for (std::uint64_t files = 500; files <= max_files; files *= 2) {
    auto sample = RunOne(files);
    if (!sample.ok()) {
      std::fprintf(stderr, "failed at %llu files: %s\n",
                   static_cast<unsigned long long>(files),
                   sample.status().ToString().c_str());
      return 1;
    }
    table.AddRow({std::to_string(sample->files),
                  std::to_string(sample->segments_replayed),
                  FormatDouble(sample->no_ckpt_ms, 2),
                  FormatDouble(sample->with_ckpt_ms, 2)});
    const lld::RecoveryReport& r = sample->report;
    const auto ms = [](std::uint64_t us) {
      return FormatDouble(static_cast<double>(us) / 1000.0, 2);
    };
    phases.AddRow({std::to_string(sample->files), ms(r.checkpoint_load_us),
                   ms(r.summary_scan_us), ms(r.replay_us),
                   ms(r.orphan_reclaim_us), ms(r.checkpoint_us)});
    const std::string prefix = "files_" + std::to_string(sample->files);
    artifact.AddScalar(prefix + "_no_ckpt_ms", sample->no_ckpt_ms);
    artifact.AddScalar(prefix + "_with_ckpt_ms", sample->with_ckpt_ms);
    artifact.AddScalar(prefix + "_segments",
                       static_cast<double>(sample->segments_replayed));
    artifact.AddScalar(prefix + "_replay_us",
                       static_cast<double>(r.replay_us));
    artifact.AddScalar(prefix + "_summary_scan_us",
                       static_cast<double>(r.summary_scan_us));
  }
  table.Print();
  std::printf("\nPer-phase breakdown of the no-checkpoint recovery:\n");
  phases.Print();
  std::printf("\nExpected shape: recovery grows linearly with the log; a\n"
              "checkpoint flattens it to near-constant (footer scan only).\n");
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
