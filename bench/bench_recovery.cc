// Ablation: crash-recovery time as a function of roll-forward log
// length, the effect of checkpoints, parallel summary-scan speedup,
// and incremental-vs-full checkpoint cost.
//
// LLD recovers by loading the newest checkpoint chain and replaying
// segment summaries written after it (DESIGN.md §Recovery, §10). Four
// sections:
//
//  1. Log-length sweep: crash after N file creations, measure Open()
//     with and without a prior checkpoint. Best of 3 per point.
//  2. Scan-thread sweep: recover the largest no-checkpoint image on a
//     LatencyDisk (modeled per-read latency) with recovery_threads in
//     {1, 2, 4, 8}; the summary scan overlaps modeled I/O, so wall
//     time drops with width even on a single-core host.
//  3. Checkpoint cost: after a bounding checkpoint, dirty a few files
//     and time the next Checkpoint() — full snapshot vs incremental
//     delta of just the changed entries.
//  4. Scale: with incremental checkpoints on, recover at 8k and 100k
//     files on one fixed geometry; with the log bounded by the chain,
//     the 100k point should cost well under the naive 12.5x.
//
// Flags: --max-files=8000 --big-files=100000 --latency-us=50
//        (--big-files=0 skips the slow scale section)
#include <cstdio>
#include <memory>
#include <string>

#include "bench_support/report.h"
#include "bench_support/rig.h"
#include "blockdev/mem_disk.h"

namespace aru::bench {
namespace {

// Builds a crashed on-disk image: format, mkfs, create `files` 1KB
// files in directories of 100, sync, optionally checkpoint, then
// capture the raw device image (the "crash").
Result<Bytes> BuildCrashedImage(const lld::Options& options,
                                std::uint64_t device_bytes,
                                std::uint64_t files, bool checkpoint) {
  auto device = std::make_unique<MemDisk>(device_bytes / 512);
  ARU_RETURN_IF_ERROR(lld::Lld::Format(*device, options));
  ARU_ASSIGN_OR_RETURN(auto disk, lld::Lld::Open(*device, options));
  ARU_RETURN_IF_ERROR(minixfs::MinixFs::Mkfs(*disk));
  ARU_ASSIGN_OR_RETURN(auto fs, minixfs::MinixFs::Mount(*disk));

  Bytes payload(1024, std::byte{42});
  for (std::uint64_t i = 0; i < files; ++i) {
    const std::string dir = "/d" + std::to_string(i / 100);
    if (i % 100 == 0) {
      ARU_RETURN_IF_ERROR(fs->Mkdir(dir).status());
    }
    ARU_RETURN_IF_ERROR(
        fs->WriteFile(dir + "/f" + std::to_string(i), payload));
  }
  ARU_RETURN_IF_ERROR(fs->Sync());
  if (checkpoint) {
    ARU_RETURN_IF_ERROR(disk->Checkpoint());
  }
  return device->CopyImage();
}

struct RecoveryTiming {
  double open_ms = 0;
  lld::RecoveryReport report;
};

// Recovers from a private copy of `image` and times Open(). With
// read_latency_us > 0 every device read pays modeled latency, giving
// the parallel summary scan wall time to overlap.
Result<RecoveryTiming> Recover(const Bytes& image, const lld::Options& options,
                               std::uint64_t read_latency_us) {
  LatencyDisk device(MemDisk::FromImage(Bytes(image)));
  if (read_latency_us > 0) device.set_read_latency_us(read_latency_us);
  Stopwatch watch;
  watch.Start();
  ARU_ASSIGN_OR_RETURN(auto recovered, lld::Lld::Open(device, options));
  RecoveryTiming timing;
  timing.open_ms = static_cast<double>(watch.StopUs()) / 1000.0;
  timing.report = recovered->recovery_report();
  return timing;
}

// Best (minimum open time) of three recoveries from the same image.
Result<RecoveryTiming> BestOf3(const Bytes& image, const lld::Options& options,
                               std::uint64_t read_latency_us) {
  RecoveryTiming best;
  for (int run = 0; run < 3; ++run) {
    ARU_ASSIGN_OR_RETURN(RecoveryTiming timing,
                         Recover(image, options, read_latency_us));
    if (run == 0 || timing.open_ms < best.open_ms) best = timing;
  }
  return best;
}

struct Sample {
  std::uint64_t files = 0;
  double no_ckpt_ms = 0;
  std::uint64_t segments_replayed = 0;
  double with_ckpt_ms = 0;
  lld::RecoveryReport report;  // of the no-checkpoint recovery
};

Result<Sample> RunOne(std::uint64_t files) {
  Sample sample;
  sample.files = files;
  lld::Options options;
  options.capacity_blocks = 100000;

  for (const bool checkpoint : {false, true}) {
    ARU_ASSIGN_OR_RETURN(
        const Bytes image,
        BuildCrashedImage(options, 512ull * 1024 * 1024, files, checkpoint));
    ARU_ASSIGN_OR_RETURN(const RecoveryTiming best,
                         BestOf3(image, options, /*read_latency_us=*/0));
    if (checkpoint) {
      sample.with_ckpt_ms = best.open_ms;
    } else {
      sample.no_ckpt_ms = best.open_ms;
      sample.segments_replayed = best.report.segments_replayed;
      sample.report = best.report;
    }
  }
  return sample;
}

// Time the (N+1)th checkpoint after dirtying a handful of files: with
// incremental checkpoints it writes a delta of just those entries;
// without, it re-snapshots every live table entry.
Result<double> CheckpointCostMs(bool incremental, std::uint64_t files) {
  auto device = std::make_unique<MemDisk>(512ull * 1024 * 1024 / 512);
  lld::Options options;
  options.capacity_blocks = 100000;
  options.incremental_checkpoints = incremental;
  ARU_RETURN_IF_ERROR(lld::Lld::Format(*device, options));
  ARU_ASSIGN_OR_RETURN(auto disk, lld::Lld::Open(*device, options));
  ARU_RETURN_IF_ERROR(minixfs::MinixFs::Mkfs(*disk));
  ARU_ASSIGN_OR_RETURN(auto fs, minixfs::MinixFs::Mount(*disk));

  Bytes payload(1024, std::byte{42});
  for (std::uint64_t i = 0; i < files; ++i) {
    const std::string dir = "/d" + std::to_string(i / 100);
    if (i % 100 == 0) {
      ARU_RETURN_IF_ERROR(fs->Mkdir(dir).status());
    }
    ARU_RETURN_IF_ERROR(
        fs->WriteFile(dir + "/f" + std::to_string(i), payload));
  }
  ARU_RETURN_IF_ERROR(fs->Sync());
  ARU_RETURN_IF_ERROR(disk->Checkpoint());  // bounding base

  double best = 0;
  for (int run = 0; run < 3; ++run) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      ARU_RETURN_IF_ERROR(
          fs->WriteFile("/d0/f" + std::to_string(i), payload));
    }
    ARU_RETURN_IF_ERROR(fs->Sync());
    Stopwatch watch;
    watch.Start();
    ARU_RETURN_IF_ERROR(disk->Checkpoint());
    const double ms = static_cast<double>(watch.StopUs()) / 1000.0;
    if (run == 0 || ms < best) best = ms;
  }
  return best;
}

int Main(int argc, char** argv) {
  const std::uint64_t max_files = FlagU64(argc, argv, "max-files", 8000);
  const std::uint64_t big_files = FlagU64(argc, argv, "big-files", 100000);
  const std::uint64_t latency_us = FlagU64(argc, argv, "latency-us", 50);

  BenchArtifact artifact("recovery");
  artifact.AddScalar("max_files", static_cast<double>(max_files));

  // --- 1. Recovery time vs roll-forward log length (best of 3) ---
  std::printf("Recovery time vs roll-forward log length (best of 3)\n");
  Table table({"files", "log segments", "recover (no ckpt) ms",
               "recover (after ckpt) ms"});
  Table phases({"files", "ckpt load ms", "summary scan ms", "replay ms",
                "orphan sweep ms", "checkpoint ms"});
  for (std::uint64_t files = 500; files <= max_files; files *= 2) {
    auto sample = RunOne(files);
    if (!sample.ok()) {
      std::fprintf(stderr, "failed at %llu files: %s\n",
                   static_cast<unsigned long long>(files),
                   sample.status().ToString().c_str());
      return 1;
    }
    table.AddRow({std::to_string(sample->files),
                  std::to_string(sample->segments_replayed),
                  FormatDouble(sample->no_ckpt_ms, 2),
                  FormatDouble(sample->with_ckpt_ms, 2)});
    const lld::RecoveryReport& r = sample->report;
    const auto ms = [](std::uint64_t us) {
      return FormatDouble(static_cast<double>(us) / 1000.0, 2);
    };
    phases.AddRow({std::to_string(sample->files), ms(r.checkpoint_load_us),
                   ms(r.summary_scan_us), ms(r.replay_us),
                   ms(r.orphan_reclaim_us), ms(r.checkpoint_us)});
    const std::string prefix = "files_" + std::to_string(sample->files);
    artifact.AddScalar(prefix + "_no_ckpt_ms", sample->no_ckpt_ms);
    artifact.AddScalar(prefix + "_with_ckpt_ms", sample->with_ckpt_ms);
    artifact.AddScalar(prefix + "_segments",
                       static_cast<double>(sample->segments_replayed));
    artifact.AddScalar(prefix + "_replay_us",
                       static_cast<double>(r.replay_us));
    artifact.AddScalar(prefix + "_summary_scan_us",
                       static_cast<double>(r.summary_scan_us));
  }
  table.Print();
  std::printf("\nPer-phase breakdown of the no-checkpoint recovery:\n");
  phases.Print();
  std::printf("\nExpected shape: recovery grows linearly with the log; a\n"
              "checkpoint flattens it to near-constant (footer scan only).\n");

  // --- 2. Summary-scan wall time vs recovery_threads ---
  std::printf("\nParallel summary scan at %llu files "
              "(modeled read latency %llu us, best of 3)\n",
              static_cast<unsigned long long>(max_files),
              static_cast<unsigned long long>(latency_us));
  {
    lld::Options options;
    options.capacity_blocks = 100000;
    auto image = BuildCrashedImage(options, 512ull * 1024 * 1024, max_files,
                                   /*checkpoint=*/false);
    if (!image.ok()) {
      std::fprintf(stderr, "scan sweep build: %s\n",
                   image.status().ToString().c_str());
      return 1;
    }
    Table scan_table({"threads", "summary scan ms", "speedup vs 1"});
    double serial_ms = 0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      options.recovery_threads = threads;
      auto best = BestOf3(*image, options, latency_us);
      if (!best.ok()) {
        std::fprintf(stderr, "scan sweep at %zu threads: %s\n", threads,
                     best.status().ToString().c_str());
        return 1;
      }
      const double scan_ms =
          static_cast<double>(best->report.summary_scan_us) / 1000.0;
      if (threads == 1) serial_ms = scan_ms;
      scan_table.AddRow({std::to_string(threads), FormatDouble(scan_ms, 2),
                         FormatDouble(scan_ms > 0 ? serial_ms / scan_ms : 0,
                                      2)});
      artifact.AddScalar(
          "recovery_scan_threads" + std::to_string(threads) + "_ms", scan_ms);
    }
    scan_table.Print();
    std::printf("\nExpected shape: scan wall time shrinks with width — the\n"
                "workers overlap the modeled per-slot read latency.\n");
  }

  // --- 3. Incremental vs full checkpoint cost ---
  std::printf("\nCheckpoint cost after dirtying 8 files of %llu "
              "(best of 3)\n",
              static_cast<unsigned long long>(max_files));
  {
    auto full_ms = CheckpointCostMs(/*incremental=*/false, max_files);
    auto delta_ms = CheckpointCostMs(/*incremental=*/true, max_files);
    if (!full_ms.ok() || !delta_ms.ok()) {
      std::fprintf(stderr, "checkpoint cost: %s\n",
                   (full_ms.ok() ? delta_ms : full_ms)
                       .status().ToString().c_str());
      return 1;
    }
    Table ckpt_table({"mode", "checkpoint ms"});
    ckpt_table.AddRow({"full snapshot", FormatDouble(*full_ms, 3)});
    ckpt_table.AddRow({"incremental delta", FormatDouble(*delta_ms, 3)});
    ckpt_table.Print();
    artifact.AddScalar("ckpt_full_ms", *full_ms);
    artifact.AddScalar("ckpt_incremental_ms", *delta_ms);
    artifact.AddScalar("ckpt_incremental_vs_full",
                       *full_ms > 0 ? *delta_ms / *full_ms : 0);
    std::printf("\nExpected shape: the delta writes only the changed\n"
                "entries, so its cost is independent of table size.\n");
  }

  // --- 4. Checkpointed recovery at scale ---
  // Recovered on the same modeled-latency device as the thread sweep:
  // with the chain bounding roll-forward, recovery I/O is the
  // size-independent footer scan plus the chain read, so the modeled
  // per-read cost — the part that dominates on a real disk — is flat
  // in live data.
  if (big_files > 0) {
    std::printf("\nCheckpointed recovery at scale "
                "(incremental chain, read latency %llu us, best of 3)\n",
                static_cast<unsigned long long>(latency_us));
    lld::Options options;
    options.block_size = 1024;
    options.capacity_blocks = 400000;
    options.incremental_checkpoints = true;
    Table scale_table({"files", "recover ms", "delta images", "ckpt load ms",
                       "scan ms", "replay ms", "orphan ms", "ckpt ms"});
    double base_ms = 0;   // the 8000-file point
    double big_ms = 0;    // the big_files point
    for (const std::uint64_t files : {std::uint64_t{8000}, big_files}) {
      auto image = BuildCrashedImage(options, 768ull * 1024 * 1024, files,
                                     /*checkpoint=*/true);
      if (!image.ok()) {
        std::fprintf(stderr, "scale build at %llu files: %s\n",
                     static_cast<unsigned long long>(files),
                     image.status().ToString().c_str());
        return 1;
      }
      auto best = BestOf3(*image, options, latency_us);
      if (!best.ok()) {
        std::fprintf(stderr, "scale recover at %llu files: %s\n",
                     static_cast<unsigned long long>(files),
                     best.status().ToString().c_str());
        return 1;
      }
      const auto ms = [](std::uint64_t us) {
        return FormatDouble(static_cast<double>(us) / 1000.0, 2);
      };
      scale_table.AddRow(
          {std::to_string(files), FormatDouble(best->open_ms, 2),
           std::to_string(best->report.checkpoint_delta_images),
           ms(best->report.checkpoint_load_us),
           ms(best->report.summary_scan_us), ms(best->report.replay_us),
           ms(best->report.orphan_reclaim_us),
           ms(best->report.checkpoint_us)});
      artifact.AddScalar("ckpt_scale_" + std::to_string(files) + "_ms",
                         best->open_ms);
      if (files == 8000) {
        base_ms = best->open_ms;
      } else {
        big_ms = best->open_ms;
      }
    }
    scale_table.Print();
    if (base_ms > 0) {
      artifact.AddScalar("ckpt_scale_100k_over_8k", big_ms / base_ms);
      std::printf("\n%llux the files costs %.2fx the recovery — the chain\n"
                  "bounds roll-forward; the footer scan dominates both.\n",
                  static_cast<unsigned long long>(big_files / 8000),
                  big_ms / base_ms);
    }
  }

  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
