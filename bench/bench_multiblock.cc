// Ablation: multi-block reads (ReadMany) vs per-block reads, on the HP
// C3010 disk model. A sequentially written file occupies consecutive
// blocks of consecutive segments; ReadMany coalesces it into one device
// request per segment, paying the controller + rotation cost once per
// run instead of once per block.
//
// Flags: --blocks=2048
#include <cstdio>

#include "bench_support/report.h"
#include "bench_support/rig.h"

namespace aru::bench {
namespace {

int Main(int argc, char** argv) {
  const std::uint64_t count = FlagU64(argc, argv, "blocks", 2048);

  VirtualClock clock;
  auto device = std::make_unique<ModeledDisk>(
      std::make_unique<MemDisk>(256 * 1024 * 1024 / 512),
      DiskModelParams::HpC3010(), &clock);
  lld::Options options;
  auto format = lld::Lld::Format(*device, options);
  if (!format.ok()) return 1;
  auto disk = lld::Lld::Open(*device, options);
  if (!disk.ok()) return 1;

  auto list = (*disk)->NewList();
  std::vector<ld::BlockId> blocks;
  ld::BlockId pred = ld::kListHead;
  Bytes payload(4096, std::byte{1});
  for (std::uint64_t i = 0; i < count; ++i) {
    auto block = (*disk)->NewBlock(*list, pred);
    if (!block.ok()) return 1;
    pred = *block;
    if (!(*disk)->Write(pred, payload).ok()) return 1;
    blocks.push_back(pred);
  }
  if (!(*disk)->Flush().ok()) return 1;

  const std::uint64_t mb = count * 4096 / (1024 * 1024);
  std::printf("Sequential read of a %llu MB file (%llu blocks), "
              "HP C3010 model\n",
              static_cast<unsigned long long>(mb),
              static_cast<unsigned long long>(count));
  Table table({"method", "device reads", "modeled I/O s", "modeled MB/s",
               "wall ms"});
  BenchArtifact artifact("multiblock");
  artifact.AddScalar("blocks", static_cast<double>(count));

  for (const bool many : {false, true}) {
    const std::uint64_t reads_before = device->stats().read_ops;
    const std::uint64_t io_before = clock.now_us();
    Stopwatch watch;
    watch.Start();
    if (many) {
      Bytes out(count * 4096);
      if (!(*disk)->ReadMany(blocks, out).ok()) return 1;
    } else {
      Bytes out(4096);
      for (const ld::BlockId block : blocks) {
        if (!(*disk)->Read(block, out).ok()) return 1;
      }
    }
    const double wall_ms = static_cast<double>(watch.StopUs()) / 1000.0;
    const double io_s =
        static_cast<double>(clock.now_us() - io_before) / 1e6;
    const std::uint64_t device_reads =
        device->stats().read_ops - reads_before;
    table.AddRow({many ? "ReadMany (coalesced)" : "Read per block",
                  std::to_string(device_reads), FormatDouble(io_s, 2),
                  FormatDouble(static_cast<double>(mb) / io_s, 2),
                  FormatDouble(wall_ms, 1)});
    const std::string key = many ? "read_many" : "read_per_block";
    artifact.AddScalar(key + "_device_reads",
                       static_cast<double>(device_reads));
    artifact.AddScalar(key + "_modeled_io_s", io_s);
    artifact.AddScalar(key + "_modeled_mbps",
                       static_cast<double>(mb) / io_s);
  }
  table.Print();
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  std::printf("\nExpected shape: coalescing collapses ~%llu per-block\n"
              "requests into ~one per segment, taking the modeled disk\n"
              "from overhead-bound to media-rate.\n",
              static_cast<unsigned long long>(count));
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
