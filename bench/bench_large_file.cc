// Reproduces Figure 6: throughput in MByte/second for the large-file
// experiment — a 78.125 MB file written sequentially (write1), read
// sequentially (read1), written in random order (write2), read in
// random order (read2), and read sequentially again (read3) — for the
// old and new versions of MinixLLD.
//
// Flags: --mb=78 (file size; 78 ~= the paper's 78.125 MB)
//        --repeats=3
//        --model  also print throughput against the HP C3010 disk
//                 model's virtual clock (paper-scale absolute numbers)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_support/report.h"
#include "bench_support/rig.h"
#include "bench_support/workloads.h"

namespace aru::bench {
namespace {

int Main(int argc, char** argv) {
  const std::uint64_t mb = FlagU64(argc, argv, "mb", 78);
  const std::uint64_t repeats = FlagU64(argc, argv, "repeats", 3);
  const bool model = FlagBool(argc, argv, "model", false);
  const std::uint64_t file_bytes = mb * 1024 * 1024 + 128 * 1024;

  const std::vector<MinixLldConfig> configs = {OldConfig(), NewConfig()};

  struct Series {
    std::string name;
    std::vector<double> mbps;          // wall-clock, 5 phases
    std::vector<double> modeled_mbps;  // HP C3010 model, 5 phases
  };
  std::vector<Series> series;

  std::vector<std::vector<std::vector<double>>> wall_all(
      configs.size(), std::vector<std::vector<double>>(5));
  std::vector<std::vector<std::vector<double>>> modeled_all(
      configs.size(), std::vector<std::vector<double>>(5));

  // Warm-up pass (discarded) so the first measured config does not pay
  // allocator/page-cache costs the later ones avoid; then interleave
  // configs within each repeat.
  for (std::uint64_t rep = 0; rep < repeats + 1; ++rep) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const MinixLldConfig& config = configs[c];
      auto& wall = wall_all[c];
      auto& modeled = modeled_all[c];
      RigOptions options;
      options.model_disk_time = model;
      // write1 + write2 write the file twice; leave log headroom.
      options.device_mb = mb * 4 + 128;
      options.capacity_blocks = 100000;
      auto rig = MakeRig(config, options);
      if (!rig.ok()) {
        std::fprintf(stderr, "rig failed: %s\n",
                     rig.status().ToString().c_str());
        return 1;
      }
      auto result = RunLargeFileWorkload(**rig, file_bytes);
      if (!result.ok()) {
        std::fprintf(stderr, "workload failed (%s): %s\n",
                     config.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      const Phase* phases[5] = {&result->write1, &result->read1,
                                &result->write2, &result->read2,
                                &result->read3};
      if (rep == 0) continue;  // warm-up run: discard
      for (int p = 0; p < 5; ++p) {
        wall[static_cast<std::size_t>(p)].push_back(
            MBytesPerSecond(file_bytes, *phases[p]));
        if (model) {
          modeled[static_cast<std::size_t>(p)].push_back(
              ModeledMBytesPerSecond(file_bytes, *phases[p]));
        }
      }
    }
  }
  for (std::size_t c = 0; c < configs.size(); ++c) {
    Series s;
    s.name = configs[c].name;
    for (int p = 0; p < 5; ++p) {
      s.mbps.push_back(Median(wall_all[c][static_cast<std::size_t>(p)]));
      if (model) {
        s.modeled_mbps.push_back(
            Median(modeled_all[c][static_cast<std::size_t>(p)]));
      }
    }
    series.push_back(std::move(s));
  }

  std::printf("Figure 6: large-file throughput (MByte/second), %llu MB "
              "file, median of %llu runs\n",
              static_cast<unsigned long long>(mb),
              static_cast<unsigned long long>(repeats));
  Table figure({"version", "write1", "read1", "write2", "read2", "read3"});
  for (const Series& s : series) {
    figure.AddRow({s.name, FormatDouble(s.mbps[0]), FormatDouble(s.mbps[1]),
                   FormatDouble(s.mbps[2]), FormatDouble(s.mbps[3]),
                   FormatDouble(s.mbps[4])});
  }
  figure.Print();

  std::printf("\npercent-difference old vs new (paper: write1 2.9%%, "
              "others 0.2%%-0.7%%), with run-to-run noise\n");
  const char* phase_names[5] = {"write1", "read1", "write2", "read2",
                                "read3"};
  for (int p = 0; p < 5; ++p) {
    const auto idx = static_cast<std::size_t>(p);
    // Spread of the samples around the median, as a % of the median:
    // differences smaller than this are measurement noise.
    double spread = 0.0;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const auto& xs = wall_all[c][idx];
      const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
      const double median = Median(xs);
      if (median > 0.0) {
        spread = std::max(spread, (*hi - *lo) / median * 100.0);
      }
    }
    std::printf("  %-6s: %5.1f%%   (run-to-run spread %.1f%%)\n",
                phase_names[p],
                PercentDifference(series[0].mbps[idx], series[1].mbps[idx]),
                spread);
  }

  if (model) {
    std::printf("\nHP C3010 modeled I/O throughput (MByte/second) — "
                "absolute scale comparable to the paper's testbed\n");
    Table modeled_table(
        {"version", "write1", "read1", "write2", "read2", "read3"});
    for (const Series& s : series) {
      modeled_table.AddRow({s.name, FormatDouble(s.modeled_mbps[0]),
                            FormatDouble(s.modeled_mbps[1]),
                            FormatDouble(s.modeled_mbps[2]),
                            FormatDouble(s.modeled_mbps[3]),
                            FormatDouble(s.modeled_mbps[4])});
    }
    modeled_table.Print();
  }

  BenchArtifact artifact("large_file");
  artifact.AddScalar("file_mb", static_cast<double>(mb));
  artifact.AddScalar("repeats", static_cast<double>(repeats));
  artifact.AddString("modeled_disk", model ? "true" : "false");
  for (const Series& s : series) {
    const std::string key = s.name == "old" ? "old" : "new";
    for (int p = 0; p < 5; ++p) {
      const auto idx = static_cast<std::size_t>(p);
      artifact.AddScalar(key + "_" + phase_names[p] + "_mbps", s.mbps[idx]);
      if (model) {
        artifact.AddScalar(key + "_" + phase_names[p] + "_modeled_mbps",
                           s.modeled_mbps[idx]);
      }
    }
  }
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
