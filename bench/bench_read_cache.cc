// Ablation: the LLD read cache. Random whole-file reads over working
// sets smaller and larger than the cache, with and without the cache,
// on the HP C3010 disk model (where a hit saves a real seek) and on
// the RAM substrate (where it saves a memcpy + syscall-free device
// read).
//
// Flags: --files=400 --reads=4000 --cache-blocks=512
#include <cstdio>

#include "bench_support/report.h"
#include "bench_support/rig.h"
#include "util/rng.h"

namespace aru::bench {
namespace {

struct RunResult {
  double wall_s = 0;
  double virtual_io_s = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

Result<RunResult> RunOne(std::size_t cache_blocks, std::uint64_t files,
                         std::uint64_t reads, std::uint64_t hot_files) {
  VirtualClock clock;
  auto mem = std::make_unique<MemDisk>(256 * 1024 * 1024 / 512);
  auto device = std::make_unique<ModeledDisk>(
      std::move(mem), DiskModelParams::HpC3010(), &clock);

  lld::Options options;
  options.read_cache_blocks = cache_blocks;
  ARU_RETURN_IF_ERROR(lld::Lld::Format(*device, options));
  ARU_ASSIGN_OR_RETURN(auto disk, lld::Lld::Open(*device, options));

  // One list of `files` 4 KB blocks ("files" of one block each).
  ARU_ASSIGN_OR_RETURN(const auto list, disk->NewList());
  std::vector<ld::BlockId> blocks;
  ld::BlockId pred = ld::kListHead;
  Bytes payload(disk->block_size(), std::byte{7});
  for (std::uint64_t i = 0; i < files; ++i) {
    ARU_ASSIGN_OR_RETURN(pred, disk->NewBlock(list, pred));
    ARU_RETURN_IF_ERROR(disk->Write(pred, payload));
    blocks.push_back(pred);
  }
  ARU_RETURN_IF_ERROR(disk->Flush());

  // Zipf-ish: 90% of reads hit the first `hot_files` blocks.
  Rng rng(17);
  Bytes out(disk->block_size());
  const std::uint64_t io_before = clock.now_us();
  Stopwatch watch;
  watch.Start();
  for (std::uint64_t i = 0; i < reads; ++i) {
    const std::uint64_t target = rng.Chance(9, 10)
                                     ? rng.Below(hot_files)
                                     : rng.Below(files);
    ARU_RETURN_IF_ERROR(disk->Read(blocks[target], out));
  }
  RunResult result;
  result.wall_s = static_cast<double>(watch.StopUs()) / 1e6;
  result.virtual_io_s =
      static_cast<double>(clock.now_us() - io_before) / 1e6;
  result.hits = disk->read_cache_stats().hits;
  result.misses = disk->read_cache_stats().misses;
  return result;
}

int Main(int argc, char** argv) {
  const std::uint64_t files = FlagU64(argc, argv, "files", 400);
  const std::uint64_t reads = FlagU64(argc, argv, "reads", 4000);
  const std::uint64_t cache = FlagU64(argc, argv, "cache-blocks", 512);

  std::printf("LLD read-cache ablation: %llu random reads over %llu "
              "one-block files (90%% of reads on the hottest 10%%)\n",
              static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(files));
  Table table({"config", "wall s", "modeled I/O s", "hit rate"});
  struct Config {
    const char* name;
    std::size_t cache_blocks;
    std::uint64_t hot;
  };
  const Config configs[] = {
      {"no cache", 0, files / 10},
      {"cache, hot set fits", cache, files / 10},
      {"cache, hot set does not fit", files / 25, files / 10},
  };
  BenchArtifact artifact("read_cache");
  artifact.AddScalar("files", static_cast<double>(files));
  artifact.AddScalar("reads", static_cast<double>(reads));
  const char* keys[] = {"no_cache", "cache_fits", "cache_thrash"};
  for (std::size_t c = 0; c < 3; ++c) {
    const Config& config = configs[c];
    auto result = RunOne(config.cache_blocks, files, reads, config.hot);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", config.name,
                   result.status().ToString().c_str());
      return 1;
    }
    const std::uint64_t lookups = result->hits + result->misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : 100.0 * static_cast<double>(result->hits) /
                           static_cast<double>(lookups);
    table.AddRow({config.name, FormatDouble(result->wall_s, 3),
                  FormatDouble(result->virtual_io_s, 2),
                  lookups == 0 ? std::string("-")
                               : FormatDouble(hit_rate) + "%"});
    artifact.AddScalar(std::string(keys[c]) + "_wall_s", result->wall_s);
    artifact.AddScalar(std::string(keys[c]) + "_modeled_io_s",
                       result->virtual_io_s);
    artifact.AddScalar(std::string(keys[c]) + "_hit_rate_percent", hit_rate);
  }
  table.Print();
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  std::printf("\nExpected shape: a cache that holds the hot set absorbs\n"
              "~90%% of reads (each saved read is a saved seek on the\n"
              "modeled 1993 disk); an undersized cache thrashes.\n");
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
