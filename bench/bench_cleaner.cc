// Ablation: segment-cleaner victim-selection policy (greedy vs the
// Sprite-LFS cost-benefit rule) under an overwrite workload that
// fragments the log.
//
// The workload fills a small disk with files, then repeatedly
// overwrites a random subset, forcing the cleaner to run. We report
// cleaning effort (segments cleaned, live blocks copied — i.e. write
// amplification) and total runtime per policy.
//
// Flags: --rounds=30 --overwrites=400
#include <cstdio>

#include "bench_support/report.h"
#include "bench_support/rig.h"
#include "util/rng.h"

namespace aru::bench {
namespace {

struct PolicyResult {
  double wall_s = 0;
  std::uint64_t cleaner_passes = 0;
  std::uint64_t segments_cleaned = 0;
  std::uint64_t blocks_copied = 0;
};

Result<PolicyResult> RunPolicy(lld::CleanerPolicy policy,
                               std::uint64_t rounds,
                               std::uint64_t overwrites) {
  // A small, tight disk: 48 MB device, logical capacity sized so the
  // workload keeps the cleaner busy.
  MinixLldConfig config = NewConfig();
  RigOptions rig_options;
  rig_options.device_mb = 48;
  rig_options.capacity_blocks = 6000;
  ARU_ASSIGN_OR_RETURN(auto rig, MakeRig(config, rig_options));
  // Rebuild the LLD with the requested cleaner policy.
  rig->fs.reset();
  rig->disk.reset();
  lld::Options lld_options;
  lld_options.capacity_blocks = rig_options.capacity_blocks;
  lld_options.cleaner_policy = policy;
  ARU_RETURN_IF_ERROR(lld::Lld::Format(*rig->device, lld_options));
  ARU_ASSIGN_OR_RETURN(rig->disk,
                       lld::Lld::Open(*rig->device, lld_options));
  ARU_RETURN_IF_ERROR(minixfs::MinixFs::Mkfs(*rig->disk));
  ARU_ASSIGN_OR_RETURN(rig->fs,
                       minixfs::MinixFs::Mount(*rig->disk, config.policy));

  constexpr std::uint64_t kFiles = 400;
  Bytes payload(8192, std::byte{1});
  Rng rng(99);

  Stopwatch watch;
  watch.Start();
  for (std::uint64_t i = 0; i < kFiles; ++i) {
    ARU_RETURN_IF_ERROR(
        rig->fs->WriteFile("/f" + std::to_string(i), payload));
  }
  ARU_RETURN_IF_ERROR(rig->fs->Sync());

  for (std::uint64_t round = 0; round < rounds; ++round) {
    for (std::uint64_t i = 0; i < overwrites; ++i) {
      // Skewed (hot/cold) overwrites: 90% of writes hit 10% of the
      // files. Cold segments stay mostly live; cost-benefit should
      // prefer them once they age, copying less in total than greedy.
      const std::uint64_t target = rng.Chance(9, 10)
                                       ? rng.Below(kFiles / 10)
                                       : rng.Below(kFiles);
      ARU_RETURN_IF_ERROR(
          rig->fs->WriteFile("/f" + std::to_string(target), payload));
    }
    ARU_RETURN_IF_ERROR(rig->fs->Sync());
  }

  PolicyResult result;
  result.wall_s = static_cast<double>(watch.StopUs()) / 1e6;
  const lld::LldStats& stats = rig->disk->stats();
  result.cleaner_passes = stats.cleaner_passes;
  result.segments_cleaned = stats.segments_cleaned;
  result.blocks_copied = stats.blocks_copied_by_cleaner;
  return result;
}

int Main(int argc, char** argv) {
  const std::uint64_t rounds = FlagU64(argc, argv, "rounds", 30);
  const std::uint64_t overwrites = FlagU64(argc, argv, "overwrites", 400);

  std::printf("Segment-cleaner policy ablation (%llu rounds x %llu "
              "overwrites of 8 KB files on a tight 48 MB disk)\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(overwrites));
  BenchArtifact artifact("cleaner");
  artifact.AddScalar("rounds", static_cast<double>(rounds));
  artifact.AddScalar("overwrites", static_cast<double>(overwrites));
  Table table({"policy", "wall s", "cleaner passes", "segments cleaned",
               "live blocks copied"});
  for (const auto& [name, policy] :
       {std::pair{"greedy", lld::CleanerPolicy::kGreedy},
        std::pair{"cost-benefit", lld::CleanerPolicy::kCostBenefit}}) {
    auto result = RunPolicy(policy, rounds, overwrites);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({name, FormatDouble(result->wall_s, 2),
                  std::to_string(result->cleaner_passes),
                  std::to_string(result->segments_cleaned),
                  std::to_string(result->blocks_copied)});
    const std::string key = std::string(name) == "greedy" ? "greedy" : "cb";
    artifact.AddScalar(key + "_wall_s", result->wall_s);
    artifact.AddScalar(key + "_cleaner_passes",
                       static_cast<double>(result->cleaner_passes));
    artifact.AddScalar(key + "_segments_cleaned",
                       static_cast<double>(result->segments_cleaned));
    artifact.AddScalar(key + "_blocks_copied",
                       static_cast<double>(result->blocks_copied));
  }
  table.Print();
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  std::printf(
      "\nExpected shape: greedy minimizes copies this instant (emptiest\n"
      "victim first); cost-benefit deliberately also cleans old, fuller\n"
      "cold segments (higher copy count now) to compact cold data away\n"
      "from the hot log — the classic Sprite-LFS trade-off.\n");
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
