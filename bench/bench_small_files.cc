// Reproduces Figure 5 (and the §5.3 percent-differences) of
// "Atomic Recovery Units: Failure Atomicity for Logical Disks":
// throughput in files/second for creating+writing (C+W), reading (R)
// and deleting (D) N small files, for the three MinixLLD versions of
// Table 1 (old / new / new,delete).
//
// Flags: --files-1k=10000 --files-10k=1000 --repeats=3 --model
//        (--model additionally reports HP C3010 modeled I/O time)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_support/report.h"
#include "bench_support/rig.h"
#include "bench_support/workloads.h"

namespace aru::bench {
namespace {

struct Row {
  std::string config;
  double cw_1k = 0, r_1k = 0, d_1k = 0;
  double cw_10k = 0, r_10k = 0, d_10k = 0;
};

Result<SmallFileResult> RunOnce(const MinixLldConfig& config,
                                std::uint64_t files,
                                std::uint64_t file_bytes, bool model) {
  RigOptions options;
  options.model_disk_time = model;
  ARU_ASSIGN_OR_RETURN(auto rig, MakeRig(config, options));
  return RunSmallFileWorkload(*rig, files, file_bytes);
}

int Main(int argc, char** argv) {
  const std::uint64_t files_1k = FlagU64(argc, argv, "files-1k", 10000);
  const std::uint64_t files_10k = FlagU64(argc, argv, "files-10k", 1000);
  const std::uint64_t repeats = FlagU64(argc, argv, "repeats", 3);
  const bool model = FlagBool(argc, argv, "model", false);

  std::printf("Table 1: MinixLLD versions under evaluation\n");
  Table table1({"version", "description"});
  table1.AddRow({"old", "original MinixLLD (sequential ARUs; creation/"
                        "deletion not bracketed)"});
  table1.AddRow({"new", "MinixLLD with concurrent ARUs (each create/delete "
                        "in its own ARU)"});
  table1.AddRow({"new, delete", "concurrent ARUs + improved file deletion "
                                "(delete the list wholesale)"});
  table1.Print();
  std::printf("\n");

  const std::vector<MinixLldConfig> configs = {OldConfig(), NewConfig(),
                                               NewDeleteConfig()};

  // Warm up the allocator and page cache so the first measured config
  // is not systematically penalized, then interleave configs within
  // each repeat.
  {
    const std::uint64_t warm = std::min<std::uint64_t>(files_1k, 2000);
    for (const MinixLldConfig& config : configs) {
      (void)RunOnce(config, warm, 1024, model);
    }
  }

  struct Samples {
    std::vector<double> cw1, r1, d1, cw10, r10, d10;
  };
  std::vector<Samples> samples(configs.size());

  for (std::uint64_t rep = 0; rep < repeats; ++rep) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const MinixLldConfig& config = configs[c];
      auto small = RunOnce(config, files_1k, 1024, model);
      if (!small.ok()) {
        std::fprintf(stderr, "1KB run failed (%s): %s\n",
                     config.name.c_str(),
                     small.status().ToString().c_str());
        return 1;
      }
      samples[c].cw1.push_back(FilesPerSecond(files_1k, small->create_write));
      samples[c].r1.push_back(FilesPerSecond(files_1k, small->read));
      samples[c].d1.push_back(FilesPerSecond(files_1k, small->remove));

      auto big = RunOnce(config, files_10k, 10240, model);
      if (!big.ok()) {
        std::fprintf(stderr, "10KB run failed (%s): %s\n",
                     config.name.c_str(), big.status().ToString().c_str());
        return 1;
      }
      samples[c].cw10.push_back(FilesPerSecond(files_10k, big->create_write));
      samples[c].r10.push_back(FilesPerSecond(files_10k, big->read));
      samples[c].d10.push_back(FilesPerSecond(files_10k, big->remove));
    }
  }

  std::vector<Row> rows;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    Row row;
    row.config = configs[c].name;
    row.cw_1k = Median(samples[c].cw1);
    row.r_1k = Median(samples[c].r1);
    row.d_1k = Median(samples[c].d1);
    row.cw_10k = Median(samples[c].cw10);
    row.r_10k = Median(samples[c].r10);
    row.d_10k = Median(samples[c].d10);
    rows.push_back(row);
  }

  std::printf("Figure 5: small-file throughput (files/second), median of "
              "%llu runs\n",
              static_cast<unsigned long long>(repeats));
  std::printf("  %llu x 1 KByte files and %llu x 10 KByte files\n",
              static_cast<unsigned long long>(files_1k),
              static_cast<unsigned long long>(files_10k));
  Table figure({"version", "C+W(1K)", "R(1K)", "D(1K)", "C+W(10K)", "R(10K)",
                "D(10K)"});
  for (const Row& row : rows) {
    figure.AddRow({row.config, FormatDouble(row.cw_1k, 0),
                   FormatDouble(row.r_1k, 0), FormatDouble(row.d_1k, 0),
                   FormatDouble(row.cw_10k, 0), FormatDouble(row.r_10k, 0),
                   FormatDouble(row.d_10k, 0)});
  }
  figure.Print();

  BenchArtifact artifact("small_files");
  artifact.AddScalar("files_1k", static_cast<double>(files_1k));
  artifact.AddScalar("files_10k", static_cast<double>(files_10k));
  artifact.AddScalar("repeats", static_cast<double>(repeats));
  artifact.AddString("modeled_disk", model ? "true" : "false");
  for (const Row& row : rows) {
    const std::string key = row.config;  // AddScalar sanitizes
    artifact.AddScalar(key + "_cw_1k_files_s", row.cw_1k);
    artifact.AddScalar(key + "_r_1k_files_s", row.r_1k);
    artifact.AddScalar(key + "_d_1k_files_s", row.d_1k);
    artifact.AddScalar(key + "_cw_10k_files_s", row.cw_10k);
    artifact.AddScalar(key + "_r_10k_files_s", row.r_10k);
    artifact.AddScalar(key + "_d_10k_files_s", row.d_10k);
  }
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }

  const Row& old_row = rows[0];
  const Row& new_row = rows[1];
  const Row& new_delete = rows[2];
  std::printf(
      "\nSection 5.3 percent-differences (old vs new; paper in brackets)\n");
  std::printf("  create+write 1K : %5.1f%%   [paper: 7.2%%]\n",
              PercentDifference(old_row.cw_1k, new_row.cw_1k));
  std::printf("  create+write 10K: %5.1f%%   [paper: 4.0%%]\n",
              PercentDifference(old_row.cw_10k, new_row.cw_10k));
  std::printf("  delete 1K       : %5.1f%%   [paper: 24.6%%]\n",
              PercentDifference(old_row.d_1k, new_row.d_1k));
  std::printf("  delete 10K      : %5.1f%%   [paper: 25.5%%]\n",
              PercentDifference(old_row.d_10k, new_row.d_10k));
  std::printf("  delete 1K  (new,delete): %5.1f%%   [paper: 20.5%%]\n",
              PercentDifference(old_row.d_1k, new_delete.d_1k));
  std::printf("  delete 10K (new,delete): %5.1f%%   [paper: 17.9%%]\n",
              PercentDifference(old_row.d_10k, new_delete.d_10k));
  std::printf(
      "\nExpected shape: read/write differences negligible; creation and\n"
      "deletion (meta-data heavy) slower with concurrent ARUs; improved\n"
      "deletion narrows the deletion gap, more so for 10K files.\n");
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
