// Reproduces the §5.3 ARU-latency experiment: "simply starting and
// ending an atomic recovery unit 500,000 times … we achieve a latency
// of 78.47 usec per ARU. 24 segments (recording the commit record of
// each ARU in the segment summary) are written as part of this
// experiment."
//
// Flags: --arus=500000
#include <cstdio>

#include "bench_support/report.h"
#include "bench_support/rig.h"

namespace aru::bench {
namespace {

int Main(int argc, char** argv) {
  const std::uint64_t arus = FlagU64(argc, argv, "arus", 500000);

  for (const MinixLldConfig& config : {NewConfig(), OldConfig()}) {
    auto rig = MakeRig(config);
    if (!rig.ok()) {
      std::fprintf(stderr, "rig failed: %s\n",
                   rig.status().ToString().c_str());
      return 1;
    }
    lld::Lld& disk = *(*rig)->disk;
    const std::uint64_t segments_before = disk.stats().segments_written;

    Stopwatch watch;
    watch.Start();
    for (std::uint64_t i = 0; i < arus; ++i) {
      auto aru = disk.BeginARU();
      if (!aru.ok()) {
        std::fprintf(stderr, "BeginARU: %s\n",
                     aru.status().ToString().c_str());
        return 1;
      }
      if (const Status s = disk.EndARU(*aru); !s.ok()) {
        std::fprintf(stderr, "EndARU: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    const double us = static_cast<double>(watch.StopUs());
    const std::uint64_t segments =
        disk.stats().segments_written - segments_before;

    std::printf("%-12s: %llu empty ARUs, %.2f usec/ARU, %llu segments "
                "written\n",
                config.name.c_str(), static_cast<unsigned long long>(arus),
                us / static_cast<double>(arus),
                static_cast<unsigned long long>(segments));
  }
  std::printf("[paper: 78.47 usec per ARU on a 70 MHz SPARC-5/70; "
              "24 segments for 500,000 ARUs]\n");
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
