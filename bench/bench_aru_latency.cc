// Reproduces the §5.3 ARU-latency experiment: "simply starting and
// ending an atomic recovery unit 500,000 times … we achieve a latency
// of 78.47 usec per ARU. 24 segments (recording the commit record of
// each ARU in the segment summary) are written as part of this
// experiment."
//
// Also measures commit tail latency under concurrent block-writing
// streams, with and without the write-behind pipeline: the synchronous
// seal is a full-segment device write under the global lock, so every
// commit that queues behind one eats it in its p99; the pipeline
// replaces that stall with a hand-off to the flusher thread.
//
// Flags: --arus=500000 --streams=4 --mt_arus=2000
#include <cstdio>

#include <thread>
#include <vector>

#include "bench_support/report.h"
#include "bench_support/rig.h"

namespace aru::bench {
namespace {

int Main(int argc, char** argv) {
  const std::uint64_t arus = FlagU64(argc, argv, "arus", 500000);

  BenchArtifact artifact("aru_latency");
  artifact.AddScalar("arus", static_cast<double>(arus));

  // Kept alive past the loop so the artifact can embed the "new"
  // configuration's full metrics registry.
  std::unique_ptr<Rig> new_rig;

  struct Run {
    MinixLldConfig config;
    RigOptions options;
    std::string label;
  };
  RigOptions async_options;
  async_options.write_behind_segments = 4;  // seal hand-off, off-thread write
  const Run runs[] = {
      {NewConfig(), RigOptions{}, NewConfig().name},
      {OldConfig(), RigOptions{}, OldConfig().name},
      {NewConfig(), async_options, "new_async"},
  };
  for (const Run& run : runs) {
    const std::string& label = run.label;
    auto rig = MakeRig(run.config, run.options);
    if (!rig.ok()) {
      std::fprintf(stderr, "rig failed: %s\n",
                   rig.status().ToString().c_str());
      return 1;
    }
    lld::Lld& disk = *(*rig)->disk;
    const std::uint64_t segments_before = disk.stats().segments_written;

    Stopwatch watch;
    watch.Start();
    for (std::uint64_t i = 0; i < arus; ++i) {
      auto aru = disk.BeginARU();
      if (!aru.ok()) {
        std::fprintf(stderr, "BeginARU: %s\n",
                     aru.status().ToString().c_str());
        return 1;
      }
      if (const Status s = disk.EndARU(*aru); !s.ok()) {
        std::fprintf(stderr, "EndARU: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    const double us = static_cast<double>(watch.StopUs());
    const std::uint64_t segments =
        disk.stats().segments_written - segments_before;

    std::printf("%-12s: %llu empty ARUs, %.2f usec/ARU, %llu segments "
                "written\n",
                label.c_str(), static_cast<unsigned long long>(arus),
                us / static_cast<double>(arus),
                static_cast<unsigned long long>(segments));

    artifact.AddScalar(label + "_us_per_aru", us / static_cast<double>(arus));
    artifact.AddScalar(label + "_segments", static_cast<double>(segments));
    if (const obs::Histogram* h =
            disk.registry().FindHistogram("aru_lld_commit_us")) {
      const obs::Histogram::Snapshot snap = h->TakeSnapshot();
      artifact.AddScalar(label + "_commit_p50_us", snap.Percentile(50));
      artifact.AddScalar(label + "_commit_p99_us", snap.Percentile(99));
      std::printf("%-12s: commit latency p50 %.1f us, p99 %.1f us\n",
                  label.c_str(), snap.Percentile(50), snap.Percentile(99));
    }
    if (label == NewConfig().name) new_rig = std::move(*rig);
  }
  if (new_rig != nullptr) artifact.SetRegistry(&new_rig->registry);

  // Commit tail under concurrent block-writing streams, seal path
  // synchronous vs write-behind. 256 KB segments so seals are frequent
  // enough to land in the p99, and a 400 us device write latency
  // (LatencyDisk) so the synchronous seal actually stalls the lock the
  // way a real device would.
  const std::uint64_t streams = FlagU64(argc, argv, "streams", 4);
  const std::uint64_t mt_arus = FlagU64(argc, argv, "mt_arus", 2000);
  std::printf("\nCommit tail, %llu streams x %llu ARUs of 4 block writes:\n",
              static_cast<unsigned long long>(streams),
              static_cast<unsigned long long>(mt_arus));
  for (const bool async : {false, true}) {
    RigOptions options;
    options.segment_size = 256 * 1024;
    options.write_behind_segments = async ? 4 : 0;
    options.device_write_latency_us =
        FlagU64(argc, argv, "write_latency_us", 400);
    auto rig = MakeRig(NewConfig(), options);
    if (!rig.ok()) {
      std::fprintf(stderr, "rig failed: %s\n",
                   rig.status().ToString().c_str());
      return 1;
    }
    lld::Lld& disk = *(*rig)->disk;
    std::vector<std::thread> workers;
    std::vector<Status> results(streams, Status::Ok());
    workers.reserve(streams);
    for (std::uint64_t s = 0; s < streams; ++s) {
      workers.emplace_back([&disk, &results, s, mt_arus] {
        Bytes payload(disk.block_size(), std::byte{3});
        for (std::uint64_t i = 0; i < mt_arus && results[s].ok(); ++i) {
          results[s] = [&]() -> Status {
            ARU_ASSIGN_OR_RETURN(const ld::AruId aru, disk.BeginARU());
            ARU_ASSIGN_OR_RETURN(const ld::ListId list, disk.NewList(aru));
            ld::BlockId pred = ld::kListHead;
            for (int b = 0; b < 4; ++b) {
              ARU_ASSIGN_OR_RETURN(pred, disk.NewBlock(list, pred, aru));
              ARU_RETURN_IF_ERROR(disk.Write(pred, payload, aru));
            }
            ARU_RETURN_IF_ERROR(disk.EndARU(aru));
            return disk.DeleteList(list, ld::kNoAru);
          }();
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (const Status& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "stream failed: %s\n",
                     result.ToString().c_str());
        return 1;
      }
    }
    const std::string label = async ? "new_async_mt" : "new_mt";
    if (const obs::Histogram* h =
            (*rig)->registry.FindHistogram("aru_lld_commit_us")) {
      const obs::Histogram::Snapshot snap = h->TakeSnapshot();
      artifact.AddScalar(label + "_commit_p50_us", snap.Percentile(50));
      artifact.AddScalar(label + "_commit_p99_us", snap.Percentile(99));
      std::printf("%-12s: commit latency p50 %.1f us, p99 %.1f us\n",
                  label.c_str(), snap.Percentile(50), snap.Percentile(99));
    }
  }

  std::printf("\n[paper: 78.47 usec per ARU on a 70 MHz SPARC-5/70; "
              "24 segments for 500,000 ARUs]\n");
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
