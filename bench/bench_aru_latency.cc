// Reproduces the §5.3 ARU-latency experiment: "simply starting and
// ending an atomic recovery unit 500,000 times … we achieve a latency
// of 78.47 usec per ARU. 24 segments (recording the commit record of
// each ARU in the segment summary) are written as part of this
// experiment."
//
// Flags: --arus=500000
#include <cstdio>

#include "bench_support/report.h"
#include "bench_support/rig.h"

namespace aru::bench {
namespace {

int Main(int argc, char** argv) {
  const std::uint64_t arus = FlagU64(argc, argv, "arus", 500000);

  BenchArtifact artifact("aru_latency");
  artifact.AddScalar("arus", static_cast<double>(arus));

  // Kept alive past the loop so the artifact can embed the "new"
  // configuration's full metrics registry.
  std::unique_ptr<Rig> new_rig;

  for (const MinixLldConfig& config : {NewConfig(), OldConfig()}) {
    auto rig = MakeRig(config);
    if (!rig.ok()) {
      std::fprintf(stderr, "rig failed: %s\n",
                   rig.status().ToString().c_str());
      return 1;
    }
    lld::Lld& disk = *(*rig)->disk;
    const std::uint64_t segments_before = disk.stats().segments_written;

    Stopwatch watch;
    watch.Start();
    for (std::uint64_t i = 0; i < arus; ++i) {
      auto aru = disk.BeginARU();
      if (!aru.ok()) {
        std::fprintf(stderr, "BeginARU: %s\n",
                     aru.status().ToString().c_str());
        return 1;
      }
      if (const Status s = disk.EndARU(*aru); !s.ok()) {
        std::fprintf(stderr, "EndARU: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    const double us = static_cast<double>(watch.StopUs());
    const std::uint64_t segments =
        disk.stats().segments_written - segments_before;

    std::printf("%-12s: %llu empty ARUs, %.2f usec/ARU, %llu segments "
                "written\n",
                config.name.c_str(), static_cast<unsigned long long>(arus),
                us / static_cast<double>(arus),
                static_cast<unsigned long long>(segments));

    artifact.AddScalar(config.name + "_us_per_aru",
                       us / static_cast<double>(arus));
    artifact.AddScalar(config.name + "_segments",
                       static_cast<double>(segments));
    if (const obs::Histogram* h =
            disk.registry().FindHistogram("aru_lld_commit_us")) {
      const obs::Histogram::Snapshot snap = h->TakeSnapshot();
      artifact.AddScalar(config.name + "_commit_p50_us", snap.Percentile(50));
      artifact.AddScalar(config.name + "_commit_p99_us", snap.Percentile(99));
      std::printf("%-12s: commit latency p50 %.1f us, p99 %.1f us\n",
                  config.name.c_str(), snap.Percentile(50),
                  snap.Percentile(99));
    }
    if (config.name == NewConfig().name) new_rig = std::move(*rig);
  }
  if (new_rig != nullptr) artifact.SetRegistry(&new_rig->registry);
  std::printf("[paper: 78.47 usec per ARU on a 70 MHz SPARC-5/70; "
              "24 segments for 500,000 ARUs]\n");
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
