// Trace-driven workload replay: runs a file-system operation trace
// against each MinixLLD configuration and reports throughput and LLD
// statistics. With no trace file, generates and replays a synthetic
// PostMark-like mix (create/write/read/delete over a pool of small
// files) — the workload class the paper's small-file experiment
// abstracts.
//
// Trace format (one op per line, '#' comments):
//   mkdir  <path>
//   create <path>
//   write  <path> <bytes> [seed]
//   read   <path>
//   unlink <path>
//   sync
//
// Flags: --trace=FILE | --ops=5000 --files=300 (synthetic)
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/report.h"
#include "bench_support/rig.h"
#include "util/rng.h"

namespace aru::bench {
namespace {

struct TraceOp {
  enum class Kind { kMkdir, kCreate, kWrite, kRead, kUnlink, kSync };
  Kind kind;
  std::string path;
  std::uint64_t bytes = 0;
  std::uint64_t seed = 0;
};

Result<std::vector<TraceOp>> ParseTrace(const std::string& file) {
  std::ifstream in(file);
  if (!in) return IoError("cannot open trace " + file);
  std::vector<TraceOp> ops;
  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string verb;
    if (!(fields >> verb) || verb[0] == '#') continue;
    TraceOp op;
    if (verb == "mkdir") {
      op.kind = TraceOp::Kind::kMkdir;
    } else if (verb == "create") {
      op.kind = TraceOp::Kind::kCreate;
    } else if (verb == "write") {
      op.kind = TraceOp::Kind::kWrite;
    } else if (verb == "read") {
      op.kind = TraceOp::Kind::kRead;
    } else if (verb == "unlink") {
      op.kind = TraceOp::Kind::kUnlink;
    } else if (verb == "sync") {
      op.kind = TraceOp::Kind::kSync;
      ops.push_back(op);
      continue;
    } else {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": unknown verb " + verb);
    }
    if (!(fields >> op.path)) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": missing path");
    }
    if (op.kind == TraceOp::Kind::kWrite) {
      if (!(fields >> op.bytes)) {
        return InvalidArgumentError("line " + std::to_string(line_number) +
                                    ": write needs a byte count");
      }
      fields >> op.seed;  // optional
    }
    ops.push_back(op);
  }
  return ops;
}

// PostMark-ish: a pool of files under a few directories receives a mix
// of creations, whole-file rewrites, reads, and deletions.
std::vector<TraceOp> SyntheticTrace(std::uint64_t total_ops,
                                    std::uint64_t pool) {
  std::vector<TraceOp> ops;
  Rng rng(1234);
  std::vector<bool> exists(pool, false);
  const std::uint64_t dirs = std::max<std::uint64_t>(1, pool / 100);
  for (std::uint64_t d = 0; d < dirs; ++d) {
    ops.push_back({TraceOp::Kind::kMkdir, "/d" + std::to_string(d), 0, 0});
  }
  auto path = [&](std::uint64_t i) {
    return "/d" + std::to_string(i % dirs) + "/f" + std::to_string(i);
  };
  for (std::uint64_t n = 0; n < total_ops; ++n) {
    const std::uint64_t i = rng.Below(pool);
    const std::uint64_t roll = rng.Below(100);
    if (!exists[i] || roll < 30) {
      if (exists[i]) {
        ops.push_back({TraceOp::Kind::kUnlink, path(i), 0, 0});
      }
      ops.push_back({TraceOp::Kind::kCreate, path(i), 0, 0});
      ops.push_back(
          {TraceOp::Kind::kWrite, path(i), rng.Range(512, 12288), rng.Next()});
      exists[i] = true;
    } else if (roll < 55) {
      ops.push_back(
          {TraceOp::Kind::kWrite, path(i), rng.Range(512, 12288), rng.Next()});
    } else if (roll < 85) {
      ops.push_back({TraceOp::Kind::kRead, path(i), 0, 0});
    } else if (roll < 97) {
      ops.push_back({TraceOp::Kind::kUnlink, path(i), 0, 0});
      exists[i] = false;
    } else {
      ops.push_back({TraceOp::Kind::kSync, "", 0, 0});
    }
  }
  ops.push_back({TraceOp::Kind::kSync, "", 0, 0});
  return ops;
}

Status Replay(Rig& rig, const std::vector<TraceOp>& ops) {
  Bytes payload;
  for (const TraceOp& op : ops) {
    switch (op.kind) {
      case TraceOp::Kind::kMkdir:
        ARU_RETURN_IF_ERROR(rig.fs->Mkdir(op.path).status());
        break;
      case TraceOp::Kind::kCreate:
        ARU_RETURN_IF_ERROR(rig.fs->Create(op.path).status());
        break;
      case TraceOp::Kind::kWrite: {
        payload.resize(op.bytes);
        Rng rng(op.seed);
        for (auto& b : payload) {
          b = static_cast<std::byte>(rng.Next() & 0xff);
        }
        ARU_RETURN_IF_ERROR(rig.fs->WriteFile(op.path, payload));
        break;
      }
      case TraceOp::Kind::kRead:
        ARU_RETURN_IF_ERROR(rig.fs->ReadFile(op.path).status());
        break;
      case TraceOp::Kind::kUnlink:
        ARU_RETURN_IF_ERROR(rig.fs->Unlink(op.path));
        break;
      case TraceOp::Kind::kSync:
        ARU_RETURN_IF_ERROR(rig.fs->Sync());
        break;
    }
  }
  return Status::Ok();
}

int Main(int argc, char** argv) {
  std::string trace_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) trace_file = arg.substr(8);
  }
  const std::uint64_t total_ops = FlagU64(argc, argv, "ops", 5000);
  const std::uint64_t pool = FlagU64(argc, argv, "files", 300);

  std::vector<TraceOp> ops;
  if (trace_file.empty()) {
    ops = SyntheticTrace(total_ops, pool);
    std::printf("synthetic PostMark-like trace: %zu operations over %llu "
                "files\n",
                ops.size(), static_cast<unsigned long long>(pool));
  } else {
    auto parsed = ParseTrace(trace_file);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    ops = std::move(parsed).value();
    std::printf("trace %s: %zu operations\n", trace_file.c_str(), ops.size());
  }

  Table table({"version", "wall s", "ops/s", "segments", "cleaner passes",
               "pred-search steps", "link-log replays"});
  BenchArtifact artifact("trace");
  artifact.AddScalar("ops", static_cast<double>(total_ops));
  artifact.AddString("trace",
                     trace_file.empty() ? "synthetic" : trace_file);
  for (const MinixLldConfig& config :
       {OldConfig(), NewConfig(), NewDeleteConfig()}) {
    auto rig = MakeRig(config);
    if (!rig.ok()) {
      std::fprintf(stderr, "rig: %s\n", rig.status().ToString().c_str());
      return 1;
    }
    Stopwatch watch;
    watch.Start();
    if (const Status replayed = Replay(**rig, ops); !replayed.ok()) {
      std::fprintf(stderr, "replay (%s): %s\n", config.name.c_str(),
                   replayed.ToString().c_str());
      return 1;
    }
    const double seconds = static_cast<double>(watch.StopUs()) / 1e6;
    const lld::LldStats& stats = (*rig)->disk->stats();
    table.AddRow({config.name, FormatDouble(seconds, 2),
                  FormatDouble(static_cast<double>(ops.size()) / seconds, 0),
                  std::to_string(stats.segments_written),
                  std::to_string(stats.cleaner_passes),
                  std::to_string(stats.predecessor_search_steps),
                  std::to_string(stats.link_log_entries_replayed)});
    std::string key = config.name;
    for (char& c : key) {
      if (c == ',' || c == ' ') c = '_';
    }
    artifact.AddScalar(key + "_ops_s",
                       static_cast<double>(ops.size()) / seconds);
    artifact.AddScalar(key + "_segments",
                       static_cast<double>(stats.segments_written));
  }
  table.Print();
  if (const Status s = artifact.WriteFile(); !s.ok()) {
    std::fprintf(stderr, "artifact: %s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace aru::bench

int main(int argc, char** argv) { return aru::bench::Main(argc, argv); }
