// Ablation: the DeleteBlock predecessor search (paper §5.3). LD keeps
// successor pointers only, so removing a block walks its list from the
// head; deleting a file's blocks in reverse (classic Minix truncate
// order) is O(n^2), which is what the improved deletion policy of
// "new, delete" avoids.
//
// Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "bench_support/rig.h"

namespace aru::bench {
namespace {

// Deletes the tail block of a list of length n: one full walk.
void BM_DeleteTailBlock_ListLength(benchmark::State& state) {
  const auto length = static_cast<std::uint64_t>(state.range(0));
  auto rig = MakeRig(NewConfig());
  if (!rig.ok()) {
    state.SkipWithError(rig.status().ToString().c_str());
    return;
  }
  lld::Lld& disk = *(*rig)->disk;

  for (auto _ : state) {
    state.PauseTiming();
    const auto list = disk.NewList(ld::kNoAru);
    ld::BlockId pred = ld::kListHead;
    ld::BlockId tail;
    for (std::uint64_t i = 0; i < length; ++i) {
      tail = *disk.NewBlock(*list, pred, ld::kNoAru);
      pred = tail;
    }
    state.ResumeTiming();
    (void)disk.DeleteBlock(tail, ld::kNoAru);
    state.PauseTiming();
    (void)disk.DeleteList(*list, ld::kNoAru);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_DeleteTailBlock_ListLength)
    ->Arg(1)->Arg(3)->Arg(10)->Arg(100)->Arg(1000);

// Whole-file deletion, classic vs improved policy, vs file size.
void DeleteFilePolicy(benchmark::State& state, bool improved) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  auto rig = MakeRig(improved ? NewDeleteConfig() : NewConfig());
  if (!rig.ok()) {
    state.SkipWithError(rig.status().ToString().c_str());
    return;
  }
  lld::Lld& disk = *(*rig)->disk;

  for (auto _ : state) {
    state.PauseTiming();
    const auto list = disk.NewList(ld::kNoAru);
    ld::BlockId pred = ld::kListHead;
    std::vector<ld::BlockId> all;
    for (std::uint64_t i = 0; i < blocks; ++i) {
      pred = *disk.NewBlock(*list, pred, ld::kNoAru);
      all.push_back(pred);
    }
    state.ResumeTiming();
    if (improved) {
      // Improved: one DeleteList; LD frees from the head.
      (void)disk.DeleteList(*list, ld::kNoAru);
    } else {
      // Classic: free blocks from the end backwards, then the list.
      for (auto it = all.rbegin(); it != all.rend(); ++it) {
        (void)disk.DeleteBlock(*it, ld::kNoAru);
      }
      (void)disk.DeleteList(*list, ld::kNoAru);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks));
}

void BM_DeleteFile_Classic(benchmark::State& state) {
  DeleteFilePolicy(state, /*improved=*/false);
}
void BM_DeleteFile_Improved(benchmark::State& state) {
  DeleteFilePolicy(state, /*improved=*/true);
}
BENCHMARK(BM_DeleteFile_Classic)->Arg(3)->Arg(25)->Arg(100)->Arg(400);
BENCHMARK(BM_DeleteFile_Improved)->Arg(3)->Arg(25)->Arg(100)->Arg(400);

}  // namespace
}  // namespace aru::bench
