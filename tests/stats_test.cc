// LldStats counters: the benchmark harness reads these (the paper
// reports segment counts), so their meanings are pinned here.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(StatsTest, CountersTrackOperations) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  ASSERT_OK(t.disk->Flush());

  const lld::LldStats& stats = t.disk->stats();
  EXPECT_EQ(stats.blocks_written, 1u);
  EXPECT_EQ(stats.blocks_read, 1u);
  EXPECT_EQ(stats.reads_from_open_segment, 1u);
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_GE(stats.segments_written, 1u);
  EXPECT_GE(stats.bytes_written_to_disk,
            static_cast<std::uint64_t>(t.options.segment_size));
}

TEST(StatsTest, AruCountersAndCommitRecordSegments) {
  TestDisk t;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
    if (i % 3 == 0) {
      ASSERT_OK(t.disk->AbortARU(aru));
    } else {
      ASSERT_OK(t.disk->EndARU(aru));
    }
  }
  const lld::LldStats& stats = t.disk->stats();
  EXPECT_EQ(stats.arus_begun, 10u);
  EXPECT_EQ(stats.arus_committed, 6u);
  EXPECT_EQ(stats.arus_aborted, 4u);
}

TEST(StatsTest, LinkLogReplayCounter) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(aru));
  BlockId pred = kListHead;
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, aru));
  }
  EXPECT_EQ(t.disk->stats().link_log_entries_replayed, 0u);
  ASSERT_OK(t.disk->EndARU(aru));
  // 5 inserts re-executed at commit (paper §4).
  EXPECT_EQ(t.disk->stats().link_log_entries_replayed, 5u);
}

TEST(StatsTest, PredecessorSearchCounter) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  std::vector<BlockId> blocks;
  BlockId pred = kListHead;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    blocks.push_back(pred);
  }
  const std::uint64_t before = t.disk->stats().predecessor_search_steps;
  // Deleting the tail walks the 9 predecessors.
  ASSERT_OK(t.disk->DeleteBlock(blocks.back(), kNoAru));
  EXPECT_EQ(t.disk->stats().predecessor_search_steps, before + 9);
  // Deleting the head needs no search.
  const std::uint64_t after_tail = t.disk->stats().predecessor_search_steps;
  ASSERT_OK(t.disk->DeleteBlock(blocks.front(), kNoAru));
  EXPECT_EQ(t.disk->stats().predecessor_search_steps, after_tail);
}

TEST(StatsTest, PartialSegmentCounterOnFlush) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(t.disk->Flush());  // seals a nearly-empty segment
  EXPECT_GE(t.disk->stats().partial_segments_written, 1u);
}

TEST(StatsTest, RegistryCountersBackTheFacade) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, 7), kNoAru));
  }
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->EndARU(aru));
  ASSERT_OK(t.disk->Flush());

  // The LldStats façade and the registry are two views of one store.
  const lld::LldStats stats = t.disk->stats();
  const obs::Registry& registry = t.disk->registry();
  const auto counter = [&registry](const char* name) {
    const obs::Counter* c = registry.FindCounter(name);
    EXPECT_NE(c, nullptr) << name;
    return c == nullptr ? 0 : c->value();
  };
  EXPECT_EQ(counter("aru_lld_blocks_written_total"), stats.blocks_written);
  EXPECT_EQ(counter("aru_lld_segments_written_total"), stats.segments_written);
  EXPECT_EQ(counter("aru_lld_arus_begun_total"), stats.arus_begun);
  EXPECT_EQ(counter("aru_lld_arus_committed_total"), stats.arus_committed);
  EXPECT_EQ(counter("aru_lld_flushes_total"), stats.flushes);
  EXPECT_EQ(counter("aru_lld_bytes_written_to_disk_total"),
            stats.bytes_written_to_disk);

  // Latency histograms on the hot paths must have collected samples.
  const obs::Histogram* writes = registry.FindHistogram("aru_lld_op_write_us");
  ASSERT_NE(writes, nullptr);
  EXPECT_EQ(writes->count(), 8u);
  const obs::Histogram* commits = registry.FindHistogram("aru_lld_commit_us");
  ASSERT_NE(commits, nullptr);
  EXPECT_EQ(commits->count(), 1u);
}

TEST(StatsTest, PrivateRegistryPerDiskByDefault) {
  // With Options.registry unset, each Lld gets its own registry, so two
  // disks never mix their counters.
  TestDisk a;
  TestDisk b;
  ASSERT_NE(&a.disk->registry(), &b.disk->registry());
  ASSERT_OK_AND_ASSIGN(const AruId aru, a.disk->BeginARU());
  ASSERT_OK(a.disk->EndARU(aru));
  EXPECT_EQ(a.disk->stats().arus_begun, 1u);
  EXPECT_EQ(b.disk->stats().arus_begun, 0u);
}

TEST(StatsTest, DumpJsonGolden) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 3), kNoAru));
  ASSERT_OK(t.disk->Flush());

  const std::string json = t.disk->registry().DumpJson();
  // Structurally balanced...
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      ASSERT_GT(depth, 0);
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  // ...and carries the metric families every layer registers.
  for (const char* name :
       {"aru_lld_blocks_written_total", "aru_lld_segments_written_total",
        "aru_lld_op_write_us", "aru_lld_seal_us",
        "aru_lld_segment_fill_percent", "aru_lld_active_arus"}) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  }
}

TEST(StatsTest, RecoveryPopulatesReportAndRegistry) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, 11), kNoAru));
  }
  // Leave an ARU in flight so recovery has an undo to do.
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK_AND_ASSIGN(const ListId alist, t.disk->NewList(aru));
  ASSERT_OK_AND_ASSIGN(const BlockId ablock,
                       t.disk->NewBlock(alist, kListHead, aru));
  ASSERT_OK(t.disk->Write(ablock, TestPattern(4096, 12), aru));
  ASSERT_OK(t.disk->Flush());
  t.CrashAndRecover();

  const lld::RecoveryReport& report = t.disk->recovery_report();
  EXPECT_GE(report.uncommitted_arus_undone, 1u);
  EXPECT_GT(report.total_us, 0u);
  EXPECT_LE(report.checkpoint_load_us, report.total_us);
  EXPECT_LE(report.replay_us, report.total_us);

  // Each recovery phase histogram saw exactly this one recovery (the
  // re-opened Lld has a fresh private registry).
  const obs::Registry& registry = t.disk->registry();
  for (const char* name :
       {"aru_lld_recovery_checkpoint_load_us",
        "aru_lld_recovery_summary_scan_us", "aru_lld_recovery_replay_us",
        "aru_lld_recovery_checkpoint_us"}) {
    const obs::Histogram* histogram = registry.FindHistogram(name);
    ASSERT_NE(histogram, nullptr) << name;
    EXPECT_EQ(histogram->count(), 1u) << name;
  }
}

}  // namespace
}  // namespace aru::testing
