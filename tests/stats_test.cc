// LldStats counters: the benchmark harness reads these (the paper
// reports segment counts), so their meanings are pinned here.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(StatsTest, CountersTrackOperations) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  ASSERT_OK(t.disk->Flush());

  const lld::LldStats& stats = t.disk->stats();
  EXPECT_EQ(stats.blocks_written, 1u);
  EXPECT_EQ(stats.blocks_read, 1u);
  EXPECT_EQ(stats.reads_from_open_segment, 1u);
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_GE(stats.segments_written, 1u);
  EXPECT_GE(stats.bytes_written_to_disk,
            static_cast<std::uint64_t>(t.options.segment_size));
}

TEST(StatsTest, AruCountersAndCommitRecordSegments) {
  TestDisk t;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
    if (i % 3 == 0) {
      ASSERT_OK(t.disk->AbortARU(aru));
    } else {
      ASSERT_OK(t.disk->EndARU(aru));
    }
  }
  const lld::LldStats& stats = t.disk->stats();
  EXPECT_EQ(stats.arus_begun, 10u);
  EXPECT_EQ(stats.arus_committed, 6u);
  EXPECT_EQ(stats.arus_aborted, 4u);
}

TEST(StatsTest, LinkLogReplayCounter) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(aru));
  BlockId pred = kListHead;
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, aru));
  }
  EXPECT_EQ(t.disk->stats().link_log_entries_replayed, 0u);
  ASSERT_OK(t.disk->EndARU(aru));
  // 5 inserts re-executed at commit (paper §4).
  EXPECT_EQ(t.disk->stats().link_log_entries_replayed, 5u);
}

TEST(StatsTest, PredecessorSearchCounter) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  std::vector<BlockId> blocks;
  BlockId pred = kListHead;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    blocks.push_back(pred);
  }
  const std::uint64_t before = t.disk->stats().predecessor_search_steps;
  // Deleting the tail walks the 9 predecessors.
  ASSERT_OK(t.disk->DeleteBlock(blocks.back(), kNoAru));
  EXPECT_EQ(t.disk->stats().predecessor_search_steps, before + 9);
  // Deleting the head needs no search.
  const std::uint64_t after_tail = t.disk->stats().predecessor_search_steps;
  ASSERT_OK(t.disk->DeleteBlock(blocks.front(), kNoAru));
  EXPECT_EQ(t.disk->stats().predecessor_search_steps, after_tail);
}

TEST(StatsTest, PartialSegmentCounterOnFlush) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(t.disk->Flush());  // seals a nearly-empty segment
  EXPECT_GE(t.disk->stats().partial_segments_written, 1u);
}

}  // namespace
}  // namespace aru::testing
