// Parameterized sweep over disk geometries: the full stack (allocate /
// write / ARU / flush / crash / recover / clean) must behave
// identically for every supported block size × segment size × mode
// combination — the paper's 4 KB/512 KB choice is a tuning, not a
// correctness assumption.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

struct GeometryParam {
  std::uint32_t block_size;
  std::uint32_t segment_size;
  lld::AruMode mode;
  std::string name;
};

class GeometrySweepTest : public ::testing::TestWithParam<GeometryParam> {
 protected:
  lld::Options MakeOptions() const {
    lld::Options options;
    options.block_size = GetParam().block_size;
    options.segment_size = GetParam().segment_size;
    options.aru_mode = GetParam().mode;
    options.paranoid_checks = true;
    return options;
  }
};

TEST_P(GeometrySweepTest, FullLifecycle) {
  TestDisk t(MakeOptions());
  const std::uint32_t bs = t.disk->block_size();
  ASSERT_EQ(bs, GetParam().block_size);

  // Build several lists with writes, spanning multiple segments.
  std::vector<ListId> lists;
  std::vector<std::vector<BlockId>> blocks;
  const std::uint64_t per_list =
      2 * GetParam().segment_size / bs;  // ~2 segments each
  for (int l = 0; l < 3; ++l) {
    ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
    lists.push_back(list);
    blocks.emplace_back();
    BlockId pred = kListHead;
    for (std::uint64_t i = 0; i < per_list; ++i) {
      ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
      ASSERT_OK(t.disk->Write(
          pred,
          TestPattern(bs, static_cast<std::uint64_t>(l) * 1000 + i),
          kNoAru));
      blocks.back().push_back(pred);
    }
  }

  // An ARU spanning all three lists, committed and flushed.
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  for (int l = 0; l < 3; ++l) {
    ASSERT_OK(t.disk->Write(
        blocks[static_cast<std::size_t>(l)][0],
        TestPattern(bs, 7000 + static_cast<std::uint64_t>(l)), aru));
  }
  ASSERT_OK(t.disk->EndARU(aru));
  ASSERT_OK(t.disk->Flush());

  // An uncommitted ARU, lost in the crash.
  ASSERT_OK_AND_ASSIGN(const AruId doomed, t.disk->BeginARU());
  ASSERT_OK(t.disk->Write(blocks[0][1], TestPattern(bs, 9999), doomed));

  t.CrashAndRecover();
  ASSERT_OK(t.disk->CheckConsistency());

  Bytes out(bs);
  for (int l = 0; l < 3; ++l) {
    const auto& list_blocks = blocks[static_cast<std::size_t>(l)];
    ASSERT_OK_AND_ASSIGN(const auto recovered,
                         t.disk->ListBlocks(lists[static_cast<std::size_t>(l)],
                                            kNoAru));
    ASSERT_EQ(recovered.size(), list_blocks.size());
    // The ARU's writes are there; the doomed ARU's write is not.
    ASSERT_OK(t.disk->Read(list_blocks[0], out, kNoAru));
    EXPECT_EQ(out, TestPattern(bs, 7000 + static_cast<std::uint64_t>(l)));
    ASSERT_OK(t.disk->Read(list_blocks[1], out, kNoAru));
    EXPECT_EQ(out, TestPattern(bs, static_cast<std::uint64_t>(l) * 1000 + 1));
  }

  // Deletion still works post-recovery.
  ASSERT_OK(t.disk->DeleteList(lists[2], kNoAru));
  ASSERT_OK(t.disk->Flush());
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST_P(GeometrySweepTest, ChurnWithCleaning) {
  lld::Options options = MakeOptions();
  options.cleaner_reserve_slots = 3;
  options.paranoid_checks = false;  // churn is hot; check at the end
  // Bound the logical capacity so checkpoint regions stay small, then
  // churn through three times the actual slot count: the cleaner must
  // recycle slots regardless of geometry.
  options.capacity_blocks = 25u * options.segment_size / options.block_size;
  const std::uint64_t sectors = 32u * options.segment_size / 512 + 2048;
  TestDisk t(options, sectors);

  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  const std::uint64_t writes = 3u * t.disk->geometry().slot_count *
                               options.segment_size / options.block_size;
  for (std::uint64_t i = 0; i < writes; ++i) {
    ASSERT_OK(t.disk->Write(block, TestPattern(options.block_size, i),
                            kNoAru));
  }
  Bytes out(options.block_size);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(options.block_size, writes - 1));
  EXPECT_GT(t.disk->stats().cleaner_passes, 0u);
  ASSERT_OK(t.disk->CheckConsistency());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweepTest,
    ::testing::Values(
        GeometryParam{512, 16 * 1024, lld::AruMode::kConcurrent,
                      "tiny512B_16K"},
        GeometryParam{1024, 64 * 1024, lld::AruMode::kConcurrent,
                      "small1K_64K"},
        GeometryParam{4096, 128 * 1024, lld::AruMode::kConcurrent,
                      "paper4K_128K"},
        GeometryParam{4096, 512 * 1024, lld::AruMode::kConcurrent,
                      "paper4K_512K"},
        GeometryParam{8192, 256 * 1024, lld::AruMode::kConcurrent,
                      "big8K_256K"},
        GeometryParam{4096, 128 * 1024, lld::AruMode::kSequential,
                      "sequential4K_128K"},
        GeometryParam{1024, 32 * 1024, lld::AruMode::kSequential,
                      "sequential1K_32K"}),
    [](const ::testing::TestParamInfo<GeometryParam>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace aru::testing
