// Crash recovery: all-or-nothing ARUs, recovery to the newest
// persistent state, orphan reclamation, checkpoint fallback, torn
// segments.
#include <gtest/gtest.h>

#include "blockdev/fault_disk.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(RecoveryTest, FlushedSimpleWritesSurviveCrash) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  const Bytes data = TestPattern(t.disk->block_size(), 5);
  ASSERT_OK(t.disk->Write(block, data, kNoAru));
  ASSERT_OK(t.disk->Flush());

  t.CrashAndRecover();
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, data);
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(RecoveryTest, UnflushedCommittedStateIsLost) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Flush());
  const Bytes first = TestPattern(t.disk->block_size(), 1);
  ASSERT_OK(t.disk->Write(block, first, kNoAru));
  ASSERT_OK(t.disk->Flush());

  // Committed but never flushed: may be lost entirely (ARUs provide
  // atomicity, not durability).
  ASSERT_OK(t.disk->Write(block, TestPattern(t.disk->block_size(), 2),
                          kNoAru));
  t.CrashAndRecover();
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, first);  // recovery is to the most recent persistent state
}

TEST(RecoveryTest, UncommittedAruIsUndoneCompletely) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  const Bytes data = TestPattern(t.disk->block_size(), 1);
  ASSERT_OK(t.disk->Write(block, data, kNoAru));
  ASSERT_OK(t.disk->Flush());

  // An ARU that writes a lot (its data blocks reach disk as segments
  // fill) but never commits.
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(t.disk->Write(
        block, TestPattern(t.disk->block_size(), 100 + static_cast<std::uint64_t>(i)),
        aru));
  }

  t.CrashAndRecover();
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, data);  // none of the ARU's 64 writes survived
  EXPECT_GE(t.disk->recovery_report().uncommitted_arus_undone, 1u);
}

TEST(RecoveryTest, CommittedAndFlushedAruSurvivesEntirely) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK(t.disk->Flush());

  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  std::vector<BlockId> blocks;
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, aru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(t.disk->block_size(), i), aru));
    blocks.push_back(pred);
  }
  ASSERT_OK(t.disk->EndARU(aru));
  ASSERT_OK(t.disk->Flush());

  t.CrashAndRecover();
  ASSERT_OK_AND_ASSIGN(const auto listed, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(listed.size(), blocks.size());
  for (std::uint64_t i = 0; i < blocks.size(); ++i) {
    Bytes out(t.disk->block_size());
    ASSERT_OK(t.disk->Read(blocks[i], out, kNoAru));
    EXPECT_EQ(out, TestPattern(t.disk->block_size(), i));
  }
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(RecoveryTest, OrphanBlocksFromUncommittedAruAreReclaimed) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK(t.disk->Flush());
  const std::uint64_t free_before = t.disk->free_blocks();

  // Allocate inside an ARU and flush the allocation records, but never
  // commit: the blocks remain allocated on disk, in no list.
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(t.disk->NewBlock(list, kListHead, aru).status());
  }
  ASSERT_OK(t.disk->Flush());

  t.CrashAndRecover();
  // The recovery consistency check freed them (paper §3.3).
  EXPECT_EQ(t.disk->recovery_report().orphan_blocks_reclaimed, 5u);
  EXPECT_EQ(t.disk->free_blocks(), free_before);
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(RecoveryTest, AruDeletionsAreAtomic) {
  TestDisk t;
  // Build two committed single-block lists ("file meta-data").
  ASSERT_OK_AND_ASSIGN(const ListId l1, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const ListId l2, t.disk->NewList(kNoAru));
  ASSERT_OK(t.disk->NewBlock(l1, kListHead, kNoAru).status());
  ASSERT_OK(t.disk->NewBlock(l2, kListHead, kNoAru).status());
  ASSERT_OK(t.disk->Flush());

  // Delete both lists in one ARU; commit but crash before flushing.
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->DeleteList(l1, aru));
  ASSERT_OK(t.disk->DeleteList(l2, aru));
  ASSERT_OK(t.disk->EndARU(aru));

  t.CrashAndRecover();
  // Unflushed commit: both lists must still exist (all-or-nothing).
  ASSERT_OK(t.disk->ListBlocks(l1, kNoAru).status());
  ASSERT_OK(t.disk->ListBlocks(l2, kNoAru).status());
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(RecoveryTest, MultipleCrashReopenCycles) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId block;
  ASSERT_OK_AND_ASSIGN(block, t.disk->NewBlock(list, kListHead, kNoAru));
  for (std::uint64_t round = 0; round < 5; ++round) {
    ASSERT_OK(t.disk->Write(block, TestPattern(t.disk->block_size(), round),
                            kNoAru));
    ASSERT_OK(t.disk->Flush());
    t.CrashAndRecover();
    Bytes out(t.disk->block_size());
    ASSERT_OK(t.disk->Read(block, out, kNoAru));
    EXPECT_EQ(out, TestPattern(t.disk->block_size(), round));
  }
}

TEST(RecoveryTest, TornSegmentWriteIsIgnored) {
  // Drive LLD through a fault-injection disk that kills the power in
  // the middle of a segment write, garbling one sector.
  auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
  auto* mem = inner.get();
  FaultInjectionDisk faulty(std::move(inner));

  const lld::Options opts = TestDisk::SmallOptions();
  ASSERT_OK(lld::Lld::Format(faulty, opts));
  ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(faulty, opts));

  ASSERT_OK_AND_ASSIGN(const ListId list, disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       disk->NewBlock(list, kListHead, kNoAru));
  const Bytes data = TestPattern(disk->block_size(), 1);
  ASSERT_OK(disk->Write(block, data, kNoAru));
  ASSERT_OK(disk->Flush());

  // Next segment write dies 40 sectors in, tearing the segment.
  faulty.SchedulePowerCut(40, /*tear=*/true);
  ASSERT_OK(disk->Write(block, TestPattern(disk->block_size(), 2), kNoAru));
  const Status flush = disk->Flush();
  EXPECT_FALSE(flush.ok());  // the power failed mid-write
  disk.reset();

  // Reopen over what actually reached the platters.
  auto survivor = MemDisk::FromImage(mem->CopyImage());
  ASSERT_OK_AND_ASSIGN(auto recovered, lld::Lld::Open(*survivor, opts));
  Bytes out(recovered->block_size());
  ASSERT_OK(recovered->Read(block, out, kNoAru));
  EXPECT_EQ(out, data);  // the torn segment was discarded entirely
  ASSERT_OK(recovered->CheckConsistency());
}

TEST(RecoveryTest, RecoveryIsIdempotent) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(t.disk->block_size(), 3),
                          kNoAru));
  ASSERT_OK(t.disk->Flush());

  t.CrashAndRecover();
  t.CrashAndRecover();
  t.CrashAndRecover();
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(t.disk->block_size(), 3));
}

// The summary scan fans out across a thread pool; the recovered state
// must be byte-identical to the serial scan at any width. Strongest
// check available: recover the same crashed image at several widths
// and compare the entire post-recovery device images (recovery ends by
// writing a bounding checkpoint, so any divergence in recovered tables
// or replay order shows up in the bytes).
TEST(RecoveryTest, ParallelScanRecoversByteIdenticalState) {
  TestDisk t;
  // A workload with committed ARUs, an uncommitted ARU, simple writes,
  // and deletes — enough record diversity that replay order matters.
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(t.disk->block_size(), i),
                            kNoAru));
  }
  ASSERT_OK_AND_ASSIGN(const AruId committed, t.disk->BeginARU());
  ASSERT_OK_AND_ASSIGN(const ListId aru_list, t.disk->NewList(committed));
  ASSERT_OK_AND_ASSIGN(const BlockId aru_block,
                       t.disk->NewBlock(aru_list, kListHead, committed));
  ASSERT_OK(t.disk->Write(aru_block, TestPattern(t.disk->block_size(), 99),
                          committed));
  ASSERT_OK(t.disk->EndARU(committed));
  ASSERT_OK_AND_ASSIGN(const AruId torn, t.disk->BeginARU());
  ASSERT_OK_AND_ASSIGN(const BlockId torn_block,
                       t.disk->NewBlock(list, kListHead, torn));
  ASSERT_OK(t.disk->Write(torn_block, TestPattern(t.disk->block_size(), 7),
                          torn));
  ASSERT_OK(t.disk->Flush());
  const Bytes crashed = t.device->CopyImage();

  auto recover_at = [&](std::size_t threads, Bytes& image_out) {
    lld::Options opts = t.options;
    opts.recovery_threads = threads;
    auto device = MemDisk::FromImage(Bytes(crashed));
    auto opened = lld::Lld::Open(*device, opts);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ((*opened)->recovery_report().scan_threads,
              std::min<std::uint64_t>(threads,
                                      (*opened)->geometry().slot_count));
    ASSERT_OK((*opened)->CheckConsistency());
    opened->reset();
    image_out = device->CopyImage();
  };
  Bytes serial;
  recover_at(1, serial);
  ASSERT_FALSE(serial.empty());
  for (const std::size_t threads : {2u, 4u, 8u}) {
    Bytes parallel;
    recover_at(threads, parallel);
    EXPECT_EQ(serial, parallel) << "divergent image at " << threads
                                << " scan threads";
  }
}

TEST(RecoveryTest, SequentialModeAtomicityAfterCrash) {
  lld::Options opts = TestDisk::SmallOptions();
  opts.aru_mode = lld::AruMode::kSequential;
  TestDisk t(opts);

  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK(t.disk->Flush());

  // Fill segments from inside an uncommitted sequential ARU so its
  // records reach disk, then crash before EndARU.
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, aru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(t.disk->block_size(), i), aru));
  }

  t.CrashAndRecover();
  // The old prototype, too, recovers ARUs atomically (the commit record
  // gates the summary records): the list must be empty again.
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_TRUE(blocks.empty());
  ASSERT_OK(t.disk->CheckConsistency());
}

}  // namespace
}  // namespace aru::testing
