// Multi-writer stress for the sharded persistent tables: concurrent
// committer threads drive the full mutate path — BeginARU, list splice
// (NewList/NewBlock inserts), shadow writes, EndARU promotion merges,
// DeleteList splices — while an admin thread races Flush, Checkpoint
// (cross-shard snapshot) and the cleaner against them, and an abort
// thread exercises the undo path. TSan runs this suite in CI, so the
// per-shard table locks, the two-phase ApplyBatch promotion, and the
// copy-out Get on the read path are race-checked against every
// cross-shard operation, not just correctness-checked.
//
// Streams never share blocks or lists (ARUs provide failure atomicity,
// not concurrency control), so every thread can assert exact contents
// of its own state while the tables churn under it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "lld/lld.h"
#include "tests/obs_expect.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(MultiWriterStressTest, CommittersRaceSplicesCheckpointsAndCleaner) {
  lld::Options opts = TestDisk::SmallOptions();
  opts.paranoid_checks = false;  // checked explicitly at the end
  opts.table_shards = 4;         // deterministic shard fan-out
  opts.read_cache_blocks = 32;
  opts.read_cache_shards = 2;
  opts.write_behind_segments = 2;  // promotions gate on a moving horizon
  opts.durable_commits = true;     // EndARU waits → group commit races
  opts.sampler_period_ms = 1;      // metrics scrape races every thread
  TestDisk t(opts);

  constexpr int kWriters = 4;
  constexpr int kArusPerWriter = 30;
  constexpr std::uint64_t kBlocksPerAru = 3;

  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<Status> failures;
  auto record_failure = [&](const Status& status) {
    const std::lock_guard<std::mutex> lock(mu);
    failures.push_back(status);
  };

  // Admin: checkpoint snapshots (cross-shard SnapshotInto), cleaner
  // passes (Get/Set relocation) and flushes racing the committers.
  std::thread admin([&] {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status status;
      switch (round++ % 3) {
        case 0: status = t.disk->Checkpoint(); break;
        case 1: status = t.disk->Clean(); break;
        default: status = t.disk->Flush(); break;
      }
      // Clean legitimately reports OutOfSpace with nothing to reclaim.
      if (!status.ok() && status.code() != StatusCode::kOutOfSpace) {
        record_failure(status);
        return;
      }
      std::this_thread::yield();
    }
  });

  // Aborter: opens ARUs with a list + block and abandons them, so the
  // abort/undo path (allocation reclaim, version-state drop) runs
  // concurrently with the committers' promotions.
  std::thread aborter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto aru = t.disk->BeginARU();
      if (!aru.ok()) {
        record_failure(aru.status());
        return;
      }
      const auto list = t.disk->NewList(*aru);
      if (list.ok()) {
        (void)t.disk->NewBlock(*list, kListHead, *aru);
      } else if (list.status().code() != StatusCode::kOutOfSpace) {
        record_failure(list.status());
        return;
      }
      if (const Status status = t.disk->AbortARU(*aru); !status.ok()) {
        record_failure(status);
        return;
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Bytes out(4096);
      for (int i = 0; i < kArusPerWriter; ++i) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(w) * 10000 + static_cast<std::uint64_t>(i);
        const auto aru = t.disk->BeginARU();
        if (!aru.ok()) {
          record_failure(aru.status());
          return;
        }
        const auto list = t.disk->NewList(*aru);
        if (!list.ok()) {
          record_failure(list.status());
          return;
        }
        std::vector<BlockId> blocks;
        BlockId pred = kListHead;
        for (std::uint64_t b = 0; b < kBlocksPerAru; ++b) {
          const auto block = t.disk->NewBlock(*list, pred, *aru);
          if (!block.ok()) {
            record_failure(block.status());
            return;
          }
          pred = *block;
          blocks.push_back(pred);
          if (const Status status =
                  t.disk->Write(pred, TestPattern(4096, seed + b), *aru);
              !status.ok()) {
            record_failure(status);
            return;
          }
        }
        if (const Status status = t.disk->EndARU(*aru); !status.ok()) {
          record_failure(status);
          return;
        }
        // Committed view: this stream's blocks are intact and carry the
        // committed bytes (reads race other streams' promotions).
        for (std::uint64_t b = 0; b < kBlocksPerAru; ++b) {
          if (const Status status = t.disk->Read(blocks[b], out, kNoAru);
              !status.ok()) {
            record_failure(status);
            return;
          }
          if (out != TestPattern(4096, seed + b)) {
            record_failure(CorruptionError(
                "writer " + std::to_string(w) +
                " observed wrong committed bytes in ARU " +
                std::to_string(i)));
            return;
          }
        }
        // Cross-shard splice: drop the whole list as a simple op.
        if (const Status status = t.disk->DeleteList(*list, kNoAru);
            !status.ok()) {
          record_failure(status);
          return;
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  admin.join();
  aborter.join();

  for (const Status& failure : failures) {
    ADD_FAILURE() << "thread failure: " << failure.ToString();
  }

  const lld::LldStats stats = t.disk->stats();
  EXPECT_GE(stats.arus_committed,
            static_cast<std::uint64_t>(kWriters) * kArusPerWriter);
  EXPECT_GT(stats.arus_aborted, 0u);
  EXPECT_GT(stats.checkpoints, 0u);

  // The obs layer attributed the run: the table shards are bound (the
  // gauge reflects the explicit option) and every contended wait on the
  // shard locks kept its counter/histogram pair in lock-step.
  const obs::Registry& registry = t.disk->registry();
  const obs::Gauge* shard_count =
      registry.FindGauge("aru_lld_table_shard_count");
  ASSERT_NE(shard_count, nullptr);
  EXPECT_EQ(shard_count->value(), 4);
  obs_expect::ExpectLockSiteConsistent(registry, "lld_table_shard",
                                       "exclusive");
  obs_expect::ExpectLockSiteConsistent(registry, "lld_mu", "exclusive");

  ASSERT_OK(t.disk->CheckConsistency());

  // Recovery symmetry: what a crash right now would reconstruct matches
  // the sharded in-memory state (all streams quiesced above).
  ASSERT_OK(t.disk->Flush());
  t.CrashAndRecover();
  ASSERT_OK(t.disk->CheckConsistency());
  ASSERT_OK(t.disk->Close());
}

TEST(MultiWriterStressTest, ConcurrentCommittersOnSingleShardTable) {
  // Degenerate shard count: every id hashes to one shard, so the
  // per-shard lock serializes all publications. Correctness must not
  // depend on the fan-out, only the scaling does.
  lld::Options opts = TestDisk::SmallOptions();
  opts.paranoid_checks = false;
  opts.table_shards = 1;
  opts.durable_commits = true;
  TestDisk t(opts);

  constexpr int kWriters = 3;
  constexpr int kArusPerWriter = 10;
  std::mutex mu;
  std::vector<Status> failures;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kArusPerWriter; ++i) {
        auto run = [&]() -> Status {
          ARU_ASSIGN_OR_RETURN(const ld::AruId aru, t.disk->BeginARU());
          ARU_ASSIGN_OR_RETURN(const ListId list, t.disk->NewList(aru));
          ARU_ASSIGN_OR_RETURN(const BlockId block,
                               t.disk->NewBlock(list, kListHead, aru));
          ARU_RETURN_IF_ERROR(
              t.disk->Write(block, TestPattern(4096, block.value()), aru));
          ARU_RETURN_IF_ERROR(t.disk->EndARU(aru));
          return t.disk->DeleteList(list, kNoAru);
        };
        if (const Status status = run(); !status.ok()) {
          const std::lock_guard<std::mutex> lock(mu);
          failures.push_back(status);
          return;
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  for (const Status& failure : failures) {
    ADD_FAILURE() << "thread failure: " << failure.ToString();
  }
  const obs::Gauge* shard_count =
      t.disk->registry().FindGauge("aru_lld_table_shard_count");
  ASSERT_NE(shard_count, nullptr);
  EXPECT_EQ(shard_count->value(), 1);
  ASSERT_OK(t.disk->CheckConsistency());
  ASSERT_OK(t.disk->Close());
}

}  // namespace
}  // namespace aru::testing
