// SegmentWriter and SlotTable unit tests: fill/seal mechanics, space
// accounting, write/record co-location, and slot lifecycle.
#include <gtest/gtest.h>

#include "blockdev/mem_disk.h"
#include "lld/layout.h"
#include "lld/lld_metrics.h"
#include "lld/segment_pipeline.h"
#include "lld/segment_writer.h"
#include "lld/slot_table.h"
#include "lld/summary.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "util/crc32.h"

namespace aru::testing {
namespace {

using lld::Geometry;
using lld::kFooterSize;
using lld::LldMetrics;
using lld::SegmentPipeline;
using lld::SegmentWriter;
using lld::SlotInfo;
using lld::SlotPins;
using lld::SlotState;
using lld::SlotTable;

struct WriterRig {
  explicit WriterRig(std::uint32_t write_behind_segments = 0)
      : metrics(registry),
        device(32768),
        geometry(Derive(device)),
        pipeline(device, geometry, metrics, write_behind_segments),
        slots(geometry.slot_count),
        writer(geometry, slots, pipeline, metrics) {}

  static Geometry Derive(MemDisk& device) {
    lld::Options options;
    options.block_size = 4096;
    options.segment_size = 64 * 1024;  // 16 blocks max
    auto geometry = lld::DeriveGeometry(device, options);
    EXPECT_TRUE(geometry.ok());
    return *geometry;
  }

  obs::Registry registry;
  LldMetrics metrics;
  MemDisk device;
  Geometry geometry;
  SegmentPipeline pipeline;
  SlotTable slots;
  SegmentWriter writer;
};

TEST(SegmentWriterTest, AppendAndReadBackFromOpenSegment) {
  WriterRig rig;
  const Bytes data = TestPattern(4096, 1);
  auto phys = rig.writer.AppendWrite(
      lld::WriteRecord{ld::BlockId{1}, ld::kNoAru, 1, {}}, data);
  ASSERT_OK(phys.status());
  EXPECT_TRUE(rig.writer.InOpenSegment(*phys));
  Bytes out(4096);
  rig.writer.ReadOpenBlock(*phys, out);
  EXPECT_EQ(out, data);
}

TEST(SegmentWriterTest, SegmentSealsWhenFull) {
  WriterRig rig;
  // 64 KB segment, 40-byte footer: 15 blocks + records fit, the 16th
  // block forces a seal.
  const Bytes data = TestPattern(4096, 2);
  std::uint32_t first_slot = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    auto phys = rig.writer.AppendWrite(
        lld::WriteRecord{ld::BlockId{i + 1}, ld::kNoAru, i + 1, {}}, data);
    ASSERT_OK(phys.status());
    if (i == 0) first_slot = phys->slot();
  }
  EXPECT_EQ(rig.metrics.segments_written->value(), 1u);
  EXPECT_EQ(rig.slots[first_slot].state, SlotState::kWritten);
  EXPECT_GT(rig.slots[first_slot].seq, 0u);
}

TEST(SegmentWriterTest, SealedSegmentHasValidFooterAndSummary) {
  WriterRig rig;
  const Bytes data = TestPattern(4096, 3);
  auto phys = rig.writer.AppendWrite(
      lld::WriteRecord{ld::BlockId{7}, ld::kNoAru, 42, {}}, data);
  ASSERT_OK(phys.status());
  ASSERT_OK(rig.writer.SealIfOpen());

  Bytes slot_buf(rig.geometry.segment_size);
  ASSERT_OK(rig.device.Read(rig.geometry.slot_first_sector(phys->slot()),
                            slot_buf));
  ASSERT_OK_AND_ASSIGN(const auto footer,
                       lld::DecodeFooter(ByteSpan(slot_buf).last(kFooterSize)));
  EXPECT_EQ(footer.record_count, 1u);
  EXPECT_EQ(footer.last_lsn, 42u);
  const ByteSpan summary = ByteSpan(slot_buf).subspan(
      rig.geometry.segment_size - kFooterSize - footer.summary_len,
      footer.summary_len);
  EXPECT_EQ(Crc32c(summary), footer.summary_crc);
  ASSERT_OK_AND_ASSIGN(const auto records, lld::DecodeSummary(summary));
  ASSERT_EQ(records.size(), 1u);
  const auto& write = std::get<lld::WriteRecord>(records[0]);
  EXPECT_EQ(write.block, ld::BlockId{7});
  EXPECT_EQ(write.phys, *phys);
}

TEST(SegmentWriterTest, EmptySealReturnsSlot) {
  WriterRig rig;
  // Force a slot open by appending a record, sealing, then sealing the
  // (empty) successor state: no new segment, no slot leak.
  ASSERT_OK(rig.writer.AppendRecord(lld::CommitRecord{ld::AruId{1}, 1}));
  ASSERT_OK(rig.writer.SealIfOpen());
  const std::uint32_t free_before = rig.slots.free_count();
  ASSERT_OK(rig.writer.SealIfOpen());  // nothing open: no-op
  EXPECT_EQ(rig.slots.free_count(), free_before);
  EXPECT_EQ(rig.metrics.segments_written->value(), 1u);
}

TEST(SegmentWriterTest, PersistedLsnAdvancesOnSeal) {
  WriterRig rig;
  EXPECT_EQ(rig.writer.persisted_lsn(), 0u);
  ASSERT_OK(rig.writer.AppendRecord(lld::CommitRecord{ld::AruId{1}, 9}));
  EXPECT_EQ(rig.writer.persisted_lsn(), 0u);  // still buffered
  ASSERT_OK(rig.writer.SealIfOpen());
  EXPECT_EQ(rig.writer.persisted_lsn(), 9u);
}

TEST(SegmentWriterTest, RunsOutOfSlotsEventually) {
  WriterRig rig;
  const Bytes data = TestPattern(4096, 4);
  Status status;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    auto phys = rig.writer.AppendWrite(
        lld::WriteRecord{ld::BlockId{i + 1}, ld::kNoAru, i + 1, {}}, data);
    if (!phys.ok()) {
      status = phys.status();
      break;
    }
  }
  EXPECT_EQ(status.code(), StatusCode::kOutOfSpace);
}

TEST(SegmentWriterAsyncTest, SealHandsOffAndDrainAdvancesHorizon) {
  WriterRig rig(/*write_behind_segments=*/2);
  ASSERT_OK(rig.writer.AppendRecord(lld::CommitRecord{ld::AruId{1}, 9}));
  ASSERT_OK(rig.writer.SealIfOpen());
  // The seal enqueued the segment; the horizon reaches 9 only once the
  // flusher's device write completes.
  EXPECT_EQ(rig.writer.enqueued_lsn(), 9u);
  ASSERT_OK(rig.pipeline.Drain());
  EXPECT_EQ(rig.writer.persisted_lsn(), 9u);
}

TEST(SegmentWriterAsyncTest, SealedSegmentReachesDeviceAfterDrain) {
  WriterRig rig(/*write_behind_segments=*/4);
  const Bytes data = TestPattern(4096, 5);
  auto phys = rig.writer.AppendWrite(
      lld::WriteRecord{ld::BlockId{7}, ld::kNoAru, 42, {}}, data);
  ASSERT_OK(phys.status());
  ASSERT_OK(rig.writer.SealIfOpen());
  ASSERT_OK(rig.pipeline.Drain());

  Bytes slot_buf(rig.geometry.segment_size);
  ASSERT_OK(rig.device.Read(rig.geometry.slot_first_sector(phys->slot()),
                            slot_buf));
  ASSERT_OK_AND_ASSIGN(const auto footer,
                       lld::DecodeFooter(ByteSpan(slot_buf).last(kFooterSize)));
  EXPECT_EQ(footer.record_count, 1u);
  EXPECT_EQ(footer.last_lsn, 42u);
}

TEST(SegmentWriterAsyncTest, InFlightBlocksReadableFromPinnedBuffer) {
  WriterRig rig(/*write_behind_segments=*/4);
  const Bytes data = TestPattern(4096, 6);
  auto phys = rig.writer.AppendWrite(
      lld::WriteRecord{ld::BlockId{3}, ld::kNoAru, 5, {}}, data);
  ASSERT_OK(phys.status());
  ASSERT_OK(rig.writer.SealIfOpen());
  // Sealed: no longer in the open segment. Whether it is still queued
  // depends on flusher timing; either the pinned buffer serves it or
  // the device already has it.
  EXPECT_FALSE(rig.writer.InOpenSegment(*phys));
  Bytes out(4096);
  if (!rig.pipeline.ReadBuffered(*phys, out)) {
    ASSERT_OK(rig.pipeline.Drain());
    const std::uint64_t sector =
        rig.geometry.slot_first_sector(phys->slot()) +
        static_cast<std::uint64_t>(phys->index()) *
            (rig.geometry.block_size / rig.geometry.sector_size);
    ASSERT_OK(rig.device.Read(sector, out));
  }
  EXPECT_EQ(out, data);
}

TEST(SegmentWriterAsyncTest, BoundedPoolBackpressuresAndKeepsOrder) {
  WriterRig rig(/*write_behind_segments=*/1);
  const Bytes data = TestPattern(4096, 7);
  // Seal far more segments than the pool admits; Enqueue must block
  // (not fail) and every segment must land durably in seal order.
  std::uint64_t lsn = 0;
  for (int seg = 0; seg < 8; ++seg) {
    for (int b = 0; b < 15; ++b) {
      ++lsn;
      ASSERT_OK(rig.writer
                    .AppendWrite(lld::WriteRecord{ld::BlockId{lsn}, ld::kNoAru,
                                                  lsn, {}},
                                 data)
                    .status());
    }
    ASSERT_OK(rig.writer.SealIfOpen());
  }
  ASSERT_OK(rig.pipeline.Drain());
  EXPECT_EQ(rig.writer.persisted_lsn(), lsn);
  EXPECT_EQ(rig.metrics.segments_written->value(), 8u);
}

TEST(SlotTableTest, NextFreeWrapsAround) {
  SlotTable slots(4);
  slots[0].state = SlotState::kWritten;
  slots[1].state = SlotState::kWritten;
  EXPECT_EQ(slots.NextFree(1), 2u);
  EXPECT_EQ(slots.NextFree(3), 3u);
  slots[2].state = SlotState::kOpen;
  slots[3].state = SlotState::kPendingFree;
  EXPECT_EQ(slots.NextFree(0), 4u);  // none free
}

TEST(SlotTableTest, ReleasePendingHonorsCoverage) {
  SlotTable slots(3);
  SlotPins pins(3);
  slots[0] = SlotInfo{SlotState::kPendingFree, 5, 100};
  slots[1] = SlotInfo{SlotState::kPendingFree, 9, 200};
  slots[2] = SlotInfo{SlotState::kWritten, 7, 150};
  const auto released = slots.ReleasePending(/*covered_seq=*/6, pins);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], 0u);
  EXPECT_EQ(slots[0].state, SlotState::kFree);
  EXPECT_EQ(slots[1].state, SlotState::kPendingFree);  // seq 9 > 6
  EXPECT_EQ(slots[2].state, SlotState::kWritten);
  EXPECT_EQ(pins.generation(0), 1u);  // bumped on release
  EXPECT_EQ(pins.generation(1), 0u);
}

TEST(SlotTableTest, ReleasePendingSkipsPinnedSlots) {
  SlotTable slots(3);
  SlotPins pins(3);
  slots[0] = SlotInfo{SlotState::kPendingFree, 3, 100};
  slots[1] = SlotInfo{SlotState::kPendingFree, 4, 200};
  pins.Pin(0);
  auto released = slots.ReleasePending(/*covered_seq=*/10, pins);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], 1u);
  // The pinned slot stays PendingFree — an in-flight reader still
  // depends on its bytes — and its generation is untouched.
  EXPECT_EQ(slots[0].state, SlotState::kPendingFree);
  EXPECT_EQ(pins.generation(0), 0u);
  // A later checkpoint (pin dropped) releases it and bumps the gen.
  pins.Unpin(0);
  released = slots.ReleasePending(/*covered_seq=*/10, pins);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], 0u);
  EXPECT_EQ(slots[0].state, SlotState::kFree);
  EXPECT_EQ(pins.generation(0), 1u);
}

TEST(SlotTableTest, SlotPinsCountNestedPins) {
  SlotPins pins(2);
  pins.Pin(1);
  pins.Pin(1);
  EXPECT_EQ(pins.pins(1), 2u);
  EXPECT_EQ(pins.pins(0), 0u);
  pins.Unpin(1);
  EXPECT_EQ(pins.pins(1), 1u);
  pins.Unpin(1);
  EXPECT_EQ(pins.pins(1), 0u);
}

TEST(SlotTableTest, CountState) {
  SlotTable slots(5);
  slots[1].state = SlotState::kWritten;
  slots[2].state = SlotState::kWritten;
  slots[3].state = SlotState::kOpen;
  EXPECT_EQ(slots.free_count(), 2u);
  EXPECT_EQ(slots.CountState(SlotState::kWritten), 2u);
  EXPECT_EQ(slots.CountState(SlotState::kOpen), 1u);
}

}  // namespace
}  // namespace aru::testing
