// Pins the *documented* semantics of edge cases the paper leaves to
// client concurrency control. These are not desirable behaviours to
// rely on — they are the defined outcomes of races that properly
// locked clients never create, and these tests exist so that any
// accidental change to them is noticed.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

// Paper §3.3 / lld.h: a write whose target was deleted by a stream
// that committed first is dropped at merge time.
TEST(SemanticsPin, WriteIntoBlockDeletedByCommittedStreamIsDropped) {
  // The unlocked race deliberately leaves the open ARU's view
  // structurally stale mid-flight; paranoid per-op view validation
  // assumes properly locked clients, so it is off here.
  lld::Options options = TestDisk::SmallOptions();
  options.paranoid_checks = false;
  TestDisk t(options);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));

  ASSERT_OK_AND_ASSIGN(const AruId writer, t.disk->BeginARU());
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 2), writer));

  // A simple delete commits while the ARU is open.
  ASSERT_OK(t.disk->DeleteBlock(block, kNoAru));

  // The ARU commits afterwards; its write has nowhere to land.
  ASSERT_OK(t.disk->EndARU(writer));
  Bytes out(4096);
  EXPECT_EQ(t.disk->Read(block, out, kNoAru).code(), StatusCode::kNotFound);
  ASSERT_OK(t.disk->CheckConsistency());

  // And recovery reproduces the same outcome.
  ASSERT_OK(t.disk->Flush());
  t.CrashAndRecover();
  EXPECT_EQ(t.disk->Read(block, out, kNoAru).code(), StatusCode::kNotFound);
  ASSERT_OK(t.disk->CheckConsistency());
}

// EndARU skips list operations that no longer apply (a conflicting
// stream committed first); the rest of the ARU still commits.
TEST(SemanticsPin, InapplicableListOpIsSkippedAtCommit) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId victim,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK_AND_ASSIGN(const ListId other, t.disk->NewList(kNoAru));

  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  // The ARU deletes `victim` (shadowed) and creates a block elsewhere.
  ASSERT_OK(t.disk->DeleteBlock(victim, aru));
  ASSERT_OK_AND_ASSIGN(const BlockId kept,
                       t.disk->NewBlock(other, kListHead, aru));

  // A simple op deletes `victim` first: the ARU's delete re-execution
  // will find nothing to delete.
  ASSERT_OK(t.disk->DeleteBlock(victim, kNoAru));

  ASSERT_OK(t.disk->EndARU(aru));  // skips the inapplicable delete
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(other, kNoAru));
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], kept);
  ASSERT_OK(t.disk->CheckConsistency());
}

// Sequential mode applies ARU operations to the committed state in
// place; after recovery, an ARU's writes take effect at the COMMIT
// position. A simple write interleaved into an open sequential ARU on
// the *same block* therefore resolves differently in memory (stream
// order) and after recovery (commit order) — the degenerate race the
// old prototype never guarded against. This test pins the recovery
// outcome.
TEST(SemanticsPin, SequentialModeInterleavedSimpleWriteCommitWins) {
  lld::Options options = TestDisk::SmallOptions();
  options.aru_mode = lld::AruMode::kSequential;
  TestDisk t(options);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Flush());

  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), aru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 2), kNoAru));  // racy!
  ASSERT_OK(t.disk->EndARU(aru));
  ASSERT_OK(t.disk->Flush());

  // In-memory view after the race: stream order, the simple write is
  // newest.
  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 2));

  // After recovery: the ARU's write is effective at its commit record,
  // which follows the simple write in the log.
  t.CrashAndRecover();
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 1));
  ASSERT_OK(t.disk->CheckConsistency());
}

// In concurrent mode the same interleaving is well-defined (and
// recovery-equivalent): the ARU commits later, so the ARU wins both in
// memory and after recovery.
TEST(SemanticsPin, ConcurrentModeInterleavedSimpleWriteIsConsistent) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Flush());

  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), aru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 2), kNoAru));
  ASSERT_OK(t.disk->EndARU(aru));
  ASSERT_OK(t.disk->Flush());

  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 1));  // commit (serialization point) wins

  t.CrashAndRecover();
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 1));  // same after recovery
}

// Aborting an ARU that deleted blocks restores full visibility — the
// deletes only ever lived in the shadow state.
TEST(SemanticsPin, AbortAfterDeletesIsComplete) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  std::vector<BlockId> blocks;
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
    blocks.push_back(pred);
  }
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  for (const BlockId block : blocks) {
    ASSERT_OK(t.disk->DeleteBlock(block, aru));
  }
  ASSERT_OK(t.disk->AbortARU(aru));

  ASSERT_OK_AND_ASSIGN(const auto after, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(after.size(), blocks.size());
  Bytes out(4096);
  for (std::uint64_t i = 0; i < blocks.size(); ++i) {
    ASSERT_OK(t.disk->Read(blocks[i], out, kNoAru));
    EXPECT_EQ(out, TestPattern(4096, i));
  }
}

}  // namespace
}  // namespace aru::testing
