// Remaining public-API surface: AruScope RAII semantics, logical
// capacity enforcement, degenerate cache sizes, ListOf, and threaded
// churn with the cleaner active.
#include <gtest/gtest.h>

#include <thread>

#include "minixfs/minix_fs.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::AruScope;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(AruScopeTest, CommitPublishes) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  {
    AruScope aru(*t.disk);
    ASSERT_OK(aru.status());
    ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), aru.id()));
    ASSERT_OK(aru.Commit());
  }
  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 1));
}

TEST(AruScopeTest, DestructionWithoutCommitAborts) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  {
    AruScope aru(*t.disk);
    ASSERT_OK(aru.status());
    ASSERT_OK(t.disk->Write(block, TestPattern(4096, 2), aru.id()));
    // No Commit(): the scope aborts.
  }
  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 1));
  EXPECT_EQ(t.disk->stats().arus_aborted, 1u);
}

TEST(AruScopeTest, DoubleCommitFails) {
  TestDisk t;
  AruScope aru(*t.disk);
  ASSERT_OK(aru.status());
  ASSERT_OK(aru.Commit());
  EXPECT_EQ(aru.Commit().code(), StatusCode::kNotFound);
}

TEST(CapacityTest, LogicalCapacityEnforced) {
  lld::Options options = TestDisk::SmallOptions();
  options.capacity_blocks = 10;
  options.paranoid_checks = false;
  TestDisk t(options);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
  }
  EXPECT_EQ(t.disk->free_blocks(), 0u);
  EXPECT_EQ(t.disk->NewBlock(list, pred, kNoAru).status().code(),
            StatusCode::kOutOfSpace);
  // Freeing one block makes room again.
  ASSERT_OK(t.disk->DeleteBlock(pred, kNoAru));
  ASSERT_OK(t.disk->NewBlock(list, kListHead, kNoAru).status());
}

TEST(ListOfTest, TracksMembershipPerView) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK_AND_ASSIGN(const ListId of, t.disk->ListOf(block, kNoAru));
  EXPECT_EQ(of, list);

  // Inside an ARU that deletes the block, ListOf reports not-found;
  // outside it still reports the list.
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->DeleteBlock(block, aru));
  EXPECT_EQ(t.disk->ListOf(block, aru).status().code(),
            StatusCode::kNotFound);
  ASSERT_OK_AND_ASSIGN(const ListId still, t.disk->ListOf(block, kNoAru));
  EXPECT_EQ(still, list);
  ASSERT_OK(t.disk->AbortARU(aru));

  EXPECT_EQ(t.disk->ListOf(BlockId{9999}, kNoAru).status().code(),
            StatusCode::kNotFound);
}

TEST(TinyCacheTest, MinixFsCorrectWithTwoBlockCache) {
  TestDisk t;
  ASSERT_OK(minixfs::MinixFs::Mkfs(*t.disk));
  minixfs::Policy policy;
  policy.cache_blocks = 2;  // constant eviction pressure
  ASSERT_OK_AND_ASSIGN(auto fs, minixfs::MinixFs::Mount(*t.disk, policy));
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK(fs->WriteFile("/f" + std::to_string(i),
                            Bytes(2000, std::byte{static_cast<unsigned char>(i)})));
  }
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK_AND_ASSIGN(const auto data,
                         fs->ReadFile("/f" + std::to_string(i)));
    ASSERT_EQ(data, Bytes(2000, std::byte{static_cast<unsigned char>(i)}));
  }
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(TinyCacheTest, LldReadCacheOfOneBlock) {
  lld::Options options = TestDisk::SmallOptions();
  options.read_cache_blocks = 1;
  TestDisk t(options);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId a, t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b, t.disk->NewBlock(list, a, kNoAru));
  ASSERT_OK(t.disk->Write(a, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(t.disk->Write(b, TestPattern(4096, 2), kNoAru));
  ASSERT_OK(t.disk->Flush());
  Bytes out(4096);
  for (int i = 0; i < 10; ++i) {  // ping-pong evicts every time
    ASSERT_OK(t.disk->Read(a, out, kNoAru));
    ASSERT_EQ(out, TestPattern(4096, 1));
    ASSERT_OK(t.disk->Read(b, out, kNoAru));
    ASSERT_EQ(out, TestPattern(4096, 2));
  }
}

TEST(ThreadedCleaningTest, ChurnFromThreadsWithCleanerActive) {
  lld::Options options = TestDisk::SmallOptions();
  options.cleaner_reserve_slots = 3;
  TestDisk t(options, /*sectors=*/6 * 1024 * 1024 / 512);  // tight: 6 MB

  constexpr int kThreads = 4;
  std::vector<BlockId> blocks(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
    ASSERT_OK_AND_ASSIGN(blocks[static_cast<std::size_t>(i)],
                         t.disk->NewBlock(list, kListHead, kNoAru));
  }

  std::atomic<int> failures{0};
  auto worker = [&](int id) {
    const BlockId block = blocks[static_cast<std::size_t>(id)];
    for (std::uint64_t v = 1; v <= 400; ++v) {
      const Bytes data =
          TestPattern(4096, static_cast<std::uint64_t>(id) * 10000 + v);
      const Status wrote = t.disk->Write(block, data, kNoAru);
      if (!wrote.ok()) {
        ++failures;
        return;
      }
      Bytes out(4096);
      if (!t.disk->Read(block, out, kNoAru).ok() || out != data) {
        ++failures;
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) threads.emplace_back(worker, i);
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(t.disk->stats().cleaner_passes, 0u);
  ASSERT_OK(t.disk->CheckConsistency());

  // Each thread's final version survives a crash after a flush.
  ASSERT_OK(t.disk->Flush());
  t.CrashAndRecover();
  for (int i = 0; i < kThreads; ++i) {
    Bytes out(4096);
    ASSERT_OK(t.disk->Read(blocks[static_cast<std::size_t>(i)], out, kNoAru));
    EXPECT_EQ(out, TestPattern(4096,
                               static_cast<std::uint64_t>(i) * 10000 + 400));
  }
}

}  // namespace
}  // namespace aru::testing
