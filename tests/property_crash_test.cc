// Model-based crash-consistency property test.
//
// A random workload (lists, blocks, writes, deletes, concurrent ARUs,
// aborts, flushes) runs against LLD while a reference model records the
// sequence of *commit events* (each simple operation, each EndARU).
// Then the power fails — either between operations (volatile state
// lost) or in the middle of a device write (torn segment) — and the
// disk is recovered.
//
// Property (paper §3.1, "recovery is always to the most recent
// persistent version" + all-or-nothing ARUs): the recovered state must
// equal the model after exactly k commit events, for some k between
// the last explicit Flush and the end of the run. Any torn ARU, any
// reordering, any partial commit would make the recovered state match
// no prefix at all.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "blockdev/fault_disk.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

// ---------------------------------------------------------------------
// Reference model: lists of blocks with content seeds.

struct ModelState {
  // list -> ordered blocks; only existing lists are present.
  std::map<ListId, std::vector<BlockId>> lists;
  // block -> content seed (no entry: never written, reads as zeroes).
  std::map<BlockId, std::uint64_t> content;

  bool operator==(const ModelState&) const = default;
};

// One committed mutation batch (a simple op, or a whole ARU).
struct Mutation {
  enum class Kind {
    kNewList,
    kDeleteList,
    kInsert,
    kDeleteBlock,
    kWrite,
    kMove,  // block, pred, list = destination; src list derived
  };
  Kind kind;
  ListId list;
  BlockId block;
  BlockId pred;
  std::uint64_t seed = 0;
};

using Event = std::vector<Mutation>;

void ApplyMutation(ModelState& state, const Mutation& m) {
  switch (m.kind) {
    case Mutation::Kind::kNewList:
      state.lists[m.list];
      break;
    case Mutation::Kind::kDeleteList: {
      auto it = state.lists.find(m.list);
      ASSERT_NE(it, state.lists.end());
      for (const BlockId b : it->second) state.content.erase(b);
      state.lists.erase(it);
      break;
    }
    case Mutation::Kind::kInsert: {
      auto& blocks = state.lists.at(m.list);
      if (!m.pred.valid()) {
        blocks.insert(blocks.begin(), m.block);
      } else {
        auto pos = std::find(blocks.begin(), blocks.end(), m.pred);
        ASSERT_NE(pos, blocks.end());
        blocks.insert(pos + 1, m.block);
      }
      break;
    }
    case Mutation::Kind::kDeleteBlock: {
      auto& blocks = state.lists.at(m.list);
      auto pos = std::find(blocks.begin(), blocks.end(), m.block);
      ASSERT_NE(pos, blocks.end());
      blocks.erase(pos);
      state.content.erase(m.block);
      break;
    }
    case Mutation::Kind::kWrite:
      state.content[m.block] = m.seed;
      break;
    case Mutation::Kind::kMove: {
      // Remove from whichever list currently holds the block…
      for (auto& [list, blocks] : state.lists) {
        const auto pos = std::find(blocks.begin(), blocks.end(), m.block);
        if (pos != blocks.end()) {
          blocks.erase(pos);
          break;
        }
      }
      // …and insert into the destination after pred.
      auto& dest = state.lists.at(m.list);
      if (!m.pred.valid()) {
        dest.insert(dest.begin(), m.block);
      } else {
        const auto pos = std::find(dest.begin(), dest.end(), m.pred);
        ASSERT_NE(pos, dest.end());
        dest.insert(pos + 1, m.block);
      }
      break;
    }
  }
}

ModelState ModelAfter(const std::vector<Event>& events, std::size_t k) {
  ModelState state;
  for (std::size_t i = 0; i < k; ++i) {
    for (const Mutation& m : events[i]) ApplyMutation(state, m);
  }
  return state;
}

// Reads the full logical state back from a recovered disk.
// `all_lists` is every list id the workload ever created.
Result<ModelState> ObserveDisk(lld::Lld& disk,
                               const std::set<ListId>& all_lists,
                               std::uint32_t block_size) {
  ModelState state;
  Bytes data(block_size);
  const Bytes zeroes(block_size);
  for (const ListId list : all_lists) {
    auto blocks = disk.ListBlocks(list, kNoAru);
    if (!blocks.ok()) {
      if (blocks.status().code() == StatusCode::kNotFound) continue;
      return blocks.status();
    }
    auto& entry = state.lists[list];
    entry = *blocks;
    for (const BlockId block : entry) {
      ARU_RETURN_IF_ERROR(disk.Read(block, data, kNoAru));
      if (data != zeroes) {
        // Recover the seed stamped into the first 8 bytes.
        state.content[block] = GetU64(data);
      }
    }
  }
  return state;
}

Bytes SeededBlock(std::uint32_t block_size, std::uint64_t seed) {
  Bytes data = TestPattern(block_size, seed);
  // Stamp the seed so ObserveDisk can identify content.
  Bytes prefix;
  PutU64(prefix, seed);
  std::copy(prefix.begin(), prefix.end(), data.begin());
  return data;
}

// ---------------------------------------------------------------------
// Workload generator.

struct WorkloadParams {
  std::uint64_t seed = 1;
  std::uint64_t ops = 300;
  lld::AruMode mode = lld::AruMode::kConcurrent;
  bool tear_crash = false;        // power cut mid-write vs between ops
  std::uint64_t crash_after_sectors = 0;  // for tear_crash
  std::uint32_t segment_size = 64 * 1024;  // small: many seals
  std::uint64_t device_sectors = TestDisk::kDefaultSectors;
};

class CrashWorkload {
 public:
  CrashWorkload(lld::Lld& disk, const WorkloadParams& params)
      : disk_(disk), rng_(params.seed), params_(params) {}

  // Runs ops until done or the device dies. Returns collected history.
  void Run() {
    for (std::uint64_t i = 0; i < params_.ops; ++i) {
      if (!Step()) break;
    }
    // Close still-open ARUs only in the model sense: their shadow state
    // simply dies with the crash.
  }

  const std::vector<Event>& events() const { return events_; }
  std::size_t flush_floor() const { return flush_floor_; }
  const std::set<ListId>& all_lists() const { return all_lists_; }

 private:
  struct OpenAru {
    AruId id;
    Event pending;
    // Per-list overlay: a claimed list's state as this ARU sees it
    // (snapshotted from the committed view at first touch — claims are
    // exclusive, so the base cannot change underneath). LLD semantics:
    // unshadowed state reads through to the committed view, so the
    // snapshot happens per list, not at BeginARU.
    std::map<ListId, std::vector<BlockId>> view;
    std::set<ListId> deleted;  // lists deleted within this ARU
  };

  // One random step; false if the device died (simulated power cut).
  bool Step() {
    const std::uint64_t roll = rng_.Below(100);
    Status status;
    if (roll < 8) {
      status = DoNewList();
    } else if (roll < 28) {
      status = DoNewBlock();
    } else if (roll < 58) {
      status = DoWrite();
    } else if (roll < 68) {
      status = DoDeleteBlock();
    } else if (roll < 74) {
      status = DoDeleteList();
    } else if (roll < 79) {
      status = DoMove();
    } else if (roll < 84) {
      status = DoBeginAru();
    } else if (roll < 93) {
      status = DoEndAru();
    } else if (roll < 95) {
      status = DoAbortAru();
    } else {
      status = DoFlush();
    }
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable)
          << "unexpected failure: " << status.ToString();
      return false;
    }
    return true;
  }

  bool ClaimedByOther(ListId list, const OpenAru* self) const {
    for (const OpenAru& aru : open_arus_) {
      if (&aru == self) continue;
      if (aru.view.contains(list) || aru.deleted.contains(list)) return true;
    }
    return false;
  }

  // Picks the stream (an open ARU or simple) for the next operation.
  struct StreamChoice {
    AruId aru;
    OpenAru* open = nullptr;  // null for simple ops
  };
  StreamChoice PickStream() {
    if (!open_arus_.empty() && rng_.Chance(2, 3)) {
      OpenAru& aru = open_arus_[rng_.Below(open_arus_.size())];
      return {aru.id, &aru};
    }
    return {kNoAru, nullptr};
  }

  // A list usable by the given stream; claims it for an ARU stream.
  std::optional<ListId> PickList(const StreamChoice& stream) {
    std::vector<ListId> usable;
    if (stream.open != nullptr) {
      for (const auto& [list, blocks] : stream.open->view) {
        usable.push_back(list);
      }
      for (const auto& [list, blocks] : committed_view_.lists) {
        if (!stream.open->view.contains(list) &&
            !stream.open->deleted.contains(list) &&
            !ClaimedByOther(list, stream.open)) {
          usable.push_back(list);
        }
      }
    } else {
      for (const auto& [list, blocks] : committed_view_.lists) {
        if (!ClaimedByOther(list, nullptr)) usable.push_back(list);
      }
    }
    if (usable.empty()) return std::nullopt;
    const ListId list = usable[rng_.Below(usable.size())];
    if (stream.open != nullptr && !stream.open->view.contains(list)) {
      // First touch: snapshot the committed state of this list.
      stream.open->view[list] = committed_view_.lists.at(list);
    }
    return list;
  }

  // The ordered blocks of `list` as the stream sees them.
  const std::vector<BlockId>& BlocksOf(const StreamChoice& stream,
                                       ListId list) {
    if (stream.open != nullptr) return stream.open->view.at(list);
    return committed_view_.lists.at(list);
  }

  // Records a mutation: applied to the stream's view now; committed
  // streams also produce an immediate commit event.
  void Emit(const StreamChoice& stream, const Mutation& mutation) {
    if (stream.open != nullptr) {
      stream.open->pending.push_back(mutation);
      ApplyToAruView(*stream.open, mutation);
    } else {
      ApplyMutation(committed_view_, mutation);
      events_.push_back({mutation});
    }
  }

  static void ApplyToAruView(OpenAru& open, const Mutation& m) {
    switch (m.kind) {
      case Mutation::Kind::kNewList:
        open.view[m.list];
        break;
      case Mutation::Kind::kDeleteList:
        open.view.erase(m.list);
        open.deleted.insert(m.list);
        break;
      case Mutation::Kind::kInsert: {
        auto& blocks = open.view.at(m.list);
        if (!m.pred.valid()) {
          blocks.insert(blocks.begin(), m.block);
        } else {
          auto pos = std::find(blocks.begin(), blocks.end(), m.pred);
          ASSERT_NE(pos, blocks.end());
          blocks.insert(pos + 1, m.block);
        }
        break;
      }
      case Mutation::Kind::kDeleteBlock: {
        auto& blocks = open.view.at(m.list);
        auto pos = std::find(blocks.begin(), blocks.end(), m.block);
        ASSERT_NE(pos, blocks.end());
        blocks.erase(pos);
        break;
      }
      case Mutation::Kind::kWrite:
        break;  // content is tracked at commit time only
      case Mutation::Kind::kMove: {
        for (auto& [list, blocks] : open.view) {
          const auto pos = std::find(blocks.begin(), blocks.end(), m.block);
          if (pos != blocks.end()) {
            blocks.erase(pos);
            break;
          }
        }
        auto& dest = open.view.at(m.list);
        if (!m.pred.valid()) {
          dest.insert(dest.begin(), m.block);
        } else {
          const auto pos = std::find(dest.begin(), dest.end(), m.pred);
          ASSERT_NE(pos, dest.end());
          dest.insert(pos + 1, m.block);
        }
        break;
      }
    }
  }

  Status DoNewList() {
    const StreamChoice stream = PickStream();
    auto list = disk_.NewList(stream.aru);
    if (!list.ok()) return list.status();
    all_lists_.insert(*list);
    Emit(stream, Mutation{Mutation::Kind::kNewList, *list, {}, {}, 0});
    return Status::Ok();
  }

  Status DoNewBlock() {
    const StreamChoice stream = PickStream();
    const auto list = PickList(stream);
    if (!list) return Status::Ok();
    const auto& blocks = BlocksOf(stream, *list);
    BlockId pred = kListHead;
    if (!blocks.empty() && rng_.Chance(1, 2)) {
      pred = blocks[rng_.Below(blocks.size())];
    }
    auto block = disk_.NewBlock(*list, pred, stream.aru);
    if (!block.ok()) return block.status();
    Emit(stream, Mutation{Mutation::Kind::kInsert, *list, *block, pred, 0});
    return Status::Ok();
  }

  Status DoWrite() {
    const StreamChoice stream = PickStream();
    const auto list = PickList(stream);
    if (!list) return Status::Ok();
    const auto& blocks = BlocksOf(stream, *list);
    if (blocks.empty()) return Status::Ok();
    const BlockId block = blocks[rng_.Below(blocks.size())];
    const std::uint64_t seed = rng_.Next() | 1;  // nonzero
    const Bytes data = SeededBlock(disk_.block_size(), seed);
    ARU_RETURN_IF_ERROR(disk_.Write(block, data, stream.aru));
    Emit(stream, Mutation{Mutation::Kind::kWrite, *list, block, {}, seed});
    return Status::Ok();
  }

  Status DoDeleteBlock() {
    const StreamChoice stream = PickStream();
    const auto list = PickList(stream);
    if (!list) return Status::Ok();
    const auto& blocks = BlocksOf(stream, *list);
    if (blocks.empty()) return Status::Ok();
    const BlockId block = blocks[rng_.Below(blocks.size())];
    ARU_RETURN_IF_ERROR(disk_.DeleteBlock(block, stream.aru));
    Emit(stream,
         Mutation{Mutation::Kind::kDeleteBlock, *list, block, {}, 0});
    return Status::Ok();
  }

  Status DoDeleteList() {
    const StreamChoice stream = PickStream();
    const auto list = PickList(stream);
    if (!list) return Status::Ok();
    ARU_RETURN_IF_ERROR(disk_.DeleteList(*list, stream.aru));
    Emit(stream, Mutation{Mutation::Kind::kDeleteList, *list, {}, {}, 0});
    return Status::Ok();
  }

  Status DoMove() {
    const StreamChoice stream = PickStream();
    const auto src = PickList(stream);
    if (!src) return Status::Ok();
    const auto& src_blocks = BlocksOf(stream, *src);
    if (src_blocks.empty()) return Status::Ok();
    const BlockId block = src_blocks[rng_.Below(src_blocks.size())];
    const auto dst = PickList(stream);  // may equal src; also claimed
    if (!dst) return Status::Ok();
    const auto& dst_blocks = BlocksOf(stream, *dst);
    BlockId pred = kListHead;
    if (!dst_blocks.empty() && rng_.Chance(1, 2)) {
      pred = dst_blocks[rng_.Below(dst_blocks.size())];
      if (pred == block) pred = kListHead;
    }
    ARU_RETURN_IF_ERROR(disk_.MoveBlock(block, *dst, pred, stream.aru));
    Emit(stream, Mutation{Mutation::Kind::kMove, *dst, block, pred, 0});
    return Status::Ok();
  }

  Status DoBeginAru() {
    if (params_.mode == lld::AruMode::kSequential && !open_arus_.empty()) {
      return Status::Ok();
    }
    if (open_arus_.size() >= 4) return Status::Ok();
    auto aru = disk_.BeginARU();
    if (!aru.ok()) return aru.status();
    OpenAru open;
    open.id = *aru;
    open_arus_.push_back(std::move(open));
    return Status::Ok();
  }

  Status DoEndAru() {
    if (open_arus_.empty()) return Status::Ok();
    const std::size_t pick = rng_.Below(open_arus_.size());
    OpenAru open = std::move(open_arus_[pick]);
    open_arus_.erase(open_arus_.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    ARU_RETURN_IF_ERROR(disk_.EndARU(open.id));
    // The whole ARU becomes one commit event.
    for (const Mutation& m : open.pending) {
      ApplyMutation(committed_view_, m);
    }
    if (!open.pending.empty()) events_.push_back(std::move(open.pending));
    return Status::Ok();
  }

  Status DoAbortAru() {
    if (params_.mode == lld::AruMode::kSequential) return Status::Ok();
    if (open_arus_.empty()) return Status::Ok();
    const std::size_t pick = rng_.Below(open_arus_.size());
    const AruId id = open_arus_[pick].id;
    open_arus_.erase(open_arus_.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    // AbortARU drops the shadow state; the model simply forgets the
    // pending mutations and releases the claims.
    return disk_.AbortARU(id);
  }

  Status DoFlush() {
    ARU_RETURN_IF_ERROR(disk_.Flush());
    flush_floor_ = events_.size();
    return Status::Ok();
  }

  lld::Lld& disk_;
  Rng rng_;
  WorkloadParams params_;

  ModelState committed_view_;
  std::map<AruId, ModelState> stream_views_;
  std::vector<OpenAru> open_arus_;
  std::vector<Event> events_;
  std::size_t flush_floor_ = 0;
  std::set<ListId> all_lists_;
};

// ---------------------------------------------------------------------
// The property.

void RunCrashProperty(const WorkloadParams& params) {
  auto inner = std::make_unique<MemDisk>(params.device_sectors);
  auto* mem = inner.get();
  FaultInjectionDisk device(std::move(inner), params.seed);

  lld::Options options;
  options.block_size = 4096;
  options.segment_size = params.segment_size;
  options.aru_mode = params.mode;
  ASSERT_OK(lld::Lld::Format(device, options));

  std::vector<Event> events;
  std::size_t flush_floor = 0;
  std::set<ListId> all_lists;
  {
    auto opened = lld::Lld::Open(device, options);
    ASSERT_OK(opened.status());
    if (params.tear_crash) {
      device.SchedulePowerCut(params.crash_after_sectors, /*tear=*/true);
    }
    CrashWorkload workload(**opened, params);
    workload.Run();
    events = workload.events();
    flush_floor = workload.flush_floor();
    all_lists = workload.all_lists();
    // Crash: the Lld object is destroyed without Close().
  }

  auto survivor = MemDisk::FromImage(mem->CopyImage());
  auto recovered = lld::Lld::Open(*survivor, options);
  ASSERT_OK(recovered.status());
  ASSERT_OK((*recovered)->CheckConsistency());

  auto observed = ObserveDisk(**recovered, all_lists, options.block_size);
  ASSERT_OK(observed.status());

  // The recovered state must be the model after some prefix of commit
  // events, no earlier than the last explicit flush.
  bool matched = false;
  for (std::size_t k = flush_floor; k <= events.size(); ++k) {
    if (*observed == ModelAfter(events, k)) {
      matched = true;
      break;
    }
  }
  // Diagnose mismatches against the full model.
  EXPECT_TRUE(matched)
      << "recovered state matches no commit prefix in [" << flush_floor
      << ", " << events.size() << "]  (seed " << params.seed << ")";
}

TEST(PropertyCrash, VolatileLossConcurrentMode) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.ops = 250;
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunCrashProperty(params);
  }
}

TEST(PropertyCrash, VolatileLossSequentialMode) {
  for (std::uint64_t seed = 100; seed <= 115; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.ops = 250;
    params.mode = lld::AruMode::kSequential;
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunCrashProperty(params);
  }
}

TEST(PropertyCrash, TornWritePowerCuts) {
  for (std::uint64_t seed = 200; seed <= 220; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.ops = 600;  // usually dies earlier
    params.tear_crash = true;
    // The workload setup writes ~1.5k sectors; cut somewhere in the
    // workload's own write traffic.
    params.crash_after_sectors = 2000 + (seed * 131) % 4000;
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunCrashProperty(params);
  }
}

TEST(PropertyCrash, CleaningPressureDuringWorkload) {
  // A disk small enough that the workload's churn forces the segment
  // cleaner to run (and checkpoint, and recycle slots) before the
  // crash: recovery must still land on a commit prefix.
  for (std::uint64_t seed = 400; seed <= 412; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.ops = 700;
    params.segment_size = 64 * 1024;
    params.device_sectors = 6 * 1024 * 1024 / 512;  // 6 MB
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunCrashProperty(params);
  }
}

TEST(PropertyCrash, FrequentSealsTinySegments) {
  for (std::uint64_t seed = 300; seed <= 312; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.ops = 200;
    params.segment_size = 16 * 1024;  // 4 blocks per segment: seal storm
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunCrashProperty(params);
  }
}

}  // namespace
}  // namespace aru::testing
