// Multi-threaded stress for the write-behind segment pipeline: N client
// threads run concurrent ARUs while an admin thread interleaves
// Flush/Checkpoint/Clean (each a pipeline barrier), all racing the
// background flusher. TSan runs this suite in CI, so the hand-off,
// horizon publication, and drain paths are race-checked, not just
// correctness-checked.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "blockdev/mem_disk.h"
#include "lld/lld.h"
#include "obs/sampler.h"
#include "tests/obs_expect.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

lld::Options AsyncOptions(std::uint32_t depth, bool durable_commits) {
  lld::Options opts = TestDisk::SmallOptions();
  opts.paranoid_checks = false;  // checked explicitly at the end
  opts.write_behind_segments = depth;
  opts.durable_commits = durable_commits;
  // Run the background sampler at full tilt so TSan races it against
  // the workload, the flusher, and the admin barriers.
  opts.sampler_period_ms = 1;
  return opts;
}

// One committed ARU's payload: a list of blocks with seeded contents.
struct CommittedList {
  ListId list;
  std::vector<BlockId> blocks;
  std::uint64_t seed = 0;
};

Status RunOneAru(lld::Lld& disk, std::uint64_t seed, CommittedList& out) {
  ARU_ASSIGN_OR_RETURN(const AruId aru, disk.BeginARU());
  ARU_ASSIGN_OR_RETURN(const ListId list, disk.NewList(aru));
  std::vector<BlockId> blocks;
  BlockId pred = kListHead;
  for (int b = 0; b < 3; ++b) {
    ARU_ASSIGN_OR_RETURN(pred, disk.NewBlock(list, pred, aru));
    ARU_RETURN_IF_ERROR(
        disk.Write(pred, TestPattern(4096, seed + static_cast<std::uint64_t>(b)),
                   aru));
    blocks.push_back(pred);
  }
  ARU_RETURN_IF_ERROR(disk.EndARU(aru));
  out = CommittedList{list, std::move(blocks), seed};
  return Status::Ok();
}

TEST(PipelineStressTest, ConcurrentArusWithAdminBarriers) {
  TestDisk t(AsyncOptions(/*depth=*/4, /*durable_commits=*/false));
  constexpr int kThreads = 4;
  constexpr int kArusPerThread = 24;

  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<Status> failures;
  std::vector<CommittedList> committed;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kArusPerThread; ++i) {
        CommittedList done;
        const std::uint64_t seed =
            static_cast<std::uint64_t>(w) * 1000 + static_cast<std::uint64_t>(i) * 7 + 1;
        const Status status = RunOneAru(*t.disk, seed, done);
        const std::lock_guard<std::mutex> lock(mu);
        if (status.ok()) {
          committed.push_back(std::move(done));
        } else {
          failures.push_back(status);
        }
      }
    });
  }
  std::thread admin([&] {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status status;
      switch (round++ % 3) {
        case 0: status = t.disk->Flush(); break;
        case 1: status = t.disk->Checkpoint(); break;
        default: status = t.disk->Clean(); break;
      }
      // The cleaner legitimately reports OutOfSpace when there is
      // nothing worth reclaiming yet.
      if (!status.ok() && status.code() != StatusCode::kOutOfSpace) {
        const std::lock_guard<std::mutex> lock(mu);
        failures.push_back(status);
      }
      std::this_thread::yield();
    }
  });
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  admin.join();

  for (const Status& failure : failures) {
    ADD_FAILURE() << "worker/admin failure: " << failure.ToString();
  }
  EXPECT_EQ(committed.size(),
            static_cast<std::size_t>(kThreads * kArusPerThread));
  ASSERT_OK(t.disk->CheckConsistency());

  // The obs layer saw the run: commits counted and timed, every
  // contended wait on the LLD's named locks attributed to both halves
  // of its per-site metric pair, and the sampler ring populated.
  obs_expect::ExpectCounterAtLeast(
      t.disk->registry(), "aru_lld_arus_committed_total",
      static_cast<std::uint64_t>(kThreads * kArusPerThread));
  obs_expect::ExpectHistogramSamples(
      t.disk->registry(), "aru_lld_commit_us",
      static_cast<std::uint64_t>(kThreads * kArusPerThread));
  obs_expect::ExpectLockSiteConsistent(t.disk->registry(), "lld_mu",
                                       "exclusive");
  obs_expect::ExpectLockSiteConsistent(t.disk->registry(), "lld_mu",
                                       "shared");
  obs_expect::ExpectLockSiteConsistent(t.disk->registry(), "lld_flush_mu",
                                       "exclusive");
  ASSERT_NE(t.disk->sampler(), nullptr);
  EXPECT_GE(t.disk->sampler()->size(), 1u);

  // Every committed ARU's effects are fully visible.
  for (const CommittedList& c : committed) {
    ASSERT_OK_AND_ASSIGN(const std::vector<BlockId> blocks,
                         t.disk->ListBlocks(c.list, kNoAru));
    ASSERT_EQ(blocks.size(), c.blocks.size());
    Bytes out(4096);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      ASSERT_OK(t.disk->Read(c.blocks[b], out, kNoAru));
      EXPECT_EQ(out, TestPattern(4096, c.seed + b)) << "list "
                                                    << c.list.value();
    }
  }
  ASSERT_OK(t.disk->Close());
}

TEST(PipelineStressTest, DurableCommitsSurviveMidRunCrash) {
  TestDisk t(AsyncOptions(/*depth=*/4, /*durable_commits=*/true));
  constexpr int kThreads = 3;
  constexpr int kArusPerThread = 12;

  std::mutex mu;
  std::vector<Status> failures;
  std::vector<CommittedList> committed;  // durably committed (EndARU returned)

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kArusPerThread; ++i) {
        CommittedList done;
        const std::uint64_t seed =
            static_cast<std::uint64_t>(w) * 5000 + static_cast<std::uint64_t>(i) * 11 + 3;
        const Status status = RunOneAru(*t.disk, seed, done);
        const std::lock_guard<std::mutex> lock(mu);
        if (status.ok()) {
          committed.push_back(std::move(done));
        } else {
          failures.push_back(status);
        }
      }
    });
  }

  // "Power cut" while commits are racing: snapshot the device mid-run.
  // Everything in `committed` at snapshot time finished a durable
  // EndARU strictly before the copy, so recovery from the image must
  // surface all of it (later commits may appear too; that's fine).
  std::vector<CommittedList> durable_before_snapshot;
  while (true) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (committed.size() >= kThreads * kArusPerThread / 2) {
        durable_before_snapshot = committed;
        break;
      }
    }
    std::this_thread::yield();
  }
  Bytes image = t.device->CopyImage();

  for (std::thread& w : workers) w.join();
  for (const Status& failure : failures) {
    ADD_FAILURE() << "worker failure: " << failure.ToString();
  }
  ASSERT_OK(t.disk->Close());

  // Recover from the mid-run image.
  auto crashed_device = MemDisk::FromImage(std::move(image));
  ASSERT_OK_AND_ASSIGN(const std::unique_ptr<lld::Lld> recovered,
                       lld::Lld::Open(*crashed_device, t.options));
  ASSERT_OK(recovered->CheckConsistency());
  Bytes out(4096);
  for (const CommittedList& c : durable_before_snapshot) {
    ASSERT_OK_AND_ASSIGN(const std::vector<BlockId> blocks,
                         recovered->ListBlocks(c.list, kNoAru));
    ASSERT_EQ(blocks.size(), c.blocks.size()) << "list " << c.list.value();
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      ASSERT_OK(recovered->Read(c.blocks[b], out, kNoAru));
      EXPECT_EQ(out, TestPattern(4096, c.seed + b))
          << "list " << c.list.value();
    }
  }
}

TEST(PipelineStressTest, SynchronousDepthZeroUnderThreadsStillSafe) {
  // Depth 0 has no flusher; this pins the multi-threaded client
  // contract of the synchronous path (and gives TSan the baseline).
  TestDisk t(AsyncOptions(/*depth=*/0, /*durable_commits=*/false));
  constexpr int kThreads = 4;
  std::mutex mu;
  std::vector<Status> failures;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < 8; ++i) {
        CommittedList done;
        const Status status = RunOneAru(
            *t.disk, static_cast<std::uint64_t>(w) * 100 + static_cast<std::uint64_t>(i), done);
        if (!status.ok()) {
          const std::lock_guard<std::mutex> lock(mu);
          failures.push_back(status);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const Status& failure : failures) {
    ADD_FAILURE() << "worker failure: " << failure.ToString();
  }
  ASSERT_OK(t.disk->CheckConsistency());
  ASSERT_OK(t.disk->Close());
}

}  // namespace
}  // namespace aru::testing
