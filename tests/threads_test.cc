// Multi-threaded clients: concurrent ARUs are the mechanism that lets
// several independent streams (threads or separate clients) share one
// logical disk (paper §3.2). LLD serializes operations internally; ARUs
// provide the failure atomicity. Each thread here works on its own
// lists (clients provide their own locking for shared data — we give
// them none to share).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(ThreadsTest, ParallelAruStreamsCommitIntact) {
  TestDisk t(TestDisk::SmallOptions(), /*sectors=*/65536);
  constexpr int kThreads = 8;
  constexpr int kArusPerThread = 25;
  constexpr int kBlocksPerAru = 4;

  std::vector<std::vector<ListId>> lists(kThreads);
  std::atomic<int> failures{0};

  auto worker = [&](int id) {
    Rng rng(static_cast<std::uint64_t>(id) + 1);
    for (int a = 0; a < kArusPerThread; ++a) {
      auto aru = t.disk->BeginARU();
      if (!aru.ok()) { ++failures; return; }
      auto list = t.disk->NewList(*aru);
      if (!list.ok()) { ++failures; return; }
      BlockId pred = kListHead;
      for (int b = 0; b < kBlocksPerAru; ++b) {
        auto block = t.disk->NewBlock(*list, pred, *aru);
        if (!block.ok()) { ++failures; return; }
        pred = *block;
        const std::uint64_t seed =
            static_cast<std::uint64_t>(id) * 1000 +
            static_cast<std::uint64_t>(a) * 10 +
            static_cast<std::uint64_t>(b);
        if (!t.disk->Write(pred, TestPattern(4096, seed), *aru).ok()) {
          ++failures;
          return;
        }
      }
      if (!t.disk->EndARU(*aru).ok()) { ++failures; return; }
      lists[static_cast<std::size_t>(id)].push_back(*list);
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) threads.emplace_back(worker, i);
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  // Every committed ARU's state must be intact.
  for (int id = 0; id < kThreads; ++id) {
    const auto& thread_lists = lists[static_cast<std::size_t>(id)];
    ASSERT_EQ(thread_lists.size(), static_cast<std::size_t>(kArusPerThread));
    for (int a = 0; a < kArusPerThread; ++a) {
      ASSERT_OK_AND_ASSIGN(
          const auto blocks,
          t.disk->ListBlocks(thread_lists[static_cast<std::size_t>(a)],
                             kNoAru));
      ASSERT_EQ(blocks.size(), static_cast<std::size_t>(kBlocksPerAru));
      for (int b = 0; b < kBlocksPerAru; ++b) {
        Bytes out(4096);
        ASSERT_OK(t.disk->Read(blocks[static_cast<std::size_t>(b)], out,
                               kNoAru));
        const std::uint64_t seed = static_cast<std::uint64_t>(id) * 1000 +
                                   static_cast<std::uint64_t>(a) * 10 +
                                   static_cast<std::uint64_t>(b);
        EXPECT_EQ(out, TestPattern(4096, seed));
      }
    }
  }
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(ThreadsTest, MixedCommitsAndAbortsUnderContention) {
  TestDisk t(TestDisk::SmallOptions(), /*sectors=*/65536);
  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> committed_lists{0};

  auto worker = [&](int id) {
    Rng rng(static_cast<std::uint64_t>(id) + 77);
    for (int a = 0; a < 30; ++a) {
      auto aru = t.disk->BeginARU();
      if (!aru.ok()) { ++failures; return; }
      auto list = t.disk->NewList(*aru);
      if (!list.ok()) { ++failures; return; }
      auto block = t.disk->NewBlock(*list, kListHead, *aru);
      if (!block.ok()) { ++failures; return; }
      if (!t.disk->Write(*block, TestPattern(4096, rng.Next()), *aru).ok()) {
        ++failures;
        return;
      }
      if (rng.Chance(1, 3)) {
        if (!t.disk->AbortARU(*aru).ok()) { ++failures; return; }
      } else {
        if (!t.disk->EndARU(*aru).ok()) { ++failures; return; }
        ++committed_lists;
      }
      if (rng.Chance(1, 10)) {
        if (!t.disk->Flush().ok()) { ++failures; return; }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) threads.emplace_back(worker, i);
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_GT(committed_lists.load(), 0u);
  ASSERT_OK(t.disk->CheckConsistency());

  // Crash and recover: still consistent, and aborted state is gone.
  t.CrashAndRecover();
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(ThreadsTest, ReadersRunAgainstActiveWriters) {
  TestDisk t(TestDisk::SmallOptions(), /*sectors=*/65536);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 7), kNoAru));

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (std::uint64_t i = 0; i < 200; ++i) {
      auto aru = t.disk->BeginARU();
      if (!aru.ok()) { ++failures; return; }
      if (!t.disk->Write(block, TestPattern(4096, 7), *aru).ok() ||
          !t.disk->EndARU(*aru).ok()) {
        ++failures;
        return;
      }
    }
    stop = true;
  });
  std::thread reader([&] {
    Bytes out(4096);
    while (!stop) {
      // Simple reads always see a committed version: the same bytes
      // before, during, and after each ARU (all writes write pattern 7).
      if (!t.disk->Read(block, out, kNoAru).ok() ||
          out != TestPattern(4096, 7)) {
        ++failures;
        return;
      }
    }
  });
  writer.join();
  stop = true;
  reader.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------
// util::ThreadPool: the fan-out/join pool behind the recovery scan.

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ++ran; });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  util::ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    pool.Wait();  // a barrier, not a shutdown
    EXPECT_EQ(ran.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    // No Wait(): destruction must still run everything queued.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsStillRunsWork) {
  util::ThreadPool pool(0);  // degenerate width: one worker
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, TasksActuallyOverlap) {
  // Two tasks that must be in flight simultaneously to finish: each
  // waits for the other's arrival. A serial pool would deadlock, so
  // guard with a generous timeout via a third observer task.
  util::ThreadPool pool(2);
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    ++arrived;
    for (int spin = 0; spin < 100000 && arrived.load() < 2; ++spin) {
      std::this_thread::yield();
    }
  };
  pool.Submit(rendezvous);
  pool.Submit(rendezvous);
  pool.Wait();
  EXPECT_EQ(arrived.load(), 2);
}

}  // namespace
}  // namespace aru::testing
