// Unit tests for the version index — the paper's perpendicular-lists
// mesh of alternative records (shadow + committed states).
#include <gtest/gtest.h>

#include "lld/version_index.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using lld::BlockMeta;
using lld::BlockVersions;
using ld::AruId;
using ld::BlockId;
using ld::kNoAru;

BlockMeta Meta(std::uint64_t ts) {
  BlockMeta meta;
  meta.allocated = true;
  meta.ts = ts;
  return meta;
}

TEST(VersionIndexTest, EmptyLookupReturnsNull) {
  BlockVersions index;
  EXPECT_EQ(index.LookupVisible(BlockId{1}, kNoAru), nullptr);
  EXPECT_EQ(index.FindExact(BlockId{1}, AruId{2}), nullptr);
  EXPECT_TRUE(index.empty());
}

TEST(VersionIndexTest, CommittedVisibleToEveryone) {
  BlockVersions index;
  index.Put(BlockId{1}, kNoAru, Meta(10), 10, 10);
  const auto* simple = index.LookupVisible(BlockId{1}, kNoAru);
  ASSERT_NE(simple, nullptr);
  EXPECT_EQ(simple->meta.ts, 10u);
  const auto* in_aru = index.LookupVisible(BlockId{1}, AruId{5});
  ASSERT_NE(in_aru, nullptr);
  EXPECT_EQ(in_aru->meta.ts, 10u);  // falls through to committed
}

TEST(VersionIndexTest, ShadowShadowsCommittedForItsOwnerOnly) {
  BlockVersions index;
  index.Put(BlockId{1}, kNoAru, Meta(10), 10, 10);
  index.Put(BlockId{1}, AruId{2}, Meta(20), 20, 20);
  EXPECT_EQ(index.LookupVisible(BlockId{1}, AruId{2})->meta.ts, 20u);
  EXPECT_EQ(index.LookupVisible(BlockId{1}, kNoAru)->meta.ts, 10u);
  EXPECT_EQ(index.LookupVisible(BlockId{1}, AruId{3})->meta.ts, 10u);
}

TEST(VersionIndexTest, PutReplacesInPlace) {
  BlockVersions index;
  index.Put(BlockId{1}, AruId{2}, Meta(20), 20, 20);
  index.Put(BlockId{1}, AruId{2}, Meta(21), 21, 21);
  EXPECT_EQ(index.shadow_size(AruId{2}), 1u);  // most recent version only
  EXPECT_EQ(index.FindExact(BlockId{1}, AruId{2})->meta.ts, 21u);
}

TEST(VersionIndexTest, SourceLsnMinAccumulates) {
  BlockVersions index;
  index.Put(BlockId{1}, AruId{2}, Meta(20), 20, 20);
  index.Put(BlockId{1}, AruId{2}, Meta(21), 21, 35);
  EXPECT_EQ(index.FindExact(BlockId{1}, AruId{2})->source_lsn, 20u);
  EXPECT_EQ(index.MinSourceLsn(), 20u);
}

TEST(VersionIndexTest, MinSourceLsnAcrossStates) {
  BlockVersions index;
  EXPECT_EQ(index.MinSourceLsn(), lld::kLsnMax);
  index.Put(BlockId{1}, kNoAru, Meta(1), 1, 50);
  index.Put(BlockId{2}, AruId{9}, Meta(2), 2, 30);
  EXPECT_EQ(index.MinSourceLsn(), 30u);
}

TEST(VersionIndexTest, MergeMovesFreshRecords) {
  BlockVersions index;
  index.Put(BlockId{1}, AruId{2}, Meta(20), 20, 20);
  index.Put(BlockId{3}, AruId{2}, Meta(21), 21, 21);
  std::vector<BlockId> touched;
  index.MergeIntoCommitted(AruId{2}, 50, [](const BlockMeta&) {},
                           [](BlockId, const BlockMeta&) { return false; },
                           touched);
  EXPECT_EQ(touched.size(), 2u);
  EXPECT_EQ(index.shadow_size(AruId{2}), 0u);
  EXPECT_EQ(index.committed_size(), 2u);
  const auto* node = index.FindExact(BlockId{1}, kNoAru);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->lsn, 50u);  // serialized at commit time
  EXPECT_EQ(node->meta.ts, 20u);
}

TEST(VersionIndexTest, MergeReplacesExistingCommitted) {
  BlockVersions index;
  index.Put(BlockId{1}, kNoAru, Meta(10), 10, 10);
  index.Put(BlockId{1}, AruId{2}, Meta(20), 20, 20);
  std::uint64_t replaced = 0;
  std::vector<BlockId> touched;
  index.MergeIntoCommitted(AruId{2}, 50,
                           [&replaced](const BlockMeta&) { ++replaced; },
                           [](BlockId, const BlockMeta&) { return false; },
                           touched);
  EXPECT_EQ(replaced, 1u);
  EXPECT_EQ(index.committed_size(), 1u);
  EXPECT_EQ(index.FindExact(BlockId{1}, kNoAru)->meta.ts, 20u);
  EXPECT_EQ(index.FindExact(BlockId{1}, kNoAru)->source_lsn, 10u);  // min
  EXPECT_TRUE(index.Validate());
}

TEST(VersionIndexTest, MergeOfUnknownAruIsNoop) {
  BlockVersions index;
  index.Put(BlockId{1}, kNoAru, Meta(10), 10, 10);
  std::vector<BlockId> touched;
  index.MergeIntoCommitted(AruId{99}, 50, [](const BlockMeta&) {},
                           [](BlockId, const BlockMeta&) { return false; },
                           touched);
  EXPECT_TRUE(touched.empty());
  EXPECT_EQ(index.committed_size(), 1u);
}

TEST(VersionIndexTest, DropStateDiscardsShadow) {
  BlockVersions index;
  index.Put(BlockId{1}, kNoAru, Meta(10), 10, 10);
  index.Put(BlockId{1}, AruId{2}, Meta(20), 20, 20);
  index.Put(BlockId{5}, AruId{2}, Meta(21), 21, 21);
  std::uint64_t dropped = 0;
  index.DropState(AruId{2}, [&dropped](const BlockMeta&) { ++dropped; });
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(index.LookupVisible(BlockId{1}, AruId{2})->meta.ts, 10u);
  EXPECT_EQ(index.LookupVisible(BlockId{5}, kNoAru), nullptr);
  EXPECT_TRUE(index.Validate());
}

TEST(VersionIndexTest, RemoveUnlinksFromBothChains) {
  BlockVersions index;
  index.Put(BlockId{1}, kNoAru, Meta(10), 10, 10);
  index.Put(BlockId{1}, AruId{2}, Meta(20), 20, 20);
  auto* node = index.FindExact(BlockId{1}, kNoAru);
  index.Remove(node);
  EXPECT_EQ(index.committed_size(), 0u);
  EXPECT_EQ(index.LookupVisible(BlockId{1}, kNoAru), nullptr);
  EXPECT_EQ(index.LookupVisible(BlockId{1}, AruId{2})->meta.ts, 20u);
  EXPECT_TRUE(index.Validate());
}

TEST(VersionIndexTest, ClearCommittedKeepsShadows) {
  BlockVersions index;
  index.Put(BlockId{1}, kNoAru, Meta(10), 10, 10);
  index.Put(BlockId{2}, kNoAru, Meta(11), 11, 11);
  index.Put(BlockId{1}, AruId{3}, Meta(30), 30, 30);
  index.ClearCommitted();
  EXPECT_EQ(index.committed_size(), 0u);
  EXPECT_EQ(index.shadow_size(AruId{3}), 1u);
  EXPECT_EQ(index.LookupVisible(BlockId{1}, AruId{3})->meta.ts, 30u);
  EXPECT_TRUE(index.Validate());
}

TEST(VersionIndexTest, ForEachAllVisitsEverything) {
  BlockVersions index;
  index.Put(BlockId{1}, kNoAru, Meta(1), 1, 1);
  index.Put(BlockId{2}, AruId{7}, Meta(2), 2, 2);
  index.Put(BlockId{3}, AruId{8}, Meta(3), 3, 3);
  std::size_t seen = 0;
  index.ForEachAll([&seen](const BlockVersions::Node&) { ++seen; });
  EXPECT_EQ(seen, 3u);
}

TEST(VersionIndexTest, ChainStepsInstrumentation) {
  BlockVersions index;
  index.Put(BlockId{1}, kNoAru, Meta(1), 1, 1);
  const std::uint64_t before = index.chain_steps();
  (void)index.LookupVisible(BlockId{1}, kNoAru);
  EXPECT_GT(index.chain_steps(), before);
}

TEST(VersionIndexTest, ManyStatesManyIdsStressValidate) {
  BlockVersions index;
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const BlockId id{rng.Range(1, 64)};
    const AruId owner{rng.Below(5)};  // 0 = committed
    index.Put(id, owner, Meta(static_cast<std::uint64_t>(i)),
              static_cast<lld::Lsn>(i), static_cast<lld::Lsn>(i));
    if (rng.Chance(1, 20)) {
      std::vector<BlockId> touched;
      index.MergeIntoCommitted(AruId{rng.Range(1, 4)},
                               static_cast<lld::Lsn>(i), [](const BlockMeta&) {},
                               [](BlockId, const BlockMeta&) { return false; },
                               touched);
    }
    if (rng.Chance(1, 40)) {
      index.DropState(AruId{rng.Range(1, 4)}, [](const BlockMeta&) {});
    }
  }
  EXPECT_TRUE(index.Validate());
}

}  // namespace
}  // namespace aru::testing
