// The paper's headline claim, checked with an actual fsck: a file
// system whose creation/deletion runs in ARUs is consistent after any
// crash — the checker finds nothing to repair, ever. A model-based
// sweep runs random FS workloads, crashes at random points (including
// torn device writes), recovers, and fscks.
#include <gtest/gtest.h>

#include "blockdev/fault_disk.h"
#include "minixfs/check.h"
#include "minixfs/minix_fs.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using minixfs::CheckFileSystem;
using minixfs::MinixFs;
using minixfs::Policy;

TEST(FsckTest, FreshFileSystemIsClean) {
  TestDisk t;
  ASSERT_OK(MinixFs::Mkfs(*t.disk));
  ASSERT_OK_AND_ASSIGN(const auto report, CheckFileSystem(*t.disk));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.inodes_in_use, 1u);  // the root
  EXPECT_EQ(report.directories, 1u);
}

TEST(FsckTest, PopulatedFileSystemIsClean) {
  TestDisk t;
  ASSERT_OK(MinixFs::Mkfs(*t.disk));
  ASSERT_OK_AND_ASSIGN(auto fs, MinixFs::Mount(*t.disk));
  ASSERT_OK(fs->Mkdir("/d").status());
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(fs->WriteFile("/d/f" + std::to_string(i),
                            Bytes(5000, std::byte{1})));
  }
  ASSERT_OK(fs->Unlink("/d/f3"));
  ASSERT_OK(fs->Unlink("/d/f7"));
  ASSERT_OK_AND_ASSIGN(const auto report, CheckFileSystem(*t.disk));
  EXPECT_TRUE(report.clean()) << report.problems.front();
  EXPECT_EQ(report.files, 18u);
  EXPECT_EQ(report.directories, 2u);
  EXPECT_GE(report.data_blocks, 36u);  // 18 files x 2 blocks
}

TEST(FsckTest, DetectsDanglingEntry) {
  // Sanity: the checker is not a rubber stamp. Corrupt a directory
  // entry by hand and watch it complain.
  TestDisk t;
  ASSERT_OK(MinixFs::Mkfs(*t.disk));
  ASSERT_OK_AND_ASSIGN(auto fs, MinixFs::Mount(*t.disk));
  ASSERT_OK(fs->Create("/victim").status());
  fs.reset();

  // Scribble a bogus entry straight into the root directory's block.
  // Root dir = i-node 0; its data list is discoverable via the checker
  // machinery, but here we just overwrite the entry's i-node field.
  ASSERT_OK_AND_ASSIGN(const auto super_blocks,
                       t.disk->ListBlocks(ld::ListId{1}));
  Bytes sb_block(t.disk->block_size());
  ASSERT_OK(t.disk->Read(super_blocks.front(), sb_block));
  ASSERT_OK_AND_ASSIGN(const auto sb, minixfs::DecodeSuperBlock(sb_block));
  ASSERT_OK_AND_ASSIGN(const auto inode_blocks,
                       t.disk->ListBlocks(sb.inode_list));
  Bytes iblock(t.disk->block_size());
  ASSERT_OK(t.disk->Read(inode_blocks.front(), iblock));
  const minixfs::Inode root =
      minixfs::DecodeInode(ByteSpan(iblock).first(minixfs::kInodeSize));
  ASSERT_OK_AND_ASSIGN(const auto root_blocks,
                       t.disk->ListBlocks(root.data_list));
  Bytes dir_block(t.disk->block_size());
  ASSERT_OK(t.disk->Read(root_blocks.front(), dir_block));
  minixfs::DirEntry bogus;
  bogus.inode = 55;  // far beyond any allocated i-node
  bogus.name = "ghost";
  minixfs::EncodeDirEntry(
      bogus, MutableByteSpan(dir_block)
                 .subspan(minixfs::kDirEntrySize, minixfs::kDirEntrySize));
  ASSERT_OK(t.disk->Write(root_blocks.front(), dir_block));

  ASSERT_OK_AND_ASSIGN(const auto report, CheckFileSystem(*t.disk));
  EXPECT_FALSE(report.clean());
}

// --- the crash sweep ---

struct SweepParams {
  std::uint64_t seed = 1;
  bool use_arus = true;
  bool improved_delete = false;
  bool torn = false;
};

void RunFsckSweep(const SweepParams& params, bool expect_clean) {
  auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
  auto* mem = inner.get();
  FaultInjectionDisk device(std::move(inner), params.seed);

  lld::Options options;
  options.block_size = 4096;
  options.segment_size = 64 * 1024;
  ASSERT_OK(lld::Lld::Format(device, options));
  {
    auto opened = lld::Lld::Open(device, options);
    ASSERT_OK(opened.status());
    ASSERT_OK(MinixFs::Mkfs(**opened));
    Policy policy;
    policy.use_arus = params.use_arus;
    policy.improved_delete = params.improved_delete;
    auto fs = MinixFs::Mount(**opened, policy);
    ASSERT_OK(fs.status());

    if (params.torn) {
      device.SchedulePowerCut(500 + (params.seed * 977) % 3000,
                              /*tear=*/true);
    }

    // Random namespace churn until the op budget or the power runs out.
    Rng rng(params.seed);
    std::vector<std::string> live;
    for (int op = 0; op < 120; ++op) {
      Status status;
      const std::uint64_t roll = rng.Below(100);
      if (roll < 45 || live.empty()) {
        const std::string path = "/f" + std::to_string(op);
        auto created = (*fs)->Create(path);
        status = created.status();
        if (status.ok()) {
          live.push_back(path);
          Bytes payload(rng.Range(100, 9000), std::byte{9});
          auto file = (*fs)->OpenInode(*created);
          if (file.ok()) {
            status = (*fs)->WriteAt(*file, 0, payload);
            if (status.ok()) status = (*fs)->Close(*file);
          }
        }
      } else if (roll < 75) {
        const std::size_t pick = rng.Below(live.size());
        status = (*fs)->Unlink(live[pick]);
        if (status.ok()) {
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      } else if (roll < 90) {
        status = (*fs)->Mkdir("/dir" + std::to_string(op)).status();
      } else {
        status = (*fs)->Sync();
      }
      if (!status.ok()) {
        ASSERT_EQ(status.code(), StatusCode::kUnavailable)
            << status.ToString();
        break;  // the power failed
      }
    }
    // Crash here (no Sync, no Close).
  }

  auto survivor = MemDisk::FromImage(mem->CopyImage());
  auto recovered = lld::Lld::Open(*survivor, options);
  ASSERT_OK(recovered.status());
  ASSERT_OK_AND_ASSIGN(const auto report, CheckFileSystem(**recovered));
  if (expect_clean) {
    EXPECT_TRUE(report.clean())
        << "seed " << params.seed << ": " << report.problems.size()
        << " problems, first: " << report.problems.front();
  }
  // Either way, the disk itself must be consistent.
  ASSERT_OK((*recovered)->CheckConsistency());
}

TEST(FsckTest, CrashSweepWithArusAlwaysClean) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SweepParams params;
    params.seed = seed;
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunFsckSweep(params, /*expect_clean=*/true);
  }
}

TEST(FsckTest, CrashSweepWithArusImprovedDeleteAlwaysClean) {
  for (std::uint64_t seed = 40; seed <= 52; ++seed) {
    SweepParams params;
    params.seed = seed;
    params.improved_delete = true;
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunFsckSweep(params, /*expect_clean=*/true);
  }
}

TEST(FsckTest, TornCrashSweepWithArusAlwaysClean) {
  for (std::uint64_t seed = 60; seed <= 80; ++seed) {
    SweepParams params;
    params.seed = seed;
    params.torn = true;
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunFsckSweep(params, /*expect_clean=*/true);
  }
}

TEST(FsckTest, WithoutArusCrashesCanDirtyTheFileSystem) {
  // The contrast case. Without ARUs, some crash points strand
  // half-done creates/deletes. We don't assert dirt on any particular
  // seed (timing-dependent); we only require that the sweep never
  // breaks LLD itself, and we count how often fsck would have had work.
  int dirty = 0;
  for (std::uint64_t seed = 100; seed <= 120; ++seed) {
    SweepParams params;
    params.seed = seed;
    params.use_arus = false;
    params.torn = true;
    SCOPED_TRACE("seed " + std::to_string(seed));

    auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
    auto* mem = inner.get();
    FaultInjectionDisk device(std::move(inner), seed);
    lld::Options options;
    options.block_size = 4096;
    options.segment_size = 64 * 1024;
    ASSERT_OK(lld::Lld::Format(device, options));
    {
      auto opened = lld::Lld::Open(device, options);
      ASSERT_OK(opened.status());
      ASSERT_OK(MinixFs::Mkfs(**opened));
      auto fs = MinixFs::Mount(**opened, Policy{.use_arus = false});
      ASSERT_OK(fs.status());
      device.SchedulePowerCut(300 + (seed * 577) % 1500, true);
      for (int op = 0; op < 200; ++op) {
        const Status status =
            (*fs)->Create("/x" + std::to_string(op)).status();
        if (!status.ok()) break;
      }
    }
    auto survivor = MemDisk::FromImage(mem->CopyImage());
    auto recovered = lld::Lld::Open(*survivor, options);
    ASSERT_OK(recovered.status());
    ASSERT_OK((*recovered)->CheckConsistency());
    auto report = CheckFileSystem(**recovered);
    ASSERT_OK(report.status());
    if (!report->clean()) ++dirty;
  }
  // Informational: at least LLD survived everything.
  SUCCEED() << dirty << " of 21 non-ARU crashes left fsck work";
}

}  // namespace
}  // namespace aru::testing
