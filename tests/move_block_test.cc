// MoveBlock: repositioning a block within or between lists — the
// list-manipulation surface the Logical Disk uses for transparent
// reorganization. Shadowed in ARUs like every other list operation.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

class MoveBlockTest : public ::testing::Test {
 protected:
  MoveBlockTest() : t_() {
    auto list = t_.disk->NewList(kNoAru);
    EXPECT_OK(list.status());
    list_ = *list;
    BlockId pred = kListHead;
    for (int i = 0; i < 4; ++i) {
      auto block = t_.disk->NewBlock(list_, pred, kNoAru);
      EXPECT_OK(block.status());
      pred = *block;
      EXPECT_OK(t_.disk->Write(pred, TestPattern(4096,
                                                 static_cast<std::uint64_t>(i)),
                               kNoAru));
      blocks_.push_back(pred);
    }
  }

  std::vector<BlockId> Order() {
    auto blocks = t_.disk->ListBlocks(list_, kNoAru);
    EXPECT_OK(blocks.status());
    return *blocks;
  }

  TestDisk t_;
  ListId list_;
  std::vector<BlockId> blocks_;  // [b0, b1, b2, b3] in list order
};

TEST_F(MoveBlockTest, MoveToHead) {
  ASSERT_OK(t_.disk->MoveBlock(blocks_[2], list_, kListHead, kNoAru));
  const auto order = Order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], blocks_[2]);
  EXPECT_EQ(order[1], blocks_[0]);
  EXPECT_EQ(order[2], blocks_[1]);
  EXPECT_EQ(order[3], blocks_[3]);
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(MoveBlockTest, MoveAfterPredecessor) {
  ASSERT_OK(t_.disk->MoveBlock(blocks_[0], list_, blocks_[3], kNoAru));
  const auto order = Order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], blocks_[1]);
  EXPECT_EQ(order[3], blocks_[0]);
  // Data follows the block.
  Bytes out(4096);
  ASSERT_OK(t_.disk->Read(blocks_[0], out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 0));
}

TEST_F(MoveBlockTest, MoveBetweenLists) {
  ASSERT_OK_AND_ASSIGN(const ListId other, t_.disk->NewList(kNoAru));
  ASSERT_OK(t_.disk->MoveBlock(blocks_[1], other, kListHead, kNoAru));
  EXPECT_EQ(Order().size(), 3u);
  ASSERT_OK_AND_ASSIGN(const auto moved, t_.disk->ListBlocks(other, kNoAru));
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], blocks_[1]);
  ASSERT_OK_AND_ASSIGN(const ListId of, t_.disk->ListOf(blocks_[1], kNoAru));
  EXPECT_EQ(of, other);
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(MoveBlockTest, MoveAfterItselfRejected) {
  EXPECT_EQ(t_.disk->MoveBlock(blocks_[1], list_, blocks_[1], kNoAru).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MoveBlockTest, NoopMoveKeepsOrder) {
  // Moving b1 after b0 (where it already is) must be a clean no-op.
  ASSERT_OK(t_.disk->MoveBlock(blocks_[1], list_, blocks_[0], kNoAru));
  const auto order = Order();
  EXPECT_EQ(order, blocks_);
}

TEST_F(MoveBlockTest, ShadowedInAru) {
  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->MoveBlock(blocks_[3], list_, kListHead, aru));
  // Outside: unchanged. Inside: moved.
  EXPECT_EQ(Order(), blocks_);
  ASSERT_OK_AND_ASSIGN(const auto inside, t_.disk->ListBlocks(list_, aru));
  EXPECT_EQ(inside[0], blocks_[3]);
  ASSERT_OK(t_.disk->EndARU(aru));
  EXPECT_EQ(Order()[0], blocks_[3]);
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(MoveBlockTest, AbortUndoesMove) {
  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->MoveBlock(blocks_[3], list_, kListHead, aru));
  ASSERT_OK(t_.disk->AbortARU(aru));
  EXPECT_EQ(Order(), blocks_);
}

TEST_F(MoveBlockTest, MoveIsCrashAtomic) {
  ASSERT_OK(t_.disk->Flush());
  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->MoveBlock(blocks_[0], list_, blocks_[3], aru));
  ASSERT_OK(t_.disk->EndARU(aru));
  // Committed but not flushed: after a crash the move either happened
  // entirely or not at all — the block is on exactly one list position.
  t_.CrashAndRecover();
  const auto order = Order();
  ASSERT_EQ(order.size(), 4u);
  const bool moved = order[3] == blocks_[0];
  const bool original = order[0] == blocks_[0];
  EXPECT_TRUE(moved || original);
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(MoveBlockTest, MoveUnknownBlockFails) {
  EXPECT_EQ(t_.disk->MoveBlock(BlockId{9999}, list_, kListHead, kNoAru).code(),
            StatusCode::kNotFound);
}

TEST_F(MoveBlockTest, ManyRandomMovesStayConsistent) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const auto order = Order();
    const BlockId victim = order[rng.Below(order.size())];
    BlockId pred = kListHead;
    if (rng.Chance(2, 3)) {
      const BlockId candidate = order[rng.Below(order.size())];
      if (candidate == victim) continue;
      pred = candidate;
    }
    ASSERT_OK(t_.disk->MoveBlock(victim, list_, pred, kNoAru));
  }
  EXPECT_EQ(Order().size(), 4u);
  ASSERT_OK(t_.disk->CheckConsistency());
}

}  // namespace
}  // namespace aru::testing
