// Unit tests for the block-device substrate: MemDisk, FileDisk,
// FaultInjectionDisk, and the HP C3010 service-time model.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "blockdev/disk_model.h"
#include "blockdev/fault_disk.h"
#include "blockdev/file_disk.h"
#include "blockdev/mem_disk.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

TEST(MemDiskTest, Geometry) {
  MemDisk disk(1000, 512);
  EXPECT_EQ(disk.sector_size(), 512u);
  EXPECT_EQ(disk.sector_count(), 1000u);
  EXPECT_EQ(disk.capacity_bytes(), 512000u);
}

TEST(MemDiskTest, WriteReadRoundTrip) {
  MemDisk disk(64);
  const Bytes data = TestPattern(1024, 1);  // 2 sectors
  ASSERT_OK(disk.Write(10, data));
  Bytes out(1024);
  ASSERT_OK(disk.Read(10, out));
  EXPECT_EQ(out, data);
}

TEST(MemDiskTest, FreshDiskReadsZeroes) {
  MemDisk disk(8);
  Bytes out(512, std::byte{0xff});
  ASSERT_OK(disk.Read(3, out));
  EXPECT_EQ(out, Bytes(512));
}

TEST(MemDiskTest, RangeValidation) {
  MemDisk disk(8);
  Bytes buf(512);
  EXPECT_EQ(disk.Read(8, buf).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.Write(7, Bytes(1024)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.Write(0, Bytes(100)).code(), StatusCode::kInvalidArgument);
  Bytes empty;
  EXPECT_EQ(disk.Read(0, empty).code(), StatusCode::kInvalidArgument);
}

TEST(MemDiskTest, StatsCount) {
  MemDisk disk(16);
  Bytes buf(1024);
  ASSERT_OK(disk.Write(0, buf));
  ASSERT_OK(disk.Read(0, buf));
  ASSERT_OK(disk.Read(2, buf));
  ASSERT_OK(disk.Sync());
  EXPECT_EQ(disk.stats().write_ops, 1u);
  EXPECT_EQ(disk.stats().sectors_written, 2u);
  EXPECT_EQ(disk.stats().read_ops, 2u);
  EXPECT_EQ(disk.stats().sectors_read, 4u);
  EXPECT_EQ(disk.stats().syncs, 1u);
}

TEST(MemDiskTest, ImageRoundTrip) {
  MemDisk disk(16);
  const Bytes data = TestPattern(512, 3);
  ASSERT_OK(disk.Write(5, data));
  auto copy = MemDisk::FromImage(disk.CopyImage());
  Bytes out(512);
  ASSERT_OK(copy->Read(5, out));
  EXPECT_EQ(out, data);
}

class FileDiskTest : public ::testing::Test {
 protected:
  FileDiskTest() {
    path_ = std::filesystem::temp_directory_path() /
            ("aru_filedisk_" + std::to_string(::getpid()) + ".img");
  }
  ~FileDiskTest() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(FileDiskTest, CreateWriteReopenRead) {
  {
    ASSERT_OK_AND_ASSIGN(auto disk,
                         FileDisk::Create(path_.string(), 128));
    ASSERT_OK(disk->Write(7, TestPattern(512, 9)));
    ASSERT_OK(disk->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto disk, FileDisk::Open(path_.string()));
  EXPECT_EQ(disk->sector_count(), 128u);
  Bytes out(512);
  ASSERT_OK(disk->Read(7, out));
  EXPECT_EQ(out, TestPattern(512, 9));
}

TEST_F(FileDiskTest, OpenMissingFails) {
  const auto result = FileDisk::Open("/nonexistent/path/disk.img");
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(FileDiskTest, FullLldStackOnFileDisk) {
  // The whole system runs on a file-backed device too.
  ASSERT_OK_AND_ASSIGN(auto disk,
                       FileDisk::Create(path_.string(), 32768));
  lld::Options options = TestDisk::SmallOptions();
  ASSERT_OK(lld::Lld::Format(*disk, options));
  ASSERT_OK_AND_ASSIGN(auto lld, lld::Lld::Open(*disk, options));
  ASSERT_OK_AND_ASSIGN(const auto list, lld->NewList());
  ASSERT_OK_AND_ASSIGN(const auto block, lld->NewBlock(list, ld::kListHead));
  ASSERT_OK(lld->Write(block, TestPattern(4096, 4)));
  ASSERT_OK(lld->Close());
  lld.reset();

  ASSERT_OK_AND_ASSIGN(auto reopened, lld::Lld::Open(*disk, options));
  Bytes out(4096);
  ASSERT_OK(reopened->Read(block, out));
  EXPECT_EQ(out, TestPattern(4096, 4));
}

TEST(FaultDiskTest, PowerCutAtExactSector) {
  FaultInjectionDisk disk(std::make_unique<MemDisk>(64));
  disk.SchedulePowerCut(4);
  ASSERT_OK(disk.Write(0, Bytes(2 * 512, std::byte{1})));  // 2 sectors
  ASSERT_OK(disk.Write(2, Bytes(2 * 512, std::byte{2})));  // 2 more: dead
  EXPECT_TRUE(disk.dead());
  Bytes buf(512);
  EXPECT_EQ(disk.Read(0, buf).code(), StatusCode::kUnavailable);
  EXPECT_EQ(disk.Write(0, Bytes(512)).code(), StatusCode::kUnavailable);
  EXPECT_EQ(disk.Sync().code(), StatusCode::kUnavailable);
}

TEST(FaultDiskTest, PartialWritePersistsPrefixOnly) {
  auto inner = std::make_unique<MemDisk>(64);
  auto* mem = inner.get();
  FaultInjectionDisk disk(std::move(inner));
  disk.SchedulePowerCut(2, /*tear=*/false);
  // A 4-sector write: sectors 0-1 persist, 2-3 are lost.
  EXPECT_EQ(disk.Write(0, Bytes(4 * 512, std::byte{7})).code(),
            StatusCode::kUnavailable);
  Bytes out(512);
  ASSERT_OK(mem->Read(1, out));
  EXPECT_EQ(out, Bytes(512, std::byte{7}));
  ASSERT_OK(mem->Read(2, out));
  EXPECT_EQ(out, Bytes(512));  // never written
}

TEST(FaultDiskTest, TearGarblesNextSector) {
  auto inner = std::make_unique<MemDisk>(64);
  auto* mem = inner.get();
  FaultInjectionDisk disk(std::move(inner), /*seed=*/1);
  disk.SchedulePowerCut(1, /*tear=*/true);
  EXPECT_EQ(disk.Write(0, Bytes(3 * 512, std::byte{7})).code(),
            StatusCode::kUnavailable);
  Bytes out(512);
  ASSERT_OK(mem->Read(1, out));
  EXPECT_NE(out, Bytes(512));                   // torn garbage
  EXPECT_NE(out, Bytes(512, std::byte{7}));     // not the payload either
}

TEST(FaultDiskTest, BadSectorFailsReads) {
  FaultInjectionDisk disk(std::make_unique<MemDisk>(64));
  ASSERT_OK(disk.Write(0, Bytes(4 * 512, std::byte{1})));
  disk.AddBadSector(2);
  Bytes buf(512);
  ASSERT_OK(disk.Read(1, buf));
  EXPECT_EQ(disk.Read(2, buf).code(), StatusCode::kIoError);
  Bytes big(4 * 512);
  EXPECT_EQ(disk.Read(0, big).code(), StatusCode::kIoError);  // spans it
}

TEST(DiskModelTest, SequentialIsCheaperThanSeek) {
  DiskModel model(DiskModelParams::HpC3010(), 4'000'000);
  // Position the head, then compare a sequential next request with a
  // far seek of the same size.
  (void)model.ServiceUs(0, 256, 512);
  const std::uint64_t sequential = model.ServiceUs(256, 256, 512);
  const std::uint64_t far = model.ServiceUs(3'000'000, 256, 512);
  EXPECT_LT(sequential, far);
  // Sequential 128 KB at ~2.3 MB/s ≈ 57 ms incl. overhead.
  EXPECT_GT(sequential, 40'000u);
  EXPECT_LT(sequential, 80'000u);
  // Far seek adds ~15-25 ms of seek + rotation.
  EXPECT_GT(far, sequential + 10'000u);
}

TEST(DiskModelTest, ModeledDiskAdvancesClock) {
  VirtualClock clock;
  auto modeled = std::make_unique<ModeledDisk>(
      std::make_unique<MemDisk>(65536), DiskModelParams::HpC3010(), &clock);
  ASSERT_OK(modeled->Write(0, Bytes(1024 * 512)));  // 512 KB segment
  const std::uint64_t after_write = clock.now_us();
  EXPECT_GT(after_write, 100'000u);  // >100 ms on a 2.3 MB/s disk
  Bytes out(512);
  ASSERT_OK(modeled->Read(1024, out));
  EXPECT_GT(clock.now_us(), after_write);
}

TEST(DiskModelTest, ThroughputMatchesEraDisk) {
  // Writing 10 MB sequentially through the model should take roughly
  // 10 MB / 2.3 MB/s ≈ 4.3 s of virtual time.
  VirtualClock clock;
  ModeledDisk disk(std::make_unique<MemDisk>(65536),
                   DiskModelParams::HpC3010(), &clock);
  const Bytes segment(1024 * 512);  // 512 KB
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_OK(disk.Write(i * 1024, segment));
  }
  const double seconds = static_cast<double>(clock.now_us()) / 1e6;
  EXPECT_GT(seconds, 3.5);
  EXPECT_LT(seconds, 6.0);
}

}  // namespace
}  // namespace aru::testing
