// MinixFS behaviour: namespace operations, file I/O, ARU-backed crash
// atomicity of create/delete, and the deletion-policy variants.
#include <gtest/gtest.h>

#include "minixfs/check.h"
#include "minixfs/minix_fs.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using minixfs::DirEntry;
using minixfs::InodeType;
using minixfs::MinixFs;
using minixfs::OpenFile;
using minixfs::Policy;

class MinixFsTest : public ::testing::TestWithParam<Policy> {
 protected:
  MinixFsTest() : t_() {
    EXPECT_OK(MinixFs::Mkfs(*t_.disk));
    auto mounted = MinixFs::Mount(*t_.disk, GetParam());
    EXPECT_OK(mounted.status());
    fs_ = std::move(mounted).value();
  }

  Bytes Payload(std::size_t size, std::uint64_t seed) {
    Bytes data(size);
    Rng rng(seed);
    for (auto& b : data) b = static_cast<std::byte>(rng.Next() & 0xff);
    return data;
  }

  // Re-mounts after a simulated power failure.
  void CrashAndRemount() {
    fs_.reset();
    t_.CrashAndRecover();
    auto mounted = MinixFs::Mount(*t_.disk, GetParam());
    ASSERT_OK(mounted.status());
    fs_ = std::move(mounted).value();
  }

  TestDisk t_;
  std::unique_ptr<MinixFs> fs_;
};

TEST_P(MinixFsTest, RootExistsAndIsEmpty) {
  ASSERT_OK_AND_ASSIGN(const auto entries, fs_->ReadDir("/"));
  EXPECT_TRUE(entries.empty());
  ASSERT_OK_AND_ASSIGN(const auto stat, fs_->Stat("/"));
  EXPECT_EQ(stat.type, InodeType::kDirectory);
}

TEST_P(MinixFsTest, CreateAndStat) {
  ASSERT_OK(fs_->Create("/hello").status());
  ASSERT_OK_AND_ASSIGN(const auto stat, fs_->Stat("/hello"));
  EXPECT_EQ(stat.type, InodeType::kFile);
  EXPECT_EQ(stat.size, 0u);
}

TEST_P(MinixFsTest, CreateExistingFails) {
  ASSERT_OK(fs_->Create("/hello").status());
  EXPECT_EQ(fs_->Create("/hello").status().code(),
            StatusCode::kAlreadyExists);
}

TEST_P(MinixFsTest, CreateInMissingDirectoryFails) {
  EXPECT_EQ(fs_->Create("/no/such/dir/file").status().code(),
            StatusCode::kNotFound);
}

TEST_P(MinixFsTest, PathValidation) {
  EXPECT_EQ(fs_->Create("relative").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fs_->Create("/").status().code(), StatusCode::kAlreadyExists);
  const std::string long_name(100, 'x');
  EXPECT_EQ(fs_->Create("/" + long_name).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(MinixFsTest, WriteAndReadBack) {
  const Bytes data = Payload(1024, 1);
  ASSERT_OK(fs_->WriteFile("/f", data));
  ASSERT_OK_AND_ASSIGN(const Bytes read, fs_->ReadFile("/f"));
  EXPECT_EQ(read, data);
}

TEST_P(MinixFsTest, MultiBlockFile) {
  const Bytes data = Payload(10 * 1024, 2);  // 3 blocks at 4 KB
  ASSERT_OK(fs_->WriteFile("/f", data));
  ASSERT_OK_AND_ASSIGN(const auto stat, fs_->Stat("/f"));
  EXPECT_EQ(stat.size, data.size());
  ASSERT_OK_AND_ASSIGN(const Bytes read, fs_->ReadFile("/f"));
  EXPECT_EQ(read, data);
}

TEST_P(MinixFsTest, RandomAccessReadWrite) {
  ASSERT_OK(fs_->Create("/f").status());
  ASSERT_OK_AND_ASSIGN(OpenFile file, fs_->Open("/f"));
  const Bytes a = Payload(4096, 10);
  const Bytes b = Payload(4096, 11);
  ASSERT_OK(fs_->WriteAt(file, 0, a));
  ASSERT_OK(fs_->WriteAt(file, 8192, b));  // leaves a hole in block 1
  ASSERT_OK(fs_->Close(file));

  Bytes out(4096);
  ASSERT_OK(fs_->ReadAt(file, 8192, out));
  EXPECT_EQ(out, b);
  ASSERT_OK(fs_->ReadAt(file, 4096, out));
  EXPECT_EQ(out, Bytes(4096));  // the hole reads as zeroes
}

TEST_P(MinixFsTest, UnalignedWrites) {
  ASSERT_OK(fs_->Create("/f").status());
  ASSERT_OK_AND_ASSIGN(OpenFile file, fs_->Open("/f"));
  const Bytes data = Payload(10000, 3);
  ASSERT_OK(fs_->WriteAt(file, 123, data));
  ASSERT_OK(fs_->Close(file));
  Bytes out(10000);
  ASSERT_OK(fs_->ReadAt(file, 123, out));
  EXPECT_EQ(out, data);
  Bytes head(123);
  ASSERT_OK(fs_->ReadAt(file, 0, head));
  EXPECT_EQ(head, Bytes(123));
}

TEST_P(MinixFsTest, ReadPastEndFails) {
  ASSERT_OK(fs_->WriteFile("/f", Payload(100, 1)));
  ASSERT_OK_AND_ASSIGN(OpenFile file, fs_->Open("/f"));
  Bytes out(200);
  EXPECT_EQ(fs_->ReadAt(file, 0, out).code(), StatusCode::kInvalidArgument);
}

TEST_P(MinixFsTest, UnlinkRemovesFileAndFreesBlocks) {
  // Warm the root directory so its data block is already allocated.
  ASSERT_OK(fs_->Create("/warm").status());
  const std::uint64_t free_before = t_.disk->free_blocks();
  ASSERT_OK(fs_->WriteFile("/f", Payload(10 * 1024, 4)));
  ASSERT_OK(fs_->Unlink("/f"));
  EXPECT_FALSE(fs_->Exists("/f"));
  EXPECT_EQ(t_.disk->free_blocks(), free_before);
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_P(MinixFsTest, UnlinkMissingFails) {
  EXPECT_EQ(fs_->Unlink("/missing").code(), StatusCode::kNotFound);
}

TEST_P(MinixFsTest, MkdirAndNestedCreate) {
  ASSERT_OK(fs_->Mkdir("/a").status());
  ASSERT_OK(fs_->Mkdir("/a/b").status());
  ASSERT_OK(fs_->Create("/a/b/c").status());
  ASSERT_OK_AND_ASSIGN(const auto entries, fs_->ReadDir("/a/b"));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "c");
}

TEST_P(MinixFsTest, RmdirOnlyWhenEmpty) {
  ASSERT_OK(fs_->Mkdir("/d").status());
  ASSERT_OK(fs_->Create("/d/f").status());
  EXPECT_EQ(fs_->Rmdir("/d").code(), StatusCode::kFailedPrecondition);
  ASSERT_OK(fs_->Unlink("/d/f"));
  ASSERT_OK(fs_->Rmdir("/d"));
  EXPECT_FALSE(fs_->Exists("/d"));
}

TEST_P(MinixFsTest, UnlinkOnDirectoryFails) {
  ASSERT_OK(fs_->Mkdir("/d").status());
  EXPECT_EQ(fs_->Unlink("/d").code(), StatusCode::kFailedPrecondition);
}

TEST_P(MinixFsTest, Rename) {
  ASSERT_OK(fs_->WriteFile("/old", Payload(500, 5)));
  ASSERT_OK(fs_->Mkdir("/dir").status());
  ASSERT_OK(fs_->Rename("/old", "/dir/new"));
  EXPECT_FALSE(fs_->Exists("/old"));
  ASSERT_OK_AND_ASSIGN(const Bytes read, fs_->ReadFile("/dir/new"));
  EXPECT_EQ(read, Payload(500, 5));
}

TEST_P(MinixFsTest, ManyFilesInOneDirectory) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(fs_->Create("/f" + std::to_string(i)).status());
  }
  ASSERT_OK_AND_ASSIGN(const auto entries, fs_->ReadDir("/"));
  EXPECT_EQ(entries.size(), 200u);
  for (int i = 0; i < 200; i += 2) {
    ASSERT_OK(fs_->Unlink("/f" + std::to_string(i)));
  }
  ASSERT_OK_AND_ASSIGN(const auto after, fs_->ReadDir("/"));
  EXPECT_EQ(after.size(), 100u);
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_P(MinixFsTest, InodeTableGrowsBeyondOneBlock) {
  // 64 i-nodes per block; create enough to force growth.
  for (int i = 0; i < 80; ++i) {
    ASSERT_OK(fs_->Create("/g" + std::to_string(i)).status());
  }
  ASSERT_OK_AND_ASSIGN(const auto entries, fs_->ReadDir("/"));
  EXPECT_EQ(entries.size(), 80u);
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_P(MinixFsTest, SurvivesRemountAfterSync) {
  ASSERT_OK(fs_->WriteFile("/persist", Payload(5000, 6)));
  ASSERT_OK(fs_->Sync());
  CrashAndRemount();
  ASSERT_OK_AND_ASSIGN(const Bytes read, fs_->ReadFile("/persist"));
  EXPECT_EQ(read, Payload(5000, 6));
}

TEST_P(MinixFsTest, InodeReuseAfterUnlink) {
  ASSERT_OK_AND_ASSIGN(const auto first, fs_->Create("/a"));
  ASSERT_OK(fs_->Unlink("/a"));
  ASSERT_OK_AND_ASSIGN(const auto second, fs_->Create("/b"));
  EXPECT_EQ(first, second);  // i-node slot is recycled
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MinixFsTest,
    ::testing::Values(Policy{.use_arus = true, .improved_delete = false},
                      Policy{.use_arus = true, .improved_delete = true},
                      Policy{.use_arus = false, .improved_delete = false}),
    [](const ::testing::TestParamInfo<Policy>& param_info) {
      std::string name = param_info.param.use_arus ? "arus" : "noArus";
      if (param_info.param.improved_delete) name += "ImprovedDelete";
      return name;
    });

// --- Crash atomicity of file creation (the paper's headline example) ---

TEST(MinixFsCrashTest, CreateIsAllOrNothingAcrossCrash) {
  TestDisk t;
  ASSERT_OK(MinixFs::Mkfs(*t.disk));
  {
    ASSERT_OK_AND_ASSIGN(auto fs, MinixFs::Mount(*t.disk));
    ASSERT_OK(fs->WriteFile("/stable", Bytes(100, std::byte{7})));
    ASSERT_OK(fs->Sync());
    // Create more files but crash before anything is flushed.
    ASSERT_OK(fs->Create("/lost1").status());
    ASSERT_OK(fs->Create("/lost2").status());
  }
  t.CrashAndRecover();
  ASSERT_OK_AND_ASSIGN(auto fs, MinixFs::Mount(*t.disk));
  // No fsck needed: the file system is consistent immediately.
  EXPECT_TRUE(fs->Exists("/stable"));
  EXPECT_FALSE(fs->Exists("/lost1"));
  EXPECT_FALSE(fs->Exists("/lost2"));
  ASSERT_OK_AND_ASSIGN(const auto entries, fs->ReadDir("/"));
  EXPECT_EQ(entries.size(), 1u);
  ASSERT_OK(t.disk->CheckConsistency());
  // The file system still works.
  ASSERT_OK(fs->Create("/new").status());
  ASSERT_OK(fs->Sync());
}

TEST(MinixFsCrashTest, DeleteIsAllOrNothingAcrossCrash) {
  TestDisk t;
  ASSERT_OK(MinixFs::Mkfs(*t.disk));
  {
    ASSERT_OK_AND_ASSIGN(auto fs, MinixFs::Mount(*t.disk));
    ASSERT_OK(fs->WriteFile("/doomed", Bytes(10 * 1024, std::byte{1})));
    ASSERT_OK(fs->Sync());
    ASSERT_OK(fs->Unlink("/doomed"));
    // Crash with the deletion committed but unflushed.
  }
  t.CrashAndRecover();
  ASSERT_OK_AND_ASSIGN(auto fs, MinixFs::Mount(*t.disk));
  // The deletion never became persistent: the file is intact, with all
  // its meta-data (all-or-nothing, in the "nothing" direction).
  ASSERT_OK_AND_ASSIGN(const Bytes data, fs->ReadFile("/doomed"));
  EXPECT_EQ(data, Bytes(10 * 1024, std::byte{1}));
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(MinixFsCrashTest, CommittedAndFlushedCreateSurvives) {
  TestDisk t;
  ASSERT_OK(MinixFs::Mkfs(*t.disk));
  {
    ASSERT_OK_AND_ASSIGN(auto fs, MinixFs::Mount(*t.disk));
    ASSERT_OK(fs->WriteFile("/kept", Bytes(2048, std::byte{9})));
    ASSERT_OK(fs->Sync());
  }
  t.CrashAndRecover();
  ASSERT_OK_AND_ASSIGN(auto fs, MinixFs::Mount(*t.disk));
  ASSERT_OK_AND_ASSIGN(const Bytes data, fs->ReadFile("/kept"));
  EXPECT_EQ(data, Bytes(2048, std::byte{9}));
}

TEST(MinixFsCrashTest, WithoutArusCreateCanTearAcrossCrash) {
  // The contrast case: without ARUs the meta-data updates are separate
  // simple operations; a crash can strand an allocated i-node whose
  // directory entry was lost (or vice versa). We only assert that LLD
  // itself stays consistent — the FS-level tear is exactly what the
  // paper's ARUs eliminate.
  TestDisk t;
  ASSERT_OK(MinixFs::Mkfs(*t.disk));
  {
    ASSERT_OK_AND_ASSIGN(auto fs,
                         MinixFs::Mount(*t.disk, Policy{.use_arus = false}));
    ASSERT_OK(fs->Sync());
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(fs->Create("/t" + std::to_string(i)).status());
    }
  }
  t.CrashAndRecover();
  ASSERT_OK(t.disk->CheckConsistency());
  ASSERT_OK_AND_ASSIGN(auto fs,
                       MinixFs::Mount(*t.disk, Policy{.use_arus = false}));
  ASSERT_OK(fs->ReadDir("/").status());
}

}  // namespace
}  // namespace aru::testing

// Hard links (paper-era Minix supported them; Link is one ARU covering
// the new entry and the link-count bump).
namespace aru::testing {
namespace {

using minixfs::CheckReport;

class LinkTest : public ::testing::Test {
 protected:
  LinkTest() {
    EXPECT_OK(minixfs::MinixFs::Mkfs(*t_.disk));
    auto mounted = minixfs::MinixFs::Mount(*t_.disk);
    EXPECT_OK(mounted.status());
    fs_ = std::move(mounted).value();
  }
  TestDisk t_;
  std::unique_ptr<minixfs::MinixFs> fs_;
};

TEST_F(LinkTest, LinkSharesContent) {
  ASSERT_OK(fs_->WriteFile("/a", Bytes(100, std::byte{7})));
  ASSERT_OK(fs_->Link("/a", "/b"));
  ASSERT_OK_AND_ASSIGN(const auto data, fs_->ReadFile("/b"));
  EXPECT_EQ(data, Bytes(100, std::byte{7}));
  ASSERT_OK_AND_ASSIGN(const auto stat_a, fs_->Stat("/a"));
  ASSERT_OK_AND_ASSIGN(const auto stat_b, fs_->Stat("/b"));
  EXPECT_EQ(stat_a.inode, stat_b.inode);
  EXPECT_EQ(stat_a.links, 2u);
}

TEST_F(LinkTest, UnlinkKeepsStorageUntilLastLink) {
  ASSERT_OK(fs_->WriteFile("/a", Bytes(10 * 1024, std::byte{1})));
  ASSERT_OK(fs_->Link("/a", "/b"));
  const std::uint64_t free_linked = t_.disk->free_blocks();
  ASSERT_OK(fs_->Unlink("/a"));
  EXPECT_EQ(t_.disk->free_blocks(), free_linked);  // storage kept
  ASSERT_OK_AND_ASSIGN(const auto data, fs_->ReadFile("/b"));
  EXPECT_EQ(data.size(), 10u * 1024u);
  ASSERT_OK(fs_->Unlink("/b"));
  EXPECT_GT(t_.disk->free_blocks(), free_linked);  // storage freed
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(LinkTest, LinkToDirectoryRefused) {
  ASSERT_OK(fs_->Mkdir("/d").status());
  EXPECT_EQ(fs_->Link("/d", "/d2").code(), StatusCode::kFailedPrecondition);
}

TEST_F(LinkTest, LinkOverExistingRefused) {
  ASSERT_OK(fs_->Create("/a").status());
  ASSERT_OK(fs_->Create("/b").status());
  EXPECT_EQ(fs_->Link("/a", "/b").code(), StatusCode::kAlreadyExists);
}

TEST_F(LinkTest, FsckValidatesLinkCounts) {
  ASSERT_OK(fs_->WriteFile("/a", Bytes(100, std::byte{1})));
  ASSERT_OK(fs_->Link("/a", "/b"));
  ASSERT_OK(fs_->Mkdir("/sub").status());
  ASSERT_OK(fs_->Link("/a", "/sub/c"));
  ASSERT_OK_AND_ASSIGN(const auto report,
                       minixfs::CheckFileSystem(*t_.disk));
  EXPECT_TRUE(report.clean()) << report.problems.front();
}

TEST_F(LinkTest, LinkIsCrashAtomic) {
  ASSERT_OK(fs_->WriteFile("/a", Bytes(100, std::byte{1})));
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->Link("/a", "/b"));  // committed but never flushed
  fs_.reset();
  t_.CrashAndRecover();
  ASSERT_OK_AND_ASSIGN(auto fs, minixfs::MinixFs::Mount(*t_.disk));
  // All-or-nothing: either the link exists AND links == 2, or neither.
  ASSERT_OK_AND_ASSIGN(const auto stat_a, fs->Stat("/a"));
  if (fs->Exists("/b")) {
    EXPECT_EQ(stat_a.links, 2u);
  } else {
    EXPECT_EQ(stat_a.links, 1u);
  }
  ASSERT_OK_AND_ASSIGN(const auto report,
                       minixfs::CheckFileSystem(*t_.disk));
  EXPECT_TRUE(report.clean()) << report.problems.front();
}

}  // namespace
}  // namespace aru::testing

// Truncate (one ARU covering the i-node update and all de-allocations).
namespace aru::testing {
namespace {

class TruncateTest : public ::testing::Test {
 protected:
  TruncateTest() {
    EXPECT_OK(minixfs::MinixFs::Mkfs(*t_.disk));
    auto mounted = minixfs::MinixFs::Mount(*t_.disk);
    EXPECT_OK(mounted.status());
    fs_ = std::move(mounted).value();
  }
  TestDisk t_;
  std::unique_ptr<minixfs::MinixFs> fs_;
};

TEST_F(TruncateTest, ShrinkFreesBlocksAndZeroesTail) {
  Bytes data(10 * 1024, std::byte{7});  // 3 blocks
  ASSERT_OK(fs_->WriteFile("/f", data));
  const std::uint64_t free_before = t_.disk->free_blocks();
  ASSERT_OK(fs_->Truncate("/f", 5000));  // keeps 2 blocks
  EXPECT_EQ(t_.disk->free_blocks(), free_before + 1);
  ASSERT_OK_AND_ASSIGN(const auto stat, fs_->Stat("/f"));
  EXPECT_EQ(stat.size, 5000u);
  ASSERT_OK_AND_ASSIGN(const auto readback, fs_->ReadFile("/f"));
  EXPECT_EQ(readback, Bytes(data.begin(), data.begin() + 5000));

  // Extending again after the shrink reads zeroes past 5000.
  ASSERT_OK_AND_ASSIGN(auto file, fs_->Open("/f"));
  ASSERT_OK(fs_->WriteAt(file, 8000, Bytes(16, std::byte{9})));
  ASSERT_OK(fs_->Close(file));
  Bytes gap(3000);
  ASSERT_OK(fs_->ReadAt(file, 5000, gap));
  EXPECT_EQ(gap, Bytes(3000));
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(TruncateTest, TruncateToZeroFreesEverything) {
  ASSERT_OK(fs_->Create("/warm").status());
  const std::uint64_t free_before = t_.disk->free_blocks();
  ASSERT_OK(fs_->WriteFile("/f", Bytes(20 * 1024, std::byte{1})));
  ASSERT_OK(fs_->Truncate("/f", 0));
  // All 5 data blocks freed; the i-node stays.
  EXPECT_EQ(t_.disk->free_blocks(), free_before);
  ASSERT_OK_AND_ASSIGN(const auto data, fs_->ReadFile("/f"));
  EXPECT_TRUE(data.empty());
}

TEST_F(TruncateTest, ExtendLeavesAHole) {
  ASSERT_OK(fs_->WriteFile("/f", Bytes(100, std::byte{1})));
  ASSERT_OK(fs_->Truncate("/f", 5000));
  ASSERT_OK_AND_ASSIGN(const auto stat, fs_->Stat("/f"));
  EXPECT_EQ(stat.size, 5000u);
  ASSERT_OK_AND_ASSIGN(auto file, fs_->Open("/f"));
  Bytes tail(4900);
  ASSERT_OK(fs_->ReadAt(file, 100, tail));
  EXPECT_EQ(tail, Bytes(4900));
}

TEST_F(TruncateTest, TruncateDirectoryFails) {
  ASSERT_OK(fs_->Mkdir("/d").status());
  EXPECT_EQ(fs_->Truncate("/d", 0).code(), StatusCode::kFailedPrecondition);
}

TEST_F(TruncateTest, TruncateIsCrashAtomic) {
  ASSERT_OK(fs_->WriteFile("/f", Bytes(40 * 1024, std::byte{3})));
  ASSERT_OK(fs_->Sync());
  ASSERT_OK(fs_->Truncate("/f", 1000));  // committed, unflushed
  fs_.reset();
  t_.CrashAndRecover();
  ASSERT_OK_AND_ASSIGN(auto fs, minixfs::MinixFs::Mount(*t_.disk));
  ASSERT_OK_AND_ASSIGN(const auto stat, fs->Stat("/f"));
  // All-or-nothing: full size or truncated size, never in between.
  EXPECT_TRUE(stat.size == 40 * 1024 || stat.size == 1000) << stat.size;
  ASSERT_OK_AND_ASSIGN(const auto report,
                       minixfs::CheckFileSystem(*t_.disk));
  EXPECT_TRUE(report.clean()) << report.problems.front();
  ASSERT_OK(t_.disk->CheckConsistency());
}

// ReadAt's multi-block fast path keeps device I/O low on big reads.
TEST_F(TruncateTest, LargeReadsCoalesce) {
  const Bytes data = [&] {
    Bytes d(64 * 1024);
    Rng rng(12);
    for (auto& b : d) b = static_cast<std::byte>(rng.Next() & 0xff);
    return d;
  }();
  ASSERT_OK(fs_->WriteFile("/big", data));
  ASSERT_OK(fs_->Sync());
  const std::uint64_t reads_before = t_.device->stats().read_ops;
  ASSERT_OK_AND_ASSIGN(const auto readback, fs_->ReadFile("/big"));
  EXPECT_EQ(readback, data);
  // 16 blocks in 128 KB segments: at most a few coalesced reads.
  EXPECT_LE(t_.device->stats().read_ops - reads_before, 4u);
}

}  // namespace
}  // namespace aru::testing

namespace aru::testing {
namespace {

TEST(RenameCycleTest, MoveIntoOwnSubtreeRefused) {
  TestDisk t;
  ASSERT_OK(minixfs::MinixFs::Mkfs(*t.disk));
  ASSERT_OK_AND_ASSIGN(auto fs, minixfs::MinixFs::Mount(*t.disk));
  ASSERT_OK(fs->Mkdir("/a").status());
  ASSERT_OK(fs->Mkdir("/a/b").status());
  EXPECT_EQ(fs->Rename("/a", "/a/b/c").code(),
            StatusCode::kFailedPrecondition);
  // Sibling with a common name prefix is NOT a subtree: must work.
  ASSERT_OK(fs->Mkdir("/ax").status());
  ASSERT_OK(fs->Rename("/ax", "/a/b/ax"));
  ASSERT_OK_AND_ASSIGN(const auto report,
                       minixfs::CheckFileSystem(*t.disk));
  EXPECT_TRUE(report.clean()) << report.problems.front();
}

}  // namespace
}  // namespace aru::testing
