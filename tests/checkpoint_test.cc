// Checkpoint administration: explicit Checkpoint(), coverage horizons,
// recovery-time bounding, torn-checkpoint fallback, and the interplay
// with open ARUs (source relocation).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "lld/checkpoint.h"
#include "lld/layout.h"
#include "obs/metrics.h"
#include "tests/obs_expect.h"
#include "tests/test_util.h"
#include "util/bytes.h"
#include "util/crc32.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(CheckpointTest2, ExplicitCheckpointBoundsRecoveryReplay) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
  }
  ASSERT_OK(t.disk->Checkpoint());

  t.CrashAndRecover();
  // Everything was captured by the checkpoint: no roll-forward needed.
  EXPECT_EQ(t.disk->recovery_report().segments_replayed, 0u);
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(blocks.size(), 50u);
}

TEST(CheckpointTest2, WithoutCheckpointRecoveryReplays) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
  }
  ASSERT_OK(t.disk->Flush());

  t.CrashAndRecover();
  EXPECT_GT(t.disk->recovery_report().segments_replayed, 0u);
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(blocks.size(), 50u);
}

TEST(CheckpointTest2, CheckpointWithOpenAruKeepsItsShadowRecoverable) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(t.disk->Flush());

  // Shadow write hits disk, then a checkpoint runs with the ARU open
  // (relocating the shadow source), then the ARU commits and flushes.
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 2), aru));
  ASSERT_OK(t.disk->Flush());
  ASSERT_OK(t.disk->Checkpoint());
  ASSERT_OK(t.disk->EndARU(aru));
  ASSERT_OK(t.disk->Flush());

  t.CrashAndRecover();
  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 2));
}

TEST(CheckpointTest2, CheckpointThenUncommittedAruStillUndone) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(t.disk->Flush());

  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 2), aru));
  ASSERT_OK(t.disk->Flush());
  // The checkpoint relocates the shadow source but must not commit it.
  ASSERT_OK(t.disk->Checkpoint());

  t.CrashAndRecover();
  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 1));  // the ARU never committed
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(CheckpointTest2, RepeatedCheckpointsAreIdempotent) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK(t.disk->NewBlock(list, kListHead, kNoAru).status());
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(t.disk->Checkpoint());
  }
  t.CrashAndRecover();
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(blocks.size(), 1u);
}

TEST(CheckpointTest2, CloseWritesCheckpointForFastReopen) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < 30; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
  }
  ASSERT_OK(t.disk->Close());
  t.disk.reset();
  ASSERT_OK_AND_ASSIGN(t.disk, lld::Lld::Open(*t.device, t.options));
  EXPECT_EQ(t.disk->recovery_report().segments_replayed, 0u);
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(blocks.size(), 30u);
}

TEST(CheckpointTest2, CheckpointCutMidRecordFallsBackToSummaryScan) {
  // A crash mid-checkpoint leaves the newer region cut partway through
  // a table record: the header sector made it to disk but the tail did
  // not. Recovery must treat the torn region as never written — fall
  // back to the older checkpoint and roll forward through the segment
  // summaries — rather than error out or load a half-decoded table.
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  std::vector<BlockId> blocks;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
    blocks.push_back(pred);
  }
  ASSERT_OK(t.disk->Checkpoint());
  const Bytes before = t.device->CopyImage();

  for (std::uint64_t i = 10; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
    blocks.push_back(pred);
  }
  ASSERT_OK(t.disk->Flush());  // summaries reach disk before the ckpt
  ASSERT_OK(t.disk->Checkpoint());

  ASSERT_OK_AND_ASSIGN(const lld::Geometry geo,
                       lld::ReadSuperblock(*t.device));
  Bytes image = t.device->CopyImage();
  t.disk.reset();

  // Consecutive checkpoints alternate regions by stamp parity, so the
  // newer one lives in whichever region changed between the two calls.
  const auto region_changed = [&](std::uint64_t first_sector) {
    const auto off =
        static_cast<std::ptrdiff_t>(first_sector * geo.sector_size);
    const auto cap = static_cast<std::ptrdiff_t>(geo.checkpoint_capacity);
    return !std::equal(before.begin() + off, before.begin() + off + cap,
                       image.begin() + off);
  };
  std::uint64_t newer = geo.checkpoint_a_sector;
  if (!region_changed(newer)) newer = geo.checkpoint_b_sector;
  ASSERT_TRUE(region_changed(newer));

  // Keep the newer region's first sector (magic, stamp and the start of
  // the block table) and lose everything after it: a cut mid-record.
  const auto off = static_cast<std::ptrdiff_t>(newer * geo.sector_size);
  std::fill(image.begin() + off + geo.sector_size,
            image.begin() + off +
                static_cast<std::ptrdiff_t>(geo.checkpoint_capacity),
            std::byte{0});

  t.device = MemDisk::FromImage(std::move(image));
  ASSERT_OK_AND_ASSIGN(t.disk, lld::Lld::Open(*t.device, t.options));
  EXPECT_GT(t.disk->recovery_report().segments_replayed, 0u);
  ASSERT_OK_AND_ASSIGN(const auto listed, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(listed.size(), 20u);
  Bytes out(4096);
  for (std::uint64_t i = 0; i < blocks.size(); ++i) {
    ASSERT_OK(t.disk->Read(blocks[i], out, kNoAru));
    EXPECT_EQ(out, TestPattern(4096, i)) << "block " << i;
  }
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(CheckpointTest2, CloseAbortsOpenArus) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  const std::uint64_t free_before = t.disk->free_blocks();
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->NewBlock(list, kListHead, aru).status());
  ASSERT_OK(t.disk->Close());
  t.disk.reset();
  ASSERT_OK_AND_ASSIGN(t.disk, lld::Lld::Open(*t.device, t.options));
  // The allocation was reclaimed by the abort-on-close.
  EXPECT_EQ(t.disk->free_blocks(), free_before);
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_TRUE(blocks.empty());
}

// ---------------------------------------------------------------------
// Incremental checkpoints: v1 compatibility, delta chains, torn-delta
// fallback.

// A checkpoint image written by the pre-delta format (pad word 0, no
// parent_stamp field) must decode unchanged through the v2 decoder.
// The bytes are crafted by hand, field for field, so this test pins
// the historical wire layout rather than whatever EncodeCheckpoint
// currently emits.
TEST(CheckpointTest2, V1FullImageDecodesUnchanged) {
  Bytes raw;
  PutU32(raw, 0x4c444350);  // magic "LDCP"
  PutU32(raw, 0);           // v1 pad word
  PutU64(raw, 9);           // stamp
  PutU64(raw, 4);           // covered_seq
  PutU64(raw, 500);         // next_lsn
  PutU64(raw, 6);           // next_seq
  PutU64(raw, 30);          // next_block_id
  PutU64(raw, 3);           // next_list_id
  PutU64(raw, 2);           // next_aru_id
  PutU64(raw, 1);           // allocated_blocks
  PutU64(raw, 1);           // n_blocks
  PutU64(raw, 1);           // n_lists
  PutU64(raw, 21);                            // block id
  PutU64(raw, lld::PhysAddr(3, 4).encoded()); // phys
  PutU64(raw, 0);                             // successor (tail)
  PutU64(raw, 2);                             // list
  PutU64(raw, 490);                           // ts
  PutU64(raw, 2);   // list id
  PutU64(raw, 21);  // first
  PutU64(raw, 21);  // last
  PutU32(raw, Crc32c(raw));

  lld::CheckpointData out;
  lld::BlockMap blocks;
  lld::ListTable lists;
  std::size_t consumed = 0;
  ASSERT_OK(lld::DecodeCheckpoint(raw, out, blocks, lists, &consumed));
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(out.format_version, lld::kCheckpointFormatV1);
  EXPECT_EQ(out.kind, lld::kCheckpointKindFull);
  EXPECT_EQ(out.parent_stamp, 0u);
  EXPECT_EQ(out.stamp, 9u);
  EXPECT_EQ(out.covered_seq, 4u);
  EXPECT_EQ(out.next_lsn, 500u);
  EXPECT_EQ(out.allocated_blocks, 1u);
  ASSERT_NE(blocks.Find(BlockId{21}), nullptr);
  EXPECT_EQ(blocks.Find(BlockId{21})->phys, lld::PhysAddr(3, 4));
  EXPECT_EQ(blocks.Find(BlockId{21})->list, ListId{2});
  EXPECT_EQ(blocks.Find(BlockId{21})->ts, 490u);
  ASSERT_NE(lists.Find(ListId{2}), nullptr);
  EXPECT_EQ(lists.Find(ListId{2})->first, BlockId{21});
  EXPECT_EQ(lists.Find(ListId{2})->last, BlockId{21});
}

TEST(CheckpointTest2, IncrementalChainAppendsDeltasAndRebases) {
  obs::Registry registry;
  lld::Options opts = TestDisk::SmallOptions();
  opts.incremental_checkpoints = true;
  opts.checkpoint_rebase_interval = 2;
  opts.registry = &registry;
  TestDisk t(opts);

  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (std::uint64_t round = 0; round < 5; ++round) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, round), kNoAru));
    ASSERT_OK(t.disk->Checkpoint());
  }
  // Five explicit checkpoints plus recovery's bounding one, at a chain
  // bound of 2: both kinds must have happened.
  obs_expect::ExpectCounterAtLeast(registry,
                                   "aru_lld_checkpoints_delta_total", 2);
  obs_expect::ExpectCounterAtLeast(registry,
                                   "aru_lld_checkpoints_full_total", 1);

  t.CrashAndRecover();
  // The adopted chain respects the rebase bound.
  EXPECT_LE(t.disk->recovery_report().checkpoint_delta_images,
            opts.checkpoint_rebase_interval);
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(blocks.size(), 5u);
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(CheckpointTest2, DeltaCheckpointStateSurvivesCrash) {
  lld::Options opts = TestDisk::SmallOptions();
  opts.incremental_checkpoints = true;
  TestDisk t(opts);

  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  std::vector<BlockId> written;
  for (std::uint64_t i = 0; i < 25; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
    written.push_back(pred);
  }
  ASSERT_OK(t.disk->Checkpoint());

  t.CrashAndRecover();
  // The state came back through the chain, not the roll-forward.
  EXPECT_GE(t.disk->recovery_report().checkpoint_delta_images, 1u);
  EXPECT_EQ(t.disk->recovery_report().segments_replayed, 0u);
  for (std::uint64_t i = 0; i < written.size(); ++i) {
    Bytes out(4096);
    ASSERT_OK(t.disk->Read(written[i], out, kNoAru));
    EXPECT_EQ(out, TestPattern(4096, i)) << "block " << i;
  }
  ASSERT_OK(t.disk->CheckConsistency());
}

// A torn (corrupted) delta at the chain tip must not lose durable
// state: recovery falls back to the chain prefix and re-derives the
// rest from the segment summaries.
TEST(CheckpointTest2, TornDeltaFallsBackToPrefixPlusRollForward) {
  lld::Options opts = TestDisk::SmallOptions();
  opts.incremental_checkpoints = true;
  TestDisk t(opts);

  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  std::vector<BlockId> written;
  for (std::uint64_t i = 0; i < 12; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
    written.push_back(pred);
  }
  ASSERT_OK(t.disk->Checkpoint());
  for (std::uint64_t i = 12; i < 24; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
    written.push_back(pred);
  }
  ASSERT_OK(t.disk->Checkpoint());

  // Locate the newest chain and its tip delta's byte offset by walking
  // the region exactly as recovery does.
  const lld::Geometry g = t.disk->geometry();
  Bytes image = t.device->CopyImage();
  t.disk.reset();
  t.device = MemDisk::FromImage(std::move(image));

  lld::CheckpointData tip;
  lld::BlockMap blocks;
  lld::ListTable lists;
  std::vector<lld::ckptfmt::DeltaRecord> deltas;
  lld::CheckpointChainInfo chain;
  ASSERT_OK(lld::ReadNewestCheckpointChain(*t.device, g, tip, blocks, lists,
                                           deltas, chain));
  ASSERT_GE(chain.delta_images, 2u);

  const std::uint64_t region_sector = chain.region == 0
                                          ? g.checkpoint_a_sector
                                          : g.checkpoint_b_sector;
  Bytes region(g.checkpoint_capacity);
  ASSERT_OK(t.device->Read(region_sector, region));
  const auto round_up = [&](std::size_t bytes) {
    return (bytes + g.sector_size - 1) / g.sector_size * g.sector_size;
  };
  lld::CheckpointData walk;
  lld::BlockMap walk_blocks;
  lld::ListTable walk_lists;
  std::size_t consumed = 0;
  ASSERT_OK(lld::DecodeCheckpoint(region, walk, walk_blocks, walk_lists,
                                  &consumed));
  std::uint64_t offset = round_up(consumed);
  std::uint64_t tip_offset = 0;
  while (offset < chain.used_bytes) {
    tip_offset = offset;
    lld::CheckpointData delta;
    std::vector<lld::ckptfmt::DeltaRecord> records;
    std::size_t delta_consumed = 0;
    ASSERT_OK(lld::DecodeCheckpointDelta(ByteSpan(region).subspan(offset),
                                         delta, records, &delta_consumed));
    offset += round_up(delta_consumed);
  }
  ASSERT_GT(tip_offset, 0u);

  // Corrupt the tip delta's first byte (its magic) on the device.
  Bytes sector(g.sector_size);
  const std::uint64_t torn_sector =
      region_sector + tip_offset / g.sector_size;
  ASSERT_OK(t.device->Read(torn_sector, sector));
  sector[tip_offset % g.sector_size] ^= std::byte{0xff};
  ASSERT_OK(t.device->Write(torn_sector, sector));

  // Recovery: shorter chain, longer roll-forward, same state.
  ASSERT_OK_AND_ASSIGN(t.disk, lld::Lld::Open(*t.device, opts));
  EXPECT_EQ(t.disk->recovery_report().checkpoint_delta_images,
            chain.delta_images - 1);
  EXPECT_GT(t.disk->recovery_report().segments_replayed, 0u);
  for (std::uint64_t i = 0; i < written.size(); ++i) {
    Bytes out(4096);
    ASSERT_OK(t.disk->Read(written[i], out, kNoAru));
    EXPECT_EQ(out, TestPattern(4096, i)) << "block " << i;
  }
  ASSERT_OK_AND_ASSIGN(const auto final_blocks,
                       t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(final_blocks.size(), written.size());
  ASSERT_OK(t.disk->CheckConsistency());
}

}  // namespace
}  // namespace aru::testing
