// Checkpoint administration: explicit Checkpoint(), coverage horizons,
// recovery-time bounding, torn-checkpoint fallback, and the interplay
// with open ARUs (source relocation).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "lld/layout.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(CheckpointTest2, ExplicitCheckpointBoundsRecoveryReplay) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
  }
  ASSERT_OK(t.disk->Checkpoint());

  t.CrashAndRecover();
  // Everything was captured by the checkpoint: no roll-forward needed.
  EXPECT_EQ(t.disk->recovery_report().segments_replayed, 0u);
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(blocks.size(), 50u);
}

TEST(CheckpointTest2, WithoutCheckpointRecoveryReplays) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
  }
  ASSERT_OK(t.disk->Flush());

  t.CrashAndRecover();
  EXPECT_GT(t.disk->recovery_report().segments_replayed, 0u);
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(blocks.size(), 50u);
}

TEST(CheckpointTest2, CheckpointWithOpenAruKeepsItsShadowRecoverable) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(t.disk->Flush());

  // Shadow write hits disk, then a checkpoint runs with the ARU open
  // (relocating the shadow source), then the ARU commits and flushes.
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 2), aru));
  ASSERT_OK(t.disk->Flush());
  ASSERT_OK(t.disk->Checkpoint());
  ASSERT_OK(t.disk->EndARU(aru));
  ASSERT_OK(t.disk->Flush());

  t.CrashAndRecover();
  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 2));
}

TEST(CheckpointTest2, CheckpointThenUncommittedAruStillUndone) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(t.disk->Flush());

  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 2), aru));
  ASSERT_OK(t.disk->Flush());
  // The checkpoint relocates the shadow source but must not commit it.
  ASSERT_OK(t.disk->Checkpoint());

  t.CrashAndRecover();
  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 1));  // the ARU never committed
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(CheckpointTest2, RepeatedCheckpointsAreIdempotent) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK(t.disk->NewBlock(list, kListHead, kNoAru).status());
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(t.disk->Checkpoint());
  }
  t.CrashAndRecover();
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(blocks.size(), 1u);
}

TEST(CheckpointTest2, CloseWritesCheckpointForFastReopen) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < 30; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
  }
  ASSERT_OK(t.disk->Close());
  t.disk.reset();
  ASSERT_OK_AND_ASSIGN(t.disk, lld::Lld::Open(*t.device, t.options));
  EXPECT_EQ(t.disk->recovery_report().segments_replayed, 0u);
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(blocks.size(), 30u);
}

TEST(CheckpointTest2, CheckpointCutMidRecordFallsBackToSummaryScan) {
  // A crash mid-checkpoint leaves the newer region cut partway through
  // a table record: the header sector made it to disk but the tail did
  // not. Recovery must treat the torn region as never written — fall
  // back to the older checkpoint and roll forward through the segment
  // summaries — rather than error out or load a half-decoded table.
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = kListHead;
  std::vector<BlockId> blocks;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
    blocks.push_back(pred);
  }
  ASSERT_OK(t.disk->Checkpoint());
  const Bytes before = t.device->CopyImage();

  for (std::uint64_t i = 10; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
    blocks.push_back(pred);
  }
  ASSERT_OK(t.disk->Flush());  // summaries reach disk before the ckpt
  ASSERT_OK(t.disk->Checkpoint());

  ASSERT_OK_AND_ASSIGN(const lld::Geometry geo,
                       lld::ReadSuperblock(*t.device));
  Bytes image = t.device->CopyImage();
  t.disk.reset();

  // Consecutive checkpoints alternate regions by stamp parity, so the
  // newer one lives in whichever region changed between the two calls.
  const auto region_changed = [&](std::uint64_t first_sector) {
    const auto off =
        static_cast<std::ptrdiff_t>(first_sector * geo.sector_size);
    const auto cap = static_cast<std::ptrdiff_t>(geo.checkpoint_capacity);
    return !std::equal(before.begin() + off, before.begin() + off + cap,
                       image.begin() + off);
  };
  std::uint64_t newer = geo.checkpoint_a_sector;
  if (!region_changed(newer)) newer = geo.checkpoint_b_sector;
  ASSERT_TRUE(region_changed(newer));

  // Keep the newer region's first sector (magic, stamp and the start of
  // the block table) and lose everything after it: a cut mid-record.
  const auto off = static_cast<std::ptrdiff_t>(newer * geo.sector_size);
  std::fill(image.begin() + off + geo.sector_size,
            image.begin() + off +
                static_cast<std::ptrdiff_t>(geo.checkpoint_capacity),
            std::byte{0});

  t.device = MemDisk::FromImage(std::move(image));
  ASSERT_OK_AND_ASSIGN(t.disk, lld::Lld::Open(*t.device, t.options));
  EXPECT_GT(t.disk->recovery_report().segments_replayed, 0u);
  ASSERT_OK_AND_ASSIGN(const auto listed, t.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(listed.size(), 20u);
  Bytes out(4096);
  for (std::uint64_t i = 0; i < blocks.size(); ++i) {
    ASSERT_OK(t.disk->Read(blocks[i], out, kNoAru));
    EXPECT_EQ(out, TestPattern(4096, i)) << "block " << i;
  }
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(CheckpointTest2, CloseAbortsOpenArus) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  const std::uint64_t free_before = t.disk->free_blocks();
  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->NewBlock(list, kListHead, aru).status());
  ASSERT_OK(t.disk->Close());
  t.disk.reset();
  ASSERT_OK_AND_ASSIGN(t.disk, lld::Lld::Open(*t.device, t.options));
  // The allocation was reclaimed by the abort-on-close.
  EXPECT_EQ(t.disk->free_blocks(), free_before);
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_TRUE(blocks.empty());
}

}  // namespace
}  // namespace aru::testing
