// Basic LLD behaviour: format/open, allocation, list structure,
// read/write, flush durability, reopen.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(LldBasic, FormatAndOpenEmpty) {
  TestDisk t;
  EXPECT_EQ(t.disk->block_size(), 4096u);
  EXPECT_GT(t.disk->capacity_blocks(), 0u);
  EXPECT_EQ(t.disk->free_blocks(), t.disk->capacity_blocks());
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(LldBasic, OpenUnformattedDeviceFails) {
  MemDisk device(TestDisk::kDefaultSectors);
  auto opened = lld::Lld::Open(device, TestDisk::SmallOptions());
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(LldBasic, NewListStartsEmpty) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  EXPECT_TRUE(blocks.empty());
}

TEST(LldBasic, ListBlocksOfUnknownListFails) {
  TestDisk t;
  const auto result = t.disk->ListBlocks(ListId{42}, kNoAru);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(LldBasic, NewBlockAtHead) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b1,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b2,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], b2);  // most recent head insertion first
  EXPECT_EQ(blocks[1], b1);
}

TEST(LldBasic, NewBlockAfterPredecessor) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b1,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b2, t.disk->NewBlock(list, b1, kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b3, t.disk->NewBlock(list, b1, kNoAru));
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], b1);
  EXPECT_EQ(blocks[1], b3);  // inserted after b1, most recently
  EXPECT_EQ(blocks[2], b2);
}

TEST(LldBasic, NewBlockWithForeignPredecessorFails) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId l1, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const ListId l2, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b1,
                       t.disk->NewBlock(l1, kListHead, kNoAru));
  const auto result = t.disk->NewBlock(l2, b1, kNoAru);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LldBasic, UnwrittenBlockReadsAsZeroes) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  Bytes out(t.disk->block_size(), std::byte{0xff});
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, Bytes(t.disk->block_size()));
}

TEST(LldBasic, WriteThenReadBack) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  const Bytes data = TestPattern(t.disk->block_size(), 1);
  ASSERT_OK(t.disk->Write(block, data, kNoAru));
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, data);
}

TEST(LldBasic, OverwriteReturnsNewestData) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(t.disk->block_size(), 1), kNoAru));
  const Bytes newer = TestPattern(t.disk->block_size(), 2);
  ASSERT_OK(t.disk->Write(block, newer, kNoAru));
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, newer);
}

TEST(LldBasic, ReadAfterFlushComesFromDisk) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  const Bytes data = TestPattern(t.disk->block_size(), 7);
  ASSERT_OK(t.disk->Write(block, data, kNoAru));
  ASSERT_OK(t.disk->Flush());
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, data);
}

TEST(LldBasic, WrongWriteSizeRejected) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  Bytes tiny(16);
  EXPECT_EQ(t.disk->Write(block, tiny, kNoAru).code(),
            StatusCode::kInvalidArgument);
}

TEST(LldBasic, DeleteBlockUnlinksAndFrees) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b1,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b2, t.disk->NewBlock(list, b1, kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b3, t.disk->NewBlock(list, b2, kNoAru));
  const std::uint64_t free_before = t.disk->free_blocks();

  ASSERT_OK(t.disk->DeleteBlock(b2, kNoAru));
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], b1);
  EXPECT_EQ(blocks[1], b3);
  EXPECT_EQ(t.disk->free_blocks(), free_before + 1);

  Bytes out(t.disk->block_size());
  EXPECT_EQ(t.disk->Read(b2, out, kNoAru).code(), StatusCode::kNotFound);
}

TEST(LldBasic, DeleteHeadAndTailBlocks) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b1,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b2, t.disk->NewBlock(list, b1, kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b3, t.disk->NewBlock(list, b2, kNoAru));

  ASSERT_OK(t.disk->DeleteBlock(b1, kNoAru));  // head
  ASSERT_OK(t.disk->DeleteBlock(b3, kNoAru));  // tail
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], b2);

  ASSERT_OK(t.disk->DeleteBlock(b2, kNoAru));  // only element
  ASSERT_OK_AND_ASSIGN(const auto empty, t.disk->ListBlocks(list, kNoAru));
  EXPECT_TRUE(empty.empty());
}

TEST(LldBasic, DeleteListFreesAllBlocks) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  BlockId pred = ld::kListHead;
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
  }
  const std::uint64_t free_before = t.disk->free_blocks();
  ASSERT_OK(t.disk->DeleteList(list, kNoAru));
  EXPECT_EQ(t.disk->free_blocks(), free_before + 5);
  EXPECT_EQ(t.disk->ListBlocks(list, kNoAru).status().code(),
            StatusCode::kNotFound);
}

TEST(LldBasic, DeleteBlockTwiceFails) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->DeleteBlock(block, kNoAru));
  EXPECT_EQ(t.disk->DeleteBlock(block, kNoAru).code(), StatusCode::kNotFound);
}

TEST(LldBasic, BlockIdsAreNeverReused) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b1,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->DeleteBlock(b1, kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b2,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  EXPECT_NE(b1, b2);
}

TEST(LldBasic, StatePersistsAcrossCleanReopen) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  const Bytes data = TestPattern(t.disk->block_size(), 3);
  ASSERT_OK(t.disk->Write(block, data, kNoAru));
  ASSERT_OK(t.disk->Close());
  t.disk.reset();

  ASSERT_OK_AND_ASSIGN(t.disk, lld::Lld::Open(*t.device, t.options));
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], block);
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, data);
}

TEST(LldBasic, ManyBlocksSpanningSegments) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  // 128 KB segments hold ~31 4 KB blocks; write 100 to force several
  // segment seals.
  std::vector<BlockId> blocks;
  BlockId pred = ld::kListHead;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(t.disk->block_size(), i),
                            kNoAru));
    blocks.push_back(pred);
  }
  EXPECT_GT(t.disk->stats().segments_written, 2u);
  for (std::uint64_t i = 0; i < blocks.size(); ++i) {
    Bytes out(t.disk->block_size());
    ASSERT_OK(t.disk->Read(blocks[i], out, kNoAru));
    EXPECT_EQ(out, TestPattern(t.disk->block_size(), i)) << "block " << i;
  }
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(LldBasic, ListCountLimitEnforced) {
  lld::Options opts = TestDisk::SmallOptions();
  opts.max_lists = 3;
  TestDisk t(opts);
  ASSERT_OK(t.disk->NewList(kNoAru).status());
  ASSERT_OK(t.disk->NewList(kNoAru).status());
  ASSERT_OK(t.disk->NewList(kNoAru).status());
  EXPECT_EQ(t.disk->NewList(kNoAru).status().code(),
            StatusCode::kOutOfSpace);
}

}  // namespace
}  // namespace aru::testing
