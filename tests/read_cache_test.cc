// The LLD read cache: correctness under overwrites, deletion, ARU
// shadow reads, cleaning and slot reuse. Cache coherence rests on the
// log-structured invariant that physical addresses are never
// overwritten in place (slot reuse invalidates).
#include <gtest/gtest.h>

#include "lld/block_cache.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

lld::Options CachedOptions() {
  lld::Options options = TestDisk::SmallOptions();
  options.read_cache_blocks = 64;
  return options;
}

TEST(BlockCacheUnitTest, LookupInsertEvict) {
  lld::BlockCache cache(2, 16);
  Bytes a(16, std::byte{1}), b(16, std::byte{2}), c(16, std::byte{3});
  Bytes out(16);
  EXPECT_FALSE(cache.Lookup(lld::PhysAddr(0, 0), out));
  cache.Insert(lld::PhysAddr(0, 0), a);
  cache.Insert(lld::PhysAddr(0, 1), b);
  EXPECT_TRUE(cache.Lookup(lld::PhysAddr(0, 0), out));
  EXPECT_EQ(out, a);
  cache.Insert(lld::PhysAddr(1, 0), c);  // evicts LRU = (0,1)
  EXPECT_FALSE(cache.Lookup(lld::PhysAddr(0, 1), out));
  EXPECT_TRUE(cache.Lookup(lld::PhysAddr(1, 0), out));
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(BlockCacheUnitTest, InvalidateSlot) {
  lld::BlockCache cache(8, 16);
  cache.Insert(lld::PhysAddr(3, 0), Bytes(16, std::byte{1}));
  cache.Insert(lld::PhysAddr(3, 1), Bytes(16, std::byte{2}));
  cache.Insert(lld::PhysAddr(4, 0), Bytes(16, std::byte{3}));
  cache.InvalidateSlot(3);
  Bytes out(16);
  EXPECT_FALSE(cache.Lookup(lld::PhysAddr(3, 0), out));
  EXPECT_FALSE(cache.Lookup(lld::PhysAddr(3, 1), out));
  EXPECT_TRUE(cache.Lookup(lld::PhysAddr(4, 0), out));
  EXPECT_EQ(cache.stats().invalidated, 2u);
}

TEST(BlockCacheUnitTest, DuplicateInsertPromotesToMru) {
  lld::BlockCache cache(2, 16);
  Bytes a(16, std::byte{1}), b(16, std::byte{2}), c(16, std::byte{3});
  Bytes out(16);
  cache.Insert(lld::PhysAddr(0, 0), a);
  cache.Insert(lld::PhysAddr(0, 1), b);
  // Re-inserting (0,0) must promote it — previously this early-returned
  // without an LRU touch, leaving the hot block as the eviction victim.
  cache.Insert(lld::PhysAddr(0, 0), a);
  cache.Insert(lld::PhysAddr(1, 0), c);  // evicts LRU, which is now (0,1)
  EXPECT_TRUE(cache.Lookup(lld::PhysAddr(0, 0), out));
  EXPECT_EQ(out, a);
  EXPECT_FALSE(cache.Lookup(lld::PhysAddr(0, 1), out));
  EXPECT_EQ(cache.stats().insertions, 3u);  // the duplicate is not counted
}

TEST(BlockCacheUnitTest, ShardsPartitionTheKeySpace) {
  lld::BlockCache cache(64, 16, /*shard_count=*/4);
  EXPECT_EQ(cache.shard_count(), 4u);
  Bytes out(16);
  for (std::uint32_t slot = 0; slot < 8; ++slot) {
    for (std::uint32_t index = 0; index < 8; ++index) {
      cache.Insert(lld::PhysAddr(slot, index), Bytes(16, std::byte{1}));
    }
  }
  EXPECT_EQ(cache.size(), 64u);
  for (std::uint32_t slot = 0; slot < 8; ++slot) {
    for (std::uint32_t index = 0; index < 8; ++index) {
      EXPECT_TRUE(cache.Lookup(lld::PhysAddr(slot, index), out));
    }
  }
  const lld::BlockCacheStats stats = cache.stats();
  EXPECT_EQ(stats.shard_count, 4u);
  ASSERT_EQ(stats.shards.size(), 4u);
  std::uint64_t shard_hits = 0, shard_entries = 0;
  for (const lld::BlockCacheShardStats& s : stats.shards) {
    shard_hits += s.hits;
    shard_entries += s.entries;
  }
  EXPECT_EQ(shard_hits, stats.hits);  // aggregate == sum of shards
  EXPECT_EQ(shard_hits, 64u);
  EXPECT_EQ(shard_entries, 64u);
}

TEST(BlockCacheUnitTest, InvalidateSlotFansOutAcrossShards) {
  lld::BlockCache cache(64, 16, /*shard_count=*/4);
  for (std::uint32_t index = 0; index < 16; ++index) {
    cache.Insert(lld::PhysAddr(3, index), Bytes(16, std::byte{1}));
    cache.Insert(lld::PhysAddr(4, index), Bytes(16, std::byte{2}));
  }
  cache.InvalidateSlot(3);
  Bytes out(16);
  for (std::uint32_t index = 0; index < 16; ++index) {
    EXPECT_FALSE(cache.Lookup(lld::PhysAddr(3, index), out));
    EXPECT_TRUE(cache.Lookup(lld::PhysAddr(4, index), out));
  }
  EXPECT_EQ(cache.stats().invalidated, 16u);
}

TEST(BlockCacheUnitTest, ShardCountClampedToCapacity) {
  lld::BlockCache cache(2, 16, /*shard_count=*/64);
  EXPECT_EQ(cache.shard_count(), 2u);
}

TEST(BlockCacheUnitTest, DisabledCacheIsInert) {
  lld::BlockCache cache(0, 16);
  cache.Insert(lld::PhysAddr(0, 0), Bytes(16));
  Bytes out(16);
  EXPECT_FALSE(cache.Lookup(lld::PhysAddr(0, 0), out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ReadCacheTest, RepeatedReadsHit) {
  TestDisk t(CachedOptions());
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(t.disk->Flush());  // get it out of the open segment

  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));  // miss + fill
  ASSERT_OK(t.disk->Read(block, out, kNoAru));  // hit
  ASSERT_OK(t.disk->Read(block, out, kNoAru));  // hit
  EXPECT_EQ(out, TestPattern(4096, 1));
  EXPECT_GE(t.disk->read_cache_stats().hits, 2u);
}

TEST(ReadCacheTest, OverwriteNeverServesStaleData) {
  TestDisk t(CachedOptions());
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  Bytes out(4096);
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_OK(t.disk->Write(block, TestPattern(4096, i), kNoAru));
    ASSERT_OK(t.disk->Flush());
    ASSERT_OK(t.disk->Read(block, out, kNoAru));
    ASSERT_EQ(out, TestPattern(4096, i)) << "version " << i;
    ASSERT_OK(t.disk->Read(block, out, kNoAru));
    ASSERT_EQ(out, TestPattern(4096, i));
  }
}

TEST(ReadCacheTest, ShadowReadsBypassStaleCacheEntries) {
  TestDisk t(CachedOptions());
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(t.disk->Flush());
  Bytes out(4096);
  ASSERT_OK(t.disk->Read(block, out, kNoAru));  // cache the committed copy

  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->Write(block, TestPattern(4096, 2), aru));
  ASSERT_OK(t.disk->Flush());  // shadow data on disk too
  ASSERT_OK(t.disk->Read(block, out, aru));
  EXPECT_EQ(out, TestPattern(4096, 2));  // the ARU sees its shadow
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 1));  // simple readers do not
  ASSERT_OK(t.disk->EndARU(aru));
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(4096, 2));
}

TEST(ReadCacheTest, SurvivesCleanerChurnAndSlotReuse) {
  lld::Options options = CachedOptions();
  options.cleaner_reserve_slots = 3;
  TestDisk t(options, /*sectors=*/4 * 1024 * 1024 / 512);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  std::vector<BlockId> blocks;
  BlockId pred = kListHead;
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    blocks.push_back(pred);
  }
  Rng rng(5);
  std::vector<std::uint64_t> current(blocks.size(), 0);
  Bytes out(4096);
  for (int round = 0; round < 25; ++round) {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const std::uint64_t version =
          static_cast<std::uint64_t>(round) * 100 + i + 1;
      current[i] = version;
      ASSERT_OK(t.disk->Write(blocks[i], TestPattern(4096, version), kNoAru));
    }
    ASSERT_OK(t.disk->Flush());
    // Interleave reads so the cache keeps hot entries across cleaning.
    for (int probe = 0; probe < 20; ++probe) {
      const std::size_t i = rng.Below(blocks.size());
      ASSERT_OK(t.disk->Read(blocks[i], out, kNoAru));
      ASSERT_EQ(out, TestPattern(4096, current[i]))
          << "round " << round << " block " << i;
    }
  }
  EXPECT_GT(t.disk->stats().cleaner_passes, 0u);  // slots were recycled
  ASSERT_OK(t.disk->CheckConsistency());
}

}  // namespace
}  // namespace aru::testing
