// Model-based MinixFS property test: a random mix of namespace and
// file I/O operations runs against the file system and an in-memory
// reference model; every operation must succeed/fail identically in
// both, and the full observable state (directory tree + file contents)
// must match at the end — including after a clean sync + crash +
// remount cycle.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <optional>
#include <string>

#include "minixfs/check.h"
#include "minixfs/minix_fs.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using minixfs::MinixFs;
using minixfs::Policy;

// The reference model: a tree of directories and files.
struct ModelNode {
  bool is_dir = false;
  Bytes content;                          // files
  std::map<std::string, ModelNode> kids;  // directories
};

class FsModel {
 public:
  FsModel() { root_.is_dir = true; }

  // Splits "/a/b/c" into components; empty for "/".
  static std::vector<std::string> Split(const std::string& path) {
    std::vector<std::string> parts;
    std::size_t at = 1;
    while (at < path.size()) {
      const std::size_t slash = path.find('/', at);
      const std::size_t end = slash == std::string::npos ? path.size() : slash;
      if (end > at) parts.push_back(path.substr(at, end - at));
      at = end + 1;
    }
    return parts;
  }

  ModelNode* Find(const std::string& path) {
    ModelNode* node = &root_;
    for (const std::string& part : Split(path)) {
      if (!node->is_dir) return nullptr;
      const auto it = node->kids.find(part);
      if (it == node->kids.end()) return nullptr;
      node = &it->second;
    }
    return node;
  }

  ModelNode* Parent(const std::string& path) {
    const auto parts = Split(path);
    if (parts.empty()) return nullptr;
    ModelNode* node = &root_;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
      if (!node->is_dir) return nullptr;
      const auto it = node->kids.find(parts[i]);
      if (it == node->kids.end()) return nullptr;
      node = &it->second;
    }
    return node->is_dir ? node : nullptr;
  }

  static std::string Leaf(const std::string& path) {
    const auto parts = Split(path);
    return parts.empty() ? "" : parts.back();
  }

  ModelNode root_;
};

class FsPropertyRunner {
 public:
  FsPropertyRunner(MinixFs& fs, std::uint64_t seed) : fs_(fs), rng_(seed) {}

  void Step() {
    const std::uint64_t roll = rng_.Below(100);
    if (roll < 30) {
      DoCreateOrWrite();
    } else if (roll < 45) {
      DoMkdir();
    } else if (roll < 65) {
      DoUnlink();
    } else if (roll < 72) {
      DoRmdir();
    } else if (roll < 80) {
      DoRename();
    } else if (roll < 86) {
      DoLink();
    } else {
      DoVerifyOne();
    }
  }

  const ModelNode& root() const { return model_.root_; }
  const std::set<std::string>& linked() const { return linked_; }

 private:
  std::string RandomPath(bool prefer_existing) {
    // Paths drawn from a small namespace so collisions and nesting
    // happen often.
    std::string path;
    const std::uint64_t depth = rng_.Range(1, 3);
    for (std::uint64_t i = 0; i < depth; ++i) {
      path += "/n" + std::to_string(rng_.Below(prefer_existing ? 6 : 10));
    }
    return path;
  }

  void DoCreateOrWrite() {
    const std::string path = RandomPath(false);
    Bytes payload(rng_.Range(0, 9000));
    for (auto& b : payload) b = static_cast<std::byte>(rng_.Next() & 0xff);

    ModelNode* parent = model_.Parent(path);
    ModelNode* existing = model_.Find(path);
    const bool model_ok =
        parent != nullptr && (existing == nullptr || !existing->is_dir);
    const Status status = fs_.WriteFile(path, payload);
    ASSERT_EQ(status.ok(), model_ok) << path << ": " << status.ToString();
    if (model_ok) {
      ModelNode& node = parent->kids[FsModel::Leaf(path)];
      node.is_dir = false;
      // WriteFile overwrites from offset 0 but never shrinks.
      if (payload.size() >= node.content.size()) {
        node.content = std::move(payload);
      } else {
        std::copy(payload.begin(), payload.end(), node.content.begin());
      }
    }
  }

  void DoMkdir() {
    const std::string path = RandomPath(false);
    ModelNode* parent = model_.Parent(path);
    const bool model_ok =
        parent != nullptr && !parent->kids.contains(FsModel::Leaf(path));
    const Status status = fs_.Mkdir(path).status();
    ASSERT_EQ(status.ok(), model_ok) << path << ": " << status.ToString();
    if (model_ok) parent->kids[FsModel::Leaf(path)].is_dir = true;
  }

  void DoUnlink() {
    const std::string path = RandomPath(true);
    ModelNode* node = model_.Find(path);
    const bool model_ok = node != nullptr && !node->is_dir;
    const Status status = fs_.Unlink(path);
    ASSERT_EQ(status.ok(), model_ok) << path << ": " << status.ToString();
    if (model_ok) model_.Parent(path)->kids.erase(FsModel::Leaf(path));
  }

  void DoRmdir() {
    const std::string path = RandomPath(true);
    ModelNode* node = model_.Find(path);
    const bool model_ok =
        node != nullptr && node != &model_.root_ && node->is_dir &&
        node->kids.empty();
    const Status status = fs_.Rmdir(path);
    ASSERT_EQ(status.ok(), model_ok) << path << ": " << status.ToString();
    if (model_ok) model_.Parent(path)->kids.erase(FsModel::Leaf(path));
  }

  void DoRename() {
    const std::string from = RandomPath(true);
    const std::string to = RandomPath(false);
    ModelNode* src = model_.Find(from);
    ModelNode* dst_parent = model_.Parent(to);
    // Reject self-moves and moves into one's own subtree (the model
    // keeps it simple; MinixFS's Rename has the same structure since
    // directories cannot be renamed onto existing names).
    bool model_ok = src != nullptr && src != &model_.root_ &&
                    dst_parent != nullptr &&
                    model_.Find(to) == nullptr && from != to;
    // Renaming a node under its own subtree is rejected by the file
    // system (it would disconnect the subtree from the root).
    if (to.size() > from.size() && to.compare(0, from.size(), from) == 0 &&
        to[from.size()] == '/') {
      model_ok = false;
    }
    const Status status = fs_.Rename(from, to);
    ASSERT_EQ(status.ok(), model_ok)
        << from << " -> " << to << ": " << status.ToString();
    if (model_ok) {
      ModelNode moved = std::move(*src);
      model_.Parent(from)->kids.erase(FsModel::Leaf(from));
      model_.Parent(to)->kids[FsModel::Leaf(to)] = std::move(moved);
    }
  }

  void DoLink() {
    const std::string from = RandomPath(true);
    const std::string to = RandomPath(false);
    ModelNode* src = model_.Find(from);
    ModelNode* dst_parent = model_.Parent(to);
    const bool model_ok = src != nullptr && !src->is_dir &&
                          dst_parent != nullptr &&
                          model_.Find(to) == nullptr && from != to;
    const Status status = fs_.Link(from, to);
    ASSERT_EQ(status.ok(), model_ok)
        << from << " -> " << to << ": " << status.ToString();
    if (model_ok) {
      // The model copies content; true aliasing is checked separately
      // in LinkTest. Subsequent whole-file writes diverge only in
      // aliasing, so the property runner never rewrites linked files:
      // easiest is to model the link as a snapshot copy and accept
      // that WriteFile-to-one-alias would diverge — exclude by never
      // generating a write to a path that is a link target. To keep
      // the generator simple we instead copy and tolerate: writes via
      // either name update both in the FS but only one in the model.
      // => Use content-equality at link time and delete the other name
      //    from the write candidates by copying content now.
      dst_parent->kids[FsModel::Leaf(to)] = *src;
      linked_.insert(from);
      linked_.insert(to);
    }
  }

  void DoVerifyOne() {
    const std::string path = RandomPath(true);
    ModelNode* node = model_.Find(path);
    if (node == nullptr || node->is_dir) {
      EXPECT_EQ(fs_.ReadFile(path).ok(), false) << path;
      return;
    }
    if (linked_.contains(path)) return;  // aliased: see DoLink comment
    auto data = fs_.ReadFile(path);
    ASSERT_OK(data.status());
    EXPECT_EQ(*data, node->content) << path;
  }

  MinixFs& fs_;
  Rng rng_;
  FsModel model_;
  std::set<std::string> linked_;
};

// Walks the model tree and checks the file system agrees exactly
// (entry sets, types, and — for unaliased files — contents).
void VerifyDir(MinixFs& fs, const std::string& path, const ModelNode& node,
               const std::set<std::string>& linked) {
  auto entries = fs.ReadDir(path);
  ASSERT_OK(entries.status());
  ASSERT_EQ(entries->size(), node.kids.size()) << path;
  for (const auto& [name, kid] : node.kids) {
    const std::string kid_path = path == "/" ? "/" + name : path + "/" + name;
    auto stat = fs.Stat(kid_path);
    ASSERT_OK(stat.status());
    EXPECT_EQ(stat->type == minixfs::InodeType::kDirectory, kid.is_dir)
        << kid_path;
    if (kid.is_dir) {
      VerifyDir(fs, kid_path, kid, linked);
      if (::testing::Test::HasFatalFailure()) return;
    } else if (!linked.contains(kid_path)) {
      auto data = fs.ReadFile(kid_path);
      ASSERT_OK(data.status());
      EXPECT_EQ(*data, kid.content) << kid_path;
    }
  }
}

class MinixFsPropertyTest : public ::testing::TestWithParam<Policy> {};

TEST_P(MinixFsPropertyTest, RandomOpsMatchModel) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    TestDisk t(TestDisk::SmallOptions(), /*sectors=*/65536);
    ASSERT_OK(MinixFs::Mkfs(*t.disk));
    ASSERT_OK_AND_ASSIGN(auto fs, MinixFs::Mount(*t.disk, GetParam()));
    FsPropertyRunner runner(*fs, seed);
    for (int op = 0; op < 250; ++op) {
      runner.Step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    VerifyDir(*fs, "/", runner.root(), runner.linked());
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_OK(t.disk->CheckConsistency());
    ASSERT_OK_AND_ASSIGN(const auto report,
                         minixfs::CheckFileSystem(*t.disk));
    EXPECT_TRUE(report.clean()) << report.problems.front();

    // Sync, crash, remount: the synced state must be fully intact.
    ASSERT_OK(fs->Sync());
    fs.reset();
    t.CrashAndRecover();
    ASSERT_OK_AND_ASSIGN(fs, MinixFs::Mount(*t.disk, GetParam()));
    VerifyDir(*fs, "/", runner.root(), runner.linked());
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MinixFsPropertyTest,
    ::testing::Values(Policy{.use_arus = true, .improved_delete = false},
                      Policy{.use_arus = true, .improved_delete = true}),
    [](const ::testing::TestParamInfo<Policy>& param_info) {
      return param_info.param.improved_delete ? std::string("improvedDelete")
                                              : std::string("classicDelete");
    });

}  // namespace
}  // namespace aru::testing
