// Test helpers for asserting on obs::Registry state: stress tests
// check not only that a workload survived, but that the observability
// layer *saw* it — counters moved, latency histograms filled, lock
// sites attributed their waits. Absent metrics read as zero/empty so
// an expectation failure reports the metric name, not a null deref.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace aru::obs_expect {

inline std::uint64_t CounterValue(const obs::Registry& registry,
                                  std::string_view name) {
  const obs::Counter* counter = registry.FindCounter(name);
  return counter != nullptr ? counter->value() : 0;
}

inline std::uint64_t HistogramCount(const obs::Registry& registry,
                                    std::string_view name) {
  const obs::Histogram* histogram = registry.FindHistogram(name);
  return histogram != nullptr ? histogram->count() : 0;
}

// The counter exists and is at least `minimum` (use 1 for "moved").
inline void ExpectCounterAtLeast(const obs::Registry& registry,
                                 std::string_view name,
                                 std::uint64_t minimum) {
  EXPECT_NE(registry.FindCounter(name), nullptr)
      << "counter '" << name << "' was never registered";
  EXPECT_GE(CounterValue(registry, name), minimum)
      << "counter '" << name << "'";
}

// The histogram exists and recorded at least `minimum` samples, and
// its snapshot is internally consistent (sum bounded by count*max —
// the invariant the publish order in Histogram::Record guarantees).
inline void ExpectHistogramSamples(const obs::Registry& registry,
                                   std::string_view name,
                                   std::uint64_t minimum) {
  const obs::Histogram* histogram = registry.FindHistogram(name);
  ASSERT_NE(histogram, nullptr)
      << "histogram '" << name << "' was never registered";
  const obs::Histogram::Snapshot snap = histogram->TakeSnapshot();
  EXPECT_GE(snap.count, minimum) << "histogram '" << name << "'";
  if (snap.count > 0) {
    EXPECT_GE(snap.sum, static_cast<std::uint64_t>(snap.min))
        << "histogram '" << name << "'";
    EXPECT_LE(snap.sum, snap.max * snap.count)
        << "histogram '" << name << "'";
  }
}

// Every contended acquire at `site` must have produced BOTH halves of
// the attribution: the contended counter and a wait-histogram sample
// with the same total. Mode is "exclusive" or "shared".
inline void ExpectLockSiteConsistent(const obs::Registry& registry,
                                     std::string_view site,
                                     std::string_view mode) {
  const std::string suffix = std::string(site) + "_" + std::string(mode);
  const std::uint64_t contended =
      CounterValue(registry, "aru_lock_contended_total_" + suffix);
  const std::uint64_t waits =
      HistogramCount(registry, "aru_lock_wait_us_" + suffix);
  EXPECT_EQ(contended, waits)
      << "lock site '" << suffix
      << "': contended-acquire counter and wait-histogram sample count "
         "disagree";
}

}  // namespace aru::obs_expect
