// Substrate-failure behaviour: media errors, dead devices, double-torn
// checkpoints — the disk must fail loudly and cleanly, never corrupt.
#include <gtest/gtest.h>

#include "blockdev/fault_disk.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(FailureInjection, ReadOfBadSectorSurfacesIoError) {
  auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
  FaultInjectionDisk device(std::move(inner));
  const lld::Options options = TestDisk::SmallOptions();
  ASSERT_OK(lld::Lld::Format(device, options));
  ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(device, options));

  ASSERT_OK_AND_ASSIGN(const ListId list, disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(disk->Flush());

  // Find the block's physical sector by reading it once, then poison
  // every sector of the data area and expect the read to fail.
  Bytes out(4096);
  ASSERT_OK(disk->Read(block, out, kNoAru));
  const auto& g = disk->geometry();
  for (std::uint64_t s = g.data_start_sector; s < device.sector_count();
       ++s) {
    device.AddBadSector(s);
  }
  EXPECT_EQ(disk->Read(block, out, kNoAru).code(), StatusCode::kIoError);
}

TEST(FailureInjection, RecoveryFailsCleanlyOnUnreadableSummary) {
  Bytes image;
  {
    auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
    auto* mem = inner.get();
    FaultInjectionDisk device(std::move(inner));
    const lld::Options options = TestDisk::SmallOptions();
    ASSERT_OK(lld::Lld::Format(device, options));
    ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(device, options));
    ASSERT_OK_AND_ASSIGN(const ListId list, disk->NewList(kNoAru));
    ASSERT_OK_AND_ASSIGN(const BlockId block,
                         disk->NewBlock(list, kListHead, kNoAru));
    ASSERT_OK(disk->Write(block, TestPattern(4096, 1), kNoAru));
    ASSERT_OK(disk->Flush());
    image = mem->CopyImage();
  }
  // Reopen with the written segment's summary area unreadable.
  auto survivor = std::make_unique<FaultInjectionDisk>(
      MemDisk::FromImage(std::move(image)));
  const lld::Options options = TestDisk::SmallOptions();
  // Poison everything after the checkpoint regions except slot
  // trailers (recovery reads footers first, then summaries).
  ASSERT_OK_AND_ASSIGN(const auto geometry,
                       lld::ReadSuperblock(*survivor));
  const std::uint64_t slot0 = geometry.slot_first_sector(0);
  for (std::uint64_t s = slot0;
       s + 1 < slot0 + geometry.sectors_per_segment(); ++s) {
    survivor->AddBadSector(s);
  }
  const auto opened = lld::Lld::Open(*survivor, options);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
}

TEST(FailureInjection, BothCheckpointsTornIsUnrecoverable) {
  auto device = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
  const lld::Options options = TestDisk::SmallOptions();
  ASSERT_OK(lld::Lld::Format(*device, options));
  ASSERT_OK_AND_ASSIGN(const auto geometry, lld::ReadSuperblock(*device));
  // Scribble over both checkpoint regions.
  ASSERT_OK(device->Write(geometry.checkpoint_a_sector,
                          Bytes(512, std::byte{0x5a})));
  ASSERT_OK(device->Write(geometry.checkpoint_b_sector,
                          Bytes(512, std::byte{0x5a})));
  const auto opened = lld::Lld::Open(*device, options);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(FailureInjection, DeviceDeathMidOperationLeavesErrorNotCorruption) {
  auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
  auto* mem = inner.get();
  FaultInjectionDisk device(std::move(inner));
  const lld::Options options = TestDisk::SmallOptions();
  ASSERT_OK(lld::Lld::Format(device, options));
  ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(device, options));

  ASSERT_OK_AND_ASSIGN(const ListId list, disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(disk->Flush());

  device.SchedulePowerCut(10);
  // Keep writing until the device dies; every call must return a
  // status, never crash or corrupt memory.
  Status last;
  for (int i = 0; i < 500 && last.ok(); ++i) {
    last = disk->Write(block, TestPattern(4096, 2), kNoAru);
    if (last.ok()) last = disk->Flush();
  }
  EXPECT_EQ(last.code(), StatusCode::kUnavailable);

  // Recovery of the surviving image restores the last flushed state.
  auto survivor = MemDisk::FromImage(mem->CopyImage());
  ASSERT_OK_AND_ASSIGN(auto recovered, lld::Lld::Open(*survivor, options));
  Bytes out(4096);
  ASSERT_OK(recovered->Read(block, out, kNoAru));
  // Either the first flushed version or a later flushed one.
  EXPECT_TRUE(out == TestPattern(4096, 1) || out == TestPattern(4096, 2));
  ASSERT_OK(recovered->CheckConsistency());
}

TEST(FailureInjection, AsyncSealCrashSweepYieldsAllOrNothingArus) {
  // Sweep the power cut across the asynchronous seal path. With
  // write-behind enabled the segment device write happens on the
  // flusher thread, so the cut lands at every stage of the hand-off:
  // before the enqueued segment reaches the device, mid-segment (torn),
  // and after. At every crash point recovery must surface each ARU
  // all-or-nothing, and every durably-acked ARU (EndARU returned OK
  // under durable_commits) must be wholly present.
  //
  // The sweep runs at two table-shard counts: degenerate (1, every id
  // on one shard lock) and wide (8, ids spread across shards). The
  // two-phase promotion applies shard batches in ascending index order
  // after the records are durable, so the fan-out must never change
  // what recovery reconstructs — only the in-memory lock layout.
  lld::Options options = TestDisk::SmallOptions();
  options.write_behind_segments = 4;
  options.durable_commits = true;

  struct AruRun {
    ListId list;
    std::uint64_t seed = 0;
    bool end_called = false;  // all writes appended, EndARU invoked
    bool acked = false;       // EndARU returned OK: durably committed
  };

  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}})
  for (std::uint64_t cut = 5; cut < 700; cut += 37) {
    options.table_shards = shards;
    SCOPED_TRACE("table_shards=" + std::to_string(shards) +
                 " cut_after_sectors=" + std::to_string(cut));
    auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
    auto* mem = inner.get();
    FaultInjectionDisk device(std::move(inner));
    ASSERT_OK(lld::Lld::Format(device, options));
    ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(device, options));
    device.SchedulePowerCut(cut, /*tear=*/(cut % 2) == 1);

    std::vector<AruRun> runs;
    for (int i = 0; i < 64 && !device.dead(); ++i) {
      const auto aru = disk->BeginARU();
      if (!aru.ok()) break;
      AruRun run;
      run.seed = cut * 1000 + static_cast<std::uint64_t>(i) * 10;
      const auto list = disk->NewList(*aru);
      if (!list.ok()) break;  // nothing visible to check yet
      run.list = *list;
      bool append_failed = false;
      BlockId pred = kListHead;
      for (std::uint64_t b = 0; b < 2 && !append_failed; ++b) {
        const auto block = disk->NewBlock(run.list, pred, *aru);
        if (!block.ok()) {
          append_failed = true;
          break;
        }
        pred = *block;
        if (!disk->Write(pred, TestPattern(4096, run.seed + b), *aru).ok()) {
          append_failed = true;
        }
      }
      if (!append_failed) {
        run.end_called = true;
        run.acked = disk->EndARU(*aru).ok();
      }
      runs.push_back(run);
      if (!run.acked) break;  // the device is dying; stop issuing work
    }
    disk.reset();  // shuts the flusher down against the dead device

    auto survivor = MemDisk::FromImage(mem->CopyImage());
    ASSERT_OK_AND_ASSIGN(auto recovered, lld::Lld::Open(*survivor, options));
    ASSERT_OK(recovered->CheckConsistency());

    Bytes out(4096);
    for (const AruRun& run : runs) {
      SCOPED_TRACE("list=" + std::to_string(run.list.value()));
      const auto blocks = recovered->ListBlocks(run.list, kNoAru);
      if (!blocks.ok()) {
        // Wholly absent is fine unless the commit was durably acked.
        EXPECT_EQ(blocks.status().code(), StatusCode::kNotFound);
        EXPECT_FALSE(run.acked);
        continue;
      }
      // Visible at all means the commit record survived, which requires
      // every append before it: the ARU must be wholly present.
      EXPECT_TRUE(run.end_called);
      ASSERT_EQ(blocks->size(), 2u);
      for (std::uint64_t b = 0; b < 2; ++b) {
        ASSERT_OK(recovered->Read((*blocks)[b], out, kNoAru));
        EXPECT_EQ(out, TestPattern(4096, run.seed + b));
      }
    }
  }
}

TEST(FailureInjection, CheckpointedCrashSweepIsAtomicWithAndWithoutDeltas) {
  // Sweep the power cut across a workload that checkpoints as it goes,
  // so cuts land before, inside, and after checkpoint writes — in
  // incremental mode that includes mid-delta-append and mid-rebase.
  // The two modes must satisfy the same contract at every cut point:
  // recovery succeeds, every ARU surfaces all-or-nothing, and every
  // durably-acked ARU is wholly present.
  lld::Options options = TestDisk::SmallOptions();
  options.durable_commits = true;
  options.checkpoint_rebase_interval = 3;  // exercise rebases in-sweep

  struct AruRun {
    ListId list;
    std::uint64_t seed = 0;
    bool acked = false;  // EndARU returned OK: durably committed
  };

  for (const bool incremental : {false, true})
  for (std::uint64_t cut = 5; cut < 650; cut += 23) {
    options.incremental_checkpoints = incremental;
    SCOPED_TRACE("incremental=" + std::to_string(incremental) +
                 " cut_after_sectors=" + std::to_string(cut));
    auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
    auto* mem = inner.get();
    FaultInjectionDisk device(std::move(inner));
    ASSERT_OK(lld::Lld::Format(device, options));
    ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(device, options));
    device.SchedulePowerCut(cut, /*tear=*/(cut % 2) == 1);

    std::vector<AruRun> runs;
    for (int i = 0; i < 48 && !device.dead(); ++i) {
      const auto aru = disk->BeginARU();
      if (!aru.ok()) break;
      AruRun run;
      run.seed = cut * 1000 + static_cast<std::uint64_t>(i) * 10;
      const auto list = disk->NewList(*aru);
      if (!list.ok()) break;
      run.list = *list;
      bool append_failed = false;
      BlockId pred = kListHead;
      for (std::uint64_t b = 0; b < 2 && !append_failed; ++b) {
        const auto block = disk->NewBlock(run.list, pred, *aru);
        if (!block.ok()) {
          append_failed = true;
          break;
        }
        pred = *block;
        if (!disk->Write(pred, TestPattern(4096, run.seed + b), *aru).ok()) {
          append_failed = true;
        }
      }
      if (!append_failed) {
        run.acked = disk->EndARU(*aru).ok();
      }
      runs.push_back(run);
      if (!run.acked) break;  // the device is dying; stop issuing work
      if (i % 4 == 3) {
        // Periodic checkpoint; fails only once the device is dying.
        if (!disk->Checkpoint().ok()) break;
      }
    }
    disk.reset();

    auto survivor = MemDisk::FromImage(mem->CopyImage());
    ASSERT_OK_AND_ASSIGN(auto recovered, lld::Lld::Open(*survivor, options));
    ASSERT_OK(recovered->CheckConsistency());

    Bytes out(4096);
    for (const AruRun& run : runs) {
      SCOPED_TRACE("list=" + std::to_string(run.list.value()));
      const auto blocks = recovered->ListBlocks(run.list, kNoAru);
      if (!blocks.ok()) {
        EXPECT_EQ(blocks.status().code(), StatusCode::kNotFound);
        EXPECT_FALSE(run.acked);
        continue;
      }
      ASSERT_EQ(blocks->size(), 2u);
      for (std::uint64_t b = 0; b < 2; ++b) {
        ASSERT_OK(recovered->Read((*blocks)[b], out, kNoAru));
        EXPECT_EQ(out, TestPattern(4096, run.seed + b));
      }
    }
  }
}

TEST(FailureInjection, CrashDuringCheckpointFallsBackToOlder) {
  auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
  auto* mem = inner.get();
  FaultInjectionDisk device(std::move(inner));
  const lld::Options options = TestDisk::SmallOptions();
  ASSERT_OK(lld::Lld::Format(device, options));
  ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(device, options));

  ASSERT_OK_AND_ASSIGN(const ListId list, disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(disk->Write(block, TestPattern(4096, 5), kNoAru));
  ASSERT_OK(disk->Checkpoint());  // a good checkpoint exists

  ASSERT_OK(disk->Write(block, TestPattern(4096, 6), kNoAru));
  // Die a few sectors into the next checkpoint's region write.
  device.SchedulePowerCut(/*sectors=*/70, /*tear=*/true);
  const Status ckpt = disk->Checkpoint();
  EXPECT_FALSE(ckpt.ok());
  disk.reset();

  auto survivor = MemDisk::FromImage(mem->CopyImage());
  ASSERT_OK_AND_ASSIGN(auto recovered, lld::Lld::Open(*survivor, options));
  Bytes out(4096);
  ASSERT_OK(recovered->Read(block, out, kNoAru));
  // The torn checkpoint was discarded; roll-forward replays what was
  // flushed. Version 6 was sealed by the checkpoint attempt (the seal
  // precedes the region write), so it may or may not have made it —
  // but never a mix.
  EXPECT_TRUE(out == TestPattern(4096, 5) || out == TestPattern(4096, 6));
  ASSERT_OK(recovered->CheckConsistency());
}

}  // namespace
}  // namespace aru::testing
