// Substrate-failure behaviour: media errors, dead devices, double-torn
// checkpoints — the disk must fail loudly and cleanly, never corrupt.
#include <gtest/gtest.h>

#include "blockdev/fault_disk.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

TEST(FailureInjection, ReadOfBadSectorSurfacesIoError) {
  auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
  FaultInjectionDisk device(std::move(inner));
  const lld::Options options = TestDisk::SmallOptions();
  ASSERT_OK(lld::Lld::Format(device, options));
  ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(device, options));

  ASSERT_OK_AND_ASSIGN(const ListId list, disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(disk->Flush());

  // Find the block's physical sector by reading it once, then poison
  // every sector of the data area and expect the read to fail.
  Bytes out(4096);
  ASSERT_OK(disk->Read(block, out, kNoAru));
  const auto& g = disk->geometry();
  for (std::uint64_t s = g.data_start_sector; s < device.sector_count();
       ++s) {
    device.AddBadSector(s);
  }
  EXPECT_EQ(disk->Read(block, out, kNoAru).code(), StatusCode::kIoError);
}

TEST(FailureInjection, RecoveryFailsCleanlyOnUnreadableSummary) {
  Bytes image;
  {
    auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
    auto* mem = inner.get();
    FaultInjectionDisk device(std::move(inner));
    const lld::Options options = TestDisk::SmallOptions();
    ASSERT_OK(lld::Lld::Format(device, options));
    ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(device, options));
    ASSERT_OK_AND_ASSIGN(const ListId list, disk->NewList(kNoAru));
    ASSERT_OK_AND_ASSIGN(const BlockId block,
                         disk->NewBlock(list, kListHead, kNoAru));
    ASSERT_OK(disk->Write(block, TestPattern(4096, 1), kNoAru));
    ASSERT_OK(disk->Flush());
    image = mem->CopyImage();
  }
  // Reopen with the written segment's summary area unreadable.
  auto survivor = std::make_unique<FaultInjectionDisk>(
      MemDisk::FromImage(std::move(image)));
  const lld::Options options = TestDisk::SmallOptions();
  // Poison everything after the checkpoint regions except slot
  // trailers (recovery reads footers first, then summaries).
  ASSERT_OK_AND_ASSIGN(const auto geometry,
                       lld::ReadSuperblock(*survivor));
  const std::uint64_t slot0 = geometry.slot_first_sector(0);
  for (std::uint64_t s = slot0;
       s + 1 < slot0 + geometry.sectors_per_segment(); ++s) {
    survivor->AddBadSector(s);
  }
  const auto opened = lld::Lld::Open(*survivor, options);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
}

TEST(FailureInjection, BothCheckpointsTornIsUnrecoverable) {
  auto device = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
  const lld::Options options = TestDisk::SmallOptions();
  ASSERT_OK(lld::Lld::Format(*device, options));
  ASSERT_OK_AND_ASSIGN(const auto geometry, lld::ReadSuperblock(*device));
  // Scribble over both checkpoint regions.
  ASSERT_OK(device->Write(geometry.checkpoint_a_sector,
                          Bytes(512, std::byte{0x5a})));
  ASSERT_OK(device->Write(geometry.checkpoint_b_sector,
                          Bytes(512, std::byte{0x5a})));
  const auto opened = lld::Lld::Open(*device, options);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(FailureInjection, DeviceDeathMidOperationLeavesErrorNotCorruption) {
  auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
  auto* mem = inner.get();
  FaultInjectionDisk device(std::move(inner));
  const lld::Options options = TestDisk::SmallOptions();
  ASSERT_OK(lld::Lld::Format(device, options));
  ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(device, options));

  ASSERT_OK_AND_ASSIGN(const ListId list, disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(disk->Write(block, TestPattern(4096, 1), kNoAru));
  ASSERT_OK(disk->Flush());

  device.SchedulePowerCut(10);
  // Keep writing until the device dies; every call must return a
  // status, never crash or corrupt memory.
  Status last;
  for (int i = 0; i < 500 && last.ok(); ++i) {
    last = disk->Write(block, TestPattern(4096, 2), kNoAru);
    if (last.ok()) last = disk->Flush();
  }
  EXPECT_EQ(last.code(), StatusCode::kUnavailable);

  // Recovery of the surviving image restores the last flushed state.
  auto survivor = MemDisk::FromImage(mem->CopyImage());
  ASSERT_OK_AND_ASSIGN(auto recovered, lld::Lld::Open(*survivor, options));
  Bytes out(4096);
  ASSERT_OK(recovered->Read(block, out, kNoAru));
  // Either the first flushed version or a later flushed one.
  EXPECT_TRUE(out == TestPattern(4096, 1) || out == TestPattern(4096, 2));
  ASSERT_OK(recovered->CheckConsistency());
}

TEST(FailureInjection, CrashDuringCheckpointFallsBackToOlder) {
  auto inner = std::make_unique<MemDisk>(TestDisk::kDefaultSectors);
  auto* mem = inner.get();
  FaultInjectionDisk device(std::move(inner));
  const lld::Options options = TestDisk::SmallOptions();
  ASSERT_OK(lld::Lld::Format(device, options));
  ASSERT_OK_AND_ASSIGN(auto disk, lld::Lld::Open(device, options));

  ASSERT_OK_AND_ASSIGN(const ListId list, disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(disk->Write(block, TestPattern(4096, 5), kNoAru));
  ASSERT_OK(disk->Checkpoint());  // a good checkpoint exists

  ASSERT_OK(disk->Write(block, TestPattern(4096, 6), kNoAru));
  // Die a few sectors into the next checkpoint's region write.
  device.SchedulePowerCut(/*sectors=*/70, /*tear=*/true);
  const Status ckpt = disk->Checkpoint();
  EXPECT_FALSE(ckpt.ok());
  disk.reset();

  auto survivor = MemDisk::FromImage(mem->CopyImage());
  ASSERT_OK_AND_ASSIGN(auto recovered, lld::Lld::Open(*survivor, options));
  Bytes out(4096);
  ASSERT_OK(recovered->Read(block, out, kNoAru));
  // The torn checkpoint was discarded; roll-forward replays what was
  // flushed. Version 6 was sealed by the checkpoint attempt (the seal
  // precedes the region write), so it may or may not have made it —
  // but never a mix.
  EXPECT_TRUE(out == TestPattern(4096, 5) || out == TestPattern(4096, 6));
  ASSERT_OK(recovered->CheckConsistency());
}

}  // namespace
}  // namespace aru::testing
