// Tests for tools/arulint: the stripper, each rule (via inline sources
// and seeded-violation fixture files with golden expectations), the
// suppression window, and the meta-check that the repo's own src/ tree
// is clean. ARU_ARULINT_FIXTURE_DIR and ARU_SRC_DIR are injected by
// tests/CMakeLists.txt.
#include "tools/arulint/arulint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace aru::arulint {
namespace {

std::string Fixture(const std::string& rel) {
  return std::string(ARU_ARULINT_FIXTURE_DIR) + "/" + rel;
}

// Compact (rule, line) view of findings for golden comparisons.
std::vector<std::pair<std::string, std::size_t>> RulesAndLines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  return out;
}

// ---------------------------------------------------------------------
// StripCommentsAndStrings

// The stripper replaces comment/literal bytes with spaces one-for-one,
// so it must preserve total length and every newline position.
void ExpectStripped(const std::string& input,
                    const std::vector<std::string>& gone,
                    const std::vector<std::string>& kept) {
  const std::string stripped = StripCommentsAndStrings(input);
  EXPECT_EQ(stripped.size(), input.size()) << stripped;
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(input.begin(), input.end(), '\n'))
      << stripped;
  for (const std::string& g : gone) {
    EXPECT_EQ(stripped.find(g), std::string::npos)
        << "'" << g << "' survived: " << stripped;
  }
  for (const std::string& k : kept) {
    EXPECT_NE(stripped.find(k), std::string::npos)
        << "'" << k << "' lost: " << stripped;
  }
}

TEST(StripTest, BlanksLineComments) {
  ExpectStripped("int x;  // rand()\nint y;", {"rand"}, {"int x;", "int y;"});
}

TEST(StripTest, BlockCommentPreservesLineStructure) {
  ExpectStripped("a /* new X\n   time(nullptr) */ b", {"new", "time"},
                 {"a ", " b"});
}

TEST(StripTest, BlanksStringAndCharLiterals) {
  ExpectStripped("f(\"(void)g(\");", {"(void)g"}, {"f(", ");"});
  ExpectStripped("char c = '\"';", {"\""}, {"char c =", ";"});
}

TEST(StripTest, EscapedQuoteStaysInsideString) {
  // The \" does not end the literal; the trailing code survives.
  ExpectStripped("f(\"a\\\"b\") + g()", {"a", "b"}, {"f(", ") + g()"});
}

TEST(StripTest, CommentMarkersInsideStringsAreLiteral) {
  // The // inside the literal is string content, not a comment: the
  // code after the literal must survive.
  ExpectStripped("url(\"http://x\"); code();", {"http"},
                 {"url(", "code();"});
}

// ---------------------------------------------------------------------
// Rules via inline sources

TEST(OnDiskPinTest, OnlyAppliesToFormatHeaders) {
  const std::string source = "struct Foo {\n  int v;\n};\n";
  EXPECT_EQ(CheckSource("src/lld/lld.h", source).size(), 0u);
  const auto findings = CheckSource("src/lld/layout.h", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "on-disk-pin");
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(OnDiskPinTest, NeedsBothHalvesOfThePin) {
  const std::string size_only =
      "struct Foo {\n  int v;\n};\nstatic_assert(sizeof(Foo) == 4);\n";
  EXPECT_EQ(CheckSource("src/lld/summary.h", size_only).size(), 1u);
  const std::string both =
      "struct Foo {\n  int v;\n};\n"
      "static_assert(std::is_trivially_copyable_v<Foo>);\n"
      "static_assert(sizeof(Foo) == 4);\n";
  EXPECT_EQ(CheckSource("src/lld/summary.h", both).size(), 0u);
}

TEST(StatusDiscardTest, JustificationCommentSilences) {
  EXPECT_EQ(CheckSource("src/a.cc", "void F() { (void)G(); }\n").size(), 1u);
  EXPECT_EQ(CheckSource("src/a.cc",
                        "void F() {\n"
                        "  // Discarded: G is best-effort here.\n"
                        "  (void)G();\n"
                        "}\n")
                .size(),
            0u);
}

TEST(StatusDiscardTest, VariableDiscardIsNotACall) {
  // (void)x; silences an unused variable — no Status is being dropped.
  EXPECT_EQ(CheckSource("src/a.cc", "void F(int x) { (void)x; }\n").size(),
            0u);
}

TEST(BannedCallTest, FlagsRandAndTimeButNotLookalikes) {
  const auto findings = CheckSource(
      "src/a.cc",
      "int a = rand();\n"
      "long b = time(nullptr);\n"
      "int c = grand();\n"       // suffix match must not fire
      "int d = rng.rand();\n"    // member call on the seeded RNG is fine
      "long e = time(clock);\n"  // only the null-epoch form is banned
  );
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"banned-call", 1}, {"banned-call", 2}}));
}

TEST(RawNewTest, SmartPointerConstructionIsExempt) {
  EXPECT_EQ(CheckSource("src/a.cc", "auto* p = new Foo();\n").size(), 1u);
  EXPECT_EQ(
      CheckSource("src/a.cc", "auto p = std::make_unique<Foo>();\n").size(),
      0u);
  EXPECT_EQ(
      CheckSource("src/a.cc", "std::unique_ptr<Foo> p(new Foo());\n").size(),
      0u);
  // Wrapped across two lines: the smart-pointer type sits on the line
  // above the `new`.
  EXPECT_EQ(CheckSource("src/a.cc",
                        "auto p = std::unique_ptr<Foo>(\n"
                        "    new Foo());\n")
                .size(),
            0u);
}

TEST(RecoveryAssertTest, OnlyAppliesToRecoveryFiles) {
  const std::string source = "void F(int v) { assert(v > 0); }\n";
  EXPECT_EQ(CheckSource("src/lld/lld.cc", source).size(), 0u);
  const auto findings = CheckSource("src/lld/lld_recovery.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "recovery-assert");
  const auto consistency =
      CheckSource("src/lld/lld_consistency.cc", source);
  ASSERT_EQ(consistency.size(), 1u);
  EXPECT_EQ(consistency[0].rule, "recovery-assert");
}

TEST(SuppressionTest, AllowMarkerWorksWithinThreeLines) {
  EXPECT_EQ(CheckSource("src/a.cc",
                        "// arulint: allow(raw-new) pool allocator.\n"
                        "auto* p = new Foo();\n")
                .size(),
            0u);
  // Marker names a different rule: no effect.
  EXPECT_EQ(CheckSource("src/a.cc",
                        "// arulint: allow(banned-call) wrong rule.\n"
                        "auto* p = new Foo();\n")
                .size(),
            1u);
  // Marker four lines above the flagged line: outside the window.
  EXPECT_EQ(CheckSource("src/a.cc",
                        "// arulint: allow(raw-new) too far away.\n"
                        "\n"
                        "\n"
                        "\n"
                        "auto* p = new Foo();\n")
                .size(),
            1u);
}

TEST(FormatTest, FindingRendersAsFileLineRuleMessage) {
  EXPECT_EQ(FormatFinding({"src/a.cc", 7, "raw-new", "msg"}),
            "src/a.cc:7: [raw-new] msg");
}

TEST(CheckFileTest, MissingFileIsAnIoErrorFinding) {
  const auto findings = CheckFile(Fixture("no_such_file.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
  EXPECT_EQ(findings[0].line, 0u);
}

// ---------------------------------------------------------------------
// Seeded-violation fixtures: golden (rule, line) expectations.

TEST(FixtureTest, UnpinnedOnDiskStructs) {
  const auto findings = CheckFile(Fixture("bad/lld/layout.h"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"on-disk-pin", 9},     // UnpinnedHeader: no pin at all
                {"on-disk-pin", 15}}))  // PinnedRecord: size pin only
      << "fixture bad/lld/layout.h drifted from the golden expectation";
}

TEST(FixtureTest, UnjustifiedStatusDiscard) {
  const auto findings = CheckFile(Fixture("bad/status_discard.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"status-discard", 12}}));
}

TEST(FixtureTest, AssertInRecoveryPath) {
  const auto findings = CheckFile(Fixture("bad/lld_recovery.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"recovery-assert", 10}}));
}

TEST(FixtureTest, BannedCallsAndRawNew) {
  const auto findings = CheckFile(Fixture("bad/banned.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"banned-call", 13},   // rand()
                {"banned-call", 17},   // time(nullptr)
                {"raw-new", 21}}));    // new Widget()
}

TEST(FixtureTest, CleanFileHasZeroFindings) {
  const auto findings = CheckFile(Fixture("clean/clean.cc"));
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings.front());
}

TEST(FixtureTest, BadTreeAggregatesEveryViolationClass) {
  const auto findings = CheckTree(Fixture("bad"));
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  std::sort(rules.begin(), rules.end());
  rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
  EXPECT_EQ(rules,
            (std::vector<std::string>{"banned-call", "on-disk-pin",
                                      "raw-new", "recovery-assert",
                                      "status-discard"}));
}

// ---------------------------------------------------------------------
// The repository lints itself.

TEST(RepoTest, SrcTreeIsClean) {
  const auto findings = CheckTree(ARU_SRC_DIR);
  for (const Finding& f : findings) ADD_FAILURE() << FormatFinding(f);
}

}  // namespace
}  // namespace aru::arulint
