// Tests for tools/arulint: the stripper, each rule (via inline sources
// and seeded-violation fixture files with golden expectations), the
// suppression window, SARIF output, .arulintignore collection, and the
// meta-check that the repo's own src/ and tools/ trees are clean.
// ARU_ARULINT_FIXTURE_DIR, ARU_SRC_DIR and ARU_TOOLS_DIR are injected
// by tests/CMakeLists.txt.
#include "tools/arulint/arulint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/arulint/model.h"

namespace aru::arulint {
namespace {

std::string Fixture(const std::string& rel) {
  return std::string(ARU_ARULINT_FIXTURE_DIR) + "/" + rel;
}

// Compact (rule, line) view of findings for golden comparisons.
std::vector<std::pair<std::string, std::size_t>> RulesAndLines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  return out;
}

// ---------------------------------------------------------------------
// StripCommentsAndStrings

// The stripper replaces comment/literal bytes with spaces one-for-one,
// so it must preserve total length and every newline position.
void ExpectStripped(const std::string& input,
                    const std::vector<std::string>& gone,
                    const std::vector<std::string>& kept) {
  const std::string stripped = StripCommentsAndStrings(input);
  EXPECT_EQ(stripped.size(), input.size()) << stripped;
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(input.begin(), input.end(), '\n'))
      << stripped;
  for (const std::string& g : gone) {
    EXPECT_EQ(stripped.find(g), std::string::npos)
        << "'" << g << "' survived: " << stripped;
  }
  for (const std::string& k : kept) {
    EXPECT_NE(stripped.find(k), std::string::npos)
        << "'" << k << "' lost: " << stripped;
  }
}

TEST(StripTest, BlanksLineComments) {
  ExpectStripped("int x;  // rand()\nint y;", {"rand"}, {"int x;", "int y;"});
}

TEST(StripTest, BlockCommentPreservesLineStructure) {
  ExpectStripped("a /* new X\n   time(nullptr) */ b", {"new", "time"},
                 {"a ", " b"});
}

TEST(StripTest, BlanksStringAndCharLiterals) {
  ExpectStripped("f(\"(void)g(\");", {"(void)g"}, {"f(", ");"});
  ExpectStripped("char c = '\"';", {"\""}, {"char c =", ";"});
}

TEST(StripTest, EscapedQuoteStaysInsideString) {
  // The \" does not end the literal; the trailing code survives.
  ExpectStripped("f(\"a\\\"b\") + g()", {"a", "b"}, {"f(", ") + g()"});
}

TEST(StripTest, CommentMarkersInsideStringsAreLiteral) {
  // The // inside the literal is string content, not a comment: the
  // code after the literal must survive.
  ExpectStripped("url(\"http://x\"); code();", {"http"},
                 {"url(", "code();"});
}

TEST(StripTest, RawStringLiteralIsBlanked) {
  // No escape processing inside R"(...)": only the close sequence ends
  // it, and the code after it survives.
  ExpectStripped("auto s = R\"(new X // time(nullptr))\"; g();",
                 {"new", "time"}, {"auto s =", "g();"});
}

// ---------------------------------------------------------------------
// Rules via inline sources

TEST(OnDiskPinTest, OnlyAppliesToFormatHeaders) {
  const std::string source = "struct Foo {\n  int v;\n};\n";
  EXPECT_EQ(CheckSource("src/lld/lld.h", source).size(), 0u);
  const auto findings = CheckSource("src/lld/layout.h", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "on-disk-pin");
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(OnDiskPinTest, NeedsBothHalvesOfThePin) {
  const std::string size_only =
      "struct Foo {\n  std::uint32_t v;\n};\n"
      "static_assert(sizeof(Foo) == 4);\n";
  EXPECT_EQ(CheckSource("src/lld/summary.h", size_only).size(), 1u);
  const std::string both =
      "struct Foo {\n  std::uint32_t v;\n};\n"
      "static_assert(std::is_trivially_copyable_v<Foo>);\n"
      "static_assert(sizeof(Foo) == 4);\n";
  EXPECT_EQ(CheckSource("src/lld/summary.h", both).size(), 0u);
}

TEST(OnDiskFieldTest, NonFixedWidthFieldOfPinnedStruct) {
  const std::string source =
      "struct Rec {\n"
      "  bool live;\n"
      "  std::uint8_t pad[7];\n"
      "};\n"
      "static_assert(std::is_trivially_copyable_v<Rec>);\n"
      "static_assert(sizeof(Rec) == 8);\n";
  const auto findings = CheckSource("src/minixfs/format.h", source);
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"on-disk-field", 2}}));  // bool live
  // Outside a format header the rule does not apply.
  EXPECT_EQ(CheckSource("src/minixfs/minixfs.h", source).size(), 0u);
}

TEST(OnDiskFieldTest, ImplicitPaddingIsFlaggedAndSuppressible) {
  const std::string padded =
      "struct Rec {\n"
      "  std::uint16_t tag;\n"
      "  std::uint64_t value;\n"
      "};\n"
      "static_assert(std::is_trivially_copyable_v<Rec>);\n"
      "static_assert(sizeof(Rec) == 16);\n";
  const auto findings = CheckSource("src/lld/layout.h", padded);
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"on-disk-field", 3}}));  // 6 bytes of padding before value
  const std::string allowed =
      "struct Rec {\n"
      "  std::uint16_t tag;\n"
      "  // arulint: allow(on-disk-field) codec writes the pad bytes.\n"
      "  std::uint64_t value;\n"
      "};\n"
      "static_assert(std::is_trivially_copyable_v<Rec>);\n"
      "static_assert(sizeof(Rec) == 16);\n";
  EXPECT_EQ(CheckSource("src/lld/layout.h", allowed).size(), 0u);
}

TEST(OnDiskFieldTest, AliasAndEnumResolveToFixedWidth) {
  // `using` aliases and fixed-underlying enums are fixed-width; an enum
  // without an underlying type is not.
  const std::string source =
      "using Lsn = std::uint64_t;\n"
      "enum class Kind : std::uint8_t { kA };\n"
      "enum Loose { kB };\n"
      "struct Rec {\n"
      "  Lsn lsn;\n"
      "  Kind kind;\n"
      "  std::uint8_t pad[7];\n"
      "};\n"
      "static_assert(std::is_trivially_copyable_v<Rec>);\n"
      "static_assert(sizeof(Rec) == 16);\n"
      "struct Bad {\n"
      "  Loose loose;\n"
      "};\n"
      "static_assert(std::is_trivially_copyable_v<Bad>);\n"
      "static_assert(sizeof(Bad) == 4);\n";
  const auto findings = CheckSource("src/lld/summary.h", source);
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"on-disk-field", 12}}));  // Loose has no fixed underlying
}

TEST(StatusFlowTest, JustificationCommentSilencesVoidDiscard) {
  EXPECT_EQ(CheckSource("src/a.cc", "void F() { (void)G(); }\n").size(), 1u);
  EXPECT_EQ(CheckSource("src/a.cc",
                        "void F() {\n"
                        "  // Discarded: G is best-effort here.\n"
                        "  (void)G();\n"
                        "}\n")
                .size(),
            0u);
}

TEST(StatusFlowTest, VariableDiscardIsNotACall) {
  // (void)x; silences an unused variable — no Status is being dropped.
  EXPECT_EQ(CheckSource("src/a.cc", "void F(int x) { (void)x; }\n").size(),
            0u);
}

TEST(StatusFlowTest, BareStatementCallDroppingStatus) {
  const std::string source =
      "struct Status { bool ok() const; };\n"
      "Status Write();\n"
      "void A() { Write(); }\n"
      "Status B() { return Write(); }\n"
      "void C() {\n"
      "  Status s = Write();\n"
      "  if (s.ok()) { return; }\n"
      "}\n";
  const auto findings = CheckSource("src/a.cc", source);
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"status-flow", 3}}));  // A drops the Status; B and C don't
}

TEST(StatusFlowTest, StatusLocalNeverExamined) {
  const std::string source =
      "struct Status { bool ok() const; };\n"
      "Status Write();\n"
      "void F() {\n"
      "  Status s = Write();\n"
      "}\n";
  const auto findings = CheckSource("src/a.cc", source);
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"status-flow", 4}}));
}

TEST(CrashOrderTest, MutationMustFollowAppendOrBeAnnotated) {
  const std::string source =
      "struct BlockMap { void Set(int k, int v); };\n"
      "class V {\n"
      " public:\n"
      "  int Append() ARU_APPENDS_SUMMARY;\n"
      "  void Bad(int id);\n"
      "  void Good(int id);\n"
      " private:\n"
      "  BlockMap map_;\n"
      "};\n"
      "void V::Bad(int id) { map_.Set(id, id); }\n"
      "void V::Good(int id) {\n"
      "  int r = Append();\n"
      "  (void)r;  // Discarded: test stub.\n"
      "  map_.Set(id, id);\n"
      "}\n";
  const auto findings = CheckSource("src/lld/lld.cc", source);
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"crash-order", 10}}));
}

TEST(CrashOrderTest, AnnotatedMutatorMovesObligationToCallers) {
  const std::string source =
      "struct BlockMap { void Set(int k, int v); };\n"
      "class V {\n"
      " public:\n"
      "  int Append() ARU_APPENDS_SUMMARY;\n"
      "  void Promote(int id) ARU_MUTATES_TABLES;\n"
      "  void Bad(int id);\n"
      "  void Good(int id);\n"
      " private:\n"
      "  BlockMap map_;\n"
      "};\n"
      "void V::Promote(int id) { map_.Set(id, id); }\n"
      "void V::Bad(int id) { Promote(id); }\n"
      "void V::Good(int id) {\n"
      "  int r = Append();\n"
      "  (void)r;  // Discarded: test stub.\n"
      "  Promote(id);\n"
      "}\n";
  const auto findings = CheckSource("src/lld/lld.cc", source);
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"crash-order", 12}}));  // Promote's own body is exempt
}

TEST(CrashOrderTest, RecoveryFilesAreExempt) {
  // Recovery rebuilds the tables FROM the log; the same body that is a
  // violation elsewhere is the whole point there.
  const std::string source =
      "struct BlockMap { void Set(int k, int v); };\n"
      "class V {\n"
      " public:\n"
      "  void Replay(int id);\n"
      " private:\n"
      "  BlockMap map_;\n"
      "};\n"
      "void V::Replay(int id) { map_.Set(id, id); }\n";
  EXPECT_EQ(CheckSource("src/lld/lld_recovery.cc", source).size(), 0u);
  EXPECT_EQ(CheckSource("src/lld/lld.cc", source).size(), 1u);
}

TEST(LockOrderTest, OppositeAcquisitionOrdersAreACycle) {
  const std::string cyclic =
      "class M {};\n"
      "class MutexLock { public: explicit MutexLock(M& m); };\n"
      "class P {\n"
      " public:\n"
      "  void F();\n"
      "  void G();\n"
      " private:\n"
      "  M a_;\n"
      "  M b_;\n"
      "};\n"
      "void P::F() { MutexLock la(a_); MutexLock lb(b_); }\n"
      "void P::G() { MutexLock lb(b_); MutexLock la(a_); }\n";
  const auto findings = CheckSource("src/a.cc", cyclic);
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"lock-order", 11}, {"lock-order", 12}}));
  const std::string consistent =
      "class M {};\n"
      "class MutexLock { public: explicit MutexLock(M& m); };\n"
      "class P {\n"
      " public:\n"
      "  void F();\n"
      "  void G();\n"
      " private:\n"
      "  M a_;\n"
      "  M b_;\n"
      "};\n"
      "void P::F() { MutexLock la(a_); MutexLock lb(b_); }\n"
      "void P::G() { MutexLock la(a_); MutexLock lb(b_); }\n";
  EXPECT_EQ(CheckSource("src/a.cc", consistent).size(), 0u);
}

TEST(LockOrderTest, CycleThroughACalleeIsDetected) {
  // F holds a_ and calls H, which acquires b_; G takes them in the
  // opposite order directly. The edge a_->b_ exists only through the
  // call graph.
  const std::string source =
      "class M {};\n"
      "class MutexLock { public: explicit MutexLock(M& m); };\n"
      "class P {\n"
      " public:\n"
      "  void F();\n"
      "  void G();\n"
      "  void H();\n"
      " private:\n"
      "  M a_;\n"
      "  M b_;\n"
      "};\n"
      "void P::H() { MutexLock lb(b_); }\n"
      "void P::F() { MutexLock la(a_); H(); }\n"
      "void P::G() { MutexLock lb(b_); MutexLock la(a_); }\n";
  const auto findings = CheckSource("src/a.cc", source);
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"lock-order", 13}, {"lock-order", 14}}));
}

TEST(LockOrderTest, SharedModeUpgradeThroughACallee) {
  // F holds m_ in shared mode and calls H, which takes m_ exclusively:
  // an upgrade mediated by the call graph. G shows the benign shape —
  // a callee that re-acquires the same mutex in shared mode under a
  // shared hold is not flagged.
  const std::string source =
      "class M {};\n"
      "class ReaderMutexLock { public: explicit ReaderMutexLock(M& m); };\n"
      "class WriterMutexLock { public: explicit WriterMutexLock(M& m); };\n"
      "class P {\n"
      " public:\n"
      "  void F();\n"
      "  void G();\n"
      "  void H();\n"
      "  void S();\n"
      " private:\n"
      "  M m_;\n"
      "};\n"
      "void P::H() { WriterMutexLock lw(m_); }\n"
      "void P::S() { ReaderMutexLock lr(m_); }\n"
      "void P::F() { ReaderMutexLock lr(m_); H(); }\n"
      "void P::G() { ReaderMutexLock lr(m_); S(); }\n";
  const auto findings = CheckSource("src/a.cc", source);
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"lock-order", 15}}));  // F: call into the upgrade
}

TEST(ShardOrderTest, AscendingLiteralsAreQuietOthersFlagged) {
  const std::string prologue =
      "class M {};\n"
      "class MutexLock { public: explicit MutexLock(M& m); };\n"
      "struct Shard { M mu; };\n"
      "class T {\n"
      " public:\n"
      "  void F(unsigned long i, unsigned long j);\n"
      " private:\n"
      "  Shard shards_[8];\n"
      "};\n";
  // Ascending literals: the sanctioned shape.
  EXPECT_EQ(CheckSource("src/a.cc",
                        prologue +
                            "void T::F(unsigned long i, unsigned long j) {\n"
                            "  MutexLock a(shards_[0].mu);\n"
                            "  MutexLock b(shards_[5].mu);\n"
                            "}\n")
                .size(),
            0u);
  // Descending literals: the AB/BA pair lock-order's graph cannot see.
  const auto descending =
      CheckSource("src/a.cc",
                  prologue +
                      "void T::F(unsigned long i, unsigned long j) {\n"
                      "  MutexLock a(shards_[5].mu);\n"
                      "  MutexLock b(shards_[0].mu);\n"
                      "}\n");
  EXPECT_EQ(RulesAndLines(descending),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"shard-order", 12}}));
  // Runtime indices: not provable, flagged.
  const auto runtime =
      CheckSource("src/a.cc",
                  prologue +
                      "void T::F(unsigned long i, unsigned long j) {\n"
                      "  MutexLock a(shards_[i].mu);\n"
                      "  MutexLock b(shards_[j].mu);\n"
                      "}\n");
  EXPECT_EQ(RulesAndLines(runtime),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"shard-order", 12}}));
}

TEST(ShardOrderTest, DifferentArraysAndSingleHoldsAreQuiet) {
  // Holding an element of one array while taking an element of another
  // is ordinary lock-order territory; a lone shard acquisition (the
  // one-at-a-time ApplyBatch loop shape) creates no nesting at all.
  const std::string source =
      "class M {};\n"
      "class MutexLock { public: explicit MutexLock(M& m); };\n"
      "struct Shard { M mu; };\n"
      "class T {\n"
      " public:\n"
      "  void Cross();\n"
      "  void Loop(unsigned long i);\n"
      " private:\n"
      "  Shard shards_[8];\n"
      "  Shard cache_[8];\n"
      "};\n"
      "void T::Cross() {\n"
      "  MutexLock a(shards_[3].mu);\n"
      "  MutexLock b(cache_[1].mu);\n"
      "}\n"
      "void T::Loop(unsigned long i) {\n"
      "  MutexLock a(shards_[i].mu);\n"
      "}\n";
  EXPECT_EQ(CheckSource("src/a.cc", source).size(), 0u);
}

TEST(ShardOrderTest, SuppressionComment) {
  const auto findings =
      CheckSource("src/a.cc",
                  "class M {};\n"
                  "class MutexLock { public: explicit MutexLock(M& m); };\n"
                  "struct Shard { M mu; };\n"
                  "class T {\n"
                  " public:\n"
                  "  void F();\n"
                  " private:\n"
                  "  Shard shards_[4];\n"
                  "};\n"
                  "void T::F() {\n"
                  "  MutexLock a(shards_[2].mu);\n"
                  "  // arulint: allow(shard-order) proven by caller\n"
                  "  MutexLock b(shards_[1].mu);\n"
                  "}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(BannedCallTest, FlagsRandAndTimeButNotLookalikes) {
  const auto findings = CheckSource(
      "src/a.cc",
      "int a = rand();\n"
      "long b = time(nullptr);\n"
      "int c = grand();\n"       // suffix match must not fire
      "int d = rng.rand();\n"    // member call on the seeded RNG is fine
      "long e = time(clock);\n"  // only the null-epoch form is banned
  );
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"banned-call", 1}, {"banned-call", 2}}));
}

TEST(RawNewTest, SmartPointerConstructionIsExempt) {
  EXPECT_EQ(CheckSource("src/a.cc", "auto* p = new Foo();\n").size(), 1u);
  EXPECT_EQ(
      CheckSource("src/a.cc", "auto p = std::make_unique<Foo>();\n").size(),
      0u);
  EXPECT_EQ(
      CheckSource("src/a.cc", "std::unique_ptr<Foo> p(new Foo());\n").size(),
      0u);
  // Wrapped across two lines: the smart-pointer type sits on the line
  // above the `new`.
  EXPECT_EQ(CheckSource("src/a.cc",
                        "auto p = std::unique_ptr<Foo>(\n"
                        "    new Foo());\n")
                .size(),
            0u);
}

TEST(NamedLockTest, UnnamedConstructionIsFlagged) {
  // Default-constructed and empty-initialized locks have no site name;
  // a string literal in the initializer is the name.
  EXPECT_EQ(RulesAndLines(CheckSource("src/a.h",
                                      "class Pool {\n"
                                      "  Mutex mu_;\n"
                                      "  SharedMutex rw_{};\n"
                                      "};\n")),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"named-lock", 2}, {"named-lock", 3}}));
  EXPECT_EQ(CheckSource("src/a.h",
                        "class Pool {\n"
                        "  Mutex mu_{\"pool_mu\"};\n"
                        "  SharedMutex rw_{\"pool_rw\"};\n"
                        "};\n")
                .size(),
            0u);
}

TEST(NamedLockTest, TypeMentionsAreNotDeclarations) {
  // References, pointers, the class definition itself, qualified
  // names and constructor declarations are not construction sites.
  EXPECT_EQ(CheckSource("src/a.h",
                        "class Mutex {\n"
                        " public:\n"
                        "  Mutex() = default;\n"
                        "  explicit Mutex(const char* site);\n"
                        "};\n"
                        "void Bind(Mutex& mu, const Mutex* other);\n"
                        "util::Mutex* Lookup();\n")
                .size(),
            0u);
}

TEST(NamedLockTest, MultiLineInitializerSeesItsOwnLinesOnly) {
  // The name may sit on a continuation line of the initializer; a
  // string on the NEXT declaration must not leak backwards.
  EXPECT_EQ(CheckSource("src/a.h",
                        "class Pool {\n"
                        "  Mutex mu_{\n"
                        "      \"pool_mu\"};\n"
                        "};\n")
                .size(),
            0u);
  EXPECT_EQ(RulesAndLines(CheckSource("src/a.h",
                                      "class Pool {\n"
                                      "  Mutex mu_{};\n"
                                      "  Mutex named_{\"pool_mu\"};\n"
                                      "};\n")),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"named-lock", 2}}));
}

TEST(RecoveryAssertTest, OnlyAppliesToRecoveryFiles) {
  const std::string source = "void F(int v) { assert(v > 0); }\n";
  EXPECT_EQ(CheckSource("src/lld/lld.cc", source).size(), 0u);
  const auto findings = CheckSource("src/lld/lld_recovery.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "recovery-assert");
  const auto consistency =
      CheckSource("src/lld/lld_consistency.cc", source);
  ASSERT_EQ(consistency.size(), 1u);
  EXPECT_EQ(consistency[0].rule, "recovery-assert");
}

TEST(SuppressionTest, AllowMarkerWorksWithinThreeLines) {
  EXPECT_EQ(CheckSource("src/a.cc",
                        "// arulint: allow(raw-new) pool allocator.\n"
                        "auto* p = new Foo();\n")
                .size(),
            0u);
  // Marker names a different rule: no effect.
  EXPECT_EQ(CheckSource("src/a.cc",
                        "// arulint: allow(banned-call) wrong rule.\n"
                        "auto* p = new Foo();\n")
                .size(),
            1u);
  // Marker four lines above the flagged line: outside the window.
  EXPECT_EQ(CheckSource("src/a.cc",
                        "// arulint: allow(raw-new) too far away.\n"
                        "\n"
                        "\n"
                        "\n"
                        "auto* p = new Foo();\n")
                .size(),
            1u);
}

TEST(FormatTest, FindingRendersAsFileLineRuleMessage) {
  EXPECT_EQ(FormatFinding({"src/a.cc", 7, "raw-new", "msg"}),
            "src/a.cc:7: [raw-new] msg");
}

TEST(CheckFileTest, MissingFileIsAnIoErrorFinding) {
  const auto findings = CheckFile(Fixture("no_such_file.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
  EXPECT_EQ(findings[0].line, 0u);
}

// ---------------------------------------------------------------------
// SARIF output

TEST(SarifTest, ReportCarriesRulesResultsAndLocations) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, "raw-new", "msg \"quoted\""},
      {"src/b.cc", 7, "lock-order", "cycle"}};
  const std::string sarif = SarifReport(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"arulint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"raw-new\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"lock-order\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  // JSON string escaping of the embedded quotes.
  EXPECT_NE(sarif.find("msg \\\"quoted\\\""), std::string::npos);
}

TEST(SarifTest, EmptyFindingsIsStillAValidRun) {
  const std::string sarif = SarifReport({});
  EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
}

// ---------------------------------------------------------------------
// .arulintignore

TEST(IgnoreTest, ArulintignoreFiltersCollection) {
  const auto files = CollectFiles(Fixture("ignoretree"));
  ASSERT_EQ(files.size(), 1u);
  EXPECT_NE(files[0].find("keep.cc"), std::string::npos);
  // The ignored files carry seeded violations; the tree must be clean
  // because they are never collected.
  EXPECT_TRUE(CheckTree(Fixture("ignoretree")).empty());
}

// ---------------------------------------------------------------------
// Seeded-violation fixtures: golden (rule, line) expectations.

TEST(FixtureTest, UnpinnedOnDiskStructs) {
  const auto findings = CheckFile(Fixture("bad/lld/layout.h"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"on-disk-pin", 9},     // UnpinnedHeader: no pin at all
                {"on-disk-pin", 15}}))  // PinnedRecord: size pin only
      << "fixture bad/lld/layout.h drifted from the golden expectation";
}

TEST(FixtureTest, OnDiskFieldViolations) {
  const auto findings = CheckFile(Fixture("bad/fields/format.h"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"on-disk-field", 12},   // bool flag
                {"on-disk-field", 14},   // std::size_t bytes
                {"on-disk-field", 15},   // char* name
                {"on-disk-field", 22},   // 6 bytes of padding before value
                {"on-disk-field", 27}}));  // TailPadded tail padding
}

TEST(FixtureTest, StatusFlowViolations) {
  const auto findings = CheckFile(Fixture("bad/status_flow.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"status-flow", 17},     // unjustified (void)Flush()
                {"status-flow", 21},     // bare Flush() statement
                {"status-flow", 25}}));  // Status local never examined
}

TEST(FixtureTest, CrashOrderViolations) {
  const auto findings = CheckFile(Fixture("bad/crash_order.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"crash-order", 42},     // mutation before the append
                {"crash-order", 58}}));  // un-appended call to Promote
}

TEST(FixtureTest, CrashOrderAcrossAsyncHandOff) {
  // The write-behind seal moves the append obligation to the pipeline
  // enqueue site; the rule must keep firing when promotion runs ahead
  // of the hand-off or when the flusher body touches tables directly,
  // and must stay quiet for enqueue-then-promote.
  const auto findings = CheckFile(Fixture("bad/async_handoff.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"crash-order", 58},     // Promote before the enqueue
                {"crash-order", 68}}));  // table mutation in the flusher
}

TEST(FixtureTest, LockOrderCycle) {
  const auto findings = CheckFile(Fixture("bad/lock_cycle.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"lock-order", 27},     // Forward: a_ then b_
                {"lock-order", 32}}));  // Backward: b_ then a_
}

TEST(FixtureTest, ShardOrderViolations) {
  // Ascending() must stay quiet; the descending and runtime-indexed
  // nestings each fire once, on the inner acquisition.
  const auto findings = CheckFile(Fixture("bad/shard_order.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"shard-order", 44},     // descending literals
                {"shard-order", 51}}));  // runtime indices
}

TEST(FixtureTest, SharedUpgradeSelfDeadlock) {
  // Only the exclusive-under-shared site fires; the shared-after-shared
  // re-acquire in Nested() stays quiet.
  const auto findings = CheckFile(Fixture("bad/shared_upgrade.cc"));
  ASSERT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"lock-order", 34}}));  // WriterMutexLock under reader hold
  EXPECT_NE(findings.front().message.find("upgrade"), std::string::npos)
      << findings.front().message;
}

TEST(FixtureTest, AssertInRecoveryPath) {
  const auto findings = CheckFile(Fixture("bad/lld_recovery.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"recovery-assert", 10}}));
}

TEST(FixtureTest, BannedCallsAndRawNew) {
  const auto findings = CheckFile(Fixture("bad/banned.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"banned-call", 13},   // rand()
                {"banned-call", 17},   // time(nullptr)
                {"raw-new", 21}}));    // new Widget()
}

TEST(FixtureTest, UnnamedLocks) {
  const auto findings = CheckFile(Fixture("bad/unnamed_lock.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"named-lock", 23},     // Mutex mu_;
                {"named-lock", 24},     // SharedMutex rw_;
                {"named-lock", 25}}));  // Mutex flush_mu_{};
}

TEST(FixtureTest, CleanFileHasZeroFindings) {
  const auto findings = CheckFile(Fixture("clean/clean.cc"));
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings.front());
}

TEST(FixtureTest, BadTreeAggregatesEveryViolationClass) {
  const auto findings = CheckTree(Fixture("bad"));
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  std::sort(rules.begin(), rules.end());
  rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
  EXPECT_EQ(rules,
            (std::vector<std::string>{
                "atomic-order", "banned-call", "condvar-wait",
                "crash-order", "durable-ack", "field-symmetry",
                "lock-order", "named-lock", "on-disk-field",
                "on-disk-pin", "pin-protocol", "raw-new",
                "record-coverage", "recovery-assert", "shard-order",
                "status-flow", "thread-lifecycle"}));
}

// ---------------------------------------------------------------------
// v3 concurrency-protocol typestate families.

TEST(FixtureTest, AtomicOrder) {
  const auto findings = CheckFile(Fixture("bad/atomic_order.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"atomic-order", 19},     // relaxed store on publisher
                {"atomic-order", 24},     // relaxed load on publisher
                {"atomic-order", 37}}));  // unannotated atomic member
}

TEST(FixtureTest, PinLeak) {
  // CacheChecked (generation re-validated in the branch condition,
  // pin released on both paths) must stay quiet.
  const auto findings = CheckFile(Fixture("bad/pin_leak.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"pin-protocol", 34},     // early return leaks the pin
                {"pin-protocol", 45}}));  // cached without gen re-check
}

TEST(FixtureTest, CondvarWait) {
  // The bare single-shot wait draws both the no-predicate finding and
  // the mixed-mutex finding; the in-loop wait only the latter.
  const auto findings = CheckFile(Fixture("bad/condvar_wait.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"condvar-wait", 33},     // bare wait, no loop
                {"condvar-wait", 33},     // waited under 2 mutexes
                {"condvar-wait", 41},     // waited under 2 mutexes
                {"condvar-wait", 50}}));  // notify under unrelated mutex
}

TEST(FixtureTest, ThreadLifecycle) {
  // JoiningWorker (dtor reaches join through Stop) must stay quiet.
  const auto findings = CheckFile(Fixture("bad/thread_lifecycle.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"thread-lifecycle", 14},     // dtor never joins
                {"thread-lifecycle", 29}}));  // no dtor at all
}

// ---------------------------------------------------------------------
// v4 recovery-symmetry families.

TEST(FixtureTest, RecordCoverage) {
  // kAlpha has both arms and must stay quiet; the appender reaches the
  // encoder through a call, exercising the reachability walk.
  const auto findings = CheckFile(Fixture("bad/record_coverage.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"record-coverage", 12},     // kDelta: no decode arm
                {"record-coverage", 13}}));  // kGamma: neither arm
}

TEST(FixtureTest, CkptDeltaCoverage) {
  // The incremental-checkpoint shape of the same defect: a delta
  // vocabulary reached through an appender, with one decode arm
  // missing. kBlockSet round-trips and must stay quiet.
  const auto findings = CheckFile(Fixture("bad/ckpt_delta_coverage.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"record-coverage", 12}}));  // kListErase: no decode arm
}

TEST(FixtureTest, FieldSymmetry) {
  // stamp and root flow through both halves and must stay quiet.
  const auto findings = CheckFile(Fixture("bad/symmetry/checkpoint.h"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"field-symmetry", 19},     // crc written, never decoded
                {"field-symmetry", 20}}));  // epoch decoded, never written
}

TEST(FixtureTest, DurableAck) {
  // EndWithWait (gated WaitDurable before the ack) must stay quiet.
  const auto findings = CheckFile(Fixture("bad/durable_ack.cc"));
  EXPECT_EQ(RulesAndLines(findings),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"durable-ack", 45}}));  // ack never waits on the horizon
}

// ---------------------------------------------------------------------
// Incremental engine: model cache and baseline.

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ModelCacheTest, SerializedModelRoundTrips) {
  const std::string path = Fixture("bad/symmetry/checkpoint.h");
  const std::string content = ReadAll(path);
  ASSERT_FALSE(content.empty());
  const FileModel built = BuildFileModel(path, content);
  const std::string serialized = SerializeFileModel(built);
  FileModel loaded;
  ASSERT_TRUE(DeserializeFileModel(path, content, serialized, loaded));
  // The reloaded model re-serializes to the identical byte string and
  // re-splits the same raw/code lines from the content.
  EXPECT_EQ(SerializeFileModel(loaded), serialized);
  EXPECT_EQ(loaded.raw, built.raw);
  EXPECT_EQ(loaded.code, built.code);
}

TEST(ModelCacheTest, DeserializeRejectsCorruptEntries) {
  const std::string path = Fixture("bad/durable_ack.cc");
  const std::string content = ReadAll(path);
  const std::string serialized =
      SerializeFileModel(BuildFileModel(path, content));
  FileModel out;
  EXPECT_FALSE(DeserializeFileModel(path, content, "", out));
  EXPECT_FALSE(DeserializeFileModel(
      path, content, serialized.substr(0, serialized.size() / 2), out));
  EXPECT_FALSE(DeserializeFileModel(path, content, "garbage\n", out));
}

TEST(ModelCacheTest, ContentHashSeparatesContents) {
  EXPECT_EQ(ContentHash("int a;\n"), ContentHash("int a;\n"));
  EXPECT_NE(ContentHash("int a;\n"), ContentHash("int b;\n"));
}

TEST(ModelCacheTest, WarmRunHitsCacheWithIdenticalFindings) {
  const std::vector<std::string> paths = {
      Fixture("bad/record_coverage.cc"), Fixture("bad/symmetry/checkpoint.h"),
      Fixture("bad/durable_ack.cc")};
  CheckOptions options;
  options.cache_dir = ::testing::TempDir() + "/arulint_model_cache";
  std::filesystem::remove_all(options.cache_dir);
  EngineStats cold;
  const auto first = CheckFiles(paths, options, &cold);
  EXPECT_EQ(cold.files, paths.size());
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, paths.size());
  EngineStats warm;
  const auto second = CheckFiles(paths, options, &warm);
  EXPECT_EQ(warm.cache_hits, paths.size());
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(RulesAndLines(second), RulesAndLines(first));
  EXPECT_FALSE(second.empty());
}

TEST(BaselineTest, UpdateWritesAcceptedFindingsAndSuppressesThem) {
  const std::vector<std::string> paths = {Fixture("bad/durable_ack.cc")};
  CheckOptions options;
  options.baseline_path = ::testing::TempDir() + "/arulint_baseline.txt";
  options.update_baseline = true;
  EngineStats stats;
  const auto updated = CheckFiles(paths, options, &stats);
  EXPECT_TRUE(updated.empty());
  EXPECT_EQ(stats.baseline_suppressed, 1u);
  // The accepted finding stays suppressed on a plain re-run...
  options.update_baseline = false;
  const auto rerun = CheckFiles(paths, options, &stats);
  EXPECT_TRUE(rerun.empty());
  EXPECT_EQ(stats.baseline_suppressed, 1u);
  // ...but findings absent from the baseline still surface.
  const auto other =
      CheckFiles({Fixture("bad/record_coverage.cc")}, options, &stats);
  EXPECT_EQ(other.size(), 2u);
  EXPECT_EQ(stats.baseline_suppressed, 0u);
}

// ---------------------------------------------------------------------
// Anti-false-positive goldens: the real protocol code is the cleanest
// exemplar of each protocol, so rule tightening that starts flagging
// it is a regression in the rule, not the code.

std::string Src(const std::string& rel) {
  return std::string(ARU_SRC_DIR) + "/" + rel;
}

std::vector<Finding> FindingsForRule(const std::vector<std::string>& paths,
                                     const std::string& rule) {
  std::vector<Finding> out;
  for (Finding& f : CheckFiles(paths)) {
    if (f.rule == rule) out.push_back(std::move(f));
  }
  return out;
}

TEST(AntiFalsePositiveTest, AtomicOrderOnRealAtomics) {
  const auto findings = FindingsForRule(
      {Src("lld/slot_table.h"), Src("util/mutex.h")}, "atomic-order");
  for (const Finding& f : findings) ADD_FAILURE() << FormatFinding(f);
}

TEST(AntiFalsePositiveTest, PinProtocolOnRealReadPath) {
  const auto findings = FindingsForRule(
      {Src("lld/slot_table.h"), Src("lld/lld.h"), Src("lld/lld.cc"),
       Src("util/mutex.h")},
      "pin-protocol");
  for (const Finding& f : findings) ADD_FAILURE() << FormatFinding(f);
}

TEST(AntiFalsePositiveTest, CondvarWaitOnRealWaiters) {
  const auto findings = FindingsForRule(
      {Src("lld/segment_pipeline.h"), Src("lld/segment_pipeline.cc"),
       Src("txn/lock_manager.h"), Src("txn/lock_manager.cc"),
       Src("obs/sampler.h"), Src("obs/sampler.cc"), Src("util/mutex.h")},
      "condvar-wait");
  for (const Finding& f : findings) ADD_FAILURE() << FormatFinding(f);
}

TEST(AntiFalsePositiveTest, ThreadLifecycleOnRealOwners) {
  const auto findings = FindingsForRule(
      {Src("obs/sampler.h"), Src("obs/sampler.cc"),
       Src("lld/segment_pipeline.h"), Src("lld/segment_pipeline.cc")},
      "thread-lifecycle");
  for (const Finding& f : findings) ADD_FAILURE() << FormatFinding(f);
}

TEST(AntiFalsePositiveTest, RecoverySymmetryOnRealCodecs) {
  // The real record codecs, checkpoint codec, appender, commit path and
  // recovery replay, linted as one project: the three v4 families must
  // stay silent on the code they were modeled on.
  const std::vector<std::string> project = {
      Src("lld/types.h"),          Src("lld/summary.h"),
      Src("lld/summary.cc"),       Src("lld/layout.h"),
      Src("lld/layout.cc"),        Src("lld/checkpoint.h"),
      Src("lld/checkpoint.cc"),    Src("lld/segment_writer.h"),
      Src("lld/segment_writer.cc"), Src("lld/lld.h"),
      Src("lld/lld.cc"),           Src("lld/lld_recovery.cc")};
  for (const std::string rule :
       {"record-coverage", "field-symmetry", "durable-ack"}) {
    for (const Finding& f : FindingsForRule(project, rule)) {
      ADD_FAILURE() << FormatFinding(f);
    }
  }
}

// ---------------------------------------------------------------------
// The repository lints itself.

TEST(RepoTest, SrcTreeIsClean) {
  const auto findings = CheckTree(ARU_SRC_DIR);
  for (const Finding& f : findings) ADD_FAILURE() << FormatFinding(f);
}

TEST(RepoTest, ToolsTreeIsClean) {
  const auto findings = CheckTree(ARU_TOOLS_DIR);
  for (const Finding& f : findings) ADD_FAILURE() << FormatFinding(f);
}

}  // namespace
}  // namespace aru::arulint
