// Segment-cleaner tests: space reclamation under log churn, state
// preservation, interaction with checkpoints and crash recovery, and
// out-of-space behaviour.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

// A deliberately tight disk: 4 MB device, 128 KB segments (~28 usable
// slots), so overwrites quickly exhaust free slots.
lld::Options TightOptions() {
  lld::Options options;
  options.block_size = 4096;
  options.segment_size = 128 * 1024;
  options.cleaner_reserve_slots = 3;
  return options;
}

TEST(CleanerTest, OverwriteChurnTriggersCleaningAndPreservesData) {
  TestDisk t(TightOptions(), /*sectors=*/4 * 1024 * 1024 / 512);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));

  // 100 live blocks ≈ 400 KB on a ~3.5 MB data area.
  std::vector<BlockId> blocks;
  BlockId pred = kListHead;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    blocks.push_back(pred);
  }

  // Overwrite them many times over: ~8 MB of writes > the disk size,
  // so the cleaner must reclaim dead versions.
  std::uint64_t version = 0;
  std::vector<std::uint64_t> current(blocks.size());
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      ++version;
      current[i] = version;
      ASSERT_OK(t.disk->Write(blocks[i],
                              TestPattern(t.disk->block_size(), version),
                              kNoAru));
    }
  }
  EXPECT_GT(t.disk->stats().cleaner_passes, 0u);
  EXPECT_GT(t.disk->stats().segments_cleaned, 0u);

  // Every block must still hold its newest version.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    Bytes out(t.disk->block_size());
    ASSERT_OK(t.disk->Read(blocks[i], out, kNoAru));
    EXPECT_EQ(out, TestPattern(t.disk->block_size(), current[i]))
        << "block index " << i;
  }
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(CleanerTest, CleanedStateSurvivesCrash) {
  TestDisk t(TightOptions(), /*sectors=*/4 * 1024 * 1024 / 512);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  std::vector<BlockId> blocks;
  BlockId pred = kListHead;
  for (int i = 0; i < 80; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    blocks.push_back(pred);
  }
  for (int round = 0; round < 15; ++round) {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      ASSERT_OK(t.disk->Write(
          blocks[i],
          TestPattern(t.disk->block_size(),
                      static_cast<std::uint64_t>(round) * 1000 + i),
          kNoAru));
    }
  }
  ASSERT_OK(t.disk->Flush());
  EXPECT_GT(t.disk->stats().cleaner_passes, 0u);

  t.CrashAndRecover();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    Bytes out(t.disk->block_size());
    ASSERT_OK(t.disk->Read(blocks[i], out, kNoAru));
    EXPECT_EQ(out, TestPattern(t.disk->block_size(), 14000 + i));
  }
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(CleanerTest, ExplicitCleanIsSafeOnQuietDisk) {
  TestDisk t;
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK(t.disk->Write(block, TestPattern(t.disk->block_size(), 1),
                          kNoAru));
  ASSERT_OK(t.disk->Flush());
  ASSERT_OK(t.disk->Clean());
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(t.disk->block_size(), 1));
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(CleanerTest, CleanerSkipsShadowReferencedSegments) {
  // An open ARU holds shadow versions whose data lives in flushed
  // segments; cleaning must not invalidate them.
  TestDisk t(TightOptions(), /*sectors=*/4 * 1024 * 1024 / 512);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));

  ASSERT_OK_AND_ASSIGN(const AruId aru, t.disk->BeginARU());
  ASSERT_OK(t.disk->Write(block, TestPattern(t.disk->block_size(), 42), aru));
  ASSERT_OK(t.disk->Flush());  // the shadow data is now on disk

  // Churn outside the ARU until the cleaner runs.
  ASSERT_OK_AND_ASSIGN(const ListId churn, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId churn_block,
                       t.disk->NewBlock(churn, kListHead, kNoAru));
  for (std::uint64_t i = 0; i < 1500; ++i) {
    ASSERT_OK(t.disk->Write(churn_block,
                            TestPattern(t.disk->block_size(), i), kNoAru));
  }
  EXPECT_GT(t.disk->stats().cleaner_passes, 0u);

  // The shadow version must still read back intact inside the ARU.
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, aru));
  EXPECT_EQ(out, TestPattern(t.disk->block_size(), 42));
  ASSERT_OK(t.disk->EndARU(aru));
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(t.disk->block_size(), 42));
  ASSERT_OK(t.disk->CheckConsistency());
}

TEST(CleanerTest, TrulyFullDiskReportsOutOfSpace) {
  lld::Options options = TightOptions();
  TestDisk t(options, /*sectors=*/4 * 1024 * 1024 / 512);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));

  // Fill with LIVE data until the disk gives up.
  Status status;
  BlockId pred = kListHead;
  std::uint64_t written = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    auto block = t.disk->NewBlock(list, pred, kNoAru);
    if (!block.ok()) {
      status = block.status();
      break;
    }
    pred = *block;
    const Status write = t.disk->Write(
        pred, TestPattern(t.disk->block_size(), i), kNoAru);
    if (!write.ok()) {
      status = write;
      break;
    }
    ++written;
  }
  EXPECT_EQ(status.code(), StatusCode::kOutOfSpace);
  EXPECT_GT(written, 100u);  // most of the disk was usable

  // The disk must still be readable and consistent after ENOSPC.
  ASSERT_OK(t.disk->CheckConsistency());
  Bytes out(t.disk->block_size());
  ASSERT_OK_AND_ASSIGN(const auto blocks, t.disk->ListBlocks(list, kNoAru));
  ASSERT_OK(t.disk->Read(blocks.front(), out, kNoAru));
}

TEST(CleanerTest, GreedyPolicyAlsoCorrect) {
  lld::Options options = TightOptions();
  options.cleaner_policy = lld::CleanerPolicy::kGreedy;
  TestDisk t(options, /*sectors=*/4 * 1024 * 1024 / 512);
  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t.disk->NewBlock(list, kListHead, kNoAru));
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ASSERT_OK(t.disk->Write(block, TestPattern(t.disk->block_size(), i),
                            kNoAru));
  }
  EXPECT_GT(t.disk->stats().cleaner_passes, 0u);
  Bytes out(t.disk->block_size());
  ASSERT_OK(t.disk->Read(block, out, kNoAru));
  EXPECT_EQ(out, TestPattern(t.disk->block_size(), 1999));
  ASSERT_OK(t.disk->CheckConsistency());
}

}  // namespace
}  // namespace aru::testing
