// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "blockdev/mem_disk.h"
#include "lld/lld.h"
#include "util/rng.h"

namespace aru::testing {

#define ASSERT_OK(expr)                                     \
  do {                                                      \
    const ::aru::Status aru_test_status_ = (expr);          \
    ASSERT_TRUE(aru_test_status_.ok())                      \
        << "status: " << aru_test_status_.ToString();       \
  } while (false)

#define EXPECT_OK(expr)                                     \
  do {                                                      \
    const ::aru::Status aru_test_status_ = (expr);          \
    EXPECT_TRUE(aru_test_status_.ok())                      \
        << "status: " << aru_test_status_.ToString();       \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                       \
  ASSERT_OK_AND_ASSIGN_IMPL(ARU_CONCAT(aru_test_result_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)             \
  auto tmp = (expr);                                          \
  ASSERT_TRUE(tmp.ok()) << "status: " << tmp.status().ToString(); \
  lhs = std::move(tmp).value()

// A small formatted LLD on a RAM disk: ~16 MB by default, 4 KB blocks,
// 128 KB segments (small, to exercise sealing and cleaning quickly).
struct TestDisk {
  static constexpr std::uint64_t kDefaultSectors = 32768;  // 16 MB @ 512B

  explicit TestDisk(lld::Options opts = SmallOptions(),
                    std::uint64_t sectors = kDefaultSectors) {
    options = opts;
    device = std::make_unique<MemDisk>(sectors);
    auto format = lld::Lld::Format(*device, options);
    EXPECT_TRUE(format.ok()) << format.ToString();
    auto opened = lld::Lld::Open(*device, options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    disk = std::move(opened).value();
  }

  static lld::Options SmallOptions() {
    lld::Options opts;
    opts.block_size = 4096;
    opts.segment_size = 128 * 1024;
    opts.paranoid_checks = true;
    return opts;
  }

  // Simulates a power failure: drops all volatile state and re-opens
  // the disk from the current device image, running recovery.
  void CrashAndRecover() {
    Bytes image = device->CopyImage();
    disk.reset();
    device = MemDisk::FromImage(std::move(image));
    auto opened = lld::Lld::Open(*device, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    disk = std::move(opened).value();
  }

  lld::Options options;
  std::unique_ptr<MemDisk> device;
  std::unique_ptr<lld::Lld> disk;
};

// Deterministic block-sized payload derived from a seed.
inline Bytes TestPattern(std::uint32_t block_size, std::uint64_t seed) {
  Bytes data(block_size);
  Rng rng(seed);
  for (auto& b : data) b = static_cast<std::byte>(rng.Next() & 0xff);
  return data;
}

}  // namespace aru::testing
