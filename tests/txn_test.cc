// Transaction layer: isolation via strict 2PL + wait-die on top of ARU
// atomicity — the "transaction systems as direct disk clients" story
// from paper §3.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "tests/test_util.h"
#include "txn/txn.h"

namespace aru::testing {
namespace {

using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;
using txn::Durability;
using txn::LockManager;
using txn::LockMode;
using txn::ResourceId;
using txn::Transaction;
using txn::TransactionManager;

// --- LockManager unit tests ---

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager locks;
  const ResourceId r = ResourceId::Block(BlockId{1});
  ASSERT_OK(locks.Acquire(1, r, LockMode::kShared));
  ASSERT_OK(locks.Acquire(2, r, LockMode::kShared));
  EXPECT_EQ(locks.LockedResources(), 1u);
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
  EXPECT_EQ(locks.LockedResources(), 0u);
}

TEST(LockManagerTest, YoungerDiesOnConflictWithOlder) {
  LockManager locks;
  const ResourceId r = ResourceId::Block(BlockId{1});
  ASSERT_OK(locks.Acquire(1, r, LockMode::kExclusive));  // older holds X
  // Younger (id 2) requesting a conflicting lock dies immediately.
  EXPECT_EQ(locks.Acquire(2, r, LockMode::kShared).code(),
            StatusCode::kFailedPrecondition);
  locks.ReleaseAll(1);
  ASSERT_OK(locks.Acquire(2, r, LockMode::kShared));
  locks.ReleaseAll(2);
}

TEST(LockManagerTest, OlderWaitsForYounger) {
  LockManager locks;
  const ResourceId r = ResourceId::Block(BlockId{1});
  ASSERT_OK(locks.Acquire(5, r, LockMode::kExclusive));  // younger holds

  std::atomic<bool> acquired{false};
  std::thread older([&] {
    // Older (id 3) waits instead of dying.
    EXPECT_OK(locks.Acquire(3, r, LockMode::kExclusive));
    acquired = true;
  });
  // Give the older transaction a moment to block, then release.
  for (int i = 0; i < 100 && !acquired; ++i) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(acquired.load());
  locks.ReleaseAll(5);
  older.join();
  EXPECT_TRUE(acquired.load());
  locks.ReleaseAll(3);
}

TEST(LockManagerTest, ReacquireAndUpgrade) {
  LockManager locks;
  const ResourceId r = ResourceId::List(ListId{9});
  ASSERT_OK(locks.Acquire(1, r, LockMode::kShared));
  ASSERT_OK(locks.Acquire(1, r, LockMode::kShared));     // re-entrant
  ASSERT_OK(locks.Acquire(1, r, LockMode::kExclusive));  // upgrade
  ASSERT_OK(locks.Acquire(1, r, LockMode::kShared));     // still exclusive
  locks.ReleaseAll(1);
}

// --- Transaction tests ---

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : manager_(*t_.disk) {
    // A list of 4 "account" blocks, each holding a u64 balance.
    auto list = t_.disk->NewList();
    EXPECT_OK(list.status());
    list_ = *list;
    BlockId pred = kListHead;
    for (int i = 0; i < 4; ++i) {
      auto block = t_.disk->NewBlock(list_, pred);
      EXPECT_OK(block.status());
      pred = *block;
      accounts_.push_back(pred);
      EXPECT_OK(WriteBalance(pred, 100));
    }
    EXPECT_OK(t_.disk->Flush());
  }

  Status WriteBalance(BlockId block, std::uint64_t value) {
    Bytes data(t_.disk->block_size());
    Bytes encoded;
    PutU64(encoded, value);
    std::copy(encoded.begin(), encoded.end(), data.begin());
    return t_.disk->Write(block, data);
  }

  std::uint64_t ReadBalance(BlockId block) {
    Bytes data(t_.disk->block_size());
    EXPECT_OK(t_.disk->Read(block, data));
    return GetU64(data);
  }

  static std::uint64_t BalanceOf(const Bytes& block) { return GetU64(block); }

  Status Transfer(Transaction& txn, BlockId from, BlockId to,
                  std::uint64_t amount) {
    Bytes data(t_.disk->block_size());
    ARU_RETURN_IF_ERROR(txn.Read(from, data));
    const std::uint64_t from_balance = GetU64(data);
    if (from_balance < amount) {
      return FailedPreconditionError("insufficient funds");
    }
    Bytes encoded;
    PutU64(encoded, from_balance - amount);
    std::copy(encoded.begin(), encoded.end(), data.begin());
    ARU_RETURN_IF_ERROR(txn.Write(from, data));

    ARU_RETURN_IF_ERROR(txn.Read(to, data));
    const std::uint64_t to_balance = GetU64(data);
    encoded.clear();
    PutU64(encoded, to_balance + amount);
    std::copy(encoded.begin(), encoded.end(), data.begin());
    return txn.Write(to, data);
  }

  TestDisk t_;
  TransactionManager manager_;
  ListId list_;
  std::vector<BlockId> accounts_;
};

TEST_F(TxnTest, CommitPublishesAtomically) {
  ASSERT_OK_AND_ASSIGN(auto txn, manager_.Begin());
  ASSERT_OK(Transfer(*txn, accounts_[0], accounts_[1], 30));
  // Uncommitted: outside view unchanged.
  EXPECT_EQ(ReadBalance(accounts_[0]), 100u);
  ASSERT_OK(txn->Commit());
  EXPECT_EQ(ReadBalance(accounts_[0]), 70u);
  EXPECT_EQ(ReadBalance(accounts_[1]), 130u);
}

TEST_F(TxnTest, AbortDiscardsEverything) {
  ASSERT_OK_AND_ASSIGN(auto txn, manager_.Begin());
  ASSERT_OK(Transfer(*txn, accounts_[0], accounts_[1], 30));
  ASSERT_OK(txn->Abort());
  EXPECT_EQ(ReadBalance(accounts_[0]), 100u);
  EXPECT_EQ(ReadBalance(accounts_[1]), 100u);
  EXPECT_EQ(manager_.locks().LockedResources(), 0u);
}

TEST_F(TxnTest, DestructionAborts) {
  {
    ASSERT_OK_AND_ASSIGN(auto txn, manager_.Begin());
    ASSERT_OK(Transfer(*txn, accounts_[0], accounts_[1], 30));
  }
  EXPECT_EQ(ReadBalance(accounts_[0]), 100u);
  EXPECT_EQ(manager_.locks().LockedResources(), 0u);
}

TEST_F(TxnTest, CommitAfterFailedOpRefused) {
  ASSERT_OK_AND_ASSIGN(auto txn, manager_.Begin());
  Bytes data(t_.disk->block_size());
  EXPECT_FALSE(txn->Read(BlockId{99999}, data).ok());
  EXPECT_EQ(txn->Commit().code(), StatusCode::kFailedPrecondition);
  ASSERT_OK(txn->Abort());
}

TEST_F(TxnTest, WaitDieConflictSurfacesAsRetryable) {
  ASSERT_OK_AND_ASSIGN(auto older, manager_.Begin());
  ASSERT_OK_AND_ASSIGN(auto younger, manager_.Begin());
  Bytes data(t_.disk->block_size());
  ASSERT_OK(older->Read(accounts_[0], data));
  // The younger transaction's exclusive request dies.
  EXPECT_EQ(younger->Write(accounts_[0], data).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_OK(younger->Abort());
  ASSERT_OK(older->Commit());
}

TEST_F(TxnTest, DurableCommitSurvivesCrash) {
  ASSERT_OK(manager_.RunTransaction(
      [&](Transaction& txn) {
        return Transfer(txn, accounts_[0], accounts_[1], 25);
      },
      Durability::kFlush));
  t_.CrashAndRecover();
  EXPECT_EQ(ReadBalance(accounts_[0]), 75u);
  EXPECT_EQ(ReadBalance(accounts_[1]), 125u);
}

TEST_F(TxnTest, NonDurableCommitMayVanishButNeverTears) {
  ASSERT_OK(manager_.RunTransaction([&](Transaction& txn) {
    return Transfer(txn, accounts_[0], accounts_[1], 25);
  }));
  t_.CrashAndRecover();
  const std::uint64_t a = ReadBalance(accounts_[0]);
  const std::uint64_t b = ReadBalance(accounts_[1]);
  EXPECT_EQ(a + b, 200u);                    // never half a transfer
  EXPECT_TRUE(a == 100 || a == 75) << a;     // all or nothing
}

TEST_F(TxnTest, StructuralOpsInTransactions) {
  ASSERT_OK(manager_.RunTransaction([&](Transaction& txn) {
    auto list = txn.NewList();
    ARU_RETURN_IF_ERROR(list.status());
    auto block = txn.NewBlock(*list, kListHead);
    ARU_RETURN_IF_ERROR(block.status());
    Bytes data(t_.disk->block_size(), std::byte{5});
    return txn.Write(*block, data);
  }));
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(TxnTest, ConcurrentTransfersConserveMoney) {
  constexpr int kThreads = 6;
  constexpr int kTransfersPerThread = 40;
  std::atomic<int> hard_failures{0};

  auto worker = [&](int id) {
    Rng rng(static_cast<std::uint64_t>(id) + 11);
    for (int i = 0; i < kTransfersPerThread; ++i) {
      const BlockId from = accounts_[rng.Below(accounts_.size())];
      const BlockId to = accounts_[rng.Below(accounts_.size())];
      if (from == to) continue;
      const Status status = manager_.RunTransaction(
          [&](Transaction& txn) {
            return Transfer(txn, from, to, rng.Range(1, 10));
          },
          Durability::kNone, /*max_attempts=*/64);
      // "insufficient funds" is a legitimate business outcome; lock
      // exhaustion after 64 attempts would be a real failure.
      if (!status.ok() && status.message() != "insufficient funds" &&
          status.code() != StatusCode::kFailedPrecondition) {
        ++hard_failures;
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) threads.emplace_back(worker, i);
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(hard_failures.load(), 0);

  std::uint64_t total = 0;
  for (const BlockId account : accounts_) total += ReadBalance(account);
  EXPECT_EQ(total, 400u);  // 4 accounts x 100, conserved exactly
  EXPECT_EQ(manager_.locks().LockedResources(), 0u);
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(TxnTest, OppositeOrderLockingResolvesViaWaitDie) {
  // Two threads repeatedly locking (a,b) and (b,a): classic deadlock
  // shape; wait-die must always resolve it.
  std::atomic<int> committed{0};
  std::atomic<int> hard_failures{0};
  auto worker = [&](bool forward) {
    for (int i = 0; i < 50; ++i) {
      const Status status = manager_.RunTransaction(
          [&](Transaction& txn) {
            const BlockId first = forward ? accounts_[0] : accounts_[1];
            const BlockId second = forward ? accounts_[1] : accounts_[0];
            Bytes data(t_.disk->block_size());
            ARU_RETURN_IF_ERROR(txn.Read(first, data));
            ARU_RETURN_IF_ERROR(txn.Write(first, data));
            ARU_RETURN_IF_ERROR(txn.Read(second, data));
            return txn.Write(second, data);
          },
          Durability::kNone, /*max_attempts=*/128);
      if (status.ok()) {
        ++committed;
      } else {
        ++hard_failures;
      }
    }
  };
  std::thread a(worker, true), b(worker, false);
  a.join();
  b.join();
  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_EQ(committed.load(), 100);
}

}  // namespace
}  // namespace aru::testing
