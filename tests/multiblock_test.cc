// Multi-block reads: correctness (ordering, zero-fill, shadow
// visibility, cache interplay) and coalescing behaviour.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

class MultiBlockTest : public ::testing::Test {
 protected:
  MultiBlockTest() : t_() {}

  // A list of n written blocks; returns them in list order.
  std::vector<BlockId> MakeFile(std::uint64_t n, std::uint64_t seed_base) {
    std::vector<BlockId> blocks;
    auto list = t_.disk->NewList();
    EXPECT_OK(list.status());
    BlockId pred = kListHead;
    for (std::uint64_t i = 0; i < n; ++i) {
      auto block = t_.disk->NewBlock(*list, pred);
      EXPECT_OK(block.status());
      pred = *block;
      EXPECT_OK(t_.disk->Write(pred, TestPattern(4096, seed_base + i)));
      blocks.push_back(pred);
    }
    return blocks;
  }

  TestDisk t_;
};

TEST_F(MultiBlockTest, ReadsInOrder) {
  const auto blocks = MakeFile(10, 100);
  ASSERT_OK(t_.disk->Flush());
  Bytes out(10 * 4096);
  ASSERT_OK(t_.disk->ReadMany(blocks, out));
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(Bytes(out.begin() + static_cast<std::ptrdiff_t>(i * 4096),
                    out.begin() + static_cast<std::ptrdiff_t>((i + 1) * 4096)),
              TestPattern(4096, 100 + i))
        << "block " << i;
  }
}

TEST_F(MultiBlockTest, SequentialFileCoalescesIntoFewDeviceReads) {
  const auto blocks = MakeFile(20, 200);
  ASSERT_OK(t_.disk->Flush());
  const std::uint64_t reads_before = t_.device->stats().read_ops;
  Bytes out(20 * 4096);
  ASSERT_OK(t_.disk->ReadMany(blocks, out));
  const std::uint64_t device_reads =
      t_.device->stats().read_ops - reads_before;
  // 20 sequentially written 4 KB blocks in 128 KB segments: at most
  // one read per touched segment (128 KB holds ~31 blocks).
  EXPECT_LE(device_reads, 3u);
  EXPECT_GE(device_reads, 1u);
}

TEST_F(MultiBlockTest, ScatteredBlocksStillCorrect) {
  auto blocks = MakeFile(16, 300);
  ASSERT_OK(t_.disk->Flush());
  // Rewrite every other block so physical placement interleaves old
  // and new segments.
  for (std::size_t i = 0; i < blocks.size(); i += 2) {
    ASSERT_OK(t_.disk->Write(blocks[i], TestPattern(4096, 900 + i)));
  }
  ASSERT_OK(t_.disk->Flush());
  Bytes out(blocks.size() * 4096);
  ASSERT_OK(t_.disk->ReadMany(blocks, out));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const std::uint64_t want = (i % 2 == 0) ? 900 + i : 300 + i;
    EXPECT_EQ(Bytes(out.begin() + static_cast<std::ptrdiff_t>(i * 4096),
                    out.begin() + static_cast<std::ptrdiff_t>((i + 1) * 4096)),
              TestPattern(4096, want))
        << "block " << i;
  }
}

TEST_F(MultiBlockTest, UnwrittenBlocksZeroFill) {
  auto list = t_.disk->NewList();
  ASSERT_OK(list.status());
  ASSERT_OK_AND_ASSIGN(const BlockId a, t_.disk->NewBlock(*list, kListHead));
  ASSERT_OK_AND_ASSIGN(const BlockId b, t_.disk->NewBlock(*list, a));
  ASSERT_OK(t_.disk->Write(a, TestPattern(4096, 1)));
  ASSERT_OK(t_.disk->Flush());
  const std::vector<BlockId> both = {a, b};
  Bytes out(2 * 4096);
  ASSERT_OK(t_.disk->ReadMany(both, out));
  EXPECT_EQ(Bytes(out.begin(), out.begin() + 4096), TestPattern(4096, 1));
  EXPECT_EQ(Bytes(out.begin() + 4096, out.end()), Bytes(4096));
}

TEST_F(MultiBlockTest, SeesOwnShadowVersions) {
  const auto blocks = MakeFile(3, 400);
  ASSERT_OK(t_.disk->Flush());
  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->Write(blocks[1], TestPattern(4096, 999), aru));

  Bytes inside(3 * 4096), outside(3 * 4096);
  ASSERT_OK(t_.disk->ReadMany(blocks, inside, aru));
  ASSERT_OK(t_.disk->ReadMany(blocks, outside, kNoAru));
  EXPECT_EQ(Bytes(inside.begin() + 4096, inside.begin() + 8192),
            TestPattern(4096, 999));
  EXPECT_EQ(Bytes(outside.begin() + 4096, outside.begin() + 8192),
            TestPattern(4096, 401));
  ASSERT_OK(t_.disk->EndARU(aru));
}

TEST_F(MultiBlockTest, ServesFromOpenSegment) {
  const auto blocks = MakeFile(5, 500);  // no flush: still buffered
  Bytes out(5 * 4096);
  ASSERT_OK(t_.disk->ReadMany(blocks, out));
  EXPECT_EQ(Bytes(out.begin(), out.begin() + 4096), TestPattern(4096, 500));
  EXPECT_GT(t_.disk->stats().reads_from_open_segment, 0u);
}

TEST_F(MultiBlockTest, WrongBufferSizeRejected) {
  const auto blocks = MakeFile(2, 600);
  Bytes out(4096);
  EXPECT_EQ(t_.disk->ReadMany(blocks, out).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MultiBlockTest, UnknownBlockFails) {
  const std::vector<BlockId> bogus = {BlockId{424242}};
  Bytes out(4096);
  EXPECT_EQ(t_.disk->ReadMany(bogus, out).code(), StatusCode::kNotFound);
}

TEST_F(MultiBlockTest, EmptySpanIsNoop) {
  Bytes out;
  ASSERT_OK(t_.disk->ReadMany({}, out));
}

TEST_F(MultiBlockTest, MatchesPerBlockReads) {
  auto blocks = MakeFile(40, 700);
  ASSERT_OK(t_.disk->Flush());
  // Shuffle so runs break unpredictably.
  Rng rng(9);
  for (std::size_t i = blocks.size() - 1; i > 0; --i) {
    std::swap(blocks[i], blocks[rng.Below(i + 1)]);
  }
  Bytes many(blocks.size() * 4096);
  ASSERT_OK(t_.disk->ReadMany(blocks, many));
  Bytes one(4096);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    ASSERT_OK(t_.disk->Read(blocks[i], one));
    EXPECT_EQ(Bytes(many.begin() + static_cast<std::ptrdiff_t>(i * 4096),
                    many.begin() + static_cast<std::ptrdiff_t>((i + 1) * 4096)),
              one)
        << "block " << i;
  }
}

}  // namespace
}  // namespace aru::testing
