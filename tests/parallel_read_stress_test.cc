// Multi-threaded stress for the shared-mode read path: reader threads
// resolve under a shared lock, pin the slot, and read the device with
// no LLD lock held, racing overwriting writers, the cleaner, and the
// write-behind flusher. TSan runs this suite in CI, so the pin/
// generation protocol, the sharded read cache, and the out-of-lock
// device reads are race-checked, not just correctness-checked.
//
// Content stability trick: every overwrite of block i rewrites the
// SAME TestPattern(i) payload, so a reader may race any number of
// relocations (overwrite or cleaner copy) and still knows exactly what
// bytes a successful Read must return.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_support/latency_disk.h"
#include "blockdev/mem_disk.h"
#include "lld/lld.h"
#include "obs/sampler.h"
#include "tests/obs_expect.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

// Deterministic per-thread picker (tests must not use rand()).
struct Lcg {
  std::uint64_t state;
  std::uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

TEST(ParallelReadStressTest, ReadersRaceOverwritesAndCleaner) {
  lld::Options opts = TestDisk::SmallOptions();
  opts.paranoid_checks = false;     // checked explicitly at the end
  opts.read_cache_blocks = 32;      // small: hits AND misses race
  opts.read_cache_shards = 4;
  // Fast sampler so TSan races the metrics scrape against every thread.
  opts.sampler_period_ms = 1;
  TestDisk t(opts);

  constexpr std::uint64_t kBlocks = 48;
  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 4000;

  ASSERT_OK_AND_ASSIGN(const ListId list, t.disk->NewList(kNoAru));
  std::vector<BlockId> blocks;
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < kBlocks; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, t.disk->NewBlock(list, pred, kNoAru));
    ASSERT_OK(t.disk->Write(pred, TestPattern(4096, i), kNoAru));
    blocks.push_back(pred);
  }
  // Land the working set on the device so readers start on the full
  // pin-and-read path rather than the open-segment fast path.
  ASSERT_OK(t.disk->Flush());
  ASSERT_OK(t.disk->Checkpoint());

  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<Status> failures;

  // Writer: relocate blocks continuously (same content, new PhysAddr)
  // so the log churns and the cleaner has garbage to reclaim.
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t b = i++ % kBlocks;
      const Status status =
          t.disk->Write(blocks[b], TestPattern(4096, b), kNoAru);
      if (!status.ok() && status.code() != StatusCode::kOutOfSpace) {
        const std::lock_guard<std::mutex> lock(mu);
        failures.push_back(status);
        return;
      }
      std::this_thread::yield();
    }
  });

  // Admin: flush / checkpoint / clean barriers racing the readers.
  std::thread admin([&] {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status status;
      switch (round++ % 3) {
        case 0: status = t.disk->Flush(); break;
        case 1: status = t.disk->Checkpoint(); break;
        default: status = t.disk->Clean(); break;
      }
      // Clean legitimately reports OutOfSpace with nothing to reclaim.
      if (!status.ok() && status.code() != StatusCode::kOutOfSpace) {
        const std::lock_guard<std::mutex> lock(mu);
        failures.push_back(status);
        return;
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Bytes out(4096);
      Lcg rng{static_cast<std::uint64_t>(r) * 977 + 13};
      for (int i = 0; i < kReadsPerReader; ++i) {
        const std::uint64_t b = rng.Next() % kBlocks;
        const Status status = t.disk->Read(blocks[b], out, kNoAru);
        if (!status.ok()) {
          const std::lock_guard<std::mutex> lock(mu);
          failures.push_back(status);
          return;
        }
        if (out != TestPattern(4096, b)) {
          const std::lock_guard<std::mutex> lock(mu);
          failures.push_back(
              CorruptionError("reader observed torn or stale block " +
                            std::to_string(b)));
          return;
        }
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  admin.join();

  for (const Status& failure : failures) {
    ADD_FAILURE() << "thread failure: " << failure.ToString();
  }
  const lld::LldStats stats = t.disk->stats();
  EXPECT_GT(stats.cleaner_passes, 0u);
  // The sharded cache saw traffic from every reader.
  const lld::BlockCacheStats cache = t.disk->read_cache_stats();
  EXPECT_EQ(cache.shard_count, 4u);
  EXPECT_GT(cache.hits + cache.misses, 0u);

  // The obs layer attributed the run: read counters moved, read latency
  // was timed, and every contended wait on the LLD's named locks kept
  // its counter/histogram pair in lock-step — in shared mode (readers)
  // as well as exclusive (writer/admin) and on the cache shards.
  const obs::Registry& registry = t.disk->registry();
  obs_expect::ExpectCounterAtLeast(
      registry, "aru_lld_blocks_read_total",
      static_cast<std::uint64_t>(kReaders) * kReadsPerReader);
  obs_expect::ExpectHistogramSamples(
      registry, "aru_lld_op_read_us",
      static_cast<std::uint64_t>(kReaders) * kReadsPerReader);
  obs_expect::ExpectLockSiteConsistent(registry, "lld_mu", "shared");
  obs_expect::ExpectLockSiteConsistent(registry, "lld_mu", "exclusive");
  obs_expect::ExpectLockSiteConsistent(registry, "lld_cache_shard",
                                       "exclusive");
  ASSERT_NE(t.disk->sampler(), nullptr);
  EXPECT_GE(t.disk->sampler()->size(), 1u);

  ASSERT_OK(t.disk->CheckConsistency());
  ASSERT_OK(t.disk->Close());
}

TEST(ParallelReadStressTest, ConcurrentReadsOfInflightSegments) {
  // Write-behind pipeline + slow device writes: sealed segments linger
  // in flight, and concurrent readers must be served from the buffered
  // copy (under the shared lock) while the flusher races the device.
  lld::Options opts = TestDisk::SmallOptions();
  opts.paranoid_checks = false;
  opts.write_behind_segments = 4;
  opts.read_cache_blocks = 0;  // no cache: buffered serving or device

  auto latency = std::make_unique<bench::LatencyDisk>(
      std::make_unique<MemDisk>(TestDisk::kDefaultSectors));
  bench::LatencyDisk& device = *latency;
  ASSERT_OK(lld::Lld::Format(device, opts));
  ASSERT_OK_AND_ASSIGN(const std::unique_ptr<lld::Lld> disk,
                       lld::Lld::Open(device, opts));
  device.set_write_latency_us(3000);

  const obs::Counter* inflight_reads = disk->registry().FindCounter(
      "aru_lld_reads_from_inflight_segment_total");
  ASSERT_NE(inflight_reads, nullptr);

  ASSERT_OK_AND_ASSIGN(const ListId list, disk->NewList(kNoAru));
  constexpr std::uint64_t kBlocks = 96;  // ~3 segments at 128 KB / 4 KB
  std::vector<BlockId> blocks;
  BlockId pred = kListHead;
  for (std::uint64_t i = 0; i < kBlocks; ++i) {
    ASSERT_OK_AND_ASSIGN(pred, disk->NewBlock(list, pred, kNoAru));
    blocks.push_back(pred);
  }

  // Rounds of burst-write + concurrent read-back: each round seals a
  // few segments (3 ms of device time apiece), and four readers sweep
  // the freshly written blocks while those seals are still queued. The
  // main thread keeps re-bursting the same stable patterns while the
  // readers run, so seals keep entering the pipeline during the sweep —
  // the buffered-read hit cannot be lost to reader-startup latency.
  for (int round = 0; round < 10 && inflight_reads->value() == 0; ++round) {
    for (std::uint64_t i = 0; i < kBlocks; ++i) {
      ASSERT_OK(disk->Write(blocks[i], TestPattern(4096, i), kNoAru));
    }
    std::mutex mu;
    std::vector<Status> failures;
    std::vector<std::thread> readers;
    readers.reserve(4);
    for (int r = 0; r < 4; ++r) {
      readers.emplace_back([&, r] {
        Bytes out(4096);
        for (int sweep = 0; sweep < 2; ++sweep) {
          for (std::uint64_t i = static_cast<std::uint64_t>(r); i < kBlocks;
               i += 4) {
            const Status status = disk->Read(blocks[i], out, kNoAru);
            if (!status.ok()) {
              const std::lock_guard<std::mutex> lock(mu);
              failures.push_back(status);
              return;
            }
            if (out != TestPattern(4096, i)) {
              const std::lock_guard<std::mutex> lock(mu);
              failures.push_back(CorruptionError(
                  "in-flight read returned wrong bytes for block " +
                  std::to_string(i)));
              return;
            }
          }
        }
      });
    }
    Status rewrite_status;  // checked only after the readers join
    for (std::uint64_t i = 0; i < kBlocks && rewrite_status.ok(); ++i) {
      rewrite_status = disk->Write(blocks[i], TestPattern(4096, i), kNoAru);
    }
    for (std::thread& r : readers) r.join();
    ASSERT_OK(rewrite_status);
    for (const Status& failure : failures) {
      ADD_FAILURE() << "reader failure: " << failure.ToString();
    }
    ASSERT_OK(disk->Flush());
  }
  EXPECT_GT(inflight_reads->value(), 0u);
  ASSERT_OK(disk->CheckConsistency());
  ASSERT_OK(disk->Close());
}

}  // namespace
}  // namespace aru::testing
