// Unit tests for the util module: Status/Result, byte codecs, CRC-32C,
// the deterministic RNG, the virtual clock, and topology-derived
// shard sizing.
#include <gtest/gtest.h>

#include <cstring>

#include "tests/test_util.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/topology.h"

namespace aru::testing {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = NotFoundError("block 7");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "block 7");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: block 7");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfSpaceError("").code(), StatusCode::kOutOfSpace);
  EXPECT_EQ(IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(CorruptionError("").code(), StatusCode::kCorruption);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(IoError("boom"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 5);
}

Status FailsThrough() {
  ARU_RETURN_IF_ERROR(IoError("inner"));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kIoError);
}

Result<int> Doubles(Result<int> input) {
  ARU_ASSIGN_OR_RETURN(const int v, std::move(input));
  return v * 2;
}

TEST(ResultTest, AssignOrReturn) {
  EXPECT_EQ(*Doubles(21), 42);
  EXPECT_EQ(Doubles(NotFoundError("x")).status().code(),
            StatusCode::kNotFound);
}

// --- byte codecs ---

TEST(BytesTest, RoundTripFixedWidths) {
  Bytes out;
  PutU16(out, 0xbeef);
  PutU32(out, 0xdeadbeef);
  PutU64(out, 0x0123456789abcdefull);
  ASSERT_EQ(out.size(), 14u);
  EXPECT_EQ(GetU16(out), 0xbeef);
  EXPECT_EQ(GetU32(ByteSpan(out).subspan(2)), 0xdeadbeefu);
  EXPECT_EQ(GetU64(ByteSpan(out).subspan(6)), 0x0123456789abcdefull);
}

TEST(BytesTest, LittleEndianLayout) {
  Bytes out;
  PutU32(out, 0x01020304);
  EXPECT_EQ(out[0], std::byte{0x04});
  EXPECT_EQ(out[3], std::byte{0x01});
}

TEST(DecoderTest, SequentialReads) {
  Bytes data;
  data.push_back(std::byte{7});
  PutU16(data, 300);
  PutU64(data, 1ull << 40);
  Decoder dec(data);
  EXPECT_EQ(*dec.ReadU8(), 7);
  EXPECT_EQ(*dec.ReadU16(), 300);
  EXPECT_EQ(*dec.ReadU64(), 1ull << 40);
  EXPECT_TRUE(dec.done());
}

TEST(DecoderTest, UnderflowIsCorruption) {
  Bytes data;
  PutU16(data, 1);
  Decoder dec(data);
  EXPECT_TRUE(dec.ReadU16().ok());
  const auto result = dec.ReadU32();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(DecoderTest, ReadBytesSlices) {
  Bytes data(10, std::byte{9});
  Decoder dec(data);
  ASSERT_OK_AND_ASSIGN(const ByteSpan head, dec.ReadBytes(4));
  EXPECT_EQ(head.size(), 4u);
  EXPECT_EQ(dec.remaining(), 6u);
  EXPECT_FALSE(dec.ReadBytes(7).ok());
}

// --- CRC-32C ---

TEST(Crc32Test, KnownVectors) {
  // RFC 3720 test vector: CRC-32C of 32 zero bytes.
  const Bytes zeros(32, std::byte{0});
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
  // "123456789"
  Bytes digits;
  for (const char c : std::string("123456789")) {
    digits.push_back(static_cast<std::byte>(c));
  }
  EXPECT_EQ(Crc32c(digits), 0xe3069283u);
}

TEST(Crc32Test, SeedChainsIncrementalUse) {
  const Bytes data = TestPattern(1024, 5);
  const std::uint32_t whole = Crc32c(data);
  const std::uint32_t first = Crc32c(ByteSpan(data).first(100));
  const std::uint32_t chained = Crc32c(ByteSpan(data).subspan(100), first);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32Test, DetectsBitFlip) {
  Bytes data = TestPattern(512, 6);
  const std::uint32_t before = Crc32c(data);
  data[200] ^= std::byte{0x01};
  EXPECT_NE(before, Crc32c(data));
}

// --- RNG ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceRoughlyFair) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(1, 4)) ++hits;
  }
  EXPECT_GT(hits, 2200);
  EXPECT_LT(hits, 2800);
}

// --- VirtualClock ---

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  EXPECT_EQ(clock.now_us(), 0u);
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.now_us(), 150u);
}

TEST(VirtualClockTest, AdvanceToNeverGoesBack) {
  VirtualClock clock;
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.now_us(), 500u);
  clock.AdvanceTo(300);
  EXPECT_EQ(clock.now_us(), 500u);
  clock.Reset();
  EXPECT_EQ(clock.now_us(), 0u);
}

// --- Topology-derived shard sizing ---

TEST(TopologyTest, RoundUpPow2) {
  EXPECT_EQ(util::RoundUpPow2(0), 1u);
  EXPECT_EQ(util::RoundUpPow2(1), 1u);
  EXPECT_EQ(util::RoundUpPow2(2), 2u);
  EXPECT_EQ(util::RoundUpPow2(3), 4u);
  EXPECT_EQ(util::RoundUpPow2(8), 8u);
  EXPECT_EQ(util::RoundUpPow2(9), 16u);
  EXPECT_EQ(util::RoundUpPow2(33), 64u);
}

TEST(TopologyTest, ShardCountClampsAndRounds) {
  // Undeterminable (0) and tiny machines get the floor.
  EXPECT_EQ(util::ShardCountForThreads(0), 4u);
  EXPECT_EQ(util::ShardCountForThreads(1), 4u);
  EXPECT_EQ(util::ShardCountForThreads(4), 4u);
  // Mid-size machines round up to a power of two.
  EXPECT_EQ(util::ShardCountForThreads(6), 8u);
  EXPECT_EQ(util::ShardCountForThreads(12), 16u);
  EXPECT_EQ(util::ShardCountForThreads(32), 32u);
  // Very wide machines hit the ceiling.
  EXPECT_EQ(util::ShardCountForThreads(96), 64u);
  EXPECT_EQ(util::ShardCountForThreads(1024), 64u);
}

TEST(TopologyTest, DefaultShardCountIsPow2InClampRange) {
  const std::size_t n = util::DefaultShardCount();
  EXPECT_GE(n, 4u);
  EXPECT_LE(n, 64u);
  EXPECT_EQ(n & (n - 1), 0u);  // power of two
}

TEST(TopologyTest, PoolThreadsForMachineClampsWithoutRounding) {
  // hardware_concurrency may report 0 on exotic platforms: still 1.
  EXPECT_EQ(util::PoolThreadsForMachine(0), 1u);
  EXPECT_EQ(util::PoolThreadsForMachine(1), 1u);
  // Unlike shard counts, pool widths are not rounded to powers of two
  // — every thread is a real cost, so 6 cores get 6 workers.
  EXPECT_EQ(util::PoolThreadsForMachine(6), 6u);
  EXPECT_EQ(util::PoolThreadsForMachine(12), 12u);
  // Wide machines hit the ceiling: recovery I/O stops scaling long
  // before 16 concurrent readers.
  EXPECT_EQ(util::PoolThreadsForMachine(64), 16u);
}

TEST(TopologyTest, DefaultPoolThreadsInClampRange) {
  const std::size_t n = util::DefaultPoolThreads();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
}

}  // namespace
}  // namespace aru::testing
