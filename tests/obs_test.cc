// Unit tests for the obs layer: metrics registry, histograms, and the
// event tracer.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aru::obs {
namespace {

// --- Counter / Gauge ---------------------------------------------------

TEST(CounterTest, IncrementAndAdd) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddAndNegative) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Add(-20);
  EXPECT_EQ(gauge.value(), -13);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

// --- Histogram ---------------------------------------------------------

TEST(HistogramTest, EmptySnapshot) {
  Histogram histogram;
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.Percentile(50), 0.0);
  EXPECT_EQ(snap.Percentile(99), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(HistogramTest, SingleSampleIsExact) {
  Histogram histogram;
  histogram.Record(777);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 777u);
  EXPECT_EQ(snap.min, 777u);
  EXPECT_EQ(snap.max, 777u);
  // Percentiles of a single sample are clamped to [min, max], so they
  // are exact regardless of the bucket's width.
  EXPECT_EQ(snap.Percentile(0), 777.0);
  EXPECT_EQ(snap.Percentile(50), 777.0);
  EXPECT_EQ(snap.Percentile(100), 777.0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds {0}; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);

  Histogram histogram;
  histogram.Record(0);  // bucket 0
  histogram.Record(1);  // bucket 1
  histogram.Record(2);  // bucket 2
  histogram.Record(3);  // bucket 2
  histogram.Record(4);  // bucket 3
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 4u);
}

TEST(HistogramTest, OverflowBucket) {
  Histogram histogram;
  const std::uint64_t huge = std::uint64_t{1} << 60;
  histogram.Record(huge);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.buckets[Histogram::kOverflowBucket], 1u);
  EXPECT_EQ(snap.max, huge);
  // The percentile estimate is clamped to the observed max, so even an
  // overflow-bucket sample reports a finite, exact value.
  EXPECT_EQ(snap.Percentile(99), static_cast<double>(huge));
}

TEST(HistogramTest, PercentilesAreMonotonicAndBounded) {
  Histogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  const double p50 = snap.Percentile(50);
  const double p95 = snap.Percentile(95);
  const double p99 = snap.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, static_cast<double>(snap.min));
  EXPECT_LE(p99, static_cast<double>(snap.max));
  // Log2 buckets are coarse, but the median of 1..1000 must land well
  // inside the middle of the range.
  EXPECT_GT(p50, 100.0);
  EXPECT_LT(p50, 1000.0);
  EXPECT_EQ(snap.sum, 500500u);
  EXPECT_DOUBLE_EQ(snap.mean(), 500.5);
}

TEST(HistogramTest, ResetClears) {
  Histogram histogram;
  histogram.Record(5);
  histogram.Record(9);
  EXPECT_EQ(histogram.count(), 2u);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.Percentile(50), 0.0);
}

// --- Registry ----------------------------------------------------------

TEST(RegistryTest, FindOrCreateReturnsSamePointer) {
  Registry registry;
  Counter* a = registry.GetCounter("ops_total", "operations");
  Counter* b = registry.GetCounter("ops_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
}

TEST(RegistryTest, KindMismatchReturnsNull) {
  Registry registry;
  ASSERT_NE(registry.GetCounter("metric"), nullptr);
  EXPECT_EQ(registry.GetGauge("metric"), nullptr);
  EXPECT_EQ(registry.GetHistogram("metric"), nullptr);
}

TEST(RegistryTest, FindAbsentReturnsNull) {
  Registry registry;
  EXPECT_EQ(registry.FindCounter("nope"), nullptr);
  EXPECT_EQ(registry.FindGauge("nope"), nullptr);
  EXPECT_EQ(registry.FindHistogram("nope"), nullptr);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistration) {
  Registry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Add(3);
  gauge->Set(-2);
  histogram->Record(99);
  registry.Reset();
  EXPECT_EQ(registry.FindCounter("c"), counter);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), 0u);
}

TEST(RegistryTest, OrDefaultResolvesNull) {
  Registry registry;
  EXPECT_EQ(&Registry::OrDefault(&registry), &registry);
  EXPECT_EQ(&Registry::OrDefault(nullptr), &Registry::Default());
}

// A tiny structural check: every brace/bracket balances and the
// expected keys appear. Not a full JSON parser, but enough to catch
// broken escaping or truncation.
void ExpectBalancedJson(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(RegistryTest, DumpJsonIsWellFormed) {
  Registry registry;
  registry.GetCounter("reads_total", "total reads")->Add(7);
  registry.GetGauge("active", "active things")->Set(-4);
  Histogram* histogram = registry.GetHistogram("latency_us", "latency");
  histogram->Record(12);
  histogram->Record(120000);

  const std::string json = registry.DumpJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"reads_total\""), std::string::npos);
  EXPECT_NE(json.find("\"active\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("-4"), std::string::npos);
}

TEST(RegistryTest, DumpTextListsMetrics) {
  Registry registry;
  registry.GetCounter("widgets_total", "widget count")->Add(5);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("widgets_total"), std::string::npos);
  EXPECT_NE(text.find("5"), std::string::npos);
}

// --- Tracer ------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer(8);
  tracer.set_enabled(false);
  tracer.RecordComplete("test", "event", 0, 1);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, RingWraparoundKeepsNewestOldestFirst) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tracer.RecordComplete("test", "event", /*ts_us=*/i * 10, /*dur_us=*/1);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The two oldest events (ts 0, 10) were evicted; the survivors come
  // back oldest first.
  EXPECT_EQ(events[0].ts_us, 20u);
  EXPECT_EQ(events[1].ts_us, 30u);
  EXPECT_EQ(events[2].ts_us, 40u);
  EXPECT_EQ(events[3].ts_us, 50u);
}

TEST(TracerTest, ClearResets) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  for (int i = 0; i < 6; ++i) tracer.RecordComplete("t", "e", 0, 0);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.capacity(), 4u);
}

TEST(TracerTest, ChromeJsonIsWellFormed) {
  Tracer tracer(16);
  tracer.set_enabled(true);
  tracer.RecordComplete("lld", "aru", 100, 50);
  tracer.RecordComplete("lld", "cleaner_pass", 200, 25, "copied_blocks", 7);
  const std::string json = tracer.DumpChromeJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cleaner_pass\""), std::string::npos);
  EXPECT_NE(json.find("\"copied_blocks\""), std::string::npos);
  // Complete events use phase "X".
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// --- SpanTimer ---------------------------------------------------------

TEST(SpanTimerTest, RecordsIntoHistogramAndTracer) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  Histogram histogram;
  {
    SpanTimer span(&tracer, "test", "work", &histogram);
    span.SetArg("items", 3);
  }
  EXPECT_EQ(histogram.count(), 1u);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "work");
  ASSERT_NE(events[0].arg_name, nullptr);
  EXPECT_STREQ(events[0].arg_name, "items");
  EXPECT_EQ(events[0].arg_value, 3u);
}

TEST(SpanTimerTest, FinishIsIdempotent) {
  Histogram histogram;
  SpanTimer span(nullptr, "test", "work", &histogram);
  span.Finish();
  span.Finish();  // second call must not record again
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(SpanTimerTest, HistogramOnlyWithNullTracer) {
  Histogram histogram;
  { SpanTimer span(nullptr, "test", "work", &histogram); }
  EXPECT_EQ(histogram.count(), 1u);
}

}  // namespace
}  // namespace aru::obs
